//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! micro-crate implements the subset of the criterion API the workspace's
//! benches use. It runs each benchmark a small fixed number of iterations
//! and prints the mean wall time — enough to compare runs by eye and to
//! keep `cargo bench` compiling; it performs no statistics, warm-up
//! scheduling, or report generation.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Untimed calls of the benchmark body before measurement starts.
const WARMUP_ITERATIONS: u64 = 3;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/name/parameter`-style id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_owned())
    }
}

/// Measures one benchmark body.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iterations` calls of `body`, after a small untimed warm-up
    /// (mirroring real criterion's warm-up phase, so one-time costs such
    /// as first-run compilation or lazy allocation do not skew the mean).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        for _ in 0..WARMUP_ITERATIONS {
            std::hint::black_box(body());
        }
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup {
    /// Overrides how many iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut body: F) {
        let mut bencher = Bencher { iterations: self.sample_size.max(1), elapsed: Duration::ZERO };
        body(&mut bencher);
        let mean = bencher.elapsed.as_secs_f64() / bencher.iterations as f64 * 1e3;
        println!("{}/{label}: {mean:.3} ms/iter ({} iters)", self.name, bencher.iterations);
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        body: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.0, body);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self {
        self.run(&id.0, |b| body(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 10 }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, body: F) -> &mut Self {
        let mut group = self.benchmark_group(name);
        group.bench_function("bench", body);
        group.finish();
        self
    }
}

/// Bundles benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_bodies() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // The body runs once per warm-up iteration plus once per sample.
        assert_eq!(runs, WARMUP_ITERATIONS + 3);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut got = 0i64;
        let mut group = c.benchmark_group("g");
        group.sample_size(1);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7i64, |b, v| {
            b.iter(|| got = *v);
        });
        group.finish();
        assert_eq!(got, 7);
    }
}
