//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! micro-crate provides exactly the surface the workspace uses:
//! `StdRng::seed_from_u64` and `Rng::gen_range` over integer ranges. The
//! generator is a splitmix64-seeded xorshift64*, which is deterministic,
//! fast, and more than uniform enough for seeding test data.

use std::ops::{Range, RangeInclusive};

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

fn below<G: Rng + ?Sized>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0, "empty sample range");
    // Modulo bias is irrelevant for the tiny spans used in test data.
    rng.next_u64() % span
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The standard deterministic generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Run the seed through splitmix64 so close seeds diverge.
            let mut s = seed;
            let state = splitmix64(&mut s) | 1;
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna); the `| 1` in seeding avoids the zero state.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-8..=8);
            assert!((-8..=8).contains(&v));
            let w: i64 = rng.gen_range(0i64..5);
            assert!((0..5).contains(&w));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            seen.insert(rng.gen_range(0u32..=3));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }
}
