//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! micro-crate reimplements the subset of proptest the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `boxed`, integer-range and regex-class string
//! strategies, tuple composition, [`collection`] and [`sample`] helpers,
//! and the [`proptest!`] / assertion macros. Cases are sampled from a
//! deterministic per-test stream (seeded by the test name), so failures
//! reproduce across runs. Failing cases are **greedily shrunk**:
//! integer-range, tuple, and [`collection::vec`] strategies propose
//! structurally smaller variants through [`Strategy::shrink`] (other
//! strategies pass through unchanged), and the runner walks to a
//! locally minimal failing case — within a bounded candidate budget —
//! before panicking with that case's assertion message.

use std::rc::Rc;

pub mod collection;
pub mod sample;
pub mod string;

/// Deterministic per-test random stream (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// A value generator (the proptest `Strategy` trait, with minimal
/// greedy shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes *smaller* variants of a failing `value`, most-shrunk
    /// first. The default proposes nothing, which keeps every strategy
    /// (maps, unions, patterns) valid — shrinking is best-effort.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, then samples the strategy `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.shrink(value)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// Uniform choice between boxed strategies (backs [`prop_oneof!`]).
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Shrink candidates for an integer in `[start, value)`: halve the
/// distance to `start` repeatedly, most-shrunk first (`start` itself,
/// then midpoints, ending at `value - 1`). Greedy descent over these
/// candidates converges to a boundary in logarithmic steps.
fn shrink_toward(start: i128, value: i128) -> Vec<i128> {
    let mut out = Vec::new();
    let mut delta = value - start;
    while delta > 0 {
        out.push(value - delta);
        delta /= 2;
    }
    out
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.below(span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone,)+
        {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // One component at a time, the rest held fixed.
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        string::sample_pattern(self, rng)
    }
}

/// Types with a canonical `any()` strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of arbitrary `T` values.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should not count.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection with the given message.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Drives one property: samples cases until `config.cases` succeed.
///
/// # Panics
///
/// Panics on the first failing case, or when `prop_assume!` rejects an
/// excessive fraction of cases.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let name_seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
    });
    let mut passed = 0u32;
    let mut attempts = 0u64;
    let max_attempts = u64::from(config.cases) * 20 + 100;
    while passed < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest `{name}`: too many rejected cases ({} passed of {} wanted)",
            passed,
            config.cases
        );
        let mut rng =
            TestRng::new(name_seed.wrapping_add(attempts.wrapping_mul(0x2545_F491_4F6C_DD1D)));
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(message)) => {
                panic!("proptest `{name}` failed at case {passed} (attempt {attempts}): {message}")
            }
        }
    }
}

/// Candidate evaluations a shrink search may spend per failure.
const SHRINK_BUDGET: usize = 200;

/// Drives one property with shrinking: samples `strategy` until
/// `config.cases` succeed; on the first failure, greedily walks
/// [`Strategy::shrink`] candidates (within a fixed budget of
/// evaluations) to a locally minimal failing case and panics with that
/// case's message. The sampling stream is identical to
/// [`run_proptest`]'s, so seeds and failures reproduce across both
/// runners.
///
/// # Panics
///
/// Panics on the first (shrunk) failing case, or when `prop_assume!`
/// rejects an excessive fraction of cases.
pub fn run_proptest_shrinking<S, F>(config: &ProptestConfig, name: &str, strategy: &S, mut case: F)
where
    S: Strategy,
    S::Value: Clone,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let name_seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
    });
    let mut passed = 0u32;
    let mut attempts = 0u64;
    let max_attempts = u64::from(config.cases) * 20 + 100;
    while passed < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest `{name}`: too many rejected cases ({} passed of {} wanted)",
            passed,
            config.cases
        );
        let mut rng =
            TestRng::new(name_seed.wrapping_add(attempts.wrapping_mul(0x2545_F491_4F6C_DD1D)));
        let value = strategy.sample(&mut rng);
        match case(value.clone()) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(message)) => {
                // Greedy descent: adopt the first still-failing shrink
                // candidate and restart from it, until no candidate
                // fails (a local minimum) or the budget runs out. A
                // rejected candidate counts as passing — it is outside
                // the property's precondition.
                let mut best = value;
                let mut best_message = message;
                let mut steps = 0usize;
                'descend: while steps < SHRINK_BUDGET {
                    for candidate in strategy.shrink(&best) {
                        steps += 1;
                        if steps > SHRINK_BUDGET {
                            break 'descend;
                        }
                        if let Err(TestCaseError::Fail(message)) = case(candidate.clone()) {
                            best = candidate;
                            best_message = message;
                            continue 'descend;
                        }
                    }
                    break;
                }
                panic!(
                    "proptest `{name}` failed at case {passed} (attempt {attempts}, \
                     {steps} shrink evaluations): {best_message}"
                )
            }
        }
    }
}

/// Declares property tests (see the proptest crate's macro of the same
/// name). Bodies run inside a closure returning
/// `Result<(), TestCaseError>`, so `prop_assert!`-style macros and `?`
/// work as in real proptest. Failing cases are shrunk via
/// [`run_proptest_shrinking`], which requires every bound value to be
/// `Clone`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                // The bound strategies form one tuple strategy, so the
                // runner can shrink any component of a failing case.
                // Tuple sampling draws components left to right —
                // exactly the stream the pre-shrinking runner used.
                let __strategy = ($($strategy,)+);
                $crate::run_proptest_shrinking(
                    &__config,
                    stringify!($name),
                    &__strategy,
                    |__case| {
                        let ($($pat,)+) = __case;
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// `assert!` that reports through [`TestCaseError`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through [`TestCaseError`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Skips cases whose inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The usual `use proptest::prelude::*` imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let (a, b) = (1i64..24, 0u32..3).sample(&mut rng);
            assert!((1..24).contains(&a));
            assert!(b < 3);
            let c = (-5i32..=5).sample(&mut rng);
            assert!((-5..=5).contains(&c));
        }
    }

    #[test]
    fn flat_map_respects_dependency() {
        let mut rng = crate::TestRng::new(2);
        let strat = (1i64..10).prop_flat_map(|n| (0..n).prop_map(move |m| (n, m)));
        for _ in 0..200 {
            let (n, m) = strat.sample(&mut rng);
            assert!(m < n);
        }
    }

    #[test]
    fn string_patterns_match_their_classes() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..100 {
            let s = "[a-z][a-z0-9]{0,3}".sample(&mut rng);
            assert!((1..=4).contains(&s.len()), "{s}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn collections_honor_size_ranges() {
        let mut rng = crate::TestRng::new(4);
        for _ in 0..50 {
            let v = crate::collection::vec(0u64..100, 1..200).sample(&mut rng);
            assert!((1..200).contains(&v.len()));
            let m = crate::collection::btree_map("[a-z]{1,3}", 0u32..5, 1..6).sample(&mut rng);
            assert!((1..6).contains(&m.len()));
        }
    }

    #[test]
    fn select_and_oneof_choose_existing_options() {
        let mut rng = crate::TestRng::new(5);
        let sel = crate::sample::select(vec![2i64, 4, 8]);
        let uni = prop_oneof![(0u32..1).prop_map(|_| "lo"), (0u32..1).prop_map(|_| "hi")];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            assert!([2, 4, 8].contains(&sel.sample(&mut rng)));
            seen.insert(uni.sample(&mut rng));
        }
        assert_eq!(seen.len(), 2, "both arms must fire");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline itself: patterns, assume, assert.
        #[test]
        fn macro_smoke((a, b) in (0u32..50, 0u32..50), flag in any::<bool>()) {
            prop_assume!(a != b || flag);
            prop_assert!(a < 50 && b < 50, "bounds {} {}", a, b);
            prop_assert_eq!(a + b, b + a);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::run_proptest(&ProptestConfig::with_cases(8), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }

    /// A property failing for all `v >= 100` must shrink to exactly the
    /// boundary: the panic message names `v=100`, not whatever large
    /// sample tripped it first.
    #[test]
    #[should_panic(expected = "v=100")]
    fn failing_properties_shrink_to_the_boundary() {
        crate::run_proptest_shrinking(
            &ProptestConfig::with_cases(8),
            "shrinks_to_boundary",
            &(0u64..1000,),
            |(v,)| {
                if v >= 100 {
                    Err(TestCaseError::fail(format!("v={v}")))
                } else {
                    Ok(())
                }
            },
        );
    }

    #[test]
    fn vec_shrinks_propose_shorter_and_smaller() {
        let strat = crate::collection::vec(0u32..10, 1..5);
        let candidates = Strategy::shrink(&strat, &vec![5, 7, 9]);
        assert!(candidates.contains(&vec![5]), "halved length");
        assert!(candidates.contains(&vec![5, 7]), "dropped tail");
        assert!(candidates.contains(&vec![7, 9]), "dropped head");
        assert!(candidates.contains(&vec![0, 7, 9]), "element shrunk toward its minimum");
        // The size minimum is a floor.
        assert!(Strategy::shrink(&strat, &vec![3]).iter().all(|v| !v.is_empty()));
    }

    #[test]
    fn integer_shrinks_walk_toward_the_range_start() {
        let candidates = Strategy::shrink(&(5i64..100), &21);
        assert_eq!(candidates.first(), Some(&5), "most-shrunk candidate first");
        assert_eq!(candidates.last(), Some(&20), "least-shrunk candidate last");
        assert!(candidates.windows(2).all(|w| w[0] < w[1]));
        assert!(Strategy::shrink(&(5i64..100), &5).is_empty(), "the start is minimal");
    }
}
