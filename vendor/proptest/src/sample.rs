//! Sampling from explicit option lists (`proptest::sample` subset).

use crate::{Strategy, TestRng};

/// Strategy cloning one of a fixed list of options (see [`select`]).
#[derive(Clone, Debug)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].clone()
    }
}

/// Uniformly selects one of `options` (must be non-empty).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}
