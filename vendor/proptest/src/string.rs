//! String generation from the tiny regex subset the workspace uses:
//! a sequence of character classes `[...]`, each optionally followed by a
//! `{min,max}` (or `{n}`) repeat count.

use crate::TestRng;

struct Part {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<char> {
    let mut class = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        let c = chars.next().unwrap_or_else(|| panic!("unterminated class in `{pattern}`"));
        match c {
            ']' => break,
            '-' if prev.is_some() && chars.peek().is_some_and(|n| *n != ']') => {
                let start = prev.take().unwrap();
                let end = chars.next().unwrap();
                assert!(start <= end, "bad range {start}-{end} in `{pattern}`");
                // `start` itself was already pushed; add the rest.
                for v in (start as u32 + 1)..=(end as u32) {
                    class.push(char::from_u32(v).unwrap());
                }
            }
            other => {
                class.push(other);
                prev = Some(other);
            }
        }
    }
    assert!(!class.is_empty(), "empty class in `{pattern}`");
    class
}

fn parse_repeat(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    loop {
        match chars.next() {
            Some('}') => break,
            Some(c) => spec.push(c),
            None => panic!("unterminated repeat in `{pattern}`"),
        }
    }
    match spec.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().unwrap_or_else(|_| panic!("bad repeat `{spec}` in `{pattern}`")),
            hi.trim().parse().unwrap_or_else(|_| panic!("bad repeat `{spec}` in `{pattern}`")),
        ),
        None => {
            let n = spec
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad repeat `{spec}` in `{pattern}`"));
            (n, n)
        }
    }
}

fn parse_pattern(pattern: &str) -> Vec<Part> {
    let mut chars = pattern.chars().peekable();
    let mut parts = Vec::new();
    while let Some(c) = chars.next() {
        let class = match c {
            '[' => parse_class(&mut chars, pattern),
            // A bare literal character matches itself.
            other => vec![other],
        };
        let (min, max) = parse_repeat(&mut chars, pattern);
        parts.push(Part { chars: class, min, max });
    }
    parts
}

/// Samples one string matching `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for part in parse_pattern(pattern) {
        let count = part.min + rng.below((part.max - part.min + 1) as u64) as usize;
        for _ in 0..count {
            let i = rng.below(part.chars.len() as u64) as usize;
            out.push(part.chars[i]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_ranges_and_repeats() {
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let s = sample_pattern("[a-zA-Z][a-zA-Z0-9_]{0,6}", &mut rng);
            assert!((1..=7).contains(&s.len()), "{s}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'), "{s}");
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = TestRng::new(10);
        assert_eq!(sample_pattern("ab", &mut rng), "ab");
        assert_eq!(sample_pattern("x{3}", &mut rng), "xxx");
    }
}
