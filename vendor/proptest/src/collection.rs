//! Collection strategies (`proptest::collection` subset).

use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

use crate::{Strategy, TestRng};

/// Element-count bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        let span = (self.max_inclusive - self.min + 1) as u64;
        self.min + rng.below(span) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range");
        SizeRange { min: r.start, max_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max_inclusive: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_inclusive: n }
    }
}

/// Strategy for `Vec<S::Value>` (see [`vec()`]).
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Shorter vectors first (never below the size minimum): half
        // the length, then drop one element from either end.
        if value.len() > self.size.min {
            let half = (value.len() / 2).max(self.size.min);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            out.push(value[..value.len() - 1].to_vec());
            out.push(value[1..].to_vec());
        }
        // Then one element shrunk in place, the rest held fixed.
        for at in 0..value.len() {
            for candidate in self.element.shrink(&value[at]) {
                let mut next = value.clone();
                next[at] = candidate;
                out.push(next);
            }
        }
        out
    }
}

/// Vectors of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy for `BTreeMap` (see [`btree_map`]).
#[derive(Clone)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn sample(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = self.size.sample(rng).max(self.size.min);
        let mut map = BTreeMap::new();
        // Key collisions shrink the map; retry a bounded number of times to
        // reach at least the minimum size.
        for _ in 0..target * 10 + 10 {
            if map.len() >= target {
                break;
            }
            map.insert(self.keys.sample(rng), self.values.sample(rng));
        }
        map
    }
}

/// Maps with `size` entries of unique `keys` to `values`.
pub fn btree_map<K: Strategy, V: Strategy>(
    keys: K,
    values: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy { keys, values, size: size.into() }
}
