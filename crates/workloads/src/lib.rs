//! Workload definitions for the AXI4MLIR experiments.
//!
//! - [`matmul`]: MatMul problem descriptions and the seeded data generators
//!   every experiment uses (deterministic across runs).
//! - [`batched`]: batches of independent MatMuls sharing one shape — the
//!   per-head GEMMs of transformer inference.
//! - [`resnet`]: the eleven ResNet18 convolution layer shapes of Fig. 16.
//! - [`tinybert`]: the TinyBERT-4 MatMul inventory of the end-to-end
//!   experiment (Fig. 17), with dimensions padded to the accelerator's
//!   divisibility constraint as a real deployment would.

pub mod batched;
pub mod matmul;
pub mod resnet;
pub mod tinybert;

pub use batched::BatchedMatMulProblem;
pub use matmul::MatMulProblem;
pub use resnet::{resnet18_layers, ConvLayer};
pub use tinybert::{tinybert_matmuls, TinyBertMatMul};
