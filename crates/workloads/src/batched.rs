//! Batched MatMul: one problem shape executed over a batch of independent
//! operand sets, as transformer inference does per attention head.
//!
//! The batch is the driver layer's extensibility proof: it compiles to a
//! module containing one `linalg.generic` per batch element, all annotated
//! and rewritten by the same passes, and executes in a single session so
//! SoC and staging allocations amortize across the batch.

use crate::matmul::MatMulProblem;

/// A batch of identical-shape, independent MatMuls.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BatchedMatMulProblem {
    /// The per-element GEMM shape.
    pub problem: MatMulProblem,
    /// Number of independent operand sets.
    pub batch: usize,
}

impl BatchedMatMulProblem {
    /// A batch of `batch` copies of `problem`.
    pub fn new(problem: MatMulProblem, batch: usize) -> Self {
        assert!(batch > 0, "a batch needs at least one element");
        Self { problem, batch }
    }

    /// Total multiply-accumulates across the batch.
    pub fn macs(&self) -> u64 {
        self.problem.macs() * self.batch as u64
    }

    /// The figure-style label `M_N_K.xB`.
    pub fn label(&self) -> String {
        format!("{}x{}", self.problem.label(), self.batch)
    }

    /// Deterministic `(A, B)` data for one batch element. Elements get
    /// decorrelated streams derived from the run seed.
    pub fn generate_inputs(&self, seed: u64, index: usize) -> (Vec<i32>, Vec<i32>) {
        self.problem.generate_inputs(seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Elements of one output buffer.
    pub fn output_elems(&self) -> usize {
        (self.problem.m * self.problem.n) as usize
    }
}

impl std::fmt::Display for BatchedMatMulProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} x{}", self.problem, self.batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_macs_scale_with_batch() {
        let b = BatchedMatMulProblem::new(MatMulProblem::new(8, 16, 4), 3);
        assert_eq!(b.macs(), 3 * 8 * 16 * 4);
        assert_eq!(b.label(), "8_16_4x3");
        assert_eq!(b.to_string(), "8x16x4 x3");
        assert_eq!(b.output_elems(), 8 * 16);
    }

    #[test]
    fn elements_get_distinct_deterministic_data() {
        let b = BatchedMatMulProblem::new(MatMulProblem::square(8), 2);
        let (a0, b0) = b.generate_inputs(5, 0);
        let (a0b, b0b) = b.generate_inputs(5, 0);
        assert_eq!(a0, a0b);
        assert_eq!(b0, b0b);
        let (a1, _) = b.generate_inputs(5, 1);
        assert_ne!(a0, a1, "batch elements see different data");
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_batch_is_rejected() {
        BatchedMatMulProblem::new(MatMulProblem::square(4), 0);
    }
}
