//! MatMul problems and deterministic data generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A MatMul problem `C(M,N) += A(M,K) x B(K,N)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MatMulProblem {
    /// Rows of A and C.
    pub m: i64,
    /// Columns of B and C.
    pub n: i64,
    /// Contraction dimension.
    pub k: i64,
}

impl MatMulProblem {
    /// A problem with the given dimensions.
    pub fn new(m: i64, n: i64, k: i64) -> Self {
        Self { m, n, k }
    }

    /// The `dims == M == N == K` problems of Figs. 10–13.
    pub fn square(dims: i64) -> Self {
        Self { m: dims, n: dims, k: dims }
    }

    /// Multiply-accumulate count.
    pub fn macs(&self) -> u64 {
        (self.m * self.n * self.k) as u64
    }

    /// The figure label `M_N_K`.
    pub fn label(&self) -> String {
        format!("{}_{}_{}", self.m, self.n, self.k)
    }

    /// All six permutations of `(a, b, c)` as problems — the Fig. 14 sweep
    /// over permutations of `[32, 256, 512]`.
    pub fn permutations_of(a: i64, b: i64, c: i64) -> Vec<MatMulProblem> {
        vec![
            MatMulProblem::new(a, b, c),
            MatMulProblem::new(a, c, b),
            MatMulProblem::new(b, a, c),
            MatMulProblem::new(b, c, a),
            MatMulProblem::new(c, a, b),
            MatMulProblem::new(c, b, a),
        ]
    }

    /// Deterministic input data for this problem: `(A, B)` with small
    /// values (so `i32` accumulation cannot overflow for the sizes used in
    /// the experiments).
    pub fn generate_inputs(&self, seed: u64) -> (Vec<i32>, Vec<i32>) {
        let mut rng = StdRng::seed_from_u64(seed ^ self.macs());
        let a = (0..self.m * self.k).map(|_| rng.gen_range(-8..=8)).collect();
        let b = (0..self.k * self.n).map(|_| rng.gen_range(-8..=8)).collect();
        (a, b)
    }
}

impl std::fmt::Display for MatMulProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.n, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_and_macs() {
        let p = MatMulProblem::square(64);
        assert_eq!((p.m, p.n, p.k), (64, 64, 64));
        assert_eq!(p.macs(), 64 * 64 * 64);
        assert_eq!(p.label(), "64_64_64");
        assert_eq!(p.to_string(), "64x64x64");
    }

    #[test]
    fn permutations_cover_all_six() {
        let perms = MatMulProblem::permutations_of(32, 256, 512);
        assert_eq!(perms.len(), 6);
        let unique: std::collections::BTreeSet<String> =
            perms.iter().map(MatMulProblem::label).collect();
        assert_eq!(unique.len(), 6);
        for p in &perms {
            assert_eq!(p.macs(), 32 * 256 * 512);
        }
    }

    #[test]
    fn data_is_deterministic_and_bounded() {
        let p = MatMulProblem::square(8);
        let (a1, b1) = p.generate_inputs(42);
        let (a2, b2) = p.generate_inputs(42);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        let (a3, _) = p.generate_inputs(43);
        assert_ne!(a1, a3, "different seeds give different data");
        assert!(a1.iter().all(|v| (-8..=8).contains(v)));
        assert_eq!(a1.len(), 64);
        assert_eq!(b1.len(), 64);
    }
}
