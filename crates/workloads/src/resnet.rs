//! The ResNet18 convolution layers of Fig. 16.
//!
//! The paper labels each layer `iHW_iC_fHW_oC_stride`; the eleven distinct
//! shapes below are read straight off the figure's x-axis.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One convolution layer (square spatial dims, NCHW/FCHW, no padding —
/// input sizes in the figure are pre-padded, e.g. `230 = 224 + 2*3`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConvLayer {
    /// Input height/width.
    pub in_hw: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Filter height/width.
    pub filter_hw: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Spatial stride.
    pub stride: usize,
}

impl ConvLayer {
    /// Output height/width.
    pub fn out_hw(&self) -> usize {
        (self.in_hw - self.filter_hw) / self.stride + 1
    }

    /// The figure label `iHW_iC_fHW_oC_stride`.
    pub fn label(&self) -> String {
        format!(
            "{}_{}_{}_{}_{}",
            self.in_hw, self.in_channels, self.filter_hw, self.out_channels, self.stride
        )
    }

    /// Multiply-accumulates for a batch-1 forward pass.
    pub fn macs(&self) -> u64 {
        (self.out_channels
            * self.out_hw()
            * self.out_hw()
            * self.in_channels
            * self.filter_hw
            * self.filter_hw) as u64
    }

    /// Deterministic input and filter data.
    pub fn generate_inputs(&self, seed: u64) -> (Vec<i32>, Vec<i32>) {
        let mut rng = StdRng::seed_from_u64(seed ^ self.macs());
        let input = (0..self.in_channels * self.in_hw * self.in_hw)
            .map(|_| rng.gen_range(-4..=4))
            .collect();
        let filter = (0..self.out_channels * self.in_channels * self.filter_hw * self.filter_hw)
            .map(|_| rng.gen_range(-4..=4))
            .collect();
        (input, filter)
    }
}

impl std::fmt::Display for ConvLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// The eleven ResNet18 convolution layers of Fig. 16, in the figure's
/// (lexicographic) order.
pub fn resnet18_layers() -> Vec<ConvLayer> {
    let raw: [(usize, usize, usize, usize, usize); 11] = [
        (14, 256, 1, 512, 2),
        (16, 256, 3, 256, 1),
        (16, 256, 3, 512, 2),
        (230, 3, 7, 64, 2),
        (28, 128, 1, 256, 2),
        (30, 128, 3, 128, 1),
        (30, 128, 3, 256, 2),
        (56, 64, 1, 128, 2),
        (58, 64, 3, 128, 2),
        (58, 64, 3, 64, 1),
        (9, 512, 3, 512, 1),
    ];
    raw.into_iter()
        .map(|(in_hw, in_channels, filter_hw, out_channels, stride)| ConvLayer {
            in_hw,
            in_channels,
            filter_hw,
            out_channels,
            stride,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_layers_with_figure_labels() {
        let layers = resnet18_layers();
        assert_eq!(layers.len(), 11);
        let labels: Vec<String> = layers.iter().map(ConvLayer::label).collect();
        assert!(labels.contains(&"230_3_7_64_2".to_owned()));
        assert!(labels.contains(&"56_64_1_128_2".to_owned()), "the Fig. 16 slowdown layer");
        assert!(labels.contains(&"9_512_3_512_1".to_owned()));
    }

    #[test]
    fn output_shapes_are_sane() {
        // First layer: 230x230 input, 7x7 filter, stride 2 -> 112x112.
        let first = resnet18_layers().into_iter().find(|l| l.in_hw == 230).unwrap();
        assert_eq!(first.out_hw(), 112);
        // 9x9 input, 3x3 filter, stride 1 -> 7x7.
        let last = resnet18_layers().into_iter().find(|l| l.in_hw == 9).unwrap();
        assert_eq!(last.out_hw(), 7);
    }

    #[test]
    fn macs_positive_and_data_deterministic() {
        for layer in resnet18_layers() {
            assert!(layer.macs() > 0, "{layer}");
            let (i1, f1) = layer.generate_inputs(7);
            let (i2, f2) = layer.generate_inputs(7);
            assert_eq!(i1, i2);
            assert_eq!(f1, f2);
            assert_eq!(i1.len(), layer.in_channels * layer.in_hw * layer.in_hw);
        }
    }
}
