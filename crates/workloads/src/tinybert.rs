//! The TinyBERT end-to-end workload (Fig. 17).
//!
//! TinyBERT (4 layers, hidden 312, FFN 1200, 12 heads) with batch size 2
//! and sequence length 128, as in the paper. The per-layer MatMuls are
//! enumerated below; dimensions are padded up to multiples of 16 — the
//! v4_16 accelerator's divisibility constraint — exactly as a deployment
//! would pad (312 -> 320, head size 26 -> 32).
//!
//! The non-MatMul operators (embeddings, softmax, layer norm, GELU,
//! residuals) stay on the CPU in every configuration; the paper reports
//! MatMuls at ~75% of CPU-only runtime, so the harness models "other
//! layers" as one third of the measured CPU MatMul time (see
//! `EXPERIMENTS.md`).

use crate::matmul::MatMulProblem;

/// Number of transformer layers.
pub const LAYERS: usize = 4;
/// Hidden size after padding (312 -> 320).
pub const HIDDEN: i64 = 320;
/// FFN intermediate size (1200 -> 1216).
pub const FFN: i64 = 1216;
/// Attention heads.
pub const HEADS: i64 = 12;
/// Per-head size after padding (26 -> 32).
pub const HEAD_DIM: i64 = 32;
/// Batch size (Fig. 17 caption).
pub const BATCH: i64 = 2;
/// Sequence length.
pub const SEQ: i64 = 128;
/// Tokens processed per pass.
pub const TOKENS: i64 = BATCH * SEQ;

/// One MatMul of the model, with its multiplicity per forward pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TinyBertMatMul {
    /// Which weight this is (`"qkv"`, `"scores"`, ...).
    pub role: &'static str,
    /// The GEMM shape.
    pub problem: MatMulProblem,
    /// How many times it runs per forward pass (all layers included).
    pub count: u64,
}

/// The full MatMul inventory of one TinyBERT forward pass.
pub fn tinybert_matmuls() -> Vec<TinyBertMatMul> {
    let l = LAYERS as u64;
    vec![
        // Q, K, V projections: tokens x hidden @ hidden x hidden.
        TinyBertMatMul {
            role: "qkv",
            problem: MatMulProblem::new(TOKENS, HIDDEN, HIDDEN),
            count: 3 * l,
        },
        // Attention scores: per (batch, head): seq x head_dim @ head_dim x seq.
        TinyBertMatMul {
            role: "scores",
            problem: MatMulProblem::new(SEQ, SEQ, HEAD_DIM),
            count: (BATCH * HEADS) as u64 * l,
        },
        // Attention context: per (batch, head): seq x seq @ seq x head_dim.
        TinyBertMatMul {
            role: "context",
            problem: MatMulProblem::new(SEQ, HEAD_DIM, SEQ),
            count: (BATCH * HEADS) as u64 * l,
        },
        // Attention output projection.
        TinyBertMatMul {
            role: "attn_out",
            problem: MatMulProblem::new(TOKENS, HIDDEN, HIDDEN),
            count: l,
        },
        // FFN up and down projections.
        TinyBertMatMul {
            role: "ffn_up",
            problem: MatMulProblem::new(TOKENS, FFN, HIDDEN),
            count: l,
        },
        TinyBertMatMul {
            role: "ffn_down",
            problem: MatMulProblem::new(TOKENS, HIDDEN, FFN),
            count: l,
        },
    ]
}

/// Total MatMul MACs of one forward pass.
pub fn total_macs() -> u64 {
    tinybert_matmuls().iter().map(|m| m.problem.macs() * m.count).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_covers_the_model() {
        let inv = tinybert_matmuls();
        assert_eq!(inv.len(), 6);
        let qkv = inv.iter().find(|m| m.role == "qkv").unwrap();
        assert_eq!(qkv.count, 12, "3 projections x 4 layers");
        let scores = inv.iter().find(|m| m.role == "scores").unwrap();
        assert_eq!(scores.count, 2 * 12 * 4);
    }

    #[test]
    fn every_dimension_is_16_divisible() {
        for m in tinybert_matmuls() {
            assert_eq!(m.problem.m % 16, 0, "{}: m", m.role);
            assert_eq!(m.problem.n % 16, 0, "{}: n", m.role);
            assert_eq!(m.problem.k % 16, 0, "{}: k", m.role);
        }
    }

    #[test]
    fn total_macs_is_gemm_scale() {
        // Order of magnitude: a few hundred MMACs for the padded model.
        let macs = total_macs();
        assert!(macs > 100_000_000, "{macs}");
        assert!(macs < 5_000_000_000, "{macs}");
    }
}
