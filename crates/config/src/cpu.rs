//! Host CPU description (the `"cpu"` entry of Fig. 5).

use serde::{Deserialize, Serialize};

/// Host CPU cache information used by the tiling heuristics.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Capacity of each cache level in bytes, innermost first.
    #[serde(rename = "cache-levels", deserialize_with = "crate::json::de_sizes")]
    pub cache_levels: Vec<u64>,
    /// Kind of each level (`"data"`, `"shared"`, ...).
    #[serde(rename = "cache-types", default)]
    pub cache_types: Vec<String>,
}

impl CpuSpec {
    /// The paper's host: ARM Cortex-A9 with 32 KiB L1D and 512 KiB shared
    /// L2 (Fig. 5 line 1).
    pub fn pynq_z2() -> Self {
        Self {
            cache_levels: vec![32 * 1024, 512 * 1024],
            cache_types: vec!["data".to_owned(), "shared".to_owned()],
        }
    }

    /// L1 data-cache capacity in bytes.
    pub fn l1_bytes(&self) -> u64 {
        self.cache_levels.first().copied().unwrap_or(32 * 1024)
    }

    /// Last-level cache capacity in bytes.
    pub fn llc_bytes(&self) -> u64 {
        self.cache_levels.last().copied().unwrap_or(512 * 1024)
    }
}

impl Default for CpuSpec {
    fn default() -> Self {
        Self::pynq_z2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pynq_levels() {
        let c = CpuSpec::pynq_z2();
        assert_eq!(c.l1_bytes(), 32 * 1024);
        assert_eq!(c.llc_bytes(), 512 * 1024);
        assert_eq!(c.cache_types, vec!["data", "shared"]);
        assert_eq!(CpuSpec::default(), c);
    }

    #[test]
    fn json_roundtrip_with_size_suffixes() {
        let json = r#"{"cache-levels": ["32K", "512K"], "cache-types": ["data", "shared"]}"#;
        let c: CpuSpec = serde_json::from_str(json).unwrap();
        assert_eq!(c, CpuSpec::pynq_z2());
        let numeric = r#"{"cache-levels": [32768, 524288]}"#;
        let c2: CpuSpec = serde_json::from_str(numeric).unwrap();
        assert_eq!(c2.l1_bytes(), 32768);
        assert!(c2.cache_types.is_empty());
    }
}
