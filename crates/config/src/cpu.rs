//! Host CPU description (the `"cpu"` entry of Fig. 5).

use axi4mlir_support::diag::Diagnostic;
use axi4mlir_support::json::JsonValue;

/// Host CPU cache information used by the tiling heuristics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CpuSpec {
    /// Capacity of each cache level in bytes, innermost first.
    pub cache_levels: Vec<u64>,
    /// Kind of each level (`"data"`, `"shared"`, ...).
    pub cache_types: Vec<String>,
}

impl CpuSpec {
    /// The paper's host: ARM Cortex-A9 with 32 KiB L1D and 512 KiB shared
    /// L2 (Fig. 5 line 1).
    pub fn pynq_z2() -> Self {
        Self {
            cache_levels: vec![32 * 1024, 512 * 1024],
            cache_types: vec!["data".to_owned(), "shared".to_owned()],
        }
    }

    /// Reads the `"cpu"` object of a configuration document.
    ///
    /// `"cache-levels"` accepts integers or `"32K"`-style strings;
    /// `"cache-types"` is optional.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] for missing or ill-typed members.
    pub fn from_value(value: &JsonValue) -> Result<CpuSpec, Diagnostic> {
        let levels_value = value
            .get("cache-levels")
            .ok_or_else(|| Diagnostic::error("cpu: missing field `cache-levels`"))?;
        let cache_levels = crate::json::sizes_from(levels_value, "cache-levels")?;
        let cache_types = match value.get("cache-types") {
            None => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or_else(|| Diagnostic::error("cpu: `cache-types` must be an array"))?
                .iter()
                .map(|t| {
                    t.as_str().map(str::to_owned).ok_or_else(|| {
                        Diagnostic::error("cpu: `cache-types` entries must be strings")
                    })
                })
                .collect::<Result<_, _>>()?,
        };
        Ok(CpuSpec { cache_levels, cache_types })
    }

    /// Parses a stand-alone `"cpu"` JSON object.
    ///
    /// # Errors
    ///
    /// See [`CpuSpec::from_value`]; JSON syntax errors are also reported.
    pub fn from_json(text: &str) -> Result<CpuSpec, Diagnostic> {
        Self::from_value(&JsonValue::parse(text)?)
    }

    /// L1 data-cache capacity in bytes.
    pub fn l1_bytes(&self) -> u64 {
        self.cache_levels.first().copied().unwrap_or(32 * 1024)
    }

    /// Last-level cache capacity in bytes.
    pub fn llc_bytes(&self) -> u64 {
        self.cache_levels.last().copied().unwrap_or(512 * 1024)
    }
}

impl Default for CpuSpec {
    fn default() -> Self {
        Self::pynq_z2()
    }
}

/// A *named* host CPU the design-space explorer can enumerate.
///
/// [`CpuSpec`] is free-form (any cache hierarchy parses from JSON); the
/// explorer instead sweeps this closed set of named hosts so candidate
/// keys stay stable strings that round-trip through the persistent
/// result cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum CpuModel {
    /// The paper's PYNQ-Z2 host: Cortex-A9, 32 KiB L1D + 512 KiB shared
    /// L2 (Fig. 5 line 1). The default everywhere.
    #[default]
    PynqZ2,
    /// A ZCU102-class host: Cortex-A53, 32 KiB L1D + 1 MiB shared L2.
    Zcu102,
    /// A desktop-class host: 64 KiB L1D + 8 MiB LLC — twice the L1
    /// budget, so the auto cache-tiling heuristic picks larger edges.
    Desktop,
}

impl CpuModel {
    /// Every named host, default first.
    pub fn all() -> [CpuModel; 3] {
        [CpuModel::PynqZ2, CpuModel::Zcu102, CpuModel::Desktop]
    }

    /// The stable label persisted in candidate keys.
    pub fn label(&self) -> &'static str {
        match self {
            CpuModel::PynqZ2 => "pynq_z2",
            CpuModel::Zcu102 => "zcu102",
            CpuModel::Desktop => "desktop",
        }
    }

    /// Parses a [`Self::label`]-formatted name back into a model.
    pub fn parse(text: &str) -> Option<CpuModel> {
        CpuModel::all().into_iter().find(|m| m.label() == text)
    }

    /// The cache hierarchy this named host describes.
    pub fn spec(&self) -> CpuSpec {
        match self {
            CpuModel::PynqZ2 => CpuSpec::pynq_z2(),
            CpuModel::Zcu102 => CpuSpec {
                cache_levels: vec![32 * 1024, 1024 * 1024],
                cache_types: vec!["data".to_owned(), "shared".to_owned()],
            },
            CpuModel::Desktop => CpuSpec {
                cache_levels: vec![64 * 1024, 8 * 1024 * 1024],
                cache_types: vec!["data".to_owned(), "shared".to_owned()],
            },
        }
    }
}

impl std::fmt::Display for CpuModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pynq_levels() {
        let c = CpuSpec::pynq_z2();
        assert_eq!(c.l1_bytes(), 32 * 1024);
        assert_eq!(c.llc_bytes(), 512 * 1024);
        assert_eq!(c.cache_types, vec!["data", "shared"]);
        assert_eq!(CpuSpec::default(), c);
    }

    #[test]
    fn json_parsing_with_size_suffixes() {
        let json = r#"{"cache-levels": ["32K", "512K"], "cache-types": ["data", "shared"]}"#;
        let c = CpuSpec::from_json(json).unwrap();
        assert_eq!(c, CpuSpec::pynq_z2());
        let numeric = r#"{"cache-levels": [32768, 524288]}"#;
        let c2 = CpuSpec::from_json(numeric).unwrap();
        assert_eq!(c2.l1_bytes(), 32768);
        assert!(c2.cache_types.is_empty());
    }

    #[test]
    fn cpu_model_labels_round_trip() {
        for model in CpuModel::all() {
            assert_eq!(CpuModel::parse(model.label()), Some(model));
        }
        assert_eq!(CpuModel::parse("cortex_m0"), None);
        assert_eq!(CpuModel::default(), CpuModel::PynqZ2);
        assert_eq!(CpuModel::PynqZ2.spec(), CpuSpec::pynq_z2());
        // The desktop host doubles the L1 budget the tiling heuristic sees.
        assert_eq!(CpuModel::Desktop.spec().l1_bytes(), 2 * CpuModel::Zcu102.spec().l1_bytes());
    }

    #[test]
    fn bad_documents_are_rejected() {
        assert!(CpuSpec::from_json(r#"{"cache-types": ["data"]}"#).is_err());
        assert!(CpuSpec::from_json(r#"{"cache-levels": ["huge"]}"#).is_err());
        assert!(CpuSpec::from_json(r#"{"cache-levels": 32768}"#).is_err());
    }
}
