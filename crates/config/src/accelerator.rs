//! The validated accelerator description.

use std::collections::{BTreeMap, BTreeSet};

use axi4mlir_ir::affine::{AffineExpr, AffineMap};
use axi4mlir_ir::attrs::{Attribute, FlowElem, OpcodeAction, OpcodeFlow, OpcodeMap};
use axi4mlir_support::diag::Diagnostic;

/// Kernels AXI4MLIR can offload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// `linalg.matmul` / matmul-traited `linalg.generic`.
    MatMul,
    /// `linalg.conv_2d_nchw_fchw`.
    Conv2dNchwFchw,
}

impl KernelKind {
    /// The MLIR op name the configuration's `"kernel"` field uses.
    pub fn op_name(self) -> &'static str {
        match self {
            KernelKind::MatMul => "linalg.matmul",
            KernelKind::Conv2dNchwFchw => "linalg.conv_2d_nchw_fchw",
        }
    }

    /// Parses the `"kernel"` field.
    pub fn from_op_name(name: &str) -> Option<Self> {
        match name {
            "linalg.matmul" => Some(KernelKind::MatMul),
            "linalg.conv_2d_nchw_fchw" => Some(KernelKind::Conv2dNchwFchw),
            _ => None,
        }
    }
}

/// The `dma_config` entry (Fig. 6a `dma_init_config`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DmaInfo {
    /// DMA engine id.
    pub id: u32,
    /// Device-space address of the input staging buffer.
    pub input_address: u64,
    /// Input staging capacity in bytes.
    pub input_buffer_size: u64,
    /// Device-space address of the output staging buffer.
    pub output_address: u64,
    /// Output staging capacity in bytes.
    pub output_buffer_size: u64,
}

impl Default for DmaInfo {
    fn default() -> Self {
        // The Fig. 6a example values: 0xFF00-byte buffers.
        Self {
            id: 0,
            input_address: 0x42,
            input_buffer_size: 0xFF00,
            output_address: 0xFF42,
            output_buffer_size: 0xFF00,
        }
    }
}

/// A fully described accelerator: the in-memory form of one entry of the
/// Fig. 5 `"accelerators"` array.
#[derive(Clone, Debug, PartialEq)]
pub struct AcceleratorConfig {
    /// Accelerator name (`v3_16`, `conv2d`, ...).
    pub name: String,
    /// Which kernel it implements.
    pub kernel: KernelKind,
    /// DMA configuration.
    pub dma: DmaInfo,
    /// Loop dimension names, outermost problem order (e.g. `m, n, k`).
    pub dims: Vec<String>,
    /// Tile size per dimension (`0` = dimension is not tiled; Fig. 15a).
    pub accel_dims: Vec<i64>,
    /// Data arguments in operand order: `(name, dims each uses)`
    /// (Fig. 5: `"data": {"A": [m,k], "B": [k,n], "C": [m,n]}`).
    pub data: Vec<(String, Vec<String>)>,
    /// Element type name (`"int32"`).
    pub data_type: String,
    /// The micro-ISA description.
    pub opcode_map: OpcodeMap,
    /// Named legal flows (Fig. 5 `opcode_flow_map`).
    pub flows: Vec<(String, OpcodeFlow)>,
    /// Key into `flows` to use.
    pub selected_flow: String,
    /// Opcodes sent once per kernel launch (Fig. 6a `init_opcodes`).
    pub init_opcodes: Vec<String>,
}

impl AcceleratorConfig {
    /// The flow selected by `selected_flow`.
    ///
    /// # Panics
    ///
    /// Panics if the config was not validated and the key is missing.
    pub fn selected(&self) -> &OpcodeFlow {
        self.flow(&self.selected_flow).expect("selected_flow must name a defined flow")
    }

    /// Looks up a flow by name.
    pub fn flow(&self, name: &str) -> Option<&OpcodeFlow> {
        self.flows.iter().find(|(n, _)| n == name).map(|(_, f)| f)
    }

    /// Selects a different flow (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the flow is not defined.
    #[must_use]
    pub fn with_selected_flow(mut self, name: &str) -> Self {
        assert!(self.flow(name).is_some(), "flow `{name}` is not defined for {}", self.name);
        self.selected_flow = name.to_owned();
        self
    }

    /// Index of a data argument by name.
    pub fn arg_index(&self, name: &str) -> Option<usize> {
        self.data.iter().position(|(n, _)| n == name)
    }

    /// The set of loop dimensions an opcode's data arguments touch; used by
    /// flow placement to decide the loop depth of each opcode.
    pub fn opcode_dims(&self, opcode: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let Some(actions) = self.opcode_map.get(opcode) else { return out };
        for action in actions {
            match action {
                OpcodeAction::Send { arg } | OpcodeAction::Recv { arg } => {
                    if let Some((_, dims)) = self.data.get(*arg as usize) {
                        out.extend(dims.iter().cloned());
                    }
                }
                OpcodeAction::SendIdx { dim } => {
                    out.insert(dim.clone());
                }
                OpcodeAction::SendLiteral { .. } | OpcodeAction::SendDim { .. } => {}
            }
        }
        out
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Reports the first of: dimension-count mismatches, flows referencing
    /// unknown opcodes, actions referencing out-of-range arguments,
    /// `send_idx` naming unknown dims, missing selected flow, or unknown
    /// init opcodes.
    pub fn validate(&self) -> Result<(), Diagnostic> {
        if self.dims.len() != self.accel_dims.len() {
            return Err(Diagnostic::error(format!(
                "accelerator {}: {} dims but {} accel_dim entries",
                self.name,
                self.dims.len(),
                self.accel_dims.len()
            )));
        }
        for (arg, dims) in &self.data {
            for d in dims {
                if !self.dims.contains(d) {
                    return Err(Diagnostic::error(format!(
                        "accelerator {}: data argument {arg} uses unknown dim `{d}`",
                        self.name
                    )));
                }
            }
        }
        for (_, actions) in self.opcode_map.iter().map(|(n, a)| (n.to_owned(), a)) {
            for action in actions {
                match action {
                    OpcodeAction::Send { arg }
                    | OpcodeAction::Recv { arg }
                    | OpcodeAction::SendDim { arg, .. } => {
                        if *arg as usize >= self.data.len() {
                            return Err(Diagnostic::error(format!(
                                "accelerator {}: action {action} references argument {arg} but only {} data arguments exist",
                                self.name,
                                self.data.len()
                            )));
                        }
                    }
                    OpcodeAction::SendIdx { dim } => {
                        if !self.dims.contains(dim) {
                            return Err(Diagnostic::error(format!(
                                "accelerator {}: send_idx references unknown dim `{dim}`",
                                self.name
                            )));
                        }
                    }
                    OpcodeAction::SendLiteral { .. } => {}
                }
            }
        }
        for (flow_name, flow) in &self.flows {
            for opcode in flow.opcode_names() {
                if self.opcode_map.get(opcode).is_none() {
                    return Err(Diagnostic::error(format!(
                        "accelerator {}: flow `{flow_name}` references undefined opcode `{opcode}`",
                        self.name
                    )));
                }
            }
        }
        if self.flow(&self.selected_flow).is_none() {
            return Err(Diagnostic::error(format!(
                "accelerator {}: selected_flow `{}` is not defined",
                self.name, self.selected_flow
            )));
        }
        for opcode in &self.init_opcodes {
            if self.opcode_map.get(opcode).is_none() {
                return Err(Diagnostic::error(format!(
                    "accelerator {}: init opcode `{opcode}` is not defined",
                    self.name
                )));
            }
        }
        Ok(())
    }

    /// The `accel_dim` affine map of Fig. 6a:
    /// `map<(m, n, k) -> (4, 4, 4)>`.
    pub fn accel_dim_map(&self) -> AffineMap {
        AffineMap::new(
            self.dims.clone(),
            self.accel_dims.iter().map(|t| AffineExpr::Const(*t)).collect(),
        )
    }

    /// Builds the Fig. 6a trait-attribute dictionary to annotate a matched
    /// `linalg` op with (compiler flow step 3), including the selected flow
    /// and a `permutation_map` if `permutation` is given (outermost-first
    /// dim names).
    pub fn to_trait_attrs(&self, permutation: Option<&[&str]>) -> BTreeMap<String, Attribute> {
        let mut attrs = BTreeMap::new();
        let mut dma = BTreeMap::new();
        dma.insert("id".to_owned(), Attribute::Int(i64::from(self.dma.id)));
        dma.insert("inputAddress".to_owned(), Attribute::Int(self.dma.input_address as i64));
        dma.insert("inputBufferSize".to_owned(), Attribute::Int(self.dma.input_buffer_size as i64));
        dma.insert("outputAddress".to_owned(), Attribute::Int(self.dma.output_address as i64));
        dma.insert(
            "outputBufferSize".to_owned(),
            Attribute::Int(self.dma.output_buffer_size as i64),
        );
        attrs.insert("dma_init_config".to_owned(), Attribute::Dict(dma));
        attrs.insert(
            "init_opcodes".to_owned(),
            Attribute::Flow(OpcodeFlow::new(
                self.init_opcodes.iter().map(|n| FlowElem::Opcode(n.clone())).collect(),
            )),
        );
        attrs.insert("accel_dim".to_owned(), Attribute::Map(self.accel_dim_map()));
        if let Some(perm) = permutation {
            let results = perm
                .iter()
                .map(|name| {
                    let idx = self
                        .dims
                        .iter()
                        .position(|d| d == name)
                        .expect("permutation must use configured dims");
                    AffineExpr::Dim(idx)
                })
                .collect();
            attrs.insert(
                "permutation_map".to_owned(),
                Attribute::Map(AffineMap::new(self.dims.clone(), results)),
            );
        }
        attrs.insert("opcode_map".to_owned(), Attribute::Opcodes(self.opcode_map.clone()));
        attrs.insert("opcode_flow".to_owned(), Attribute::Flow(self.selected().clone()));
        attrs.insert("accel_name".to_owned(), Attribute::Str(self.name.clone()));
        attrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::AcceleratorPreset;

    fn v3() -> AcceleratorConfig {
        AcceleratorConfig::preset(AcceleratorPreset::V3 { size: 8 })
    }

    #[test]
    fn kernel_names_roundtrip() {
        for k in [KernelKind::MatMul, KernelKind::Conv2dNchwFchw] {
            assert_eq!(KernelKind::from_op_name(k.op_name()), Some(k));
        }
        assert_eq!(KernelKind::from_op_name("linalg.fill"), None);
    }

    #[test]
    fn presets_validate() {
        v3().validate().unwrap();
    }

    #[test]
    fn opcode_dims_union_argument_dims() {
        let cfg = v3();
        let sa = cfg.opcode_dims("sA");
        assert_eq!(sa, BTreeSet::from(["m".to_owned(), "k".to_owned()]));
        let rc = cfg.opcode_dims("rC");
        assert_eq!(rc, BTreeSet::from(["m".to_owned(), "n".to_owned()]));
        assert!(cfg.opcode_dims("cC").is_empty(), "compute-only opcode touches no data dims");
    }

    #[test]
    fn with_selected_flow_switches() {
        let cfg = v3().with_selected_flow("Cs");
        assert_eq!(cfg.selected_flow, "Cs");
        assert_eq!(cfg.selected().depth(), 2);
    }

    #[test]
    #[should_panic(expected = "not defined")]
    fn unknown_flow_panics() {
        let _ = v3().with_selected_flow("Zs");
    }

    #[test]
    fn validation_catches_bad_flow_reference() {
        let mut cfg = v3();
        cfg.flows.push((
            "broken".to_owned(),
            OpcodeFlow::new(vec![FlowElem::Opcode("nope".to_owned())]),
        ));
        let err = cfg.validate().unwrap_err();
        assert!(err.message.contains("undefined opcode `nope`"));
    }

    #[test]
    fn validation_catches_out_of_range_arg() {
        let mut cfg = v3();
        cfg.data.truncate(1);
        let err = cfg.validate().unwrap_err();
        assert!(err.message.contains("references argument"));
    }

    #[test]
    fn validation_catches_missing_selected_flow() {
        let mut cfg = v3();
        cfg.selected_flow = "missing".to_owned();
        let err = cfg.validate().unwrap_err();
        assert!(err.message.contains("selected_flow"));
    }

    #[test]
    fn trait_attrs_match_fig6a_shape() {
        let cfg = v3();
        let attrs = cfg.to_trait_attrs(Some(&["m", "k", "n"]));
        assert!(attrs.contains_key("dma_init_config"));
        assert!(attrs.contains_key("init_opcodes"));
        let accel_dim = attrs["accel_dim"].as_map().unwrap();
        assert_eq!(accel_dim.eval(&[0, 0, 0]), vec![8, 8, 8]);
        let perm = attrs["permutation_map"].as_map().unwrap();
        assert_eq!(perm.as_permutation(), Some(vec![0, 2, 1]), "(m,n,k) -> (m,k,n)");
        assert!(attrs["opcode_map"].as_opcodes().is_some());
        assert!(attrs["opcode_flow"].as_flow().is_some());
    }

    #[test]
    fn accel_dim_map_prints_like_paper() {
        let cfg = AcceleratorConfig::preset(AcceleratorPreset::V3 { size: 4 });
        assert_eq!(cfg.accel_dim_map().to_string(), "(m, n, k) -> (4, 4, 4)");
    }
}
