//! Dataflow (stationarity) strategies.

use std::fmt;

/// Which operand stays resident in the accelerator across inner-loop
/// iterations — the paper's Ns / As / Bs / Cs strategies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FlowStrategy {
    /// Nothing stationary: all transfers in the innermost loop.
    NothingStationary,
    /// Input A stationary.
    InputAStationary,
    /// Input B stationary.
    InputBStationary,
    /// Output C stationary (accumulate in the accelerator).
    OutputStationary,
}

impl FlowStrategy {
    /// The figure label: `Ns`, `As`, `Bs`, or `Cs`.
    pub fn short_name(self) -> &'static str {
        match self {
            FlowStrategy::NothingStationary => "Ns",
            FlowStrategy::InputAStationary => "As",
            FlowStrategy::InputBStationary => "Bs",
            FlowStrategy::OutputStationary => "Cs",
        }
    }

    /// All strategies in figure order.
    pub fn all() -> [FlowStrategy; 4] {
        [
            FlowStrategy::NothingStationary,
            FlowStrategy::InputAStationary,
            FlowStrategy::InputBStationary,
            FlowStrategy::OutputStationary,
        ]
    }

    /// Parses a figure label.
    pub fn from_short_name(name: &str) -> Option<FlowStrategy> {
        Self::all().into_iter().find(|s| s.short_name() == name)
    }

    /// The MatMul loop permutation that makes this strategy legal: the
    /// stationary operand's dimensions must not be iterated by the
    /// innermost loop(s).
    ///
    /// Returns dimension names outermost-first over `(m, n, k)`.
    pub fn matmul_permutation(self) -> [&'static str; 3] {
        match self {
            // Ns: any order works; keep the natural (m, n, k).
            FlowStrategy::NothingStationary => ["m", "n", "k"],
            // As: A[m,k] stationary => innermost loop must be n.
            FlowStrategy::InputAStationary => ["m", "k", "n"],
            // Bs: B[k,n] stationary => innermost loop must be m.
            FlowStrategy::InputBStationary => ["k", "n", "m"],
            // Cs: C[m,n] stationary => innermost loop must be k.
            FlowStrategy::OutputStationary => ["m", "n", "k"],
        }
    }
}

impl fmt::Display for FlowStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for s in FlowStrategy::all() {
            assert_eq!(FlowStrategy::from_short_name(s.short_name()), Some(s));
        }
        assert_eq!(FlowStrategy::from_short_name("Xs"), None);
        assert_eq!(FlowStrategy::OutputStationary.to_string(), "Cs");
    }

    #[test]
    fn permutations_keep_stationary_dims_out_of_innermost() {
        // As: innermost must not index m or k.
        assert_eq!(FlowStrategy::InputAStationary.matmul_permutation()[2], "n");
        // Bs: innermost must not index k or n.
        assert_eq!(FlowStrategy::InputBStationary.matmul_permutation()[2], "m");
        // Cs: innermost must not index m or n.
        assert_eq!(FlowStrategy::OutputStationary.matmul_permutation()[2], "k");
    }
}
