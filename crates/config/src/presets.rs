//! Ready-made configurations for the paper's accelerators.
//!
//! Opcode literals follow Fig. 6a / Fig. 15a and the
//! `axi4mlir-accelerators` micro-ISA. Each preset ships every flow its
//! Table I reuse class legalizes:
//!
//! | preset | flows |
//! |--------|-------|
//! | v1     | Ns |
//! | v2     | Ns, As, Bs |
//! | v3     | Ns, As, Bs, Cs |
//! | v4     | Ns, As, Bs, Cs + runtime tile configuration |
//! | conv2d | filter+output stationary (Fig. 15a) |

use axi4mlir_ir::attrs::{OpcodeFlow, OpcodeMap};

use crate::accelerator::{AcceleratorConfig, DmaInfo, KernelKind};

/// Selects one of the paper's accelerators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcceleratorPreset {
    /// Table I v1 (no reuse) with square tile `size`.
    V1 {
        /// Base tile size (4, 8, or 16 in the paper).
        size: i64,
    },
    /// Table I v2 (input reuse).
    V2 {
        /// Base tile size.
        size: i64,
    },
    /// Table I v3 (input + output reuse).
    V3 {
        /// Base tile size.
        size: i64,
    },
    /// Table I v4 (flexible tile shapes); tile defaults to square `size`,
    /// adjustable with [`AcceleratorConfig::preset_v4_with_tile`].
    V4 {
        /// Base (divisibility) tile size.
        size: i64,
    },
    /// The §IV-D Conv2D accelerator, configured for `ic` input channels and
    /// a square `fhw` filter.
    Conv2d {
        /// Input channels per window.
        ic: i64,
        /// Filter height/width.
        fhw: i64,
    },
}

fn parse_map(text: &str) -> OpcodeMap {
    OpcodeMap::parse(text).expect("preset opcode_map must parse")
}

fn parse_flow(text: &str) -> OpcodeFlow {
    OpcodeFlow::parse(text).expect("preset opcode_flow must parse")
}

fn matmul_dims() -> Vec<String> {
    vec!["m".to_owned(), "n".to_owned(), "k".to_owned()]
}

fn matmul_data() -> Vec<(String, Vec<String>)> {
    vec![
        ("A".to_owned(), vec!["m".to_owned(), "k".to_owned()]),
        ("B".to_owned(), vec!["k".to_owned(), "n".to_owned()]),
        ("C".to_owned(), vec!["m".to_owned(), "n".to_owned()]),
    ]
}

impl AcceleratorConfig {
    /// Builds the configuration for a preset accelerator.
    pub fn preset(preset: AcceleratorPreset) -> AcceleratorConfig {
        match preset {
            AcceleratorPreset::V1 { size } => Self::v1(size),
            AcceleratorPreset::V2 { size } => Self::v2(size),
            AcceleratorPreset::V3 { size } => Self::v3(size),
            AcceleratorPreset::V4 { size } => Self::preset_v4_with_tile(size, size, size, size),
            AcceleratorPreset::Conv2d { ic, fhw } => Self::conv2d(ic, fhw),
        }
    }

    fn v1(size: i64) -> AcceleratorConfig {
        let cfg = AcceleratorConfig {
            name: format!("v1_{size}"),
            kernel: KernelKind::MatMul,
            dma: DmaInfo::default(),
            dims: matmul_dims(),
            accel_dims: vec![size, size, size],
            data: matmul_data(),
            data_type: "int32".to_owned(),
            opcode_map: parse_map(
                "opcode_map<sAsBcCrC = [send_literal(0x20), send(0), send(1), recv(2)], \
                 reset = [send_literal(0xFF)]>",
            ),
            flows: vec![("Ns".to_owned(), parse_flow("(sAsBcCrC)"))],
            selected_flow: "Ns".to_owned(),
            init_opcodes: vec!["reset".to_owned()],
        };
        cfg.validate().expect("v1 preset is well-formed");
        cfg
    }

    fn v2(size: i64) -> AcceleratorConfig {
        let cfg = AcceleratorConfig {
            name: format!("v2_{size}"),
            kernel: KernelKind::MatMul,
            dma: DmaInfo::default(),
            dims: matmul_dims(),
            accel_dims: vec![size, size, size],
            data: matmul_data(),
            data_type: "int32".to_owned(),
            opcode_map: parse_map(
                "opcode_map<sA = [send_literal(0x22), send(0)], \
                 sB = [send_literal(0x23), send(1)], \
                 cCrC = [send_literal(0x27), recv(2)], \
                 sBcCrC = [send_literal(0x25), send(1), recv(2)], \
                 sAcCrC = [send_literal(0x26), send(0), recv(2)], \
                 reset = [send_literal(0xFF)]>",
            ),
            flows: vec![
                ("Ns".to_owned(), parse_flow("(sA sB cCrC)")),
                ("As".to_owned(), parse_flow("(sA (sBcCrC))")),
                ("Bs".to_owned(), parse_flow("(sB (sAcCrC))")),
            ],
            selected_flow: "Ns".to_owned(),
            init_opcodes: vec!["reset".to_owned()],
        };
        cfg.validate().expect("v2 preset is well-formed");
        cfg
    }

    fn v3_like(name: String, size: i64) -> AcceleratorConfig {
        AcceleratorConfig {
            name,
            kernel: KernelKind::MatMul,
            dma: DmaInfo::default(),
            dims: matmul_dims(),
            accel_dims: vec![size, size, size],
            data: matmul_data(),
            data_type: "int32".to_owned(),
            opcode_map: parse_map(
                "opcode_map<sA = [send_literal(0x22), send(0)], \
                 sB = [send_literal(0x23), send(1)], \
                 cC = [send_literal(0xF0)], \
                 rC = [send_literal(0x24), recv(2)], \
                 reset = [send_literal(0xFF)]>",
            ),
            flows: vec![
                ("Ns".to_owned(), parse_flow("(sA sB cC rC)")),
                ("As".to_owned(), parse_flow("(sA (sB cC rC))")),
                ("Bs".to_owned(), parse_flow("(sB (sA cC rC))")),
                ("Cs".to_owned(), parse_flow("((sA sB cC) rC)")),
            ],
            selected_flow: "Ns".to_owned(),
            init_opcodes: vec!["reset".to_owned()],
        }
    }

    fn v3(size: i64) -> AcceleratorConfig {
        let cfg = Self::v3_like(format!("v3_{size}"), size);
        cfg.validate().expect("v3 preset is well-formed");
        cfg
    }

    /// A v4 accelerator with base `size` (divisibility constraint) and the
    /// given tile shape. The tile-shape configuration instruction
    /// (`0x30 tM tN tK`) is prepended to the per-kernel `init_opcodes`.
    pub fn preset_v4_with_tile(size: i64, tm: i64, tn: i64, tk: i64) -> AcceleratorConfig {
        let mut cfg = Self::v3_like(format!("v4_{size}"), size);
        cfg.accel_dims = vec![tm, tn, tk];
        let mut entries: Vec<(String, Vec<axi4mlir_ir::attrs::OpcodeAction>)> =
            cfg.opcode_map.iter().map(|(n, a)| (n.to_owned(), a.to_vec())).collect();
        entries.push((
            "cfg".to_owned(),
            OpcodeMap::parse(&format!(
                "opcode_map<cfg = [send_literal(0x30), send_literal({tm}), send_literal({tn}), send_literal({tk})]>"
            ))
            .expect("cfg opcode parses")
            .get("cfg")
            .expect("cfg present")
            .to_vec(),
        ));
        cfg.opcode_map = OpcodeMap::new(entries).expect("unique opcode names");
        cfg.init_opcodes = vec!["reset".to_owned(), "cfg".to_owned()];
        cfg.validate().expect("v4 preset is well-formed");
        cfg
    }

    fn conv2d(ic: i64, fhw: i64) -> AcceleratorConfig {
        let dims: Vec<String> =
            ["b", "h", "w", "ic", "oc", "fh", "fw"].iter().map(|s| (*s).to_owned()).collect();
        let cfg = AcceleratorConfig {
            name: "conv2d".to_owned(),
            kernel: KernelKind::Conv2dNchwFchw,
            dma: DmaInfo::default(),
            dims,
            // Fig. 15a: (B,H,W,iC,oC,fH,fW) -> (0,0,0,ic,1,fhw,fhw).
            accel_dims: vec![0, 0, 0, ic, 1, fhw, fhw],
            data: vec![
                (
                    "I".to_owned(),
                    vec!["b".to_owned(), "ic".to_owned(), "h".to_owned(), "w".to_owned()],
                ),
                (
                    "W".to_owned(),
                    vec!["oc".to_owned(), "ic".to_owned(), "fh".to_owned(), "fw".to_owned()],
                ),
                (
                    "O".to_owned(),
                    vec!["b".to_owned(), "oc".to_owned(), "h".to_owned(), "w".to_owned()],
                ),
            ],
            data_type: "int32".to_owned(),
            opcode_map: parse_map(
                "opcode_map<sIcO = [send_literal(70), send(0)], \
                 sF = [send_literal(1), send(1)], \
                 rO = [send_literal(8), recv(2)], \
                 rst = [send_literal(32), send_dim(1, 3), send_literal(16), send_dim(0, 1)]>",
            ),
            flows: vec![("FOs".to_owned(), parse_flow("(sF (sIcO) rO)"))],
            selected_flow: "FOs".to_owned(),
            init_opcodes: vec!["rst".to_owned()],
        };
        cfg.validate().expect("conv preset is well-formed");
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowStrategy;

    #[test]
    fn all_presets_validate() {
        for preset in [
            AcceleratorPreset::V1 { size: 4 },
            AcceleratorPreset::V2 { size: 8 },
            AcceleratorPreset::V3 { size: 16 },
            AcceleratorPreset::V4 { size: 16 },
            AcceleratorPreset::Conv2d { ic: 256, fhw: 3 },
        ] {
            let cfg = AcceleratorConfig::preset(preset);
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn v1_offers_only_nothing_stationary() {
        let cfg = AcceleratorConfig::preset(AcceleratorPreset::V1 { size: 4 });
        assert_eq!(cfg.flows.len(), 1);
        assert_eq!(cfg.flows[0].0, "Ns");
        assert_eq!(cfg.name, "v1_4");
    }

    #[test]
    fn v2_offers_input_stationary_flows() {
        let cfg = AcceleratorConfig::preset(AcceleratorPreset::V2 { size: 8 });
        let names: Vec<&str> = cfg.flows.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Ns", "As", "Bs"]);
        assert_eq!(cfg.flow("As").unwrap().depth(), 2);
    }

    #[test]
    fn v3_flows_match_paper_examples() {
        let cfg = AcceleratorConfig::preset(AcceleratorPreset::V3 { size: 8 });
        for s in FlowStrategy::all() {
            assert!(cfg.flow(s.short_name()).is_some(), "v3 must offer {s}");
        }
        // Fig. 6a L23: (sA (sB cC rC)) is the A-stationary flow.
        assert_eq!(cfg.flow("As").unwrap().to_string(), "opcode_flow<(sA (sB cC rC))>");
        // Fig. 6a L24: ((sA sB cC) rC) is the C-stationary flow.
        assert_eq!(cfg.flow("Cs").unwrap().to_string(), "opcode_flow<((sA sB cC) rC)>");
    }

    #[test]
    fn v4_tile_configuration_lands_in_init_opcodes() {
        let cfg = AcceleratorConfig::preset_v4_with_tile(16, 32, 16, 64);
        assert_eq!(cfg.accel_dims, vec![32, 16, 64]);
        assert_eq!(cfg.init_opcodes, vec!["reset", "cfg"]);
        let actions = cfg.opcode_map.get("cfg").unwrap();
        assert_eq!(actions.len(), 4);
        assert_eq!(actions[1], axi4mlir_ir::attrs::OpcodeAction::SendLiteral { value: 32 });
    }

    #[test]
    fn conv_preset_matches_fig15a() {
        let cfg = AcceleratorConfig::preset(AcceleratorPreset::Conv2d { ic: 256, fhw: 3 });
        assert_eq!(cfg.accel_dims, vec![0, 0, 0, 256, 1, 3, 3]);
        assert_eq!(cfg.selected().to_string(), "opcode_flow<(sF (sIcO) rO)>");
        let rst = cfg.opcode_map.get("rst").unwrap();
        assert_eq!(rst.len(), 4);
        assert_eq!(cfg.init_opcodes, vec!["rst"]);
    }

    #[test]
    fn opcode_literals_agree_with_accelerator_isa() {
        // The preset literals must match the micro-ISA the accelerator
        // models decode, or every end-to-end run would hang.
        let cfg = AcceleratorConfig::preset(AcceleratorPreset::V3 { size: 8 });
        let first_action = |name: &str| cfg.opcode_map.get(name).unwrap()[0].clone();
        assert_eq!(
            first_action("sA"),
            axi4mlir_ir::attrs::OpcodeAction::SendLiteral { value: 0x22 }
        );
        assert_eq!(
            first_action("sB"),
            axi4mlir_ir::attrs::OpcodeAction::SendLiteral { value: 0x23 }
        );
        assert_eq!(
            first_action("cC"),
            axi4mlir_ir::attrs::OpcodeAction::SendLiteral { value: 0xF0 }
        );
        assert_eq!(
            first_action("rC"),
            axi4mlir_ir::attrs::OpcodeAction::SendLiteral { value: 0x24 }
        );
        assert_eq!(
            first_action("reset"),
            axi4mlir_ir::attrs::OpcodeAction::SendLiteral { value: 0xFF }
        );
    }
}
