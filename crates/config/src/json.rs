//! JSON configuration files (Fig. 5).
//!
//! ```json
//! {
//!   "cpu": { "cache-levels": ["32K", "512K"], "cache-types": ["data", "shared"] },
//!   "accelerators": [{
//!     "name": "v3_8", "version": "1.0", "description": "...",
//!     "dma_config": { "id": 0, "inputAddress": 66, "inputBufferSize": 65280,
//!                     "outputAddress": 65346, "outputBufferSize": 65280 },
//!     "kernel": "linalg.matmul",
//!     "accel_size": [8, 8, 8],
//!     "data_type": "int32",
//!     "dims": ["m", "n", "k"],
//!     "data": { "A": ["m", "k"], "B": ["k", "n"], "C": ["m", "n"] },
//!     "opcode_map": "opcode_map<sA = [send_literal(0x22), send(0)], ...>",
//!     "opcode_flow_map": { "Ns": "(sA sB cC rC)", "Cs": "((sA sB cC) rC)" },
//!     "selected_flow": "Ns",
//!     "init_opcodes": "(reset)"
//!   }]
//! }
//! ```
//!
//! Cache sizes accept integers or `"32K"`/`"1M"` strings. The `"data"`
//! object's member order defines the operand order (A = argument 0, ...),
//! which the order-preserving [`JsonValue`] object representation keeps.

use axi4mlir_ir::attrs::{OpcodeFlow, OpcodeMap};
use axi4mlir_support::diag::Diagnostic;
use axi4mlir_support::json::JsonValue;

use crate::accelerator::{AcceleratorConfig, DmaInfo, KernelKind};
use crate::cpu::CpuSpec;

/// Reads a list of sizes given as integers or `"32K"` strings.
pub(crate) fn sizes_from(value: &JsonValue, field: &str) -> Result<Vec<u64>, Diagnostic> {
    let items = value
        .as_array()
        .ok_or_else(|| Diagnostic::error(format!("`{field}` must be an array of sizes")))?;
    items
        .iter()
        .map(|item| match item {
            JsonValue::Int(_) => item
                .as_u64()
                .ok_or_else(|| Diagnostic::error(format!("`{field}` sizes must be non-negative"))),
            JsonValue::Str(text) => parse_size(text).map_err(Diagnostic::error),
            other => Err(Diagnostic::error(format!(
                "`{field}` entries must be integers or size strings, found {}",
                other.type_name()
            ))),
        })
        .collect()
}

/// Parses `"32K"`, `"512k"`, `"1M"`, or a plain integer string into bytes.
///
/// # Errors
///
/// Returns a message if the string is not a size.
pub fn parse_size(text: &str) -> Result<u64, String> {
    let t = text.trim();
    let (digits, multiplier) = match t.chars().last() {
        Some('k') | Some('K') => (&t[..t.len() - 1], 1024),
        Some('m') | Some('M') => (&t[..t.len() - 1], 1024 * 1024),
        _ => (t, 1),
    };
    digits
        .trim()
        .parse::<u64>()
        .map(|v| v * multiplier)
        .map_err(|_| format!("invalid size `{text}` (expected e.g. 32768 or \"32K\")"))
}

/// A parsed, validated system configuration: the host CPU plus one or more
/// accelerators.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Host CPU description.
    pub cpu: CpuSpec,
    /// Validated accelerator descriptions.
    pub accelerators: Vec<AcceleratorConfig>,
}

impl SystemConfig {
    /// Parses and validates a Fig. 5 JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] for JSON syntax errors, grammar errors in
    /// the embedded `opcode_map`/`opcode_flow` strings, or semantic
    /// validation failures.
    pub fn from_json(text: &str) -> Result<SystemConfig, Diagnostic> {
        let doc = JsonValue::parse(text)
            .map_err(|e| Diagnostic::error(format!("configuration JSON error: {}", e.message)))?;
        let cpu_value = doc
            .get("cpu")
            .ok_or_else(|| Diagnostic::error("configuration must define a `cpu` section"))?;
        let cpu = CpuSpec::from_value(cpu_value)?;
        let accel_values =
            doc.get("accelerators").and_then(JsonValue::as_array).ok_or_else(|| {
                Diagnostic::error("configuration must define an `accelerators` array")
            })?;
        let mut accelerators = Vec::new();
        for value in accel_values {
            accelerators.push(convert(value)?);
        }
        Ok(SystemConfig { cpu, accelerators })
    }

    /// The accelerator with the given name.
    pub fn accelerator(&self, name: &str) -> Option<&AcceleratorConfig> {
        self.accelerators.iter().find(|a| a.name == name)
    }
}

fn field<'v>(value: &'v JsonValue, name: &str, accel: &str) -> Result<&'v JsonValue, Diagnostic> {
    value
        .get(name)
        .ok_or_else(|| Diagnostic::error(format!("accelerator {accel}: missing field `{name}`")))
}

fn string_field(value: &JsonValue, name: &str, accel: &str) -> Result<String, Diagnostic> {
    field(value, name, accel)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| Diagnostic::error(format!("accelerator {accel}: `{name}` must be a string")))
}

fn u64_field(value: &JsonValue, name: &str, accel: &str) -> Result<u64, Diagnostic> {
    field(value, name, accel)?.as_u64().ok_or_else(|| {
        Diagnostic::error(format!("accelerator {accel}: `{name}` must be a non-negative integer"))
    })
}

fn u32_field(value: &JsonValue, name: &str, accel: &str) -> Result<u32, Diagnostic> {
    u64_field(value, name, accel)?.try_into().map_err(|_| {
        Diagnostic::error(format!("accelerator {accel}: `{name}` does not fit in 32 bits"))
    })
}

fn string_list(value: &JsonValue, name: &str, accel: &str) -> Result<Vec<String>, Diagnostic> {
    field(value, name, accel)?
        .as_array()
        .ok_or_else(|| {
            Diagnostic::error(format!("accelerator {accel}: `{name}` must be an array"))
        })?
        .iter()
        .map(|v| {
            v.as_str().map(str::to_owned).ok_or_else(|| {
                Diagnostic::error(format!("accelerator {accel}: `{name}` entries must be strings"))
            })
        })
        .collect()
}

fn convert(value: &JsonValue) -> Result<AcceleratorConfig, Diagnostic> {
    let name = value
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| Diagnostic::error("every accelerator needs a string `name`"))?
        .to_owned();

    let kernel_name = string_field(value, "kernel", &name)?;
    let kernel = KernelKind::from_op_name(&kernel_name).ok_or_else(|| {
        Diagnostic::error(format!(
            "accelerator {name}: unsupported kernel `{kernel_name}` (expected linalg.matmul or linalg.conv_2d_nchw_fchw)"
        ))
    })?;

    let dma_value = field(value, "dma_config", &name)?;
    let dma = DmaInfo {
        id: u32_field(dma_value, "id", &name)?,
        input_address: u64_field(dma_value, "inputAddress", &name)?,
        input_buffer_size: u64_field(dma_value, "inputBufferSize", &name)?,
        output_address: u64_field(dma_value, "outputAddress", &name)?,
        output_buffer_size: u64_field(dma_value, "outputBufferSize", &name)?,
    };

    let accel_dims = field(value, "accel_size", &name)?
        .as_array()
        .ok_or_else(|| {
            Diagnostic::error(format!("accelerator {name}: `accel_size` must be an array"))
        })?
        .iter()
        .map(|v| {
            v.as_i64().ok_or_else(|| {
                Diagnostic::error(format!(
                    "accelerator {name}: `accel_size` entries must be integers"
                ))
            })
        })
        .collect::<Result<Vec<i64>, _>>()?;

    let data_type = match value.get("data_type") {
        None => "int32".to_owned(),
        Some(v) => v.as_str().map(str::to_owned).ok_or_else(|| {
            Diagnostic::error(format!("accelerator {name}: `data_type` must be a string"))
        })?,
    };

    let dims = string_list(value, "dims", &name)?;

    let opcode_map_text = string_field(value, "opcode_map", &name)?;
    let opcode_map = OpcodeMap::parse(&opcode_map_text)
        .map_err(|d| Diagnostic::error(format!("accelerator {name}: {}", d.message)))?;

    let mut flows = Vec::new();
    let flow_members = field(value, "opcode_flow_map", &name)?.as_object().ok_or_else(|| {
        Diagnostic::error(format!("accelerator {name}: `opcode_flow_map` must be an object"))
    })?;
    for (flow_name, flow_value) in flow_members {
        let text = flow_value.as_str().ok_or_else(|| {
            Diagnostic::error(format!("accelerator {name}: flow `{flow_name}` must be a string"))
        })?;
        let flow = OpcodeFlow::parse(text).map_err(|d| {
            Diagnostic::error(format!("accelerator {name}: flow `{flow_name}`: {}", d.message))
        })?;
        flows.push((flow_name.clone(), flow));
    }

    let mut data = Vec::new();
    let data_members = field(value, "data", &name)?.as_object().ok_or_else(|| {
        Diagnostic::error(format!("accelerator {name}: `data` must be an object"))
    })?;
    for (arg, dims_value) in data_members {
        let arg_dims: Vec<String> = dims_value
            .as_array()
            .ok_or_else(|| {
                Diagnostic::error(format!(
                    "accelerator {name}: data argument {arg} must list its dimensions"
                ))
            })?
            .iter()
            .map(|v| {
                v.as_str().map(str::to_owned).ok_or_else(|| {
                    Diagnostic::error(format!(
                        "accelerator {name}: data argument {arg} has a non-string dimension"
                    ))
                })
            })
            .collect::<Result<_, _>>()?;
        data.push((arg.clone(), arg_dims));
    }

    let selected_flow = string_field(value, "selected_flow", &name)?;

    let init_opcodes = match value.get("init_opcodes") {
        None | Some(JsonValue::Null) => Vec::new(),
        Some(v) => {
            let text = v.as_str().ok_or_else(|| {
                Diagnostic::error(format!("accelerator {name}: `init_opcodes` must be a string"))
            })?;
            OpcodeFlow::parse(text)
                .map_err(|d| {
                    Diagnostic::error(format!("accelerator {name}: init_opcodes: {}", d.message))
                })?
                .opcode_names()
                .into_iter()
                .map(str::to_owned)
                .collect()
        }
    };

    let config = AcceleratorConfig {
        name,
        kernel,
        dma,
        dims,
        accel_dims,
        data,
        data_type,
        opcode_map,
        flows,
        selected_flow,
        init_opcodes,
    };
    config.validate()?;
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A faithful Fig. 5-style document for a v3_8 accelerator.
    pub(crate) const SAMPLE: &str = r#"{
      "cpu": { "cache-levels": ["32K", "512K"], "cache-types": ["data", "shared"] },
      "accelerators": [{
        "name": "v3_8",
        "version": "1.0",
        "description": "MatMul 8x8x8 with input/output reuse",
        "dma_config": { "id": 0, "inputAddress": 66, "inputBufferSize": 65280,
                        "outputAddress": 65346, "outputBufferSize": 65280 },
        "kernel": "linalg.matmul",
        "accel_size": [8, 8, 8],
        "data_type": "int32",
        "dims": ["m", "n", "k"],
        "data": { "A": ["m", "k"], "B": ["k", "n"], "C": ["m", "n"] },
        "opcode_map": "opcode_map<sA = [send_literal(0x22), send(0)], sB = [send_literal(0x23), send(1)], cC = [send_literal(0xF0)], rC = [send_literal(0x24), recv(2)], reset = [send_literal(0xFF)]>",
        "opcode_flow_map": { "Ns": "(sA sB cC rC)", "As": "(sA (sB cC rC))", "Cs": "((sA sB cC) rC)" },
        "selected_flow": "Cs",
        "init_opcodes": "(reset)"
      }]
    }"#;

    #[test]
    fn parses_fig5_style_document() {
        let sys = SystemConfig::from_json(SAMPLE).unwrap();
        assert_eq!(sys.cpu.l1_bytes(), 32 * 1024);
        assert_eq!(sys.accelerators.len(), 1);
        let acc = sys.accelerator("v3_8").unwrap();
        assert_eq!(acc.kernel, KernelKind::MatMul);
        assert_eq!(acc.accel_dims, vec![8, 8, 8]);
        assert_eq!(acc.selected_flow, "Cs");
        assert_eq!(acc.dma.input_buffer_size, 65280);
        assert_eq!(acc.init_opcodes, vec!["reset"]);
        // Operand order follows the JSON member order.
        assert_eq!(acc.arg_index("A"), Some(0));
        assert_eq!(acc.arg_index("B"), Some(1));
        assert_eq!(acc.arg_index("C"), Some(2));
    }

    #[test]
    fn parsed_config_equals_preset_modulo_flows() {
        let sys = SystemConfig::from_json(SAMPLE).unwrap();
        let parsed = sys.accelerator("v3_8").unwrap();
        let preset = AcceleratorConfig::preset(crate::presets::AcceleratorPreset::V3 { size: 8 })
            .with_selected_flow("Cs");
        assert_eq!(parsed.opcode_map, preset.opcode_map);
        assert_eq!(parsed.accel_dims, preset.accel_dims);
        assert_eq!(parsed.flow("Cs"), preset.flow("Cs"));
    }

    #[test]
    fn bad_kernel_is_rejected() {
        let text = SAMPLE.replace("linalg.matmul", "linalg.fill");
        let err = SystemConfig::from_json(&text).unwrap_err();
        assert!(err.message.contains("unsupported kernel"));
    }

    #[test]
    fn bad_flow_string_is_rejected() {
        let text = SAMPLE.replace("(sA sB cC rC)", "(sA sB cC rC");
        let err = SystemConfig::from_json(&text).unwrap_err();
        assert!(err.message.contains("flow `Ns`"), "{}", err.message);
    }

    #[test]
    fn undefined_selected_flow_is_rejected() {
        let text = SAMPLE.replace("\"selected_flow\": \"Cs\"", "\"selected_flow\": \"Zs\"");
        let err = SystemConfig::from_json(&text).unwrap_err();
        assert!(err.message.contains("selected_flow"));
    }

    #[test]
    fn malformed_json_is_reported() {
        let err = SystemConfig::from_json("{not json").unwrap_err();
        assert!(err.message.contains("JSON error"));
    }

    #[test]
    fn missing_fields_name_the_field() {
        let text = SAMPLE.replace("\"opcode_map\":", "\"not_opcode_map\":");
        let err = SystemConfig::from_json(&text).unwrap_err();
        assert!(err.message.contains("missing field `opcode_map`"), "{}", err.message);
    }

    #[test]
    fn out_of_range_dma_id_is_rejected() {
        let text = SAMPLE.replace("\"id\": 0", "\"id\": 4294967296");
        let err = SystemConfig::from_json(&text).unwrap_err();
        assert!(err.message.contains("does not fit in 32 bits"), "{}", err.message);
    }

    #[test]
    fn size_suffix_parsing() {
        assert_eq!(parse_size("32K").unwrap(), 32768);
        assert_eq!(parse_size("512k").unwrap(), 512 * 1024);
        assert_eq!(parse_size("1M").unwrap(), 1024 * 1024);
        assert_eq!(parse_size("12345").unwrap(), 12345);
        assert!(parse_size("huge").is_err());
    }
}
