//! JSON configuration files (Fig. 5).
//!
//! ```json
//! {
//!   "cpu": { "cache-levels": ["32K", "512K"], "cache-types": ["data", "shared"] },
//!   "accelerators": [{
//!     "name": "v3_8", "version": "1.0", "description": "...",
//!     "dma_config": { "id": 0, "inputAddress": 66, "inputBufferSize": 65280,
//!                     "outputAddress": 65346, "outputBufferSize": 65280 },
//!     "kernel": "linalg.matmul",
//!     "accel_size": [8, 8, 8],
//!     "data_type": "int32",
//!     "dims": ["m", "n", "k"],
//!     "data": { "A": ["m", "k"], "B": ["k", "n"], "C": ["m", "n"] },
//!     "opcode_map": "opcode_map<sA = [send_literal(0x22), send(0)], ...>",
//!     "opcode_flow_map": { "Ns": "(sA sB cC rC)", "Cs": "((sA sB cC) rC)" },
//!     "selected_flow": "Ns",
//!     "init_opcodes": "(reset)"
//!   }]
//! }
//! ```
//!
//! Cache sizes accept integers or `"32K"`/`"1M"` strings. The `"data"`
//! object's member order defines the operand order (A = argument 0, ...).

use serde::de::Error as _;
use serde::{Deserialize, Deserializer};

use axi4mlir_support::diag::Diagnostic;
use axi4mlir_ir::attrs::{OpcodeFlow, OpcodeMap};

use crate::accelerator::{AcceleratorConfig, DmaInfo, KernelKind};
use crate::cpu::CpuSpec;

/// Deserializes a list of sizes given as integers or `"32K"` strings.
pub fn de_sizes<'de, D: Deserializer<'de>>(de: D) -> Result<Vec<u64>, D::Error> {
    #[derive(Deserialize)]
    #[serde(untagged)]
    enum Size {
        Int(u64),
        Text(String),
    }
    let raw: Vec<Size> = Vec::deserialize(de)?;
    raw.into_iter()
        .map(|s| match s {
            Size::Int(v) => Ok(v),
            Size::Text(t) => parse_size(&t).map_err(D::Error::custom),
        })
        .collect()
}

/// Parses `"32K"`, `"512k"`, `"1M"`, or a plain integer string into bytes.
///
/// # Errors
///
/// Returns a message if the string is not a size.
pub fn parse_size(text: &str) -> Result<u64, String> {
    let t = text.trim();
    let (digits, multiplier) = match t.chars().last() {
        Some('k') | Some('K') => (&t[..t.len() - 1], 1024),
        Some('m') | Some('M') => (&t[..t.len() - 1], 1024 * 1024),
        _ => (t, 1),
    };
    digits
        .trim()
        .parse::<u64>()
        .map(|v| v * multiplier)
        .map_err(|_| format!("invalid size `{text}` (expected e.g. 32768 or \"32K\")"))
}

#[derive(Debug, Deserialize)]
struct RawDma {
    id: u32,
    #[serde(rename = "inputAddress")]
    input_address: u64,
    #[serde(rename = "inputBufferSize")]
    input_buffer_size: u64,
    #[serde(rename = "outputAddress")]
    output_address: u64,
    #[serde(rename = "outputBufferSize")]
    output_buffer_size: u64,
}

#[derive(Debug, Deserialize)]
struct RawAccelerator {
    name: String,
    #[serde(default)]
    #[allow(dead_code)]
    version: Option<String>,
    #[serde(default)]
    #[allow(dead_code)]
    description: Option<String>,
    dma_config: RawDma,
    kernel: String,
    accel_size: Vec<i64>,
    #[serde(default = "default_data_type")]
    data_type: String,
    dims: Vec<String>,
    /// Order of members defines operand order (serde_json preserve_order).
    data: serde_json::Map<String, serde_json::Value>,
    opcode_map: String,
    opcode_flow_map: serde_json::Map<String, serde_json::Value>,
    selected_flow: String,
    #[serde(default)]
    init_opcodes: Option<String>,
}

fn default_data_type() -> String {
    "int32".to_owned()
}

#[derive(Debug, Deserialize)]
struct RawSystem {
    cpu: CpuSpec,
    accelerators: Vec<RawAccelerator>,
}

/// A parsed, validated system configuration: the host CPU plus one or more
/// accelerators.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Host CPU description.
    pub cpu: CpuSpec,
    /// Validated accelerator descriptions.
    pub accelerators: Vec<AcceleratorConfig>,
}

impl SystemConfig {
    /// Parses and validates a Fig. 5 JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] for JSON syntax errors, grammar errors in
    /// the embedded `opcode_map`/`opcode_flow` strings, or semantic
    /// validation failures.
    pub fn from_json(text: &str) -> Result<SystemConfig, Diagnostic> {
        let raw: RawSystem = serde_json::from_str(text)
            .map_err(|e| Diagnostic::error(format!("configuration JSON error: {e}")))?;
        let mut accelerators = Vec::new();
        for acc in raw.accelerators {
            accelerators.push(convert(acc)?);
        }
        Ok(SystemConfig { cpu: raw.cpu, accelerators })
    }

    /// The accelerator with the given name.
    pub fn accelerator(&self, name: &str) -> Option<&AcceleratorConfig> {
        self.accelerators.iter().find(|a| a.name == name)
    }
}

fn convert(raw: RawAccelerator) -> Result<AcceleratorConfig, Diagnostic> {
    let kernel = KernelKind::from_op_name(&raw.kernel).ok_or_else(|| {
        Diagnostic::error(format!(
            "accelerator {}: unsupported kernel `{}` (expected linalg.matmul or linalg.conv_2d_nchw_fchw)",
            raw.name, raw.kernel
        ))
    })?;
    let opcode_map = OpcodeMap::parse(&raw.opcode_map)
        .map_err(|d| Diagnostic::error(format!("accelerator {}: {}", raw.name, d.message)))?;
    let mut flows = Vec::new();
    for (name, value) in &raw.opcode_flow_map {
        let text = value.as_str().ok_or_else(|| {
            Diagnostic::error(format!("accelerator {}: flow `{name}` must be a string", raw.name))
        })?;
        let flow = OpcodeFlow::parse(text)
            .map_err(|d| Diagnostic::error(format!("accelerator {}: flow `{name}`: {}", raw.name, d.message)))?;
        flows.push((name.clone(), flow));
    }
    let mut data = Vec::new();
    for (arg, dims_value) in &raw.data {
        let dims: Vec<String> = dims_value
            .as_array()
            .ok_or_else(|| {
                Diagnostic::error(format!(
                    "accelerator {}: data argument {arg} must list its dimensions",
                    raw.name
                ))
            })?
            .iter()
            .map(|v| {
                v.as_str().map(str::to_owned).ok_or_else(|| {
                    Diagnostic::error(format!(
                        "accelerator {}: data argument {arg} has a non-string dimension",
                        raw.name
                    ))
                })
            })
            .collect::<Result<_, _>>()?;
        data.push((arg.clone(), dims));
    }
    let init_opcodes = match &raw.init_opcodes {
        None => Vec::new(),
        Some(text) => OpcodeFlow::parse(text)
            .map_err(|d| {
                Diagnostic::error(format!("accelerator {}: init_opcodes: {}", raw.name, d.message))
            })?
            .opcode_names()
            .into_iter()
            .map(str::to_owned)
            .collect(),
    };
    let config = AcceleratorConfig {
        name: raw.name,
        kernel,
        dma: DmaInfo {
            id: raw.dma_config.id,
            input_address: raw.dma_config.input_address,
            input_buffer_size: raw.dma_config.input_buffer_size,
            output_address: raw.dma_config.output_address,
            output_buffer_size: raw.dma_config.output_buffer_size,
        },
        dims: raw.dims,
        accel_dims: raw.accel_size,
        data,
        data_type: raw.data_type,
        opcode_map,
        flows,
        selected_flow: raw.selected_flow,
        init_opcodes,
    };
    config.validate()?;
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A faithful Fig. 5-style document for a v3_8 accelerator.
    pub(crate) const SAMPLE: &str = r#"{
      "cpu": { "cache-levels": ["32K", "512K"], "cache-types": ["data", "shared"] },
      "accelerators": [{
        "name": "v3_8",
        "version": "1.0",
        "description": "MatMul 8x8x8 with input/output reuse",
        "dma_config": { "id": 0, "inputAddress": 66, "inputBufferSize": 65280,
                        "outputAddress": 65346, "outputBufferSize": 65280 },
        "kernel": "linalg.matmul",
        "accel_size": [8, 8, 8],
        "data_type": "int32",
        "dims": ["m", "n", "k"],
        "data": { "A": ["m", "k"], "B": ["k", "n"], "C": ["m", "n"] },
        "opcode_map": "opcode_map<sA = [send_literal(0x22), send(0)], sB = [send_literal(0x23), send(1)], cC = [send_literal(0xF0)], rC = [send_literal(0x24), recv(2)], reset = [send_literal(0xFF)]>",
        "opcode_flow_map": { "Ns": "(sA sB cC rC)", "As": "(sA (sB cC rC))", "Cs": "((sA sB cC) rC)" },
        "selected_flow": "Cs",
        "init_opcodes": "(reset)"
      }]
    }"#;

    #[test]
    fn parses_fig5_style_document() {
        let sys = SystemConfig::from_json(SAMPLE).unwrap();
        assert_eq!(sys.cpu.l1_bytes(), 32 * 1024);
        assert_eq!(sys.accelerators.len(), 1);
        let acc = sys.accelerator("v3_8").unwrap();
        assert_eq!(acc.kernel, KernelKind::MatMul);
        assert_eq!(acc.accel_dims, vec![8, 8, 8]);
        assert_eq!(acc.selected_flow, "Cs");
        assert_eq!(acc.dma.input_buffer_size, 65280);
        assert_eq!(acc.init_opcodes, vec!["reset"]);
        // Operand order follows the JSON member order.
        assert_eq!(acc.arg_index("A"), Some(0));
        assert_eq!(acc.arg_index("B"), Some(1));
        assert_eq!(acc.arg_index("C"), Some(2));
    }

    #[test]
    fn parsed_config_equals_preset_modulo_flows() {
        let sys = SystemConfig::from_json(SAMPLE).unwrap();
        let parsed = sys.accelerator("v3_8").unwrap();
        let preset = AcceleratorConfig::preset(crate::presets::AcceleratorPreset::V3 { size: 8 })
            .with_selected_flow("Cs");
        assert_eq!(parsed.opcode_map, preset.opcode_map);
        assert_eq!(parsed.accel_dims, preset.accel_dims);
        assert_eq!(parsed.flow("Cs"), preset.flow("Cs"));
    }

    #[test]
    fn bad_kernel_is_rejected() {
        let text = SAMPLE.replace("linalg.matmul", "linalg.fill");
        let err = SystemConfig::from_json(&text).unwrap_err();
        assert!(err.message.contains("unsupported kernel"));
    }

    #[test]
    fn bad_flow_string_is_rejected() {
        let text = SAMPLE.replace("(sA sB cC rC)", "(sA sB cC rC");
        let err = SystemConfig::from_json(&text).unwrap_err();
        assert!(err.message.contains("flow `Ns`"), "{}", err.message);
    }

    #[test]
    fn undefined_selected_flow_is_rejected() {
        let text = SAMPLE.replace("\"selected_flow\": \"Cs\"", "\"selected_flow\": \"Zs\"");
        let err = SystemConfig::from_json(&text).unwrap_err();
        assert!(err.message.contains("selected_flow"));
    }

    #[test]
    fn malformed_json_is_reported() {
        let err = SystemConfig::from_json("{not json").unwrap_err();
        assert!(err.message.contains("JSON error"));
    }

    #[test]
    fn size_suffix_parsing() {
        assert_eq!(parse_size("32K").unwrap(), 32768);
        assert_eq!(parse_size("512k").unwrap(), 512 * 1024);
        assert_eq!(parse_size("1M").unwrap(), 1024 * 1024);
        assert_eq!(parse_size("12345").unwrap(), 12345);
        assert!(parse_size("huge").is_err());
    }
}
