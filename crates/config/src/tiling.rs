//! Cache-hierarchy tiling policy (compiler flow step 4).
//!
//! [`CacheTiling`] used to live next to the pipeline options in
//! `axi4mlir-core`; it moved down into the configuration layer so the
//! design-space enumerators in `axi4mlir-heuristics` can treat the
//! tiling level as a first-class candidate axis (with a stable label
//! that round-trips through the persistent result cache) without a
//! dependency cycle.

/// How the CPU-cache tiling level is chosen (compiler flow step 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CacheTiling {
    /// No extra tiling level: accelerator-size tiles walk the full problem
    /// (what the manual baselines do).
    Off,
    /// Derive the tile edge from the LLC capacity (half the LLC must hold
    /// the three operand tiles).
    Auto,
    /// Explicit square tile edge in elements.
    Fixed(i64),
}

impl CacheTiling {
    /// The sweep axis the explorer enumerates under `--sweep-cache-tiling`:
    /// the default `Auto` first, then `Off`, then the fixed edges the
    /// paper's problem sizes divide cleanly.
    pub fn sweep_levels() -> Vec<CacheTiling> {
        vec![
            CacheTiling::Auto,
            CacheTiling::Off,
            CacheTiling::Fixed(16),
            CacheTiling::Fixed(32),
            CacheTiling::Fixed(64),
        ]
    }

    /// The stable label persisted in candidate keys: `auto`, `off`,
    /// `fixed:32`.
    pub fn label(&self) -> String {
        match self {
            CacheTiling::Off => "off".to_owned(),
            CacheTiling::Auto => "auto".to_owned(),
            CacheTiling::Fixed(edge) => format!("fixed:{edge}"),
        }
    }

    /// Parses a [`Self::label`]-formatted name back into a level.
    pub fn parse(text: &str) -> Option<CacheTiling> {
        match text {
            "off" => Some(CacheTiling::Off),
            "auto" => Some(CacheTiling::Auto),
            _ => {
                let edge: i64 = text.strip_prefix("fixed:")?.parse().ok()?;
                (edge > 0).then_some(CacheTiling::Fixed(edge))
            }
        }
    }
}

impl std::fmt::Display for CacheTiling {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for level in CacheTiling::sweep_levels() {
            assert_eq!(CacheTiling::parse(&level.label()), Some(level));
        }
        assert_eq!(CacheTiling::parse("fixed:0"), None);
        assert_eq!(CacheTiling::parse("fixed:-8"), None);
        assert_eq!(CacheTiling::parse("adaptive"), None);
    }

    #[test]
    fn sweep_axis_leads_with_the_default() {
        let levels = CacheTiling::sweep_levels();
        assert_eq!(levels[0], CacheTiling::Auto);
        assert!(levels.contains(&CacheTiling::Off));
        assert!(levels.contains(&CacheTiling::Fixed(64)));
    }
}
