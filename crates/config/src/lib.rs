//! Accelerator and host-CPU configuration (paper §III-B, Fig. 5).
//!
//! The developer integrates a new accelerator with AXI4MLIR by writing a
//! JSON configuration file naming the CPU cache sizes and describing the
//! accelerator: kernel, tile sizes, data layout, `opcode_map` (Fig. 7),
//! legal `opcode_flow`s (Fig. 8), and the selected flow. This crate:
//!
//! - parses that JSON ([`json`]) including the paper's `32K`-style sizes,
//! - validates it ([`accelerator::AcceleratorConfig::validate`]): every
//!   flow opcode must exist, every action argument must reference a real
//!   operand, the selected flow must be defined,
//! - ships ready-made configurations for the Table I accelerators and the
//!   Conv2D accelerator ([`presets`]),
//! - converts a configuration into the `linalg.generic` trait attributes of
//!   Fig. 6a ([`accelerator::AcceleratorConfig::to_trait_attrs`]) — the
//!   "parse and annotate" steps 1–3 of the compiler flow.

pub mod accelerator;
pub mod cpu;
pub mod flow;
pub mod json;
pub mod presets;
pub mod tiling;

pub use accelerator::{AcceleratorConfig, DmaInfo, KernelKind};
pub use cpu::{CpuModel, CpuSpec};
pub use flow::FlowStrategy;
pub use json::SystemConfig;
pub use presets::AcceleratorPreset;
pub use tiling::CacheTiling;
