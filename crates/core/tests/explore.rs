//! Integration tests for the parallel design-space exploration engine:
//! the parallel sweep must agree with a hand-rolled brute force, be
//! bit-identical across worker counts, and never re-simulate a cached
//! configuration.

use axi4mlir_config::AcceleratorConfig;
use axi4mlir_core::driver::{CompilePlan, MatMulWorkload, Session};
use axi4mlir_core::explore::{enumerate, ExploreSpec, Explorer, Prune};
use axi4mlir_workloads::matmul::MatMulProblem;

/// A small space: (16, 16, 16) with base 8 → 2 edges per dimension,
/// 4 flows = 32 candidates.
fn small_spec() -> ExploreSpec {
    ExploreSpec::new(MatMulProblem::new(16, 16, 16)).base(8).seed(7)
}

#[test]
fn explored_optimum_matches_brute_force() {
    // Brute force: run every candidate sequentially through one session,
    // exactly as a user would by hand.
    let spec = small_spec();
    let mut session = Session::for_sweep();
    let mut brute: Option<(String, f64)> = None;
    for choice in enumerate(&spec) {
        let (tm, tn, tk) = choice.tile;
        let config = AcceleratorConfig::preset_v4_with_tile(spec.base, tm, tn, tk)
            .with_selected_flow(choice.flow.short_name());
        let plan = CompilePlan::for_accelerator(config).seed(spec.seed);
        let report = session.run(&MatMulWorkload::new(spec.problem), &plan).expect("v4 run");
        assert!(report.verified);
        let better = match &brute {
            None => true,
            Some((_, best_ms)) => report.task_clock_ms < *best_ms,
        };
        if better {
            brute = Some((choice.label(), report.task_clock_ms));
        }
    }
    let (brute_label, brute_ms) = brute.expect("non-empty space");

    // The multi-threaded explorer must find the same optimum.
    let report = Explorer::new().explore(&spec.clone().workers(4)).expect("explore");
    let optimum = report.optimum().expect("an optimum");
    assert_eq!(optimum.choice.label(), brute_label);
    assert_eq!(optimum.task_clock_ms.to_bits(), brute_ms.to_bits(), "bit-identical to brute force");
    assert_eq!(report.space_size, 32);
    assert_eq!(report.pruned_out, 0);
}

#[test]
fn parallel_results_are_bit_identical_to_single_thread() {
    let single = Explorer::new().explore(&small_spec().workers(1)).expect("1-thread sweep");
    let parallel = Explorer::new().explore(&small_spec().workers(4)).expect("4-thread sweep");
    assert_eq!(single.evaluations.len(), parallel.evaluations.len());
    for (s, p) in single.evaluations.iter().zip(&parallel.evaluations) {
        assert_eq!(s.deterministic_key(), p.deterministic_key());
    }
    assert_eq!(
        single.optimum().unwrap().deterministic_key(),
        parallel.optimum().unwrap().deterministic_key()
    );
    assert_eq!(
        single.heuristic_gap().map(f64::to_bits),
        parallel.heuristic_gap().map(f64::to_bits)
    );
}

#[test]
fn result_cache_dedups_repeat_evaluations() {
    let explorer = Explorer::new();
    let spec = small_spec().workers(2);
    let first = explorer.explore(&spec).expect("first sweep");
    let runs_after_first = explorer.evals_performed();
    // The 32 candidates, plus possibly the heuristic pick if pruning had
    // removed it (it did not: the full space was measured).
    assert_eq!(runs_after_first, first.evaluations.len());
    assert_eq!(first.cache_hits, 0);

    let second = explorer.explore(&spec).expect("second sweep");
    assert_eq!(explorer.evals_performed(), runs_after_first, "no re-simulation");
    assert_eq!(second.cache_hits, second.evaluations.len(), "every result served from cache");
    assert!(second.evaluations.iter().all(|e| e.from_cache));
    for (a, b) in first.evaluations.iter().zip(&second.evaluations) {
        assert_eq!(a.deterministic_key(), b.deterministic_key());
    }
}

#[test]
fn pruned_sweeps_still_measure_the_heuristic_pick() {
    // Keep only 3 candidates; the heuristic pick may or may not survive,
    // but it must always be measured so the gap is meaningful.
    let spec = small_spec().prune(Prune::KeepBest(3)).workers(2);
    let report = Explorer::new().explore(&spec).expect("pruned sweep");
    assert_eq!(report.evaluations.len(), 3);
    assert_eq!(report.pruned_out, report.space_size - 3);
    let heuristic = report.heuristic.as_ref().expect("a heuristic pick exists");
    let eval = report.heuristic_eval.as_ref().expect("the pick was measured");
    assert_eq!(eval.choice.label(), heuristic.label());
    assert!(report.heuristic_gap().is_some());
}

#[test]
fn small_problem_spaces_use_the_degenerate_fallback() {
    // 8 < base 16: the space degenerates to the whole-problem tile per
    // dimension instead of being empty (the old silent-failure mode).
    let spec = ExploreSpec::new(MatMulProblem::new(8, 8, 8)).seed(3).workers(2);
    let report = Explorer::new().explore(&spec).expect("degenerate space explores");
    assert_eq!(report.space_size, 4, "one tile, four flows");
    assert!(report.evaluations.iter().all(|e| e.choice.tile == (8, 8, 8)));
    assert!(report.optimum().is_some());
}
