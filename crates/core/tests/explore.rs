//! Integration tests for the design-space exploration engine: the
//! parallel sweep must agree with a hand-rolled brute force, be
//! bit-identical across worker counts, never re-simulate a cached
//! configuration (in memory or via the persisted cache file), sweep
//! conv/batched/multi-generation spaces, and the successive-halving
//! search must find the exhaustive optimum on a small space.

use axi4mlir_config::AcceleratorConfig;
use axi4mlir_core::driver::{CompilePlan, MatMulWorkload, Session};
use axi4mlir_core::explore::{
    AccelInstance, BatchedSpace, ConvSpace, DesignSpace, ExploreSpec, Explorer, HalvingSpec,
    MatMulSpace, MatMulVersion, Objective, OptionsPoint, Prune, Search,
};
use axi4mlir_heuristics::instantiation_base;
use axi4mlir_support::json::JsonValue;
use axi4mlir_workloads::batched::BatchedMatMulProblem;
use axi4mlir_workloads::matmul::MatMulProblem;
use axi4mlir_workloads::resnet::ConvLayer;

/// A small space: (16, 16, 16) with base 8 → 2 edges per dimension,
/// 4 flows = 32 candidates.
fn small_spec() -> ExploreSpec {
    ExploreSpec::new(MatMulProblem::new(16, 16, 16)).base(8).seed(7)
}

fn quick_layer() -> ConvLayer {
    ConvLayer { in_hw: 10, in_channels: 64, filter_hw: 3, out_channels: 16, stride: 1 }
}

#[test]
fn explored_optimum_matches_brute_force() {
    // Brute force: run every candidate sequentially through one session,
    // exactly as a user would by hand.
    let spec = small_spec();
    let mut session = Session::for_sweep();
    let mut brute: Option<(String, f64)> = None;
    for candidate in spec.space().enumerate().expect("non-empty space") {
        let (tm, tn, tk) = candidate.key.tile;
        let config = AcceleratorConfig::preset_v4_with_tile(
            instantiation_base(spec.base, candidate.key.tile),
            tm,
            tn,
            tk,
        )
        .with_selected_flow(&candidate.key.flow);
        let plan = CompilePlan::for_accelerator(config).seed(spec.seed);
        let report = session.run(&MatMulWorkload::new(spec.problem), &plan).expect("v4 run");
        assert!(report.verified);
        let better = match &brute {
            None => true,
            Some((_, best_ms)) => report.task_clock_ms < *best_ms,
        };
        if better {
            brute = Some((candidate.label(), report.task_clock_ms));
        }
    }
    let (brute_label, brute_ms) = brute.expect("non-empty space");

    // The multi-threaded explorer must find the same optimum.
    let report = Explorer::new().explore(&spec.clone().workers(4)).expect("explore");
    let optimum = report.optimum().expect("an optimum");
    assert_eq!(optimum.candidate.label(), brute_label);
    assert_eq!(optimum.task_clock_ms.to_bits(), brute_ms.to_bits(), "bit-identical to brute force");
    assert_eq!(report.space_size, 32);
    assert_eq!(report.pruned_out, 0);
}

#[test]
fn parallel_results_are_bit_identical_to_single_thread() {
    let single = Explorer::new().explore(&small_spec().workers(1)).expect("1-thread sweep");
    let parallel = Explorer::new().explore(&small_spec().workers(4)).expect("4-thread sweep");
    assert_eq!(single.evaluations.len(), parallel.evaluations.len());
    for (s, p) in single.evaluations.iter().zip(&parallel.evaluations) {
        assert_eq!(s.deterministic_key(), p.deterministic_key());
    }
    assert_eq!(
        single.optimum().unwrap().deterministic_key(),
        parallel.optimum().unwrap().deterministic_key()
    );
    assert_eq!(
        single.heuristic_gap().map(f64::to_bits),
        parallel.heuristic_gap().map(f64::to_bits)
    );
}

#[test]
fn result_cache_dedups_repeat_evaluations() {
    let explorer = Explorer::new();
    let spec = small_spec().workers(2);
    let first = explorer.explore(&spec).expect("first sweep");
    let runs_after_first = explorer.evals_performed();
    // The 32 candidates, plus possibly the heuristic pick if pruning had
    // removed it (it did not: the full space was measured).
    assert_eq!(runs_after_first, first.evaluations.len());
    assert_eq!(first.cache_hits, 0);

    let second = explorer.explore(&spec).expect("second sweep");
    assert_eq!(explorer.evals_performed(), runs_after_first, "no re-simulation");
    assert_eq!(second.cache_hits, second.evaluations.len(), "every result served from cache");
    assert!(second.evaluations.iter().all(|e| e.from_cache));
    for (a, b) in first.evaluations.iter().zip(&second.evaluations) {
        assert_eq!(a.deterministic_key(), b.deterministic_key());
    }
}

#[test]
fn concurrent_sweeps_share_an_engine_without_duplicating_sims() {
    // Two threads sweep the identical 32-candidate space on one shared
    // engine, as two hub jobs would. The in-flight registry must keep
    // the engine-wide simulation count at one isolated sweep's worth —
    // a key being measured by one thread is awaited, not re-simulated —
    // and each sweep's report must charge only the simulations it ran.
    let explorer = Explorer::new();
    let spec = small_spec().workers(2);
    let (first, second) = std::thread::scope(|scope| {
        let a = scope.spawn(|| explorer.explore(&spec).expect("sweep A"));
        let b = scope.spawn(|| explorer.explore(&spec).expect("sweep B"));
        (a.join().unwrap(), b.join().unwrap())
    });
    assert_eq!(explorer.evals_performed(), 32, "each unique candidate simulated exactly once");
    // Every simulation is charged to exactly one of the two reports.
    assert_eq!(first.sims_performed + second.sims_performed, 32);
    for report in [&first, &second] {
        assert_eq!(
            report.sims_performed + report.cache_hits,
            report.evaluations.len(),
            "each measurement is a sim or a cache hit, never both"
        );
    }
    assert_eq!(
        first.optimum().unwrap().deterministic_key(),
        second.optimum().unwrap().deterministic_key()
    );
}

#[test]
fn pruned_sweeps_still_measure_the_heuristic_pick() {
    // Keep only 3 candidates; the heuristic pick may or may not survive,
    // but it must always be measured so the gap is meaningful.
    let spec = small_spec().prune(Prune::KeepBest(3)).workers(2);
    let report = Explorer::new().explore(&spec).expect("pruned sweep");
    assert_eq!(report.evaluations.len(), 3);
    assert_eq!(report.pruned_out, report.space_size - 3);
    let heuristic = report.heuristic.as_ref().expect("a heuristic pick exists");
    let eval = report.heuristic_eval.as_ref().expect("the pick was measured");
    assert_eq!(eval.candidate.label(), heuristic.label());
    assert!(report.heuristic_gap().is_some());
}

#[test]
fn small_problem_spaces_use_the_degenerate_fallback() {
    // 8 < base 16: the space degenerates to the whole-problem tile per
    // dimension instead of being empty (the old silent-failure mode).
    let spec = ExploreSpec::new(MatMulProblem::new(8, 8, 8)).seed(3).workers(2);
    let report = Explorer::new().explore(&spec).expect("degenerate space explores");
    assert_eq!(report.space_size, 4, "one tile, four flows");
    assert!(report.evaluations.iter().all(|e| e.candidate.key.tile == (8, 8, 8)));
    assert!(report.optimum().is_some());
}

#[test]
fn halving_finds_the_exhaustive_optimum() {
    let space = small_spec().space();
    let exhaustive = Explorer::new()
        .explore_space(&space, Prune::None, &Search::Exhaustive, 2)
        .expect("exhaustive sweep");
    let halving = Explorer::new()
        .explore_space(&space, Prune::None, &Search::Halving(HalvingSpec::default()), 2)
        .expect("halving sweep");
    assert_eq!(halving.search, "halving");
    // Halving measures only the finalists at full fidelity...
    assert!(halving.evaluations.len() <= HalvingSpec::default().finalists);
    assert!(halving.evaluations.len() < exhaustive.evaluations.len());
    // ...but agrees on the measured optimum, bit for bit.
    let e = exhaustive.optimum().expect("exhaustive optimum");
    let h = halving.optimum().expect("halving optimum");
    assert_eq!(h.candidate.key, e.candidate.key);
    assert_eq!(h.task_clock_ms.to_bits(), e.task_clock_ms.to_bits());
}

#[test]
fn halving_reuses_the_cache_across_rounds_and_runs() {
    let explorer = Explorer::new();
    let space = small_spec().space();
    let search = Search::Halving(HalvingSpec::default());
    let first = explorer.explore_space(&space, Prune::None, &search, 2).expect("first halving");
    let sims = explorer.evals_performed();
    assert!(sims > 0);
    let second = explorer.explore_space(&space, Prune::None, &search, 2).expect("second halving");
    assert_eq!(explorer.evals_performed(), sims, "halving re-simulates nothing");
    assert_eq!(second.sims_performed, 0);
    assert!(second.cache_hits > 0);
    for (a, b) in first.evaluations.iter().zip(&second.evaluations) {
        assert_eq!(a.deterministic_key(), b.deterministic_key());
    }
}

#[test]
fn persisted_cache_round_trips_with_zero_resimulation() {
    let dir = std::env::temp_dir().join(format!("axi4mlir-explore-cache-{}", std::process::id()));
    let path = dir.join("BENCH_cache.json");
    std::fs::remove_file(&path).ok();

    let spec = small_spec().workers(2);
    let first_explorer = Explorer::new();
    let first = first_explorer.explore(&spec).expect("first sweep");
    assert!(first_explorer.evals_performed() > 0);
    let saved = first_explorer.save_cache(&path).expect("save cache");
    assert_eq!(saved, first_explorer.cache_len());

    // A fresh process (modelled by a fresh explorer) loads the file and
    // serves the whole sweep from it: zero new simulations.
    let warm = Explorer::with_cache_file(&path).expect("load cache");
    assert_eq!(warm.cache_len(), saved);
    let second = warm.explore(&spec).expect("warm sweep");
    assert_eq!(warm.evals_performed(), 0, "everything came from the persisted cache");
    assert_eq!(second.sims_performed, 0);
    assert_eq!(second.cache_hits, second.evaluations.len());
    for (a, b) in first.evaluations.iter().zip(&second.evaluations) {
        // Persisted entries drop wall-clock pass timings but keep the
        // full deterministic payload, bit for bit.
        assert_eq!(a.deterministic_key(), b.deterministic_key());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn conv_space_explores_the_options_axis() {
    let space = ConvSpace::new(quick_layer()).seed(5);
    let report = Explorer::new()
        .explore_space(&space, Prune::None, &Search::Exhaustive, 2)
        .expect("conv sweep");
    assert_eq!(report.workload, "conv");
    assert_eq!(report.space_size, 4, "the conv space is the options axis");
    assert!(report.evaluations.iter().all(|e| e.verified));
    // Specialized copies win on a 3x3-filter layer (the Fig. 16 result),
    // and the paper's default configuration is the heuristic pick.
    let optimum = report.optimum().expect("an optimum");
    assert!(optimum.candidate.key.options.specialized_copies);
    let gap = report.heuristic_gap().expect("heuristic measured");
    assert!(gap <= 1.0 + 1e-9, "default options are optimal on this layer: {gap}");
}

#[test]
fn batched_space_explores() {
    let batch = BatchedMatMulProblem::new(MatMulProblem::square(8), 2);
    let space = BatchedSpace::new(batch).accels(vec![AccelInstance::v4(8)]).seed(9);
    let report = Explorer::new()
        .explore_space(&space, Prune::None, &Search::Exhaustive, 2)
        .expect("batched sweep");
    assert_eq!(report.workload, "batched");
    assert_eq!(report.space_size, 4, "one tile, four flows");
    assert!(report.evaluations.iter().all(|e| e.verified));
    assert!(report.optimum().is_some());
    // The batch's estimates and work both scale with the batch extent.
    let single = MatMulSpace::new(MatMulProblem::square(8))
        .accels(vec![AccelInstance::v4(8)])
        .enumerate()
        .unwrap();
    let batched = space.enumerate().unwrap();
    assert_eq!(
        batched[0].estimate.words_total(),
        2 * single[0].estimate.words_total(),
        "batched estimates scale"
    );
    assert_eq!(report.evaluations[0].work, 2 * 8 * 8 * 8);
}

#[test]
fn multi_generation_space_explores_v1_through_v4() {
    let space = MatMulSpace::new(MatMulProblem::new(16, 16, 16))
        .accels(vec![
            AccelInstance { version: MatMulVersion::V1, size: 8 },
            AccelInstance { version: MatMulVersion::V2, size: 8 },
            AccelInstance { version: MatMulVersion::V3, size: 8 },
            AccelInstance::v4(8),
        ])
        .seed(7);
    let report = Explorer::new()
        .explore_space(&space, Prune::None, &Search::Exhaustive, 4)
        .expect("multi-generation sweep");
    // v1: 1 flow; v2: 3; v3: 4 (fixed 8x8x8 tile each); v4: 8 tiles x 4.
    assert_eq!(report.space_size, 1 + 3 + 4 + 8 * 4);
    assert!(report.evaluations.iter().all(|e| e.verified));
    for version in ["v1_8", "v2_8", "v3_8", "v4_8"] {
        assert!(
            report.evaluations.iter().any(|e| e.candidate.key.accel == version),
            "{version} measured"
        );
    }
    // The v3 and v4 runs of the same (flow, tile) are distinct cache
    // entries: nothing collides across generations.
    let ns_8 = |accel: &str| {
        report
            .evaluations
            .iter()
            .find(|e| {
                e.candidate.key.accel == accel
                    && e.candidate.key.flow == "Ns"
                    && e.candidate.key.tile == (8, 8, 8)
            })
            .map(|e| e.candidate.key.clone())
    };
    assert_ne!(ns_8("v3_8"), ns_8("v4_8"));
    assert_ne!(ns_8("v3_8"), None);
}

/// Counts the persisted cache entries measured at *full* fidelity, i.e.
/// whose workload field names the full problem rather than a proxy.
fn full_fidelity_entries(explorer: &Explorer, full_workload: &str) -> usize {
    let dir = std::env::temp_dir().join(format!(
        "axi4mlir-fidelity-count-{}-{}",
        std::process::id(),
        explorer.cache_len()
    ));
    let path = dir.join("BENCH_cache.json");
    explorer.save_cache(&path).expect("save cache for inspection");
    let text = std::fs::read_to_string(&path).expect("read saved cache");
    std::fs::remove_dir_all(&dir).ok();
    let doc = JsonValue::parse(&text).expect("cache parses");
    doc.get("entries")
        .and_then(JsonValue::as_array)
        .expect("entries array")
        .iter()
        .filter(|entry| {
            entry.get("key").and_then(|k| k.get("workload")).and_then(JsonValue::as_str)
                == Some(full_workload)
        })
        .count()
}

#[test]
fn conv_halving_simulates_fewer_full_layers_than_exhaustive() {
    // The old conv "proxy" realized the full layer, so halving re-measured
    // the whole problem every round and saved nothing. With the
    // reduced-output-extent proxy, the halving sweep must run strictly
    // fewer full-fidelity simulations than the exhaustive sweep of the
    // same space.
    let layer = quick_layer();
    let full_workload = format!("conv {layer}");

    let exhaustive = Explorer::new();
    exhaustive
        .explore_space(&ConvSpace::new(layer), Prune::None, &Search::Exhaustive, 2)
        .expect("exhaustive conv sweep");
    let exhaustive_full = full_fidelity_entries(&exhaustive, &full_workload);
    assert_eq!(exhaustive_full, 4, "exhaustive measures the whole options axis at full fidelity");

    let halving = Explorer::new();
    let search = Search::Halving(HalvingSpec::default().finalists(2));
    let report = halving
        .explore_space(&ConvSpace::new(layer), Prune::None, &search, 2)
        .expect("halving conv sweep");
    let halving_full = full_fidelity_entries(&halving, &full_workload);
    assert!(
        halving_full < exhaustive_full,
        "halving must run fewer full-fidelity conv sims ({halving_full} !< {exhaustive_full})"
    );
    // The finalists still measured the genuine layer, verified.
    assert_eq!(report.evaluations.len(), 2);
    assert!(report.evaluations.iter().all(|e| e.verified && e.work == layer.macs()));
    // And proxy rounds really ran smaller problems.
    assert!(halving.cache_len() > halving_full, "proxy entries exist alongside full ones");
}

#[test]
fn batched_halving_saves_full_batch_simulations() {
    let batch = BatchedMatMulProblem::new(MatMulProblem::new(16, 16, 16), 2);
    let full_workload = format!("batched {batch}");
    let space = || BatchedSpace::new(batch).accels(vec![AccelInstance::v4(8)]).seed(9);

    let exhaustive = Explorer::new();
    exhaustive
        .explore_space(&space(), Prune::None, &Search::Exhaustive, 2)
        .expect("exhaustive batched sweep");
    let exhaustive_full = full_fidelity_entries(&exhaustive, &full_workload);
    assert_eq!(exhaustive_full, 32, "2 edges per dim x 4 flows");

    let halving = Explorer::new();
    let report = halving
        .explore_space(&space(), Prune::None, &Search::Halving(HalvingSpec::default()), 2)
        .expect("halving batched sweep");
    let halving_full = full_fidelity_entries(&halving, &full_workload);
    assert!(
        halving_full < exhaustive_full,
        "the batch-1 proxy must spare full-batch sims ({halving_full} !< {exhaustive_full})"
    );
    // Proxy rounds measured single-element stand-ins.
    assert!(report.evaluations.iter().all(|e| e.work == batch.macs()), "finals are full-batch");
}

#[test]
fn warm_started_halving_spends_fewer_full_sims_within_5pct_of_optimum() {
    // The acceptance scenario: bank measurements on one problem shape,
    // then sweep a shape never measured before. The warm-started halving
    // must (a) perform strictly fewer full-fidelity simulations than the
    // same halving cold, and (b) still land within 5% of the measured
    // exhaustive optimum.
    let donor_space =
        MatMulSpace::new(MatMulProblem::new(16, 16, 16)).accels(vec![AccelInstance::v4(8)]).seed(7);
    let donor = Explorer::new();
    donor.explore_space(&donor_space, Prune::None, &Search::Exhaustive, 2).expect("donor sweep");
    let model = donor.transfer_model();
    assert!(!model.is_empty(), "the donor sweep produced observations");

    // A new shape: wider in m, so a third tile edge (32) the donor never
    // measured enters the space alongside configurations it did measure.
    let target = || {
        MatMulSpace::new(MatMulProblem::new(32, 16, 16)).accels(vec![AccelInstance::v4(8)]).seed(7)
    };
    let search = Search::Halving(HalvingSpec::default());

    let exhaustive = Explorer::new()
        .explore_space(&target(), Prune::None, &Search::Exhaustive, 2)
        .expect("exhaustive target sweep");
    let optimum_ms = exhaustive.optimum().expect("an optimum").task_clock_ms;

    let cold_explorer = Explorer::new();
    let cold = cold_explorer.explore_space(&target(), Prune::None, &search, 2).expect("cold");
    assert!(!cold.warm_started);
    assert_eq!(cold.warm_informed, 0);

    let warm_explorer = Explorer::new().warm_started(model);
    assert!(warm_explorer.is_warm_started());
    let warm = warm_explorer.explore_space(&target(), Prune::None, &search, 2).expect("warm");
    assert!(warm.warm_started);
    assert!(
        warm.warm_informed * 2 >= warm.space_size,
        "the donor covers most of the target field: {} of {}",
        warm.warm_informed,
        warm.space_size
    );

    assert!(cold.full_sims_performed > 0);
    assert!(
        warm.full_sims_performed < cold.full_sims_performed,
        "warm start must spend strictly fewer full-fidelity sims ({} !< {})",
        warm.full_sims_performed,
        cold.full_sims_performed
    );
    let warm_pick_ms = warm.optimum().expect("a warm pick").task_clock_ms;
    assert!(
        warm_pick_ms <= optimum_ms * 1.05,
        "warm pick {warm_pick_ms} ms must be within 5% of the exhaustive optimum {optimum_ms} ms"
    );
}

#[test]
fn every_workload_label_feeds_the_transfer_model() {
    // The transfer model recovers problem shapes from the workload
    // labels persisted in candidate keys. If a Display impl drifts, the
    // model must not silently fit empty and run cold — this pins that
    // measurements from all three shipped spaces produce observations
    // that inform candidates of the same space.
    let spaces: Vec<(&str, Box<dyn DesignSpace>)> = vec![
        (
            "matmul",
            Box::new(
                MatMulSpace::new(MatMulProblem::new(16, 16, 16))
                    .accels(vec![AccelInstance::v4(8)])
                    .seed(7),
            ),
        ),
        (
            "batched",
            Box::new(
                BatchedSpace::new(BatchedMatMulProblem::new(MatMulProblem::square(8), 2))
                    .accels(vec![AccelInstance::v4(8)])
                    .seed(9),
            ),
        ),
        ("conv", Box::new(ConvSpace::new(quick_layer()).seed(5))),
    ];
    for (label, space) in spaces {
        let explorer = Explorer::new();
        explorer
            .explore_space(space.as_ref(), Prune::KeepBest(2), &Search::Exhaustive, 1)
            .unwrap_or_else(|d| panic!("{label}: {d}"));
        let model = explorer.transfer_model();
        assert!(
            model.observations() > 0,
            "{label}: the measured entries must parse into observations"
        );
        let candidate = &space.enumerate().unwrap()[0];
        let prediction = model
            .predict(candidate)
            .unwrap_or_else(|| panic!("{label}: the model must cover its own space"));
        assert!(prediction.clock_ms > 0.0, "{label}: calibrated clocks are positive");
    }
}

#[test]
fn halving_full_sims_never_exceed_exhaustive_across_workloads() {
    // The sim-budget pin: under fixed seeds, a halving sweep must never
    // run more full-fidelity simulations than the exhaustive sweep of
    // the same space, on any shipped workload. Future space growth that
    // broke this would silently inflate CI and local sweep cost.
    let halving = Search::Halving(HalvingSpec::default());
    let check = |label: &str, build: &dyn Fn() -> Box<dyn DesignSpace>| {
        let exhaustive = Explorer::new()
            .explore_space(build().as_ref(), Prune::None, &Search::Exhaustive, 2)
            .unwrap_or_else(|d| panic!("{label} exhaustive: {d}"));
        let halved = Explorer::new()
            .explore_space(build().as_ref(), Prune::None, &halving, 2)
            .unwrap_or_else(|d| panic!("{label} halving: {d}"));
        // Exhaustive measures every survivor (plus possibly the
        // heuristic pick) at full fidelity.
        assert!(
            exhaustive.full_sims_performed >= exhaustive.evaluations.len(),
            "{label}: exhaustive full sims cover the space"
        );
        assert!(
            halved.full_sims_performed <= exhaustive.full_sims_performed,
            "{label}: halving must not exceed the exhaustive full-sim budget ({} > {})",
            halved.full_sims_performed,
            exhaustive.full_sims_performed
        );
        assert!(halved.full_sims_performed > 0, "{label}: finalists are measured for real");
    };
    check("matmul", &|| {
        Box::new(
            MatMulSpace::new(MatMulProblem::new(32, 16, 16))
                .accels(vec![AccelInstance::v4(8)])
                .seed(7),
        )
    });
    check("batched", &|| {
        Box::new(
            BatchedSpace::new(BatchedMatMulProblem::new(MatMulProblem::new(16, 16, 16), 2))
                .accels(vec![AccelInstance::v4(8)])
                .seed(9),
        )
    });
    check("conv", &|| Box::new(ConvSpace::new(quick_layer()).seed(5)));
}

#[test]
fn multi_objective_front_contains_the_single_objective_optima() {
    let explorer = Explorer::new();
    let space = small_spec().space();
    let objectives = [Objective::TaskClock, Objective::DmaWords];
    let search = Search::Halving(HalvingSpec::default());
    let report = explorer
        .explore_with_objectives(&space, Prune::None, &search, 2, &objectives)
        .expect("multi-objective halving sweep");

    let front = report.pareto_front();
    assert!(!front.is_empty(), "a non-empty sweep has a non-empty front");
    assert_eq!(report.objectives, objectives.to_vec());
    for objective in objectives {
        let best = report.optimum_by(objective).expect("an optimum").objective_value(objective);
        let on_front = front
            .iter()
            .map(|&i| report.evaluations[i].objective_value(objective))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(on_front.to_bits(), best.to_bits(), "{objective} optimum is on the front");
    }
    // Front members are mutually non-dominated.
    use axi4mlir_core::explore::pareto::dominates;
    for &i in &front {
        let a = report.evaluations[i].objective_vector(&objectives);
        for &j in &front {
            let b = report.evaluations[j].objective_vector(&objectives);
            assert!(!dominates(&a, &b), "front members must not dominate each other");
        }
    }

    // A second identical invocation is served entirely from the cache.
    let again = explorer
        .explore_with_objectives(&space, Prune::None, &search, 2, &objectives)
        .expect("cached multi-objective sweep");
    assert_eq!(again.sims_performed, 0, "0 new simulations on the cached re-run");
    assert_eq!(again.pareto_front(), front, "the front is reproducible from cache");
}

#[test]
fn occupancy_objective_scores_the_idle_fraction() {
    let report = Explorer::new()
        .explore_with_objectives(
            &small_spec().space(),
            Prune::KeepBest(4),
            &Search::Exhaustive,
            2,
            &[Objective::TaskClock, Objective::Occupancy],
        )
        .expect("occupancy-scored sweep");
    for eval in &report.evaluations {
        let occupancy = eval.occupancy();
        assert!((0.0..=1.0).contains(&occupancy), "occupancy {occupancy} out of range");
        assert!(occupancy > 0.0, "the accelerator did compute");
        let scored = eval.objective_value(Objective::Occupancy);
        assert!((scored - (1.0 - occupancy)).abs() < 1e-12, "occupancy is scored as idleness");
    }
    assert!(!report.pareto_front().is_empty());
}

#[test]
fn halving_promotes_by_a_configurable_objective() {
    // Promoting by traffic must surface the analytic traffic minimum
    // among the finalists: DMA words are a deterministic function of the
    // candidate, and words-per-MAC ranks proxies exactly like words.
    let space = small_spec().space();
    let all = space.enumerate().expect("candidates");
    let min_words = all.iter().map(|c| c.estimate.words_total()).min().unwrap();
    let search = Search::Halving(HalvingSpec::default().objective(Objective::DmaWords));
    let report = Explorer::new()
        .explore_with_objectives(&space, Prune::None, &search, 2, &[Objective::DmaWords])
        .expect("traffic-promoted halving");
    let finalist_words: Vec<u64> =
        report.evaluations.iter().map(|e| e.candidate.estimate.words_total()).collect();
    assert!(
        finalist_words.contains(&min_words),
        "the traffic optimum {min_words} must survive traffic promotion: {finalist_words:?}"
    );
}

#[test]
fn cache_dir_checkpoints_write_only_dirty_shards() {
    // The rung-boundary economics of the sharded layout: a checkpoint
    // touches the shards of the keys measured since the last save and
    // nothing else — no more whole-blob rewrites.
    let dir = std::env::temp_dir().join(format!("axi4mlir-dirty-shards-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let explorer = Explorer::new();
    explorer.explore(&small_spec().workers(2)).expect("matmul sweep");
    let first = explorer.save_cache_dir(&dir).expect("first checkpoint");
    assert_eq!(first.written.len(), 1, "one workload, one shard written: {:?}", first.written);
    assert_eq!(first.entries, explorer.cache_len());
    let matmul_shard = dir.join(format!("{}.json", first.written[0]));
    let baseline_mtime = std::fs::metadata(&matmul_shard).unwrap().modified().unwrap();

    // Nothing measured since: the checkpoint must write zero files.
    let idle = explorer.save_cache_dir(&dir).expect("idle checkpoint");
    assert!(idle.written.is_empty(), "clean checkpoints write nothing: {:?}", idle.written);
    assert_eq!(idle.skipped, 1, "the matmul shard was skipped, not rewritten");

    // A conv sweep dirties only the conv shard; the matmul shard file
    // must not be touched (same mtime, same bytes).
    explorer
        .explore_space(&ConvSpace::new(quick_layer()).seed(5), Prune::None, &Search::Exhaustive, 2)
        .expect("conv sweep");
    let second = explorer.save_cache_dir(&dir).expect("second checkpoint");
    assert_eq!(second.written.len(), 1, "only the conv shard is dirty: {:?}", second.written);
    assert_ne!(second.written[0], first.written[0]);
    assert_eq!(second.skipped, 1);
    assert_eq!(
        std::fs::metadata(&matmul_shard).unwrap().modified().unwrap(),
        baseline_mtime,
        "the clean matmul shard file was never rewritten"
    );

    // The sharded layout reloads into exactly the same cache.
    let reloaded = Explorer::with_cache_dir(&dir).expect("reload");
    assert_eq!(reloaded.cache_len(), explorer.cache_len());
    assert_eq!(reloaded.shard_counts(), explorer.shard_counts());
    let warm = reloaded.explore(&small_spec().workers(2)).expect("warm sweep");
    assert_eq!(warm.sims_performed, 0, "everything served from the sharded cache");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reports_carry_the_measure_backend_and_per_worker_sims() {
    let report = Explorer::new().explore(&small_spec().workers(3)).expect("local sweep");
    assert_eq!(report.measure_backend, "local");
    // The local pool aggregates under one stable label, so the report
    // stays byte-identical across thread counts.
    let total: usize = report.worker_sims.iter().map(|(_, sims)| sims).sum();
    assert_eq!(report.worker_sims.len(), 1);
    assert_eq!(report.worker_sims[0].0, "local");
    assert_eq!(total, report.sims_performed);

    // A fully cached re-run performed no sims anywhere.
    let explorer = Explorer::new();
    explorer.explore(&small_spec()).expect("first");
    let cached = explorer.explore(&small_spec()).expect("cached");
    assert!(cached.worker_sims.is_empty());
}

#[test]
fn options_axis_candidates_are_cached_separately() {
    // Two option points over the same geometry: the structured key keeps
    // them apart, so the sweep simulates both.
    let space = MatMulSpace::new(MatMulProblem::square(8))
        .accels(vec![AccelInstance::v4(8)])
        .options_axis(vec![
            OptionsPoint::default(),
            OptionsPoint { coalesce: true, ..OptionsPoint::default() },
        ])
        .seed(7);
    let explorer = Explorer::new();
    let report =
        explorer.explore_space(&space, Prune::None, &Search::Exhaustive, 2).expect("sweep");
    assert_eq!(report.space_size, 4 * 2, "four flows x two option points");
    assert_eq!(explorer.evals_performed(), 8, "no key collision across option points");
    assert_eq!(report.cache_hits, 0);
}

#[test]
fn statically_illegal_candidates_are_lint_rejected_without_simulation() {
    // 256x8x256 on a base-8 v4 with a generous capacity budget: tiles up
    // to (256, 8, 256) enumerate, but any tile staging more than the
    // 0xFF00-byte DMA region (tm*tk > 16320 words of A) is statically
    // illegal — the plan audit must reject those before the measure
    // queue, spending zero simulations on them.
    let space = MatMulSpace::new(MatMulProblem::new(256, 8, 256))
        .accels(vec![AccelInstance::v4(8)])
        .capacity_words(80_000)
        .seed(3);
    let explorer = Explorer::new();
    let report = explorer
        .explore_space(&space, Prune::KeepBest(1), &Search::Exhaustive, 2)
        .expect("mixed space explores");
    assert!(report.lint_rejected > 0, "oversized tiles must be rejected");
    assert_eq!(
        report.space_size,
        report.lint_rejected + report.pruned_out + report.evaluations.len(),
        "every candidate is accounted for"
    );
    // Only the pruned survivor and the heuristic pick were simulated.
    assert!(report.sims_performed <= 2, "{} sims", report.sims_performed);
    for eval in &report.evaluations {
        let (tm, tn, tk) = eval.candidate.key.tile;
        for footprint in [tm * tk, tk * tn, tm * tn] {
            assert!(footprint * 4 <= 0xFF00, "measured tile overflows the staging region");
        }
        assert!(eval.verified);
    }

    // A space where *every* candidate is oversized fails up front with
    // the offending lint code — again without simulating anything.
    let hopeless = MatMulSpace::new(MatMulProblem::new(256, 8, 256))
        .accels(vec![AccelInstance::v4(256)])
        .capacity_words(80_000);
    let before = explorer.evals_performed();
    let err = explorer.explore_space(&hopeless, Prune::None, &Search::Exhaustive, 1).unwrap_err();
    assert!(err.message.contains("plan audit"), "{}", err.message);
    assert_eq!(err.code.as_deref(), Some("lint::fifo-capacity"));
    assert_eq!(explorer.evals_performed(), before, "no simulation was spent");
}
