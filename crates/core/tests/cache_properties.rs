//! Property-based tests of the persistent result cache: for *arbitrary*
//! candidate keys — hostile workload strings included, and every point
//! of the widened options axes (cache-tiling levels, named hosts) —
//! `load(save(x)) == x` must hold bit-exactly, and schema-`v1` documents
//! must migrate without losing a single entry or counter.

use std::collections::HashMap;

use proptest::collection::vec;
use proptest::prelude::*;

use axi4mlir_config::{CacheTiling, CpuModel};
use axi4mlir_core::explore::cache::{load, parse, render, save, CachedEval, CACHE_SCHEMA_V1};
use axi4mlir_core::explore::{CandidateKey, OptionsPoint};
use axi4mlir_sim::counters::PerfCounters;
use axi4mlir_support::json::JsonValue;

fn cache_tiling() -> impl Strategy<Value = CacheTiling> {
    prop_oneof![
        Just(CacheTiling::Off),
        Just(CacheTiling::Auto),
        (1i64..=4096).prop_map(CacheTiling::Fixed),
    ]
}

fn cpu_model() -> impl Strategy<Value = CpuModel> {
    prop_oneof![Just(CpuModel::PynqZ2), Just(CpuModel::Zcu102), Just(CpuModel::Desktop)]
}

fn options_point() -> impl Strategy<Value = OptionsPoint> {
    (any::<bool>(), any::<bool>(), cache_tiling(), cpu_model()).prop_map(
        |(coalesce, specialized_copies, cache_tiling, cpu)| OptionsPoint {
            coalesce,
            specialized_copies,
            cache_tiling,
            cpu,
        },
    )
}

/// Key strings: realistic labels and hostile ones (escapes, unicode,
/// empties) — the JSON layer must round-trip them all.
fn key_string() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("matmul 16x16x16".to_owned()),
        Just("batched 8x8x8 x3".to_owned()),
        Just("conv 10_64_3_16_1".to_owned()),
        "[ -~]{0,24}", // printable ASCII incl. quotes/backslashes
        "\\PC{0,12}",  // arbitrary non-control unicode
    ]
}

fn candidate_key() -> impl Strategy<Value = CandidateKey> {
    (
        key_string(),
        key_string(),
        key_string(),
        (any::<i64>(), any::<i64>(), any::<i64>()),
        options_point(),
        any::<u64>(),
    )
        .prop_map(|(workload, accel, flow, tile, options, seed)| CandidateKey {
            workload,
            accel,
            flow,
            tile,
            options,
            seed,
        })
}

fn counters() -> impl Strategy<Value = PerfCounters> {
    vec(any::<u64>(), 13).prop_map(|v| PerfCounters {
        host_cycles: v[0],
        device_cycles: v[1],
        cache_references: v[2],
        l1_misses: v[3],
        l2_misses: v[4],
        branch_instructions: v[5],
        instructions: v[6],
        uncached_accesses: v[7],
        dma_bytes_to_accel: v[8],
        dma_bytes_from_accel: v[9],
        dma_transactions: v[10],
        accel_compute_cycles: v[11],
        accel_macs: v[12],
    })
}

/// Any finite task-clock, bit-pattern-arbitrary (subnormals included):
/// the shortest-roundtrip float formatting must preserve all of them.
/// Non-finite bit patterns have their exponent's top bit cleared, which
/// maps them onto finite values without biasing the rest.
fn task_clock() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let f = f64::from_bits(bits);
        if f.is_finite() {
            f
        } else {
            f64::from_bits(bits & !(1u64 << 62))
        }
    })
}

fn cached_eval() -> impl Strategy<Value = CachedEval> {
    (counters(), task_clock(), any::<bool>()).prop_map(|(counters, task_clock_ms, verified)| {
        CachedEval { counters, task_clock_ms, verified, pass_ms: Vec::new() }
    })
}

fn entries(max: usize) -> impl Strategy<Value = HashMap<CandidateKey, CachedEval>> {
    vec((candidate_key(), cached_eval()), 0..max).prop_map(|list| list.into_iter().collect())
}

/// The bit-exact equality the round-trip properties assert: `==` on
/// `CachedEval` compares floats by value, which conflates 0.0 and -0.0.
fn assert_same(
    a: &HashMap<CandidateKey, CachedEval>,
    b: &HashMap<CandidateKey, CachedEval>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (key, eval) in a {
        let other = b.get(key);
        prop_assert!(other.is_some(), "key lost in the round trip: {:?}", key);
        let other = other.unwrap();
        prop_assert_eq!(eval.counters, other.counters);
        prop_assert_eq!(eval.task_clock_ms.to_bits(), other.task_clock_ms.to_bits());
        prop_assert_eq!(eval.verified, other.verified);
        prop_assert!(other.pass_ms.is_empty(), "wall-clock timings are never persisted");
    }
    Ok(())
}

/// Renders one entry as a schema-`v1` document: the same members minus
/// the v2 `cache_tiling`/`cpu` keys (a v1 writer could not express them).
fn render_v1(entries: &HashMap<CandidateKey, CachedEval>) -> String {
    let doc = JsonValue::parse(&render(entries)).expect("v2 render parses");
    let rewritten: Vec<JsonValue> = doc
        .get("entries")
        .and_then(JsonValue::as_array)
        .expect("entries array")
        .iter()
        .map(|entry| {
            let key = entry.get("key").and_then(JsonValue::as_object).expect("key object");
            let v1_key = JsonValue::object(
                key.iter()
                    .filter(|(name, _)| name != "cache_tiling" && name != "cpu")
                    .map(|(name, value)| (name.clone(), value.clone())),
            );
            JsonValue::object([
                ("key".to_owned(), v1_key),
                ("counters".to_owned(), entry.get("counters").expect("counters").clone()),
                (
                    "task_clock_ms".to_owned(),
                    entry.get("task_clock_ms").expect("task_clock_ms").clone(),
                ),
                ("verified".to_owned(), entry.get("verified").expect("verified").clone()),
            ])
        })
        .collect();
    let mut text = JsonValue::object([
        ("schema".to_owned(), CACHE_SCHEMA_V1.into()),
        ("entries".to_owned(), JsonValue::Array(rewritten)),
    ])
    .to_json_pretty();
    text.push('\n');
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// In-memory round trip over arbitrary keys: parse(render(x)) == x.
    #[test]
    fn render_parse_round_trips_arbitrary_keys(entries in entries(12)) {
        let parsed = parse(&render(&entries)).expect("rendered caches parse");
        assert_same(&entries, &parsed)?;
    }

    /// A v1 document carrying the same (default-axes) keys loads without
    /// data loss: every entry survives with its payload bit-identical and
    /// the migrated axes at the defaults v1 measured under.
    #[test]
    fn v1_documents_migrate_losslessly(raw in entries(8)) {
        // A v1 cache can only hold default-axes keys; two raw keys that
        // differ *only* in the new axes collapse to one v1 key, so
        // normalize first (keeping the deterministic winner).
        let mut v1_shaped: HashMap<CandidateKey, CachedEval> = HashMap::new();
        for (key, eval) in raw {
            let key = CandidateKey {
                options: OptionsPoint {
                    cache_tiling: CacheTiling::Auto,
                    cpu: CpuModel::PynqZ2,
                    ..key.options
                },
                ..key
            };
            v1_shaped.entry(key).or_insert(eval);
        }
        let migrated = parse(&render_v1(&v1_shaped)).expect("v1 caches parse");
        assert_same(&v1_shaped, &migrated)?;
        for key in migrated.keys() {
            prop_assert_eq!(key.options.cache_tiling, CacheTiling::Auto);
            prop_assert_eq!(key.options.cpu, CpuModel::PynqZ2);
        }
    }
}

proptest! {
    // Filesystem cases are slower; fewer of them still covers the
    // save/load path (atomic staging, merge) on arbitrary keys.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full persistence path: load(save(x)) == x through a real file.
    #[test]
    fn load_save_round_trips_through_the_filesystem(entries in entries(6), tag in 0u64..u64::MAX) {
        let dir = std::env::temp_dir()
            .join(format!("axi4mlir-cache-prop-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_cache.json");
        save(&path, &entries).expect("save");
        let loaded = load(&path).expect("load");
        std::fs::remove_dir_all(&dir).ok();
        assert_same(&entries, &loaded)?;
    }
}
