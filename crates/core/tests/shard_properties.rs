//! Property-based tests of the sharded result cache: the shard merge
//! must be a commutative, idempotent union over *arbitrary* entry maps
//! (hostile workload strings included), `load_dir(save_dir(x))` must be
//! the identity per shard, and a legacy single-file `BENCH_cache.json`
//! (schema v2) dropped into a cache directory must migrate into the
//! sharded layout without losing a single entry or counter bit.

use std::collections::{BTreeSet, HashMap};
use std::path::Path;

use proptest::collection::vec;
use proptest::prelude::*;

use axi4mlir_config::{CacheTiling, CpuModel};
use axi4mlir_core::explore::cache::{self, CachedEval};
use axi4mlir_core::explore::shard::{load_dir, merge, save_dir, shard_counts, shard_of};
use axi4mlir_core::explore::{CandidateKey, OptionsPoint};
use axi4mlir_sim::counters::PerfCounters;

fn options_point() -> impl Strategy<Value = OptionsPoint> {
    let cache_tiling = prop_oneof![
        Just(CacheTiling::Off),
        Just(CacheTiling::Auto),
        (1i64..=4096).prop_map(CacheTiling::Fixed),
    ];
    let cpu = prop_oneof![Just(CpuModel::PynqZ2), Just(CpuModel::Zcu102), Just(CpuModel::Desktop)];
    (any::<bool>(), any::<bool>(), cache_tiling, cpu).prop_map(
        |(coalesce, specialized_copies, cache_tiling, cpu)| OptionsPoint {
            coalesce,
            specialized_copies,
            cache_tiling,
            cpu,
        },
    )
}

/// Workload strings steer sharding, so bias toward a few realistic
/// labels (entries sharing shards exercise the merge) plus hostile ones.
fn workload_string() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("matmul 16x16x16".to_owned()),
        Just("matmul 64x64x64".to_owned()),
        Just("batched 8x8x8 x3".to_owned()),
        Just("conv 10_64_3_16_1".to_owned()),
        "[ -~]{0,24}", // printable ASCII incl. quotes/backslashes
        "\\PC{0,12}",  // arbitrary non-control unicode
    ]
}

fn candidate_key() -> impl Strategy<Value = CandidateKey> {
    (
        workload_string(),
        "[a-z0-9_]{1,8}",
        "[A-Z][a-z]{0,3}",
        (1i64..64, 1i64..64, 1i64..64),
        options_point(),
        any::<u64>(),
    )
        .prop_map(|(workload, accel, flow, tile, options, seed)| CandidateKey {
            workload,
            accel,
            flow,
            tile,
            options,
            seed,
        })
}

fn cached_eval() -> impl Strategy<Value = CachedEval> {
    (vec(any::<u64>(), 13), any::<u64>(), any::<bool>()).prop_map(|(v, clock_bits, verified)| {
        let f = f64::from_bits(clock_bits);
        let task_clock_ms =
            if f.is_finite() { f } else { f64::from_bits(clock_bits & !(1u64 << 62)) };
        CachedEval {
            counters: PerfCounters {
                host_cycles: v[0],
                device_cycles: v[1],
                cache_references: v[2],
                l1_misses: v[3],
                l2_misses: v[4],
                branch_instructions: v[5],
                instructions: v[6],
                uncached_accesses: v[7],
                dma_bytes_to_accel: v[8],
                dma_bytes_from_accel: v[9],
                dma_transactions: v[10],
                accel_compute_cycles: v[11],
                accel_macs: v[12],
            },
            task_clock_ms,
            verified,
            pass_ms: Vec::new(),
        }
    })
}

fn entries(max: usize) -> impl Strategy<Value = HashMap<CandidateKey, CachedEval>> {
    vec((candidate_key(), cached_eval()), 0..max).prop_map(|list| list.into_iter().collect())
}

/// Bit-exact map equality (`==` on floats conflates 0.0 and -0.0).
fn assert_same(
    a: &HashMap<CandidateKey, CachedEval>,
    b: &HashMap<CandidateKey, CachedEval>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (key, eval) in a {
        let other = b.get(key);
        prop_assert!(other.is_some(), "key lost: {:?}", key);
        let other = other.unwrap();
        prop_assert_eq!(eval.counters, other.counters);
        prop_assert_eq!(eval.task_clock_ms.to_bits(), other.task_clock_ms.to_bits());
        prop_assert_eq!(eval.verified, other.verified);
    }
    Ok(())
}

fn scratch_dir(tag: u64, what: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("axi4mlir-shard-prop-{what}-{}-{tag}", std::process::id()))
}

fn save_all(dir: &Path, entries: &HashMap<CandidateKey, CachedEval>) {
    let dirty: BTreeSet<String> = entries.keys().map(shard_of).collect();
    save_dir(dir, entries, &dirty).expect("save_dir");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(a, b) == merge(b, a): order-invariance is what lets N
    /// workers or CI runs combine caches without a coordinator.
    #[test]
    fn merge_is_commutative(a in entries(10), b in entries(10)) {
        assert_same(&merge(&a, &b), &merge(&b, &a))?;
    }

    /// merge(a, a) == a, and merging is a union that loses no key.
    #[test]
    fn merge_is_idempotent_and_total(a in entries(10), b in entries(10)) {
        assert_same(&merge(&a, &a), &a)?;
        let merged = merge(&a, &b);
        for key in a.keys().chain(b.keys()) {
            prop_assert!(merged.contains_key(key), "union lost {:?}", key);
        }
        // Every merged payload came verbatim from one side.
        for (key, eval) in &merged {
            let from_a = a.get(key).is_some_and(|e| {
                e.counters == eval.counters
                    && e.task_clock_ms.to_bits() == eval.task_clock_ms.to_bits()
                    && e.verified == eval.verified
            });
            let from_b = b.get(key).is_some_and(|e| {
                e.counters == eval.counters
                    && e.task_clock_ms.to_bits() == eval.task_clock_ms.to_bits()
                    && e.verified == eval.verified
            });
            prop_assert!(from_a || from_b, "merge invented a payload for {:?}", key);
        }
    }
}

proptest! {
    // Filesystem cases are slower; fewer of them still covers the
    // sharded save/load path on arbitrary keys.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// load_dir(save_dir(x)) == x, shard by shard.
    #[test]
    fn save_load_round_trips_through_a_shard_directory(
        entries in entries(8),
        tag in 0u64..u64::MAX,
    ) {
        let dir = scratch_dir(tag, "roundtrip");
        save_all(&dir, &entries);
        let loaded = load_dir(&dir).expect("load_dir");
        std::fs::remove_dir_all(&dir).ok();
        assert_same(&entries, &loaded.entries)?;
        prop_assert!(loaded.dirty.is_empty(), "a fresh sharded layout is clean");
        prop_assert!(loaded.legacy.is_empty());
        // Per-shard accounting agrees with the in-memory partition.
        let expected = shard_counts(&entries);
        let observed = shard_counts(&loaded.entries);
        prop_assert_eq!(expected, observed);
    }

    /// A legacy single-file `BENCH_cache.json` (schema v2, the PR-4
    /// layout) dropped into the cache directory migrates losslessly:
    /// every entry is loaded, its shards are marked dirty, and one
    /// save later the directory is pure sharded layout holding the
    /// same bits.
    #[test]
    fn legacy_v2_blobs_migrate_losslessly(entries in entries(8), tag in 0u64..u64::MAX) {
        let dir = scratch_dir(tag, "legacy");
        std::fs::create_dir_all(&dir).unwrap();
        cache::save(&dir.join("BENCH_cache.json"), &entries).expect("legacy save");

        let loaded = load_dir(&dir).expect("load_dir");
        assert_same(&entries, &loaded.entries)?;
        let expected_dirty: BTreeSet<String> = entries.keys().map(shard_of).collect();
        prop_assert_eq!(&loaded.dirty, &expected_dirty, "migrated shards must be rewritten");
        if !entries.is_empty() {
            prop_assert_eq!(loaded.legacy.len(), 1, "the blob is scheduled for cleanup");
        }

        // Re-persist sharded, drop the blob (as Explorer::save_cache_dir
        // does), and confirm nothing was lost in migration.
        save_dir(&dir, &loaded.entries, &loaded.dirty).expect("migrating save");
        for blob in &loaded.legacy {
            std::fs::remove_file(blob).ok();
        }
        let migrated = load_dir(&dir).expect("reload");
        std::fs::remove_dir_all(&dir).ok();
        assert_same(&entries, &migrated.entries)?;
        prop_assert!(migrated.legacy.is_empty(), "no legacy blobs remain");
    }
}
