//! Property-based tests of the multi-objective dominance layer: for
//! arbitrary objective-value matrices, the Pareto front must be
//! non-dominated, must contain every single-objective optimum, and must
//! be the same *set* no matter what order the evaluations arrive in.

use proptest::collection::vec;
use proptest::prelude::*;

use axi4mlir_core::explore::pareto::{dominates, front_indices};

/// A random objective matrix: `rows` points, each scored under `cols`
/// objectives. Small integer scores (mapped to f64) make exact ties —
/// the interesting edge case — common.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    vec(vec(0u64..12, cols..=cols), rows..=rows).prop_map(|m| {
        m.into_iter().map(|row| row.into_iter().map(|v| v as f64).collect()).collect()
    })
}

/// Applies the permutation `perm` (a bijection of indices) to `points`.
fn permuted(points: &[Vec<f64>], perm: &[usize]) -> Vec<Vec<f64>> {
    perm.iter().map(|&i| points[i].clone()).collect()
}

/// A deterministic pseudo-random permutation of `0..n` derived from a
/// seed (Fisher–Yates with a splitmix-style generator), so order
/// invariance is exercised without a shuffle strategy.
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No point dominates any front member, and every non-front point is
    /// dominated by someone (the front is exactly the non-dominated set).
    #[test]
    fn front_is_exactly_the_non_dominated_set(
        points in (1usize..24, 1usize..4).prop_flat_map(|(r, c)| matrix(r, c)),
    ) {
        let front = front_indices(&points);
        prop_assert!(!front.is_empty(), "a non-empty set has a non-empty front");
        for &i in &front {
            for other in &points {
                prop_assert!(!dominates(other, &points[i]), "front member {i} is dominated");
            }
        }
        for i in 0..points.len() {
            if !front.contains(&i) {
                prop_assert!(
                    points.iter().any(|other| dominates(other, &points[i])),
                    "non-front point {i} is dominated by nobody"
                );
            }
        }
    }

    /// For every objective, the front attains the global minimum — the
    /// single-objective optima always survive.
    #[test]
    fn front_contains_every_single_objective_optimum(
        points in (1usize..24, 1usize..4).prop_flat_map(|(r, c)| matrix(r, c)),
    ) {
        let front = front_indices(&points);
        let cols = points[0].len();
        for col in 0..cols {
            let global = points.iter().map(|p| p[col]).fold(f64::INFINITY, f64::min);
            let on_front = front.iter().map(|&i| points[i][col]).fold(f64::INFINITY, f64::min);
            prop_assert_eq!(global, on_front, "objective {} minimum missing from the front", col);
        }
    }

    /// The front is a set: permuting the evaluations permutes the front
    /// but never changes its membership.
    #[test]
    fn front_is_invariant_under_evaluation_order(
        points in (2usize..24, 1usize..4).prop_flat_map(|(r, c)| matrix(r, c)),
        seed in 0u64..u64::MAX,
    ) {
        let perm = permutation(points.len(), seed);
        let shuffled = permuted(&points, &perm);
        // Map the shuffled front back to original indices and compare as
        // multisets of coordinate vectors (duplicates with equal scores
        // are interchangeable).
        let mut original: Vec<Vec<u64>> = front_indices(&points)
            .iter()
            .map(|&i| points[i].iter().map(|v| v.to_bits()).collect())
            .collect();
        let mut relabeled: Vec<Vec<u64>> = front_indices(&shuffled)
            .iter()
            .map(|&i| shuffled[i].iter().map(|v| v.to_bits()).collect())
            .collect();
        original.sort();
        relabeled.sort();
        prop_assert_eq!(original, relabeled);
    }

    /// Dominance is irreflexive and antisymmetric — the sanity floor the
    /// front computation stands on.
    #[test]
    fn dominance_is_a_strict_partial_order(
        a in vec(0u64..12, 1..4usize),
        b in vec(0u64..12, 1..4usize),
    ) {
        let bf: Vec<f64> = b.iter().take(a.len()).map(|&v| v as f64).collect();
        let af: Vec<f64> = a.iter().take(bf.len()).map(|&v| v as f64).collect();
        prop_assert!(!dominates(&af, &af), "irreflexive");
        if dominates(&af, &bf) {
            prop_assert!(!dominates(&bf, &af), "antisymmetric");
        }
    }
}
