//! Parallel design-space exploration (the §IV-C search, at scale).
//!
//! The paper's heuristics pick one `(flow, tile)` configuration
//! analytically. This module *searches* the space instead: it enumerates
//! every legal `(FlowStrategy, tM, tN, tK)` candidate for a MatMul
//! problem, optionally prunes the list with the analytical traffic model
//! ([`axi4mlir_heuristics::matmul_transfers`]), and measures the
//! survivors on the simulated v4 accelerator through the [`driver`]
//! layer:
//!
//! - **one recycled SoC per worker**: each `std::thread` worker owns a
//!   [`Session`] and recycles it across its share of the candidates, so
//!   the sweep pays allocation once per worker while counters stay
//!   bit-identical to fresh runs — results do not depend on the worker
//!   count;
//! - **a dedup/result cache** keyed by `(problem dims, base, seed, flow,
//!   tile)` inside the [`Explorer`], so repeated sweeps (or overlapping
//!   spaces) never re-simulate a configuration;
//! - the report records the **heuristic-vs-optimum gap**: how close the
//!   analytical [`best_choice`] pick comes to the measured optimum.
//!
//! [`driver`]: crate::driver

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use axi4mlir_accelerators::matmul::V4_CAPACITY_WORDS;
use axi4mlir_config::{AcceleratorConfig, FlowStrategy};
use axi4mlir_heuristics::{best_choice, candidate_edges, matmul_transfers, tile_words, TileChoice};
use axi4mlir_sim::counters::PerfCounters;
use axi4mlir_support::diag::Diagnostic;
use axi4mlir_workloads::matmul::MatMulProblem;

use crate::driver::{CompilePlan, MatMulWorkload, Session};

/// How aggressively the analytical model prunes the space before any
/// simulation runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Prune {
    /// Measure every legal candidate (brute force).
    None,
    /// Keep the `n` candidates with the smallest estimated traffic.
    KeepBest(usize),
    /// Keep candidates whose estimated traffic is within `factor`× of the
    /// smallest estimate (`factor >= 1.0`).
    WithinFactor(f64),
}

/// One exploration request: the problem, the space, and how to run it.
#[derive(Clone, Debug)]
pub struct ExploreSpec {
    /// The GEMM to explore.
    pub problem: MatMulProblem,
    /// The v4 base (divisibility) size candidate tiles are multiples of.
    pub base: i64,
    /// Accelerator tile-memory budget in words.
    pub capacity_words: u64,
    /// The dataflow strategies to consider.
    pub flows: Vec<FlowStrategy>,
    /// Analytical pruning applied before simulation.
    pub prune: Prune,
    /// Worker threads measuring candidates (clamped to at least 1).
    pub workers: usize,
    /// Data seed for every measurement.
    pub seed: u64,
}

impl ExploreSpec {
    /// A full-space (no pruning) exploration of `problem` on the standard
    /// v4 accelerator, single-threaded.
    pub fn new(problem: MatMulProblem) -> Self {
        Self {
            problem,
            base: 16,
            capacity_words: V4_CAPACITY_WORDS,
            flows: FlowStrategy::all().to_vec(),
            prune: Prune::None,
            workers: 1,
            seed: 0xD5E,
        }
    }

    /// Overrides the base size.
    #[must_use]
    pub fn base(mut self, base: i64) -> Self {
        self.base = base;
        self
    }

    /// Overrides the capacity budget.
    #[must_use]
    pub fn capacity_words(mut self, capacity_words: u64) -> Self {
        self.capacity_words = capacity_words;
        self
    }

    /// Overrides the pruning strategy.
    #[must_use]
    pub fn prune(mut self, prune: Prune) -> Self {
        self.prune = prune;
        self
    }

    /// Overrides the worker count.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the data seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn dims(&self) -> (i64, i64, i64) {
        (self.problem.m, self.problem.n, self.problem.k)
    }
}

/// Enumerates every legal `(flow, tile)` candidate of a spec in a fixed,
/// deterministic order: tiles ascending per dimension (multiples of
/// `base`, or the degenerate whole-dimension fallback), flows in figure
/// order, capacity-filtered.
pub fn enumerate(spec: &ExploreSpec) -> Vec<TileChoice> {
    let (m, n, k) = spec.dims();
    let mut out = Vec::new();
    for tm in candidate_edges(m, spec.base) {
        for tn in candidate_edges(n, spec.base) {
            for tk in candidate_edges(k, spec.base) {
                let tile = (tm, tn, tk);
                if tile_words(tile) > spec.capacity_words {
                    continue;
                }
                for &flow in &spec.flows {
                    out.push(TileChoice {
                        flow,
                        tile,
                        estimate: matmul_transfers(flow, spec.dims(), tile),
                    });
                }
            }
        }
    }
    out
}

/// Applies a [`Prune`] strategy, preserving the enumeration order of the
/// survivors. Returns the kept candidates and how many were pruned away.
pub fn prune(candidates: Vec<TileChoice>, strategy: Prune) -> (Vec<TileChoice>, usize) {
    let total = candidates.len();
    let kept: Vec<TileChoice> = match strategy {
        Prune::None => candidates,
        Prune::KeepBest(n) => {
            let mut ranked: Vec<usize> = (0..candidates.len()).collect();
            ranked.sort_by_key(|&i| {
                (candidates[i].estimate.words_total(), candidates[i].estimate.transactions, i)
            });
            let mut keep = vec![false; candidates.len()];
            for &i in ranked.iter().take(n) {
                keep[i] = true;
            }
            candidates.into_iter().zip(keep).filter_map(|(c, k)| k.then_some(c)).collect()
        }
        Prune::WithinFactor(factor) => {
            let best = candidates.iter().map(|c| c.estimate.words_total()).min().unwrap_or(0);
            let cutoff = (best as f64 * factor.max(1.0)).ceil() as u64;
            candidates.into_iter().filter(|c| c.estimate.words_total() <= cutoff).collect()
        }
    };
    let pruned_out = total - kept.len();
    (kept, pruned_out)
}

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// The configuration (flow, tile, analytical estimate).
    pub choice: TileChoice,
    /// Simulator counters for the whole run.
    pub counters: PerfCounters,
    /// Simulated task-clock in milliseconds (the ranking metric).
    pub task_clock_ms: f64,
    /// Whether the run matched the reference kernel.
    pub verified: bool,
    /// Wall-clock compile time per pass (informational: host wall-clock,
    /// not simulated, and excluded from determinism comparisons).
    pub pass_ms: Vec<(String, f64)>,
    /// Whether this result came out of the explorer's cache.
    pub from_cache: bool,
}

impl Evaluation {
    /// The deterministic part of the evaluation: everything except the
    /// wall-clock pass timings and the cache provenance. Two sweeps of the
    /// same spec must agree on this tuple regardless of worker count.
    pub fn deterministic_key(&self) -> (String, PerfCounters, u64, bool) {
        (self.choice.label(), self.counters, self.task_clock_ms.to_bits(), self.verified)
    }
}

/// What one exploration produced.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// The explored problem.
    pub problem: MatMulProblem,
    /// Base size of the space.
    pub base: i64,
    /// Capacity budget of the space.
    pub capacity_words: u64,
    /// Legal candidates before pruning.
    pub space_size: usize,
    /// Candidates removed by the analytical prune.
    pub pruned_out: usize,
    /// Evaluations served from the result cache.
    pub cache_hits: usize,
    /// All measured candidates, in enumeration order.
    pub evaluations: Vec<Evaluation>,
    /// The analytical [`best_choice`] pick (if one exists).
    pub heuristic: Option<TileChoice>,
    /// The heuristic pick's own measurement.
    pub heuristic_eval: Option<Evaluation>,
}

impl ExploreReport {
    /// The measured optimum: smallest task-clock, first in enumeration
    /// order among exact ties (deterministic across worker counts).
    pub fn optimum(&self) -> Option<&Evaluation> {
        self.evaluations.iter().min_by(|a, b| a.task_clock_ms.total_cmp(&b.task_clock_ms))
    }

    /// How far the analytical heuristic lands from the explored optimum:
    /// `heuristic ms / optimum ms` (1.0 = the heuristic found the
    /// optimum; 1.25 = the heuristic is 25% slower).
    pub fn heuristic_gap(&self) -> Option<f64> {
        let h = self.heuristic_eval.as_ref()?;
        let o = self.optimum()?;
        Some(h.task_clock_ms / o.task_clock_ms)
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    dims: (i64, i64, i64),
    base: i64,
    seed: u64,
    flow: &'static str,
    tile: (i64, i64, i64),
}

impl CacheKey {
    fn new(spec: &ExploreSpec, choice: &TileChoice) -> Self {
        Self {
            dims: (spec.problem.m, spec.problem.n, spec.problem.k),
            base: spec.base,
            seed: spec.seed,
            flow: choice.flow.short_name(),
            tile: choice.tile,
        }
    }
}

/// The deterministic payload a cache entry stores.
#[derive(Clone)]
struct CachedEval {
    counters: PerfCounters,
    task_clock_ms: f64,
    verified: bool,
    pass_ms: Vec<(String, f64)>,
}

/// A reusable exploration engine with a cross-sweep result cache.
///
/// One `Explorer` can serve many [`ExploreSpec`]s; configurations already
/// measured (same problem, base, seed, flow, and tile) are returned from
/// the cache instead of re-simulated.
#[derive(Default)]
pub struct Explorer {
    cache: Mutex<HashMap<CacheKey, CachedEval>>,
    evals_performed: AtomicUsize,
}

impl Explorer {
    /// A fresh engine with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many simulator runs this engine has actually performed (cache
    /// hits excluded).
    pub fn evals_performed(&self) -> usize {
        self.evals_performed.load(Ordering::Relaxed)
    }

    /// How many results the cache currently holds.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("explorer cache poisoned").len()
    }

    /// Runs one exploration: enumerate, prune, measure (in parallel),
    /// and relate the heuristic pick to the measured optimum.
    ///
    /// # Errors
    ///
    /// Propagates the first failing candidate's [`Diagnostic`] (by
    /// enumeration order, independent of the worker count).
    pub fn explore(&self, spec: &ExploreSpec) -> Result<ExploreReport, Diagnostic> {
        let all = enumerate(spec);
        let space_size = all.len();
        if space_size == 0 {
            return Err(Diagnostic::error(format!(
                "design space for {} (base {}, {} words) is empty",
                spec.problem, spec.base, spec.capacity_words
            )));
        }
        let (candidates, pruned_out) = prune(all, spec.prune);

        let evaluations = self.measure_all(spec, &candidates)?;
        let cache_hits = evaluations.iter().filter(|e| e.from_cache).count();

        // The heuristic pick, measured through the same cache path. Its
        // configuration is usually one of the measured candidates, so this
        // is a cache hit unless pruning removed it.
        let heuristic = best_choice(spec.dims(), spec.base, spec.capacity_words).ok();
        let heuristic_eval = match &heuristic {
            Some(choice) => Some(self.measure_one(spec, choice)?),
            None => None,
        };

        Ok(ExploreReport {
            problem: spec.problem,
            base: spec.base,
            capacity_words: spec.capacity_words,
            space_size,
            pruned_out,
            cache_hits,
            evaluations,
            heuristic,
            heuristic_eval,
        })
    }

    /// Measures every candidate, fanning cache misses out over
    /// `spec.workers` threads. Results come back in candidate order.
    fn measure_all(
        &self,
        spec: &ExploreSpec,
        candidates: &[TileChoice],
    ) -> Result<Vec<Evaluation>, Diagnostic> {
        // Partition into cache hits and pending (unmeasured) candidates.
        let mut slots: Vec<Option<Evaluation>> = Vec::with_capacity(candidates.len());
        let mut pending: Vec<(usize, TileChoice)> = Vec::new();
        {
            let cache = self.cache.lock().expect("explorer cache poisoned");
            for (i, choice) in candidates.iter().enumerate() {
                match cache.get(&CacheKey::new(spec, choice)) {
                    Some(hit) => slots.push(Some(hit.to_evaluation(*choice, true))),
                    None => {
                        slots.push(None);
                        pending.push((i, *choice));
                    }
                }
            }
        }

        // Measure the pending candidates: a shared work index, one
        // recycled-SoC session per worker.
        let workers = spec.workers.clamp(1, pending.len().max(1));
        let next = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, Result<CachedEval, Diagnostic>)>> =
            Mutex::new(Vec::with_capacity(pending.len()));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut session = Session::for_sweep();
                    loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        let Some((index, choice)) = pending.get(slot) else { break };
                        let result = evaluate(&mut session, spec, choice);
                        done.lock().expect("result sink poisoned").push((*index, result));
                    }
                });
            }
        });

        let mut results = done.into_inner().expect("result sink poisoned");
        results.sort_by_key(|(index, _)| *index);
        let mut cache = self.cache.lock().expect("explorer cache poisoned");
        for (index, result) in results {
            // On error, report the earliest failing candidate (the sort
            // above makes this independent of scheduling).
            let eval = result?;
            cache.insert(CacheKey::new(spec, &candidates[index]), eval.clone());
            self.evals_performed.fetch_add(1, Ordering::Relaxed);
            slots[index] = Some(eval.to_evaluation(candidates[index], false));
        }
        Ok(slots.into_iter().map(|s| s.expect("every slot filled")).collect())
    }

    /// Measures a single configuration through the cache.
    fn measure_one(
        &self,
        spec: &ExploreSpec,
        choice: &TileChoice,
    ) -> Result<Evaluation, Diagnostic> {
        let key = CacheKey::new(spec, choice);
        if let Some(hit) = self.cache.lock().expect("explorer cache poisoned").get(&key) {
            return Ok(hit.to_evaluation(*choice, true));
        }
        let mut session = Session::for_sweep();
        let eval = evaluate(&mut session, spec, choice)?;
        self.evals_performed.fetch_add(1, Ordering::Relaxed);
        self.cache.lock().expect("explorer cache poisoned").insert(key, eval.clone());
        Ok(eval.to_evaluation(*choice, false))
    }
}

impl CachedEval {
    fn to_evaluation(&self, choice: TileChoice, from_cache: bool) -> Evaluation {
        Evaluation {
            choice,
            counters: self.counters,
            task_clock_ms: self.task_clock_ms,
            verified: self.verified,
            pass_ms: self.pass_ms.clone(),
            from_cache,
        }
    }
}

/// Compiles and runs one candidate on `session`'s recycled SoC.
fn evaluate(
    session: &mut Session,
    spec: &ExploreSpec,
    choice: &TileChoice,
) -> Result<CachedEval, Diagnostic> {
    let (tm, tn, tk) = choice.tile;
    let config =
        AcceleratorConfig::preset_v4_with_tile(choice.instantiation_base(spec.base), tm, tn, tk)
            .with_selected_flow(choice.flow.short_name());
    let plan = CompilePlan::for_accelerator(config).seed(spec.seed);
    let report = session.run(&MatMulWorkload::new(spec.problem), &plan)?;
    if !report.verified {
        return Err(Diagnostic::error(format!(
            "candidate {} failed verification on {}",
            choice.label(),
            spec.problem
        )));
    }
    Ok(CachedEval {
        counters: report.counters,
        task_clock_ms: report.task_clock_ms,
        verified: report.verified,
        pass_ms: report.pass_timings.iter().map(|t| (t.pass.clone(), t.millis)).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> ExploreSpec {
        ExploreSpec::new(MatMulProblem::new(16, 16, 16)).base(8).seed(7)
    }

    #[test]
    fn enumeration_is_deterministic_and_capacity_filtered() {
        let spec = small_spec();
        let a = enumerate(&spec);
        let b = enumerate(&spec);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
        // 2 edges per dim (8, 16), 4 flows.
        assert_eq!(a.len(), 2 * 2 * 2 * 4);
        let tight = small_spec().capacity_words(3 * 8 * 8);
        assert_eq!(enumerate(&tight).len(), 4, "only the 8x8x8 tile fits");
    }

    #[test]
    fn keep_best_prunes_to_n_preserving_order() {
        let spec = small_spec();
        let all = enumerate(&spec);
        let (kept, dropped) = prune(all.clone(), Prune::KeepBest(5));
        assert_eq!(kept.len(), 5);
        assert_eq!(dropped, all.len() - 5);
        // Survivors appear in the same relative order as the enumeration.
        let mut cursor = 0;
        for c in &kept {
            let at = all[cursor..].iter().position(|x| x == c).expect("kept ⊆ all");
            cursor += at + 1;
        }
        // The best estimate always survives.
        let best = all.iter().map(|c| c.estimate.words_total()).min().unwrap();
        assert!(kept.iter().any(|c| c.estimate.words_total() == best));
    }

    #[test]
    fn within_factor_keeps_everything_at_infinity_and_best_at_one() {
        let spec = small_spec();
        let all = enumerate(&spec);
        let (kept, _) = prune(all.clone(), Prune::WithinFactor(f64::INFINITY));
        assert_eq!(kept.len(), all.len());
        let best = all.iter().map(|c| c.estimate.words_total()).min().unwrap();
        let (kept, _) = prune(all, Prune::WithinFactor(1.0));
        assert!(!kept.is_empty());
        assert!(kept.iter().all(|c| c.estimate.words_total() == best));
    }

    #[test]
    fn empty_space_is_a_diagnostic() {
        // Capacity too small for any tile, including the degenerate one.
        let spec = small_spec().capacity_words(1);
        let err = Explorer::new().explore(&spec).unwrap_err();
        assert!(err.message.contains("empty"), "{}", err.message);
    }
}
