//! `axi4mlir-lint` — standalone static checker for `.mlir` files.
//!
//! ```text
//! axi4mlir-lint <file.mlir ...> [--deny-warnings]
//! ```
//!
//! Each file is parsed, structurally verified, dialect-verified, and run
//! through the full lint suite (`lint::isa-opcode`, `lint::flow-legal`,
//! `lint::dma-bounds`, `lint::fifo-capacity`, `lint::dead-annotation`,
//! `lint::shape-tile`). Diagnostics are printed one per line, prefixed with
//! the file name. The exit code is nonzero if any file fails to parse or
//! produces an error-severity finding (`--deny-warnings` promotes warnings
//! to failures). Pass `-` to read one module from stdin.

use std::io::Read as _;
use std::process::ExitCode;

use axi4mlir_dialects::lint::lint_module;
use axi4mlir_dialects::verify::verify_dialects;
use axi4mlir_ir::parser::parse_module;
use axi4mlir_ir::verifier::verify;
use axi4mlir_support::diag::{DiagnosticEngine, Severity};

fn usage() -> &'static str {
    "usage: axi4mlir-lint <file.mlir ... | -> [--deny-warnings]"
}

/// Lints one module's text. Returns the diagnostics produced.
fn lint_text(text: &str) -> Result<DiagnosticEngine, String> {
    let module = parse_module(text).map_err(|d| d.to_string())?;
    let mut diags = DiagnosticEngine::new();
    // Structural and dialect verification first: lint facts (liveness,
    // ranges) assume well-formed IR.
    let _ = verify(&module.ctx, module.top(), &mut diags);
    if !diags.has_errors() {
        let _ = verify_dialects(&module.ctx, module.top(), &mut diags);
    }
    if !diags.has_errors() {
        let _ = lint_module(&module.ctx, module.top(), &mut diags);
    }
    Ok(diags)
}

fn run() -> Result<bool, String> {
    let mut files = Vec::new();
    let mut deny_warnings = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--help" | "-h" => return Err(usage().to_owned()),
            other if other == "-" || !other.starts_with('-') => files.push(other.to_owned()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if files.is_empty() {
        return Err(usage().to_owned());
    }
    let mut clean = true;
    for file in &files {
        let text = if file == "-" {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf).map_err(|e| e.to_string())?;
            buf
        } else {
            std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?
        };
        match lint_text(&text) {
            Ok(diags) => {
                for d in diags.diagnostics() {
                    eprintln!("{file}: {d}");
                }
                let failing = diags.has_errors()
                    || (deny_warnings
                        && diags.diagnostics().iter().any(|d| d.severity == Severity::Warning));
                if failing {
                    clean = false;
                } else {
                    println!("{file}: ok");
                }
            }
            Err(message) => {
                eprintln!("{file}: parse error: {message}");
                clean = false;
            }
        }
    }
    Ok(clean)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("axi4mlir-lint: {message}");
            ExitCode::FAILURE
        }
    }
}
