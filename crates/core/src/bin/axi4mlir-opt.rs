//! `axi4mlir-opt` — the `mlir-opt`-style command-line driver.
//!
//! Reads a module in the generic textual form, applies the AXI4MLIR pass
//! pipeline, and prints the transformed module:
//!
//! ```text
//! axi4mlir-opt input.mlir --config accel.json [--accel NAME] [--flow Cs]
//!              [--cache-tile N] [--no-lower] [--coalesce] [--print-ir-after-all]
//!              [--timing] [--lint] [--verify-each]
//! ```
//!
//! Without `--config` the input must already carry the Fig. 6a trait
//! attributes (e.g. IR produced by `--print-ir-after-all`), and only the
//! codegen/lowering passes run. Pass `-` as the input to read stdin.
//! `--timing` prints a per-pass wall-clock report to stderr (MLIR's
//! `-mlir-timing` workflow). `--lint` runs the static lint suite over the
//! parsed input before the pipeline and aborts on any `lint::*` error.
//! `--verify-each` additionally runs the dialect verifier (on top of the
//! always-on structural verifier) between every pass, so the pass that
//! breaks an invariant is blamed by name.

use std::io::Read as _;
use std::process::ExitCode;

use axi4mlir_config::SystemConfig;
use axi4mlir_core::driver::PipelineBuilder;
use axi4mlir_dialects::lint;
use axi4mlir_dialects::verify::verify_dialects;
use axi4mlir_ir::parser::parse_module;
use axi4mlir_ir::pass::render_timings;
use axi4mlir_ir::printer::print_op;
use axi4mlir_support::diag::DiagnosticEngine;

struct Options {
    input: String,
    config: Option<String>,
    accel: Option<String>,
    flow: Option<String>,
    cache_tile: Option<i64>,
    lower: bool,
    coalesce: bool,
    print_after_all: bool,
    timing: bool,
    lint: bool,
    verify_each: bool,
}

fn usage() -> &'static str {
    "usage: axi4mlir-opt <input.mlir | -> [--config accel.json] [--accel NAME] \
     [--flow Ns|As|Bs|Cs|<name>] [--cache-tile N] [--no-lower] [--coalesce] \
     [--print-ir-after-all] [--timing] [--lint] [--verify-each]"
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        input: String::new(),
        config: None,
        accel: None,
        flow: None,
        cache_tile: None,
        lower: true,
        coalesce: false,
        print_after_all: false,
        timing: false,
        lint: false,
        verify_each: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => opts.config = Some(args.next().ok_or("--config needs a file")?),
            "--accel" => opts.accel = Some(args.next().ok_or("--accel needs a name")?),
            "--flow" => opts.flow = Some(args.next().ok_or("--flow needs a name")?),
            "--cache-tile" => {
                let v = args.next().ok_or("--cache-tile needs a number")?;
                opts.cache_tile = Some(v.parse().map_err(|_| "cache tile must be an integer")?);
            }
            "--no-lower" => opts.lower = false,
            "--coalesce" => opts.coalesce = true,
            "--print-ir-after-all" => opts.print_after_all = true,
            "--timing" => opts.timing = true,
            "--lint" => opts.lint = true,
            "--verify-each" => opts.verify_each = true,
            "--help" | "-h" => return Err(usage().to_owned()),
            other if opts.input.is_empty() && !other.starts_with('-') || other == "-" => {
                opts.input = other.to_owned();
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if opts.input.is_empty() {
        return Err(usage().to_owned());
    }
    Ok(opts)
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    let text = if opts.input == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).map_err(|e| e.to_string())?;
        buf
    } else {
        std::fs::read_to_string(&opts.input)
            .map_err(|e| format!("cannot read {}: {e}", opts.input))?
    };
    let mut module = parse_module(&text).map_err(|d| d.to_string())?;

    if opts.lint {
        let mut diags = DiagnosticEngine::new();
        let result = lint::lint_module(&module.ctx, module.top(), &mut diags);
        for d in diags.diagnostics() {
            eprintln!("{d}");
        }
        result.map_err(|d| format!("lint failed: {}", d.message))?;
    }

    let mut builder = PipelineBuilder::new()
        .pre_annotated()
        .cache_tile(opts.cache_tile)
        .coalesce(opts.coalesce)
        .lower(opts.lower)
        .capture_ir(opts.print_after_all);
    if let Some(config_path) = &opts.config {
        let config_text = std::fs::read_to_string(config_path)
            .map_err(|e| format!("cannot read {config_path}: {e}"))?;
        let system = SystemConfig::from_json(&config_text).map_err(|d| d.to_string())?;
        let mut accel = match &opts.accel {
            Some(name) => system
                .accelerator(name)
                .ok_or_else(|| format!("no accelerator named {name} in {config_path}"))?
                .clone(),
            None => system
                .accelerators
                .first()
                .ok_or_else(|| format!("{config_path} defines no accelerators"))?
                .clone(),
        };
        if let Some(flow) = &opts.flow {
            if accel.flow(flow).is_none() {
                let offered: Vec<&str> = accel.flows.iter().map(|(n, _)| n.as_str()).collect();
                return Err(format!(
                    "accelerator {} does not offer flow `{flow}` (offers: {})",
                    accel.name,
                    offered.join(", ")
                ));
            }
            accel = accel.with_selected_flow(flow);
        }
        builder = builder.accelerator(accel);
    }

    let mut pm = builder.build();
    if opts.verify_each {
        pm.add_verifier(Box::new(|m| {
            let mut diags = DiagnosticEngine::new();
            verify_dialects(&m.ctx, m.top(), &mut diags)
        }));
    }
    let snapshots = pm.run(&mut module).map_err(|d| d.to_string())?;
    for snapshot in snapshots {
        eprintln!("// ----- IR after {} -----", snapshot.pass);
        eprintln!("{}", snapshot.ir);
    }
    if opts.timing {
        eprint!("{}", render_timings(pm.timings()));
    }
    print!("{}", print_op(&module.ctx, module.top()));
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("axi4mlir-opt: {message}");
            ExitCode::FAILURE
        }
    }
}
