//! The persistent, candidate-keyed result cache (`BENCH_cache.json`).
//!
//! Exploration results are deterministic functions of their
//! [`CandidateKey`], so they can be shared across processes: repeated
//! local sweeps and CI runs load the cache, serve overlapping candidates
//! without re-simulating them, and merge-save what they measured — and
//! the cross-problem transfer model ([`super::transfer`]) mines the same
//! entries to warm-start sweeps of *new* problem shapes. The file is a
//! plain `axi4mlir-support` JSON document:
//!
//! ```json
//! {
//!   "schema": "axi4mlir-explore-cache/v2",
//!   "entries": [
//!     { "key": { "workload": "matmul 16x16x16", "accel": "v4_8",
//!                "flow": "Cs", "tile": [16, 8, 8], "coalesce": false,
//!                "specialized_copies": true, "cache_tiling": "auto",
//!                "cpu": "pynq_z2", "seed": 7 },
//!       "counters": { "host_cycles": 1, ... },
//!       "task_clock_ms": 0.25, "verified": true }
//!   ]
//! }
//! ```
//!
//! Schema `v2` added the `cache_tiling` and `cpu` key members for the
//! widened options axes. `v1` documents still load: their entries were
//! all measured under the then-implicit defaults (`auto` tiling on the
//! `pynq_z2` host), so migration fills exactly those values and loses
//! nothing; the next save rewrites the document as `v2`.
//!
//! Entries are written in key order, so the file diffs cleanly. Counters
//! are exact integers and `task_clock_ms` uses Rust's shortest-roundtrip
//! float formatting, so a loaded entry is bit-identical to the measured
//! one. Wall-clock pass timings are *not* persisted (they are
//! host-machine noise, excluded from determinism comparisons); cache
//! hits served from disk report empty pass timings.
//!
//! Robustness policy: a cache is disposable. A missing file loads as an
//! empty cache, a file with an unknown schema tag is ignored (the CI
//! cache key embeds the schema version, so this only happens across
//! versions locally), unparseable *entries* are skipped, and a
//! syntactically broken file loads as an empty cache with a stderr
//! warning (it is rewritten whole on the next save); only unreadable
//! files are reported as errors. Saves are atomic: the merged document
//! is written to a temporary file in the same directory and renamed into
//! place, so a crash mid-save leaves the old cache intact rather than a
//! truncated JSON file.

use std::collections::HashMap;
use std::fs;
use std::path::Path;

use axi4mlir_config::{CacheTiling, CpuModel};
use axi4mlir_sim::counters::PerfCounters;
use axi4mlir_support::diag::Diagnostic;
use axi4mlir_support::json::JsonValue;

use super::space::{CandidateKey, OptionsPoint};

/// The schema tag of the persistent cache document. Bump on any change
/// to the key or payload layout (the CI cache key embeds this value).
pub const CACHE_SCHEMA: &str = "axi4mlir-explore-cache/v2";

/// The previous schema tag, still accepted by [`parse`]: `v1` keys lack
/// the `cache_tiling`/`cpu` members and migrate to the defaults they
/// were implicitly measured under.
pub const CACHE_SCHEMA_V1: &str = "axi4mlir-explore-cache/v1";

/// The deterministic payload a cache entry stores.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedEval {
    /// Simulator counters for the whole run.
    pub counters: PerfCounters,
    /// Simulated task-clock in milliseconds.
    pub task_clock_ms: f64,
    /// Whether the run matched the reference kernel.
    pub verified: bool,
    /// Wall-clock pass timings; informational, never persisted.
    pub pass_ms: Vec<(String, f64)>,
}

/// Serializes a [`CandidateKey`] as the JSON object the cache document
/// (and the hub wire protocol, via [`super::wire`]) spells keys in.
pub fn key_to_json(key: &CandidateKey) -> JsonValue {
    JsonValue::object([
        ("workload".to_owned(), key.workload.clone().into()),
        ("accel".to_owned(), key.accel.clone().into()),
        ("flow".to_owned(), key.flow.clone().into()),
        (
            "tile".to_owned(),
            JsonValue::Array(vec![key.tile.0.into(), key.tile.1.into(), key.tile.2.into()]),
        ),
        ("coalesce".to_owned(), key.options.coalesce.into()),
        ("specialized_copies".to_owned(), key.options.specialized_copies.into()),
        ("cache_tiling".to_owned(), key.options.cache_tiling.label().into()),
        ("cpu".to_owned(), key.options.cpu.label().into()),
        ("seed".to_owned(), key.seed.into()),
    ])
}

/// Parses a [`CandidateKey`] from its JSON object form. With
/// `migrate_v1`, absent `cache_tiling`/`cpu` members fill the defaults a
/// v1 cache document was implicitly measured under; without it they make
/// the key unparseable (`None`).
pub fn key_from_json(value: &JsonValue, migrate_v1: bool) -> Option<CandidateKey> {
    let tile = value.get("tile")?.as_array()?;
    let edge = |i: usize| tile.get(i).and_then(JsonValue::as_i64);
    // The v2 members. In a v1 document they are absent by construction —
    // every measurement was implicitly taken at the defaults, which
    // migration fills. In a v2 document a missing (or malformed) member
    // is a broken entry: defaulting it would serve some other
    // configuration's measurement under the default-axes key.
    let cache_tiling = match value.get("cache_tiling") {
        None if migrate_v1 => CacheTiling::Auto,
        None => return None,
        Some(tag) => CacheTiling::parse(tag.as_str()?)?,
    };
    let cpu = match value.get("cpu") {
        None if migrate_v1 => CpuModel::PynqZ2,
        None => return None,
        Some(tag) => CpuModel::parse(tag.as_str()?)?,
    };
    Some(CandidateKey {
        workload: value.get("workload")?.as_str()?.to_owned(),
        accel: value.get("accel")?.as_str()?.to_owned(),
        flow: value.get("flow")?.as_str()?.to_owned(),
        tile: (edge(0)?, edge(1)?, edge(2)?),
        options: OptionsPoint {
            coalesce: value.get("coalesce")?.as_bool()?,
            specialized_copies: value.get("specialized_copies")?.as_bool()?,
            cache_tiling,
            cpu,
        },
        seed: value.get("seed")?.as_u64()?,
    })
}

type CounterField = (&'static str, fn(&PerfCounters) -> u64, fn(&mut PerfCounters, u64));

/// `(name, getter, setter)` for every [`PerfCounters`] field, the single
/// place the serialized counter list is spelled.
const COUNTER_FIELDS: [CounterField; 13] = [
    ("host_cycles", |c| c.host_cycles, |c, v| c.host_cycles = v),
    ("device_cycles", |c| c.device_cycles, |c, v| c.device_cycles = v),
    ("cache_references", |c| c.cache_references, |c, v| c.cache_references = v),
    ("l1_misses", |c| c.l1_misses, |c, v| c.l1_misses = v),
    ("l2_misses", |c| c.l2_misses, |c, v| c.l2_misses = v),
    ("branch_instructions", |c| c.branch_instructions, |c, v| c.branch_instructions = v),
    ("instructions", |c| c.instructions, |c, v| c.instructions = v),
    ("uncached_accesses", |c| c.uncached_accesses, |c, v| c.uncached_accesses = v),
    ("dma_bytes_to_accel", |c| c.dma_bytes_to_accel, |c, v| c.dma_bytes_to_accel = v),
    ("dma_bytes_from_accel", |c| c.dma_bytes_from_accel, |c, v| c.dma_bytes_from_accel = v),
    ("dma_transactions", |c| c.dma_transactions, |c, v| c.dma_transactions = v),
    ("accel_compute_cycles", |c| c.accel_compute_cycles, |c, v| c.accel_compute_cycles = v),
    ("accel_macs", |c| c.accel_macs, |c, v| c.accel_macs = v),
];

/// A total order on *persisted* entry payloads (wall-clock pass timings
/// are never persisted and do not contribute). The sharded layout's
/// commutative merge uses it to pick a deterministic winner when two
/// caches disagree about one key — possible only with corrupt or foreign
/// data, since measurements are deterministic functions of the key.
pub(crate) fn payload_rank(eval: &CachedEval) -> (u64, bool, [u64; 13]) {
    let mut counters = [0u64; 13];
    for (slot, (_, get, _)) in counters.iter_mut().zip(&COUNTER_FIELDS) {
        *slot = get(&eval.counters);
    }
    (eval.task_clock_ms.to_bits(), eval.verified, counters)
}

/// Serializes the full counter set as a JSON object (one member per
/// [`PerfCounters`] field).
pub fn counters_to_json(counters: &PerfCounters) -> JsonValue {
    JsonValue::object(
        COUNTER_FIELDS.iter().map(|(name, get, _)| ((*name).to_owned(), get(counters).into())),
    )
}

/// Parses a counter set serialized by [`counters_to_json`]; every field
/// must be present.
pub fn counters_from_json(value: &JsonValue) -> Option<PerfCounters> {
    let mut counters = PerfCounters::new();
    for (name, _, set) in &COUNTER_FIELDS {
        set(&mut counters, value.get(name)?.as_u64()?);
    }
    Some(counters)
}

/// Serializes a cache snapshot in key order.
pub fn render(entries: &HashMap<CandidateKey, CachedEval>) -> String {
    let mut ordered: Vec<(&CandidateKey, &CachedEval)> = entries.iter().collect();
    ordered.sort_by_key(|&(key, _)| key);
    let entries = ordered
        .into_iter()
        .map(|(key, eval)| {
            JsonValue::object([
                ("key".to_owned(), key_to_json(key)),
                ("counters".to_owned(), counters_to_json(&eval.counters)),
                ("task_clock_ms".to_owned(), JsonValue::Float(eval.task_clock_ms)),
                ("verified".to_owned(), eval.verified.into()),
            ])
        })
        .collect();
    let mut text = JsonValue::object([
        ("schema".to_owned(), CACHE_SCHEMA.into()),
        ("entries".to_owned(), JsonValue::Array(entries)),
    ])
    .to_json_pretty();
    text.push('\n');
    text
}

/// Parses a cache document; unknown schemas yield an empty cache, and
/// `v1` documents migrate (absent `cache_tiling`/`cpu` key members fill
/// in the defaults those entries were measured under).
pub fn parse(text: &str) -> Result<HashMap<CandidateKey, CachedEval>, Diagnostic> {
    let doc = JsonValue::parse(text)?;
    let mut out = HashMap::new();
    let schema = doc.get("schema").and_then(JsonValue::as_str);
    let migrate_v1 = schema == Some(CACHE_SCHEMA_V1);
    if schema != Some(CACHE_SCHEMA) && !migrate_v1 {
        return Ok(out);
    }
    for entry in doc.get("entries").and_then(JsonValue::as_array).unwrap_or(&[]) {
        let Some(key) = entry.get("key").and_then(|k| key_from_json(k, migrate_v1)) else {
            continue;
        };
        let Some(counters) = entry.get("counters").and_then(counters_from_json) else { continue };
        let Some(task_clock_ms) = entry.get("task_clock_ms").and_then(JsonValue::as_f64) else {
            continue;
        };
        let Some(verified) = entry.get("verified").and_then(JsonValue::as_bool) else { continue };
        out.insert(key, CachedEval { counters, task_clock_ms, verified, pass_ms: Vec::new() });
    }
    Ok(out)
}

/// Loads a cache file. A missing file is an empty cache; so is a
/// syntactically broken one (with a stderr warning) — a corrupt cache
/// must never fail the sweep it was meant to speed up, and the next save
/// rewrites it whole.
///
/// # Errors
///
/// Returns a [`Diagnostic`] for unreadable files (permissions, IO).
pub fn load(path: &Path) -> Result<HashMap<CandidateKey, CachedEval>, Diagnostic> {
    match fs::read_to_string(path) {
        Ok(text) => match parse(&text) {
            Ok(entries) => Ok(entries),
            Err(diag) => {
                eprintln!(
                    "warning: ignoring corrupt result cache {}: {} (it will be rewritten on the \
                     next save)",
                    path.display(),
                    diag.message
                );
                Ok(HashMap::new())
            }
        },
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(HashMap::new()),
        Err(err) => Err(Diagnostic::error(format!("cannot read {}: {err}", path.display()))),
    }
}

/// The sibling temporary path a save stages its document in before the
/// rename (same directory, so the rename stays within one filesystem).
/// Unique per process *and* per call, so concurrent saves in one
/// process cannot interleave writes into a shared staging file.
pub(crate) fn staging_path(path: &Path) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);
    let file = path.file_name().and_then(|n| n.to_str()).unwrap_or("BENCH_cache.json");
    path.with_file_name(format!(
        ".{file}.tmp-{}-{}",
        std::process::id(),
        SAVE_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Merges `entries` over whatever the file already holds and writes the
/// result (in-memory results win, though identical keys imply identical
/// payloads). Returns the merged entry count.
///
/// The write is atomic: the merged document goes to a temporary file in
/// the same directory first and is renamed over `path`, so a process
/// killed mid-save leaves the previous cache loadable instead of a
/// truncated JSON file. The load/merge/rename *sequence* is still not
/// atomic: sequential sharers (CI runs, repeated local sweeps)
/// accumulate entries, but two processes saving concurrently can each
/// miss the other's additions. That is acceptable for a cache — a lost
/// entry is simply re-measured later.
///
/// # Errors
///
/// Propagates filesystem errors as [`Diagnostic`]s.
pub fn save(path: &Path, entries: &HashMap<CandidateKey, CachedEval>) -> Result<usize, Diagnostic> {
    // An *unreadable* existing file propagates (overwriting it would
    // silently discard every accumulated entry); corrupt files have
    // already warned inside `load` and are deliberately rewritten.
    let mut merged = load(path)?;
    merged.extend(entries.iter().map(|(k, v)| (k.clone(), v.clone())));
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        fs::create_dir_all(dir)
            .map_err(|err| Diagnostic::error(format!("cannot create {}: {err}", dir.display())))?;
    }
    let staging = staging_path(path);
    fs::write(&staging, render(&merged))
        .map_err(|err| Diagnostic::error(format!("cannot write {}: {err}", staging.display())))?;
    if let Err(err) = fs::rename(&staging, path) {
        fs::remove_file(&staging).ok();
        return Err(Diagnostic::error(format!(
            "cannot move {} into {}: {err}",
            staging.display(),
            path.display()
        )));
    }
    Ok(merged.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_key(seed: u64) -> CandidateKey {
        CandidateKey {
            workload: "matmul 16x16x16".to_owned(),
            accel: "v4_8".to_owned(),
            flow: "Cs".to_owned(),
            tile: (16, 8, 8),
            options: OptionsPoint::default(),
            seed,
        }
    }

    fn sample_eval() -> CachedEval {
        CachedEval {
            counters: PerfCounters {
                host_cycles: 123,
                device_cycles: 456,
                dma_transactions: 7,
                accel_macs: u64::MAX,
                ..PerfCounters::new()
            },
            task_clock_ms: 0.1 + 0.2, // deliberately non-representable
            verified: true,
            pass_ms: vec![("annotate".to_owned(), 0.5)],
        }
    }

    #[test]
    fn cache_round_trips_bit_identically() {
        let mut entries = HashMap::new();
        entries.insert(sample_key(7), sample_eval());
        entries.insert(sample_key(8), sample_eval());
        let parsed = parse(&render(&entries)).unwrap();
        assert_eq!(parsed.len(), 2);
        let back = &parsed[&sample_key(7)];
        assert_eq!(back.counters, sample_eval().counters, "counters are exact");
        assert_eq!(
            back.task_clock_ms.to_bits(),
            sample_eval().task_clock_ms.to_bits(),
            "floats survive shortest-roundtrip formatting"
        );
        assert!(back.verified);
        assert!(back.pass_ms.is_empty(), "wall-clock timings are not persisted");
    }

    #[test]
    fn render_is_deterministic_regardless_of_insertion_order() {
        let mut a = HashMap::new();
        a.insert(sample_key(1), sample_eval());
        a.insert(sample_key(2), sample_eval());
        let mut b = HashMap::new();
        b.insert(sample_key(2), sample_eval());
        b.insert(sample_key(1), sample_eval());
        assert_eq!(render(&a), render(&b));
    }

    #[test]
    fn foreign_schemas_and_broken_entries_parse_empty() {
        assert!(parse("{\"schema\": \"something-else/v9\", \"entries\": []}").unwrap().is_empty());
        assert!(parse("not json").is_err(), "parse itself still reports syntax errors");
        // Unparseable entries are skipped, not fatal.
        let text = "{\"schema\": \"axi4mlir-explore-cache/v2\", \"entries\": [ {\"key\": 5} ]}";
        assert!(parse(text).unwrap().is_empty());
        // A malformed v2 member is a broken entry, not a v1 key.
        let text = r#"{"schema": "axi4mlir-explore-cache/v2", "entries": [ {"key": {
            "workload": "matmul 8x8x8", "accel": "v4_8", "flow": "Ns",
            "tile": [8, 8, 8], "coalesce": false, "specialized_copies": true,
            "cache_tiling": "sideways", "cpu": "pynq_z2", "seed": 1},
            "counters": {}, "task_clock_ms": 1.0, "verified": true} ]}"#;
        assert!(parse(text).unwrap().is_empty());
        // So is an *absent* v2 member: only v1 documents migrate
        // defaults — defaulting inside a v2 document would serve a
        // foreign measurement under the default-axes key.
        let text = r#"{"schema": "axi4mlir-explore-cache/v2", "entries": [ {"key": {
            "workload": "matmul 8x8x8", "accel": "v4_8", "flow": "Ns",
            "tile": [8, 8, 8], "coalesce": false, "specialized_copies": true,
            "seed": 1},
            "counters": {}, "task_clock_ms": 1.0, "verified": true} ]}"#;
        assert!(parse(text).unwrap().is_empty());
    }

    #[test]
    fn v1_documents_migrate_to_the_default_axes() {
        // A v1 key has no cache_tiling/cpu members: its measurements were
        // taken under the then-implicit defaults, which migration fills.
        let v1 = r#"{
          "schema": "axi4mlir-explore-cache/v1",
          "entries": [
            { "key": { "workload": "matmul 16x16x16", "accel": "v4_8",
                       "flow": "Cs", "tile": [16, 8, 8], "coalesce": false,
                       "specialized_copies": true, "seed": 7 },
              "counters": { "host_cycles": 123, "device_cycles": 456,
                            "cache_references": 0, "l1_misses": 0,
                            "l2_misses": 0, "branch_instructions": 0,
                            "instructions": 0, "uncached_accesses": 0,
                            "dma_bytes_to_accel": 0, "dma_bytes_from_accel": 0,
                            "dma_transactions": 7, "accel_compute_cycles": 0,
                            "accel_macs": 18446744073709551615 },
              "task_clock_ms": 0.30000000000000004, "verified": true }
          ]
        }"#;
        let migrated = parse(v1).unwrap();
        assert_eq!(migrated.len(), 1, "the v1 entry survives migration");
        let (key, eval) = migrated.iter().next().unwrap();
        assert_eq!(key, &sample_key(7), "migrated key equals the v2 default-axes key");
        assert_eq!(key.options.cache_tiling, axi4mlir_config::CacheTiling::Auto);
        assert_eq!(key.options.cpu, axi4mlir_config::CpuModel::PynqZ2);
        assert_eq!(eval.counters, sample_eval().counters, "payload intact, bit for bit");
        assert_eq!(eval.task_clock_ms.to_bits(), sample_eval().task_clock_ms.to_bits());
        // Re-rendering writes the v2 schema with the axes made explicit.
        let rendered = render(&migrated);
        assert!(rendered.contains(CACHE_SCHEMA));
        assert!(rendered.contains("\"cache_tiling\": \"auto\""));
        assert!(rendered.contains("\"cpu\": \"pynq_z2\""));
        assert_eq!(parse(&rendered).unwrap(), migrated, "migrated caches round-trip");
    }

    #[test]
    fn corrupt_cache_files_load_empty_and_are_rewritten_by_save() {
        let dir =
            std::env::temp_dir().join(format!("axi4mlir-cache-corrupt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_cache.json");
        // A truncated document (the old non-atomic failure mode) must not
        // error the sweep: it loads as an empty cache...
        fs::write(&path, "{\"schema\": \"axi4mlir-explore-cache/v1\", \"entr").unwrap();
        assert!(load(&path).unwrap().is_empty(), "corrupt caches are disposable");
        // ...and the next save replaces it with a valid document.
        let mut entries = HashMap::new();
        entries.insert(sample_key(1), sample_eval());
        assert_eq!(save(&path, &entries).unwrap(), 1);
        assert_eq!(load(&path).unwrap().len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_merges_with_the_file_on_disk() {
        let dir = std::env::temp_dir().join(format!("axi4mlir-cache-{}", std::process::id()));
        let path = dir.join("BENCH_cache.json");
        let mut first = HashMap::new();
        first.insert(sample_key(1), sample_eval());
        assert_eq!(save(&path, &first).unwrap(), 1);
        let mut second = HashMap::new();
        second.insert(sample_key(2), sample_eval());
        assert_eq!(save(&path, &second).unwrap(), 2, "old entries survive the merge");
        assert_eq!(load(&path).unwrap().len(), 2);
        let leftovers = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .count();
        assert_eq!(leftovers, 0, "no staging file left behind");
        fs::remove_dir_all(&dir).ok();
        assert!(load(&path).unwrap().is_empty(), "missing files are empty caches");
    }

    #[test]
    fn staging_paths_are_unique_per_call() {
        let path = Path::new("some/dir/BENCH_cache.json");
        let a = staging_path(path);
        let b = staging_path(path);
        assert_ne!(a, b, "concurrent saves must not share a staging file");
        assert_eq!(a.parent(), path.parent(), "staged in the same directory as the target");
    }

    #[test]
    fn a_crash_mid_save_leaves_the_old_cache_loadable() {
        let dir = std::env::temp_dir().join(format!("axi4mlir-cache-crash-{}", std::process::id()));
        let path = dir.join("BENCH_cache.json");
        let mut entries = HashMap::new();
        entries.insert(sample_key(1), sample_eval());
        assert_eq!(save(&path, &entries).unwrap(), 1);

        // Model a process killed mid-save: the staging file holds a
        // half-written document, the rename never happened. The real
        // cache is untouched and still loads, and the leftover staging
        // file bothers nobody.
        fs::write(staging_path(&path), "{\"schema\": \"axi4mlir-explore-c").unwrap();
        let survived = load(&path).unwrap();
        assert_eq!(survived.len(), 1, "old contents intact after the simulated crash");
        assert_eq!(survived[&sample_key(1)].counters, sample_eval().counters);

        // A later save still merges and completes the rename.
        let mut more = HashMap::new();
        more.insert(sample_key(2), sample_eval());
        assert_eq!(save(&path, &more).unwrap(), 2);
        assert_eq!(load(&path).unwrap().len(), 2);
        fs::remove_dir_all(&dir).ok();
    }
}
