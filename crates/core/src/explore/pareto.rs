//! Multi-objective dominance and the Pareto front over a sweep's
//! evaluations.
//!
//! The §IV-C heuristics minimize a single scalar (estimated DMA
//! traffic), but the explored space trades simulated task-clock against
//! traffic and accelerator occupancy. This module scores every
//! [`Evaluation`] under a set of [`Objective`]s (all phrased so smaller
//! is better) and computes the *non-dominated front*: the evaluations no
//! other evaluation beats on every objective at once. The front is what
//! `BENCH_explore.json` reports, and where the paper's analytical pick
//! is located relative to it.
//!
//! Dominance is the standard strict Pareto order: `a` dominates `b` when
//! `a` is no worse on every objective and strictly better on at least
//! one. The front is a *set* — it is invariant under the order
//! evaluations are listed in (asserted by the property tests) — but this
//! module reports it in evaluation order so reports stay deterministic.

use axi4mlir_heuristics::objective::Objective;

use super::Evaluation;

impl Evaluation {
    /// The accelerator's occupancy: the fraction of device-domain time
    /// spent computing (as opposed to streaming DMA beats). Zero when the
    /// run never entered the device domain.
    pub fn occupancy(&self) -> f64 {
        if self.counters.device_cycles == 0 {
            return 0.0;
        }
        self.counters.accel_compute_cycles as f64 / self.counters.device_cycles as f64
    }

    /// DMA words (32-bit) moved in both directions.
    pub fn dma_words(&self) -> u64 {
        self.counters.dma_bytes_total() / 4
    }

    /// The measured score of one objective — smaller is better for every
    /// variant ([`Objective::Occupancy`] scores the *idle* fraction).
    pub fn objective_value(&self, objective: Objective) -> f64 {
        match objective {
            Objective::TaskClock => self.task_clock_ms,
            Objective::DmaWords => self.dma_words() as f64,
            Objective::DmaTransactions => self.counters.dma_transactions as f64,
            Objective::Occupancy => 1.0 - self.occupancy(),
        }
    }

    /// The ranking score halving promotes by: extensive objectives are
    /// normalized per MAC so proxy measurements of differently-sized
    /// proxies race fairly; intensive ones (occupancy) compare as-is.
    pub fn rank_value(&self, objective: Objective) -> f64 {
        let value = self.objective_value(objective);
        if objective.is_extensive() {
            value / self.work.max(1) as f64
        } else {
            value
        }
    }

    /// The full objective vector, in `objectives` order.
    pub fn objective_vector(&self, objectives: &[Objective]) -> Vec<f64> {
        objectives.iter().map(|&o| self.objective_value(o)).collect()
    }
}

/// Whether `a` Pareto-dominates `b`: no worse on every coordinate and
/// strictly better on at least one. Both vectors are minimized and must
/// have the same length.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len(), "objective vectors must align");
    a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
}

/// Indices of the non-dominated points among `points`, in input order.
/// Points with identical coordinates do not dominate each other, so exact
/// ties all stay on the front (keeping the front order-invariant).
pub fn front_indices(points: &[Vec<f64>]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| !points.iter().any(|other| dominates(other, &points[i])))
        .collect()
}

/// Indices (into `evaluations`) of the Pareto front under `objectives`,
/// in evaluation order. A single objective degenerates to the set of
/// evaluations attaining its minimum.
pub fn pareto_front(evaluations: &[Evaluation], objectives: &[Objective]) -> Vec<usize> {
    let points: Vec<Vec<f64>> =
        evaluations.iter().map(|e| e.objective_vector(objectives)).collect();
    front_indices(&points)
}

/// How many of `evaluations` dominate `eval` under `objectives` — zero
/// means `eval` would sit on (or extend) the front.
pub fn dominated_by_count(
    eval: &Evaluation,
    evaluations: &[Evaluation],
    objectives: &[Objective],
) -> usize {
    let point = eval.objective_vector(objectives);
    evaluations
        .iter()
        .filter(|other| dominates(&other.objective_vector(objectives), &point))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_strict() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 1.0]));
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]), "ties do not dominate");
        assert!(!dominates(&[1.0, 3.0], &[2.0, 1.0]), "trade-offs do not dominate");
        assert!(!dominates(&[2.0, 1.0], &[1.0, 3.0]));
    }

    #[test]
    fn front_keeps_trade_offs_and_drops_dominated_points() {
        let points = vec![
            vec![1.0, 4.0], // fast but heavy: on the front
            vec![4.0, 1.0], // slow but light: on the front
            vec![2.0, 2.0], // balanced: on the front
            vec![3.0, 3.0], // dominated by [2, 2]
            vec![1.0, 4.0], // exact duplicate of the first: also kept
        ];
        assert_eq!(front_indices(&points), vec![0, 1, 2, 4]);
    }

    #[test]
    fn single_objective_front_is_the_minimum() {
        let points = vec![vec![3.0], vec![1.0], vec![2.0], vec![1.0]];
        assert_eq!(front_indices(&points), vec![1, 3]);
    }

    #[test]
    fn empty_input_has_an_empty_front() {
        assert!(front_indices(&[]).is_empty());
    }
}
