//! The pre-simulation plan audit: `CompilePlan` + candidate → lint
//! verdict.
//!
//! Exploration candidates are cheap to enumerate but expensive to
//! measure; a candidate whose realized accelerator configuration is
//! *statically* broken — an opcode its generation does not decode, a
//! flow referencing an undefined opcode, a tile whose staged transfer
//! overflows the DMA staging regions or whose footprint exceeds the
//! device's tile memory — would abort the simulator mid-sweep. The audit runs the reusable lint checks from
//! [`axi4mlir_dialects::lint`] over the realized [`CompilePlan`] before
//! a candidate is admitted to the measure queue, so such candidates are
//! rejected up front with a `lint::*` code and **zero** simulations
//! spent. [`JobSpec::build`](super::JobSpec::build) applies the same
//! audit at validation time, which is what makes a hub `submit` of an
//! unmeasurable job fail immediately instead of mid-sweep.

use axi4mlir_config::AcceleratorConfig;
use axi4mlir_dialects::lint;
use axi4mlir_support::diag::Diagnostic;

use crate::driver::CompilePlan;

use super::space::{Candidate, DesignSpace, Fidelity};

/// The tile footprint (in words) of each data argument: the product of
/// the accelerator tile sizes over the dimensions the argument uses.
/// Untiled dimensions (size 0, the conv convention) make the footprint
/// unknown, which skips the capacity check for that argument.
fn operand_footprints(config: &AcceleratorConfig) -> Vec<Option<i64>> {
    let tile_of = |dim: &str| -> Option<i64> {
        config
            .dims
            .iter()
            .position(|d| d == dim)
            .and_then(|i| config.accel_dims.get(i).copied())
            .filter(|&t| t > 0)
    };
    config
        .data
        .iter()
        .map(|(_, dims)| {
            dims.iter().try_fold(1i64, |acc, dim| tile_of(dim).map(|t| acc.saturating_mul(t)))
        })
        .collect()
}

/// Audits one accelerator configuration: ISA legality of its opcode
/// map, opcode references of the selected flow and the init opcodes,
/// per-opcode staged transfer sizes against the DMA staging regions,
/// and the summed tile footprint against the device's tile memory.
///
/// # Errors
///
/// Returns the first finding as a [`Diagnostic`] carrying its `lint::*`
/// code.
pub fn audit_config(config: &AcceleratorConfig) -> Result<(), Diagnostic> {
    let mut findings = lint::check_isa(&config.name, &config.opcode_map);
    if let Some(flow) = config.flow(&config.selected_flow) {
        let what = format!("flow `{}`", config.selected_flow);
        findings.extend(lint::check_flow_refs(&config.opcode_map, flow, &what));
    }
    for opcode in &config.init_opcodes {
        if config.opcode_map.get(opcode).is_none() {
            findings.push(
                Diagnostic::error(format!("init opcode `{opcode}` is not defined"))
                    .with_code(lint::LINT_FLOW_LEGAL),
            );
        }
    }
    let footprints = operand_footprints(config);
    findings.extend(lint::check_fifo(
        &config.opcode_map,
        &footprints,
        config.dma.input_buffer_size,
        config.dma.output_buffer_size,
    ));
    findings.extend(lint::check_tile_memory(&config.name, &footprints));
    match findings.into_iter().next() {
        Some(first) => Err(first),
        None => Ok(()),
    }
}

/// Audits a compile plan. Plans without an accelerator (the CPU
/// baseline) are trivially clean.
///
/// # Errors
///
/// See [`audit_config`].
pub fn audit_plan(plan: &CompilePlan) -> Result<(), Diagnostic> {
    match &plan.config {
        Some(config) => audit_config(config),
        None => Ok(()),
    }
}

/// Audits one exploration candidate by realizing it (at full fidelity —
/// realization builds the plan, it does not simulate) and auditing the
/// realized plan.
///
/// # Errors
///
/// Returns the realization error for candidates foreign to the space,
/// or the first lint finding (with its `lint::*` code) for candidates
/// whose plan is statically broken.
pub fn audit_candidate(space: &dyn DesignSpace, candidate: &Candidate) -> Result<(), Diagnostic> {
    audit_plan(&space.realize(candidate, Fidelity::Full)?.plan)
}

/// Audits a whole space: `Ok` as soon as one candidate passes (the
/// sweep will count the rest), `Err` with the first finding when every
/// candidate fails — such a space can never measure anything. Empty
/// spaces and spaces that fail to enumerate are left for the sweep to
/// diagnose.
///
/// # Errors
///
/// Returns the first candidate's lint [`Diagnostic`] when no candidate
/// survives the audit.
pub fn audit_space(space: &dyn DesignSpace) -> Result<(), Diagnostic> {
    let Ok(candidates) = space.enumerate() else { return Ok(()) };
    let mut first = None;
    for candidate in &candidates {
        match audit_candidate(space, candidate) {
            Ok(()) => return Ok(()),
            Err(finding) => first = first.or(Some(finding)),
        }
    }
    match first {
        Some(finding) => Err(finding),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi4mlir_config::AcceleratorPreset;
    use axi4mlir_workloads::matmul::MatMulProblem;

    use crate::explore::space::{AccelInstance, MatMulSpace};

    #[test]
    fn every_preset_is_audit_clean() {
        for preset in [
            AcceleratorPreset::V1 { size: 4 },
            AcceleratorPreset::V2 { size: 8 },
            AcceleratorPreset::V3 { size: 16 },
            AcceleratorPreset::V4 { size: 16 },
        ] {
            let config = AcceleratorConfig::preset(preset);
            audit_config(&config).unwrap_or_else(|d| panic!("{}: {}", config.name, d.message));
        }
        audit_config(&AcceleratorConfig::preset_v4_with_tile(8, 16, 8, 24)).unwrap();
    }

    #[test]
    fn oversized_tiles_fail_the_fifo_audit() {
        // A 256x8x256 tile stages 256*256 = 65536 words = 262144 bytes
        // of A per `sA`, far past the 0xFF00-byte staging region.
        let config = AcceleratorConfig::preset_v4_with_tile(256, 256, 8, 256);
        let err = audit_config(&config).unwrap_err();
        assert_eq!(err.code.as_deref(), Some(lint::LINT_FIFO_CAPACITY), "{}", err.message);
        assert!(err.message.contains("staging region"), "{}", err.message);
    }

    #[test]
    fn tiles_past_the_device_tile_memory_fail_the_audit() {
        // Each 64x64 operand stages 4096 words = 16 KiB, well inside the
        // staging regions — but the three together need 12288 words, past
        // the v4 device's 10240-word tile memory, so `cfg_dims` would be
        // rejected and the sweep would hang the bus.
        let config = AcceleratorConfig::preset_v4_with_tile(16, 64, 64, 64);
        let err = audit_config(&config).unwrap_err();
        assert_eq!(err.code.as_deref(), Some(lint::LINT_FIFO_CAPACITY), "{}", err.message);
        assert!(err.message.contains("tile memory"), "{}", err.message);
    }

    #[test]
    fn undefined_init_opcodes_fail_the_flow_audit() {
        let mut config = AcceleratorConfig::preset(AcceleratorPreset::V4 { size: 8 });
        config.init_opcodes.push("warmup".to_owned());
        let err = audit_config(&config).unwrap_err();
        assert_eq!(err.code.as_deref(), Some(lint::LINT_FLOW_LEGAL), "{}", err.message);
        assert!(err.message.contains("warmup"), "{}", err.message);
    }

    #[test]
    fn cpu_plans_are_trivially_clean() {
        audit_plan(&CompilePlan::cpu()).unwrap();
    }

    #[test]
    fn space_audit_fails_only_when_nothing_survives() {
        // Mixed space: small tiles pass, the whole-dimension tile fails.
        let mixed = MatMulSpace::new(MatMulProblem::new(256, 8, 256))
            .accels(vec![AccelInstance::v4(8)])
            .capacity_words(80_000);
        audit_space(&mixed).unwrap();
        // A base-256 instance admits only the oversized tile.
        let hopeless = MatMulSpace::new(MatMulProblem::new(256, 8, 256))
            .accels(vec![AccelInstance::v4(256)])
            .capacity_words(80_000);
        let err = audit_space(&hopeless).unwrap_err();
        assert_eq!(err.code.as_deref(), Some(lint::LINT_FIFO_CAPACITY), "{}", err.message);
    }
}
