//! The sharded, mergeable cache layout (`BENCH_cache/<shard>.json`).
//!
//! A single `BENCH_cache.json` blob stops scaling once many workers and
//! CI runs append to it: every rung checkpoint rewrites every entry ever
//! measured, and two writers cannot combine results without replaying
//! each other's saves. This module splits the cache by *workload/shape
//! signature* instead: every [`CandidateKey`] belongs to exactly one
//! shard, named after its `workload` string (`matmul 16x16x16` and its
//! proxies `matmul 8x8x8`, … land in different shards, which is what
//! makes rung checkpoints cheap — a rung touches one fidelity's shards
//! only). Each shard file is an ordinary [`super::cache`] document, so
//! every robustness property of the single-file format (atomic saves,
//! corrupt-tolerant loads, v1 migration) applies per shard.
//!
//! Entries are content-addressed by their [`CandidateKey`] — a key fully
//! determines its measurement, so combining caches is a plain union. The
//! [`merge`] is *commutative and idempotent* over persisted payloads:
//! `merge(a, b) == merge(b, a)` and `merge(a, a) == a`, with a
//! deterministic total order breaking the (corruption-only) case of two
//! caches disagreeing about one key. N workers or N CI runs can
//! therefore combine shard directories in any order without a
//! coordinator and converge on the same bytes.
//!
//! Legacy single-file caches migrate losslessly: [`load_dir`] accepts
//! any `*.json` file in the directory, and a file whose entries do not
//! all belong to the shard its name spells (e.g. a moved-in
//! `BENCH_cache.json` blob) is treated as a legacy document — its
//! entries load, their proper shards are marked dirty, and the blob is
//! deleted once a save has re-sharded every entry.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fs;
use std::path::{Path, PathBuf};

use axi4mlir_support::diag::Diagnostic;

use super::cache::{self, CachedEval};
use super::space::CandidateKey;

/// Per-shard entry cap: a save that would exceed it compacts the shard
/// first, keeping the newest (highest) seed per seed-less configuration.
pub const SHARD_CAP: usize = 1024;

/// The shard a workload signature belongs to: a filesystem-safe slug of
/// the workload string plus a 32-bit FNV-1a tag of the *exact* string,
/// so two workloads that sanitize identically still shard apart.
pub fn shard_name(workload: &str) -> String {
    let mut slug = String::new();
    for ch in workload.chars() {
        if ch.is_ascii_alphanumeric() || matches!(ch, '.' | '-') {
            slug.push(ch.to_ascii_lowercase());
        } else if !slug.ends_with('_') {
            slug.push('_');
        }
    }
    let slug = slug.trim_matches('_');
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in workload.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let slug = if slug.is_empty() { "shard" } else { slug };
    format!("{slug}-{:08x}", hash & 0xffff_ffff)
}

/// The shard `key` belongs to.
pub fn shard_of(key: &CandidateKey) -> String {
    shard_name(&key.workload)
}

/// The file a shard lives in.
pub fn shard_path(dir: &Path, shard: &str) -> PathBuf {
    dir.join(format!("{shard}.json"))
}

/// Combines two caches: a union of entries, with the deterministic
/// payload order of [`cache`] breaking the (corruption-only) case of two
/// caches holding different payloads for one key. Commutative and
/// idempotent over persisted payloads — wall-clock pass timings are
/// never persisted and are excluded from the payload identity.
pub fn merge(
    a: &HashMap<CandidateKey, CachedEval>,
    b: &HashMap<CandidateKey, CachedEval>,
) -> HashMap<CandidateKey, CachedEval> {
    let mut out = a.clone();
    for (key, theirs) in b {
        match out.get(key) {
            Some(ours) if cache::payload_rank(ours) <= cache::payload_rank(theirs) => {}
            _ => {
                out.insert(key.clone(), theirs.clone());
            }
        }
    }
    out
}

/// Entry counts per shard, in shard order.
pub fn shard_counts(entries: &HashMap<CandidateKey, CachedEval>) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for key in entries.keys() {
        *counts.entry(shard_of(key)).or_insert(0) += 1;
    }
    counts
}

/// What [`load_dir`] found in a shard directory.
#[derive(Debug, Default)]
pub struct DirSnapshot {
    /// Every entry, merged across all shard and legacy files.
    pub entries: HashMap<CandidateKey, CachedEval>,
    /// Shards that must be written to complete a legacy migration (their
    /// entries currently live only in a mis-named blob).
    pub dirty: BTreeSet<String>,
    /// Legacy (non-shard) files whose entries are covered by
    /// [`DirSnapshot::dirty`]; delete them after a successful save.
    pub legacy: Vec<PathBuf>,
}

/// Loads a shard directory. A missing directory is an empty cache. Every
/// `*.json` file loads through the tolerant [`cache::load`]; a file
/// whose entries do not all belong to the shard its name spells is a
/// *legacy* document (typically a moved-in single-file
/// `BENCH_cache.json`): its entries merge in, their proper shards are
/// marked dirty, and the file is scheduled for deletion after the next
/// save re-shards them — migration loses nothing.
///
/// # Errors
///
/// Returns a [`Diagnostic`] for unreadable directories or files.
pub fn load_dir(dir: &Path) -> Result<DirSnapshot, Diagnostic> {
    let mut snapshot = DirSnapshot::default();
    let reader = match fs::read_dir(dir) {
        Ok(reader) => reader,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(snapshot),
        Err(err) => return Err(Diagnostic::error(format!("cannot read {}: {err}", dir.display()))),
    };
    let mut files: Vec<PathBuf> = reader
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| path.extension().and_then(|e| e.to_str()) == Some("json"))
        .filter(|path| {
            // Skip staging leftovers from interrupted saves.
            !path.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with('.'))
        })
        .collect();
    files.sort();
    for path in files {
        let entries = cache::load(&path)?;
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("").to_owned();
        let shards: BTreeSet<String> = entries.keys().map(shard_of).collect();
        let native = shards.iter().all(|s| *s == stem);
        if !native {
            snapshot.dirty.extend(shards);
            snapshot.legacy.push(path);
        }
        snapshot.entries = merge(&snapshot.entries, &entries);
    }
    Ok(snapshot)
}

/// What one [`save_dir`] actually touched.
#[derive(Debug, Default)]
pub struct SaveStats {
    /// Shards written this save (the dirty ones), in shard order.
    pub written: Vec<String>,
    /// Shards left untouched because nothing in them changed.
    pub skipped: usize,
    /// Total in-memory entries at save time.
    pub entries: usize,
    /// Entries dropped by per-shard compaction.
    pub compacted: usize,
}

/// Compaction: keep, for every seed-less configuration, only the entry
/// with the newest (highest) seed.
fn compact(entries: HashMap<CandidateKey, CachedEval>) -> HashMap<CandidateKey, CachedEval> {
    let mut newest: HashMap<CandidateKey, u64> = HashMap::new();
    for key in entries.keys() {
        let base = CandidateKey { seed: 0, ..key.clone() };
        let best = newest.entry(base).or_insert(key.seed);
        *best = (*best).max(key.seed);
    }
    entries
        .into_iter()
        .filter(|(key, _)| newest[&CandidateKey { seed: 0, ..key.clone() }] == key.seed)
        .collect()
}

/// Writes the *dirty* shards of `entries` into `dir`, merging each with
/// whatever its file already holds; clean shards are skipped entirely —
/// this is what makes rung-boundary checkpoints cheap. A merged shard
/// exceeding [`SHARD_CAP`] is compacted first (newest seed per
/// configuration wins), with a stderr note. Each shard write is atomic
/// (staging file + rename), exactly like [`cache::save`].
///
/// # Errors
///
/// Propagates filesystem errors as [`Diagnostic`]s.
pub fn save_dir(
    dir: &Path,
    entries: &HashMap<CandidateKey, CachedEval>,
    dirty: &BTreeSet<String>,
) -> Result<SaveStats, Diagnostic> {
    let mut by_shard: BTreeMap<String, HashMap<CandidateKey, CachedEval>> = BTreeMap::new();
    for (key, eval) in entries {
        by_shard.entry(shard_of(key)).or_default().insert(key.clone(), eval.clone());
    }
    let mut stats = SaveStats { entries: entries.len(), ..SaveStats::default() };
    if dirty.is_empty() {
        stats.skipped = by_shard.len();
        return Ok(stats);
    }
    fs::create_dir_all(dir)
        .map_err(|err| Diagnostic::error(format!("cannot create {}: {err}", dir.display())))?;
    for (shard, fresh) in &by_shard {
        if !dirty.contains(shard) {
            stats.skipped += 1;
            continue;
        }
        let path = shard_path(dir, shard);
        let mut merged = merge(&cache::load(&path)?, fresh);
        if merged.len() > SHARD_CAP {
            let before = merged.len();
            merged = compact(merged);
            stats.compacted += before - merged.len();
            if merged.len() < before {
                eprintln!(
                    "cache: compacted shard {shard}: {before} -> {} entries (kept the newest \
                     seed per configuration)",
                    merged.len()
                );
            }
        }
        let staging = cache::staging_path(&path);
        fs::write(&staging, cache::render(&merged)).map_err(|err| {
            Diagnostic::error(format!("cannot write {}: {err}", staging.display()))
        })?;
        if let Err(err) = fs::rename(&staging, &path) {
            fs::remove_file(&staging).ok();
            return Err(Diagnostic::error(format!(
                "cannot move {} into {}: {err}",
                staging.display(),
                path.display()
            )));
        }
        stats.written.push(shard.clone());
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::space::OptionsPoint;
    use axi4mlir_sim::counters::PerfCounters;

    fn key(workload: &str, seed: u64) -> CandidateKey {
        CandidateKey {
            workload: workload.to_owned(),
            accel: "v4_8".to_owned(),
            flow: "Cs".to_owned(),
            tile: (8, 8, 8),
            options: OptionsPoint::default(),
            seed,
        }
    }

    fn eval(clock: f64) -> CachedEval {
        CachedEval {
            counters: PerfCounters { host_cycles: 9, ..PerfCounters::new() },
            task_clock_ms: clock,
            verified: true,
            pass_ms: Vec::new(),
        }
    }

    #[test]
    fn shard_names_are_filesystem_safe_and_collision_tagged() {
        let a = shard_name("matmul 16x16x16");
        assert!(a.starts_with("matmul_16x16x16-"), "{a}");
        assert!(a.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.')));
        // Same slug, different exact string: the FNV tag keeps them apart.
        assert_ne!(shard_name("matmul 8x8x8"), shard_name("matmul 8X8x8"));
        // Deterministic.
        assert_eq!(a, shard_name("matmul 16x16x16"));
        assert!(shard_name("///").starts_with("shard-"));
    }

    #[test]
    fn merge_is_commutative_idempotent_and_a_union() {
        let mut a = HashMap::new();
        a.insert(key("matmul 8x8x8", 1), eval(1.0));
        let mut b = HashMap::new();
        b.insert(key("matmul 8x8x8", 2), eval(2.0));
        b.insert(key("matmul 16x16x16", 1), eval(3.0));
        let ab = merge(&a, &b);
        assert_eq!(ab.len(), 3);
        assert_eq!(ab, merge(&b, &a));
        assert_eq!(merge(&a, &a), a);
        // Conflicting payloads (corruption-only) resolve deterministically.
        let mut c = a.clone();
        c.insert(key("matmul 8x8x8", 1), eval(0.5));
        assert_eq!(merge(&a, &c), merge(&c, &a));
    }

    #[test]
    fn save_writes_only_dirty_shards_and_loads_back() {
        let dir = std::env::temp_dir().join(format!("axi4mlir-shard-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut entries = HashMap::new();
        entries.insert(key("matmul 8x8x8", 1), eval(1.0));
        entries.insert(key("matmul 16x16x16", 1), eval(2.0));
        let all: BTreeSet<String> = entries.keys().map(shard_of).collect();
        let stats = save_dir(&dir, &entries, &all).unwrap();
        assert_eq!(stats.written.len(), 2);
        assert_eq!(stats.skipped, 0);
        assert_eq!(load_dir(&dir).unwrap().entries, entries);

        // A second save with one dirty shard touches exactly one file.
        let dirty: BTreeSet<String> = [shard_name("matmul 8x8x8")].into();
        entries.insert(key("matmul 8x8x8", 2), eval(1.5));
        let stats = save_dir(&dir, &entries, &dirty).unwrap();
        assert_eq!(stats.written, vec![shard_name("matmul 8x8x8")]);
        assert_eq!(stats.skipped, 1);
        let back = load_dir(&dir).unwrap();
        assert_eq!(back.entries, entries);
        assert!(back.dirty.is_empty(), "shard files are native, nothing to migrate");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_blobs_migrate_losslessly_and_mark_their_shards_dirty() {
        let dir =
            std::env::temp_dir().join(format!("axi4mlir-shard-legacy-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut blob = HashMap::new();
        blob.insert(key("matmul 8x8x8", 1), eval(1.0));
        blob.insert(key("matmul 16x16x16", 1), eval(2.0));
        let legacy_path = dir.join("BENCH_cache.json");
        std::fs::write(&legacy_path, cache::render(&blob)).unwrap();

        let snapshot = load_dir(&dir).unwrap();
        assert_eq!(snapshot.entries, blob, "migration is lossless");
        assert_eq!(snapshot.dirty.len(), 2, "both shards need a rewrite");
        assert_eq!(snapshot.legacy, vec![legacy_path.clone()]);

        // A save re-shards the entries; deleting the blob then loses nothing.
        save_dir(&dir, &snapshot.entries, &snapshot.dirty).unwrap();
        std::fs::remove_file(&legacy_path).unwrap();
        let after = load_dir(&dir).unwrap();
        assert_eq!(after.entries, blob);
        assert!(after.legacy.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_shards_compact_to_the_newest_seed() {
        let dir =
            std::env::temp_dir().join(format!("axi4mlir-shard-compact-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        // SHARD_CAP+1 seeds of one configuration: compaction keeps the max.
        let mut entries = HashMap::new();
        for seed in 1..=(SHARD_CAP as u64 + 1) {
            entries.insert(key("matmul 8x8x8", seed), eval(seed as f64));
        }
        let dirty: BTreeSet<String> = [shard_name("matmul 8x8x8")].into();
        let stats = save_dir(&dir, &entries, &dirty).unwrap();
        assert_eq!(stats.compacted, SHARD_CAP);
        let back = load_dir(&dir).unwrap().entries;
        assert_eq!(back.len(), 1);
        assert!(back.contains_key(&key("matmul 8x8x8", SHARD_CAP as u64 + 1)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
