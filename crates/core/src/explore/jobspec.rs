//! Serializable exploration requests (`JobSpec`) and their realization.
//!
//! A [`JobSpec`] is everything a sweep needs, spelled in plain strings
//! and numbers so it can travel: over the hub's wire protocol, through a
//! queue, into a log. [`JobSpec::build`] validates it into an
//! [`ExploreRequest`] — a concrete [`DesignSpace`] plus prune/search/
//! objective choices ready for the [`Explorer`](super::Explorer) — with
//! every error reported as a [`Diagnostic`] naming the offending field,
//! so a malformed network submission fails the *job*, never the daemon.
//!
//! The `axi4mlir-explore` CLI builds a `JobSpec` from its flags and then
//! either runs it locally or submits it to a hub; both paths share this
//! module's validation, which is what keeps the daemon's behavior
//! flag-for-flag identical to the CLI's.

use axi4mlir_config::{CacheTiling, CpuModel};
use axi4mlir_support::diag::Diagnostic;
use axi4mlir_support::json::JsonValue;
use axi4mlir_workloads::batched::BatchedMatMulProblem;
use axi4mlir_workloads::matmul::MatMulProblem;
use axi4mlir_workloads::resnet::{resnet18_layers, ConvLayer};

use super::space::{
    AccelInstance, BatchedSpace, ConvSpace, DesignSpace, MatMulSpace, OptionsPoint,
};
use super::{HalvingSpec, Objective, Prune, Search};

/// One exploration job, in wire-friendly form. Unset optional fields
/// take the same defaults the `axi4mlir-explore` CLI applies.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Workload kind: `matmul`, `batched`, or `conv`.
    pub workload: String,
    /// GEMM dimensions `(M, N, K)`; required for matmul/batched.
    pub dims: Option<(i64, i64, i64)>,
    /// Batch extent (batched workload only; defaults to 4).
    pub batch: Option<i64>,
    /// Conv layer label `iHW_iC_fHW_oC_stride` (or a ResNet18 layer
    /// label); required for conv.
    pub layer: Option<String>,
    /// Accelerator instantiations, e.g. `["v4_16", "v2_8"]`; empty means
    /// the standard flexible v4 with base 16.
    pub accels: Vec<String>,
    /// Tile-memory budget override, in words (matmul/batched only).
    pub capacity_words: Option<u64>,
    /// Sweep the boolean pipeline-option axes (coalescing, copy
    /// specialization) instead of pinning the defaults.
    pub sweep_options: bool,
    /// Cross the options axis with every cache-tiling level.
    pub sweep_cache_tiling: bool,
    /// Named host CPUs to cross the options axis with (empty keeps the
    /// default host).
    pub cpus: Vec<String>,
    /// Search strategy: `exhaustive` or `halving`.
    pub search: String,
    /// Analytical prune: `none`, `keep:N`, or `factor:F`.
    pub prune: String,
    /// Objective labels (first is primary); empty means task-clock.
    pub objectives: Vec<String>,
    /// Data seed override.
    pub seed: Option<u64>,
}

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            workload: "matmul".to_owned(),
            dims: None,
            batch: None,
            layer: None,
            accels: Vec::new(),
            capacity_words: None,
            sweep_options: false,
            sweep_cache_tiling: false,
            cpus: Vec::new(),
            search: "exhaustive".to_owned(),
            prune: "none".to_owned(),
            objectives: Vec::new(),
            seed: None,
        }
    }
}

/// Parses `MxNxK` into a [`MatMulProblem`].
pub fn parse_dims(text: &str) -> Option<MatMulProblem> {
    let parts: Vec<i64> = text.split('x').map(str::parse).collect::<Result<_, _>>().ok()?;
    match parts[..] {
        [m, n, k] if m > 0 && n > 0 && k > 0 => Some(MatMulProblem::new(m, n, k)),
        _ => None,
    }
}

/// Parses a [`Prune`] spelling: `none`, `keep:N`, or `factor:F`.
pub fn parse_prune(text: &str) -> Option<Prune> {
    if text == "none" {
        return Some(Prune::None);
    }
    if let Some(n) = text.strip_prefix("keep:") {
        return n.parse().ok().map(Prune::KeepBest);
    }
    if let Some(f) = text.strip_prefix("factor:") {
        return f.parse().ok().map(Prune::WithinFactor);
    }
    None
}

/// Parses a conv layer: one of the ResNet18 layer labels, or an
/// arbitrary `iHW_iC_fHW_oC_stride` shape.
pub fn parse_layer(text: &str) -> Option<ConvLayer> {
    if let Some(layer) = resnet18_layers().into_iter().find(|l| l.label() == text) {
        return Some(layer);
    }
    let parts: Vec<usize> = text.split('_').map(str::parse).collect::<Result<_, _>>().ok()?;
    match parts[..] {
        [in_hw, in_channels, filter_hw, out_channels, stride]
            if in_hw >= filter_hw && filter_hw > 0 && stride > 0 && out_channels > 0 =>
        {
            Some(ConvLayer { in_hw, in_channels, filter_hw, out_channels, stride })
        }
        _ => None,
    }
}

/// A validated, runnable exploration request.
#[derive(Clone, Debug)]
pub struct ExploreRequest {
    /// The concrete design space.
    pub space: AnySpace,
    /// The analytical prune.
    pub prune: Prune,
    /// The search strategy.
    pub search: Search,
    /// Objectives (at least one; the first is primary).
    pub objectives: Vec<Objective>,
}

/// One of the in-tree design spaces, owned.
#[derive(Clone, Debug)]
pub enum AnySpace {
    /// A [`MatMulSpace`].
    MatMul(MatMulSpace),
    /// A [`BatchedSpace`].
    Batched(BatchedSpace),
    /// A [`ConvSpace`].
    Conv(ConvSpace),
}

impl AnySpace {
    /// The trait-object view the [`Explorer`](super::Explorer) consumes.
    pub fn as_dyn(&self) -> &dyn DesignSpace {
        match self {
            AnySpace::MatMul(s) => s,
            AnySpace::Batched(s) => s,
            AnySpace::Conv(s) => s,
        }
    }
}

fn field_err(field: &str, detail: impl std::fmt::Display) -> Diagnostic {
    Diagnostic::error(format!("invalid job: {field} {detail}"))
}

impl JobSpec {
    /// Validates the spec into a runnable [`ExploreRequest`].
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] naming the first invalid or missing
    /// field; nothing is simulated.
    pub fn build(&self) -> Result<ExploreRequest, Diagnostic> {
        let accels: Vec<AccelInstance> = if self.accels.is_empty() {
            vec![AccelInstance::v4(16)]
        } else {
            self.accels
                .iter()
                .map(|label| AccelInstance::parse(label))
                .collect::<Option<_>>()
                .ok_or_else(|| field_err("accels", "must be v1..v4_SIZE labels"))?
        };
        let mut options_axis =
            if self.sweep_options { OptionsPoint::axis() } else { vec![OptionsPoint::default()] };
        if self.sweep_cache_tiling {
            options_axis =
                OptionsPoint::cross_cache_tiling(&options_axis, &CacheTiling::sweep_levels());
        }
        if !self.cpus.is_empty() {
            let cpus: Vec<CpuModel> = self
                .cpus
                .iter()
                .map(|label| CpuModel::parse(label))
                .collect::<Option<_>>()
                .ok_or_else(|| {
                    let known: Vec<&str> = CpuModel::all().iter().map(CpuModel::label).collect();
                    field_err("cpus", format!("must name known hosts ({})", known.join("|")))
                })?;
            options_axis = OptionsPoint::cross_cpus(&options_axis, &cpus);
        }

        let dims = || {
            self.dims
                .ok_or_else(|| field_err("dims", "are required for matmul/batched workloads"))
                .and_then(|(m, n, k)| {
                    (m > 0 && n > 0 && k > 0)
                        .then(|| MatMulProblem::new(m, n, k))
                        .ok_or_else(|| field_err("dims", "must be positive"))
                })
        };
        let mut space = match self.workload.as_str() {
            "matmul" => {
                let mut s = MatMulSpace::new(dims()?).accels(accels).options_axis(options_axis);
                if let Some(capacity) = self.capacity_words {
                    s = s.capacity_words(capacity);
                }
                AnySpace::MatMul(s)
            }
            "batched" => {
                let batch = self.batch.unwrap_or(4);
                if batch <= 0 {
                    return Err(field_err("batch", "must be positive"));
                }
                let mut s = BatchedSpace::new(BatchedMatMulProblem::new(dims()?, batch as usize))
                    .accels(accels)
                    .options_axis(options_axis);
                if let Some(capacity) = self.capacity_words {
                    s = s.capacity_words(capacity);
                }
                AnySpace::Batched(s)
            }
            "conv" => {
                let label = self
                    .layer
                    .as_deref()
                    .ok_or_else(|| field_err("layer", "is required for conv workloads"))?;
                let layer = parse_layer(label).ok_or_else(|| {
                    field_err("layer", "must be iHW_iC_fHW_oC_stride or a ResNet18 label")
                })?;
                AnySpace::Conv(ConvSpace::new(layer))
            }
            other => {
                return Err(field_err(
                    "workload",
                    format!("`{other}` is not one of matmul|batched|conv"),
                ))
            }
        };
        if let Some(seed) = self.seed {
            match &mut space {
                AnySpace::MatMul(s) => s.seed = seed,
                AnySpace::Batched(s) => s.seed = seed,
                AnySpace::Conv(s) => s.seed = seed,
            }
        }

        let search = match self.search.as_str() {
            "exhaustive" => Search::Exhaustive,
            "halving" => Search::Halving(HalvingSpec::default()),
            other => {
                return Err(field_err(
                    "search",
                    format!("`{other}` is not one of exhaustive|halving"),
                ))
            }
        };
        let prune = parse_prune(&self.prune)
            .ok_or_else(|| field_err("prune", "must be none|keep:N|factor:F"))?;
        let objectives: Vec<Objective> = if self.objectives.is_empty() {
            vec![Objective::TaskClock]
        } else {
            let parsed: Vec<Objective> = self
                .objectives
                .iter()
                .map(|label| Objective::parse(label))
                .collect::<Option<_>>()
                .ok_or_else(|| {
                    field_err("objectives", "must be clock|traffic|transactions|occupancy")
                })?;
            let mut seen = Vec::new();
            for objective in &parsed {
                if seen.contains(objective) {
                    return Err(field_err("objectives", "must not repeat"));
                }
                seen.push(*objective);
            }
            parsed
        };

        let request = ExploreRequest { space, prune, search, objectives };
        // The static plan audit, applied at validation time: a job whose
        // every candidate fails a lint check could never measure
        // anything, so it is rejected here — at hub `submit` time — with
        // the offending lint code, instead of erroring mid-sweep.
        if let Err(finding) = super::audit::audit_space(request.space.as_dyn()) {
            let code = finding.code.clone().unwrap_or_else(|| "lint".to_owned());
            let mut diag =
                field_err("space", format!("admits no candidate — {} [{code}]", finding.message));
            diag.code = finding.code;
            return Err(diag);
        }
        Ok(request)
    }

    /// Serializes the spec as the JSON object the hub protocol carries
    /// (unset optional fields are omitted).
    pub fn to_json(&self) -> JsonValue {
        let mut members: Vec<(String, JsonValue)> =
            vec![("workload".to_owned(), self.workload.clone().into())];
        if let Some((m, n, k)) = self.dims {
            members.push(("dims".to_owned(), JsonValue::Array(vec![m.into(), n.into(), k.into()])));
        }
        if let Some(batch) = self.batch {
            members.push(("batch".to_owned(), batch.into()));
        }
        if let Some(layer) = &self.layer {
            members.push(("layer".to_owned(), layer.clone().into()));
        }
        if !self.accels.is_empty() {
            let accels = self.accels.iter().map(|a| JsonValue::from(a.clone())).collect();
            members.push(("accels".to_owned(), JsonValue::Array(accels)));
        }
        if let Some(capacity) = self.capacity_words {
            members.push(("capacity_words".to_owned(), capacity.into()));
        }
        if self.sweep_options {
            members.push(("sweep_options".to_owned(), true.into()));
        }
        if self.sweep_cache_tiling {
            members.push(("sweep_cache_tiling".to_owned(), true.into()));
        }
        if !self.cpus.is_empty() {
            let cpus = self.cpus.iter().map(|c| JsonValue::from(c.clone())).collect();
            members.push(("cpus".to_owned(), JsonValue::Array(cpus)));
        }
        members.push(("search".to_owned(), self.search.clone().into()));
        members.push(("prune".to_owned(), self.prune.clone().into()));
        if !self.objectives.is_empty() {
            let objectives = self.objectives.iter().map(|o| JsonValue::from(o.clone())).collect();
            members.push(("objectives".to_owned(), JsonValue::Array(objectives)));
        }
        if let Some(seed) = self.seed {
            members.push(("seed".to_owned(), seed.into()));
        }
        JsonValue::object(members)
    }

    /// Parses a spec from its JSON object form. Structural problems (a
    /// non-object, a `dims` member that is not a 3-array of integers)
    /// are errors here; *semantic* validation happens in
    /// [`JobSpec::build`].
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] naming the malformed member.
    pub fn from_json(value: &JsonValue) -> Result<JobSpec, Diagnostic> {
        if value.as_object().is_none() {
            return Err(field_err("job", "must be a JSON object"));
        }
        let str_member = |name: &str| -> Result<Option<String>, Diagnostic> {
            match value.get(name) {
                None => Ok(None),
                Some(v) => v
                    .as_str()
                    .map(|s| Some(s.to_owned()))
                    .ok_or_else(|| field_err(name, "must be a string")),
            }
        };
        let str_list = |name: &str| -> Result<Vec<String>, Diagnostic> {
            match value.get(name) {
                None => Ok(Vec::new()),
                Some(v) => v
                    .as_array()
                    .and_then(|items| items.iter().map(|i| i.as_str().map(str::to_owned)).collect())
                    .ok_or_else(|| field_err(name, "must be an array of strings")),
            }
        };
        let bool_member = |name: &str| -> Result<bool, Diagnostic> {
            match value.get(name) {
                None => Ok(false),
                Some(v) => v.as_bool().ok_or_else(|| field_err(name, "must be a boolean")),
            }
        };
        let dims = match value.get("dims") {
            None => None,
            Some(v) => {
                let items = v.as_array().unwrap_or(&[]);
                let edge = |i: usize| items.get(i).and_then(JsonValue::as_i64);
                match (edge(0), edge(1), edge(2)) {
                    (Some(m), Some(n), Some(k)) if items.len() == 3 => Some((m, n, k)),
                    _ => return Err(field_err("dims", "must be a [M, N, K] array of integers")),
                }
            }
        };
        let batch = match value.get("batch") {
            None => None,
            Some(v) => Some(v.as_i64().ok_or_else(|| field_err("batch", "must be an integer"))?),
        };
        let capacity_words = match value.get("capacity_words") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| field_err("capacity_words", "must be a non-negative integer"))?,
            ),
        };
        let seed = match value.get("seed") {
            None => None,
            Some(v) => Some(
                v.as_u64().ok_or_else(|| field_err("seed", "must be a non-negative integer"))?,
            ),
        };
        let defaults = JobSpec::default();
        Ok(JobSpec {
            workload: str_member("workload")?.unwrap_or(defaults.workload),
            dims,
            batch,
            layer: str_member("layer")?,
            accels: str_list("accels")?,
            capacity_words,
            sweep_options: bool_member("sweep_options")?,
            sweep_cache_tiling: bool_member("sweep_cache_tiling")?,
            cpus: str_list("cpus")?,
            search: str_member("search")?.unwrap_or(defaults.search),
            prune: str_member("prune")?.unwrap_or(defaults.prune),
            objectives: str_list("objectives")?,
            seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobSpec {
        JobSpec {
            workload: "matmul".to_owned(),
            dims: Some((16, 16, 16)),
            accels: vec!["v4_8".to_owned()],
            search: "halving".to_owned(),
            prune: "keep:12".to_owned(),
            objectives: vec!["clock".to_owned(), "traffic".to_owned()],
            seed: Some(7),
            ..JobSpec::default()
        }
    }

    #[test]
    fn specs_round_trip_through_json() {
        let spec = sample();
        assert_eq!(JobSpec::from_json(&spec.to_json()).unwrap(), spec);
        // Sparse specs too: only the always-present members serialize.
        let sparse = JobSpec { dims: Some((8, 8, 8)), ..JobSpec::default() };
        assert_eq!(JobSpec::from_json(&sparse.to_json()).unwrap(), sparse);
        let text = sparse.to_json().to_json_string();
        assert!(!text.contains("layer"), "unset members are omitted: {text}");
    }

    #[test]
    fn build_realizes_the_requested_space() {
        let request = sample().build().unwrap();
        assert_eq!(request.space.as_dyn().workload_kind(), "matmul");
        assert_eq!(request.prune, Prune::KeepBest(12));
        assert_eq!(request.search, Search::Halving(HalvingSpec::default()));
        assert_eq!(request.objectives, vec![Objective::TaskClock, Objective::DmaWords]);
        assert!(!request.space.as_dyn().enumerate().unwrap().is_empty());

        let conv = JobSpec {
            workload: "conv".to_owned(),
            layer: Some("10_64_3_16_1".to_owned()),
            ..JobSpec::default()
        };
        assert_eq!(conv.build().unwrap().space.as_dyn().workload_kind(), "conv");

        let batched = JobSpec {
            workload: "batched".to_owned(),
            dims: Some((8, 8, 8)),
            batch: Some(2),
            accels: vec!["v4_8".to_owned()],
            ..JobSpec::default()
        };
        assert_eq!(batched.build().unwrap().space.as_dyn().workload_kind(), "batched");
    }

    #[test]
    fn build_rejects_bad_fields_by_name() {
        let cases: Vec<(JobSpec, &str)> = vec![
            (JobSpec { workload: "gemv".to_owned(), ..JobSpec::default() }, "workload"),
            (JobSpec::default(), "dims"), // matmul without dims
            (
                JobSpec {
                    dims: Some((8, 8, 8)),
                    search: "binary".to_owned(),
                    ..JobSpec::default()
                },
                "search",
            ),
            (
                JobSpec { dims: Some((8, 8, 8)), prune: "half".to_owned(), ..JobSpec::default() },
                "prune",
            ),
            (
                JobSpec {
                    dims: Some((8, 8, 8)),
                    objectives: vec!["clock".to_owned(), "clock".to_owned()],
                    ..JobSpec::default()
                },
                "objectives",
            ),
            (
                JobSpec {
                    dims: Some((8, 8, 8)),
                    accels: vec!["v9_8".to_owned()],
                    ..JobSpec::default()
                },
                "accels",
            ),
            (JobSpec { workload: "conv".to_owned(), ..JobSpec::default() }, "layer"),
        ];
        for (spec, field) in cases {
            let err = spec.build().unwrap_err();
            assert!(err.message.contains(field), "`{}` should blame {field}", err.message);
        }
    }

    #[test]
    fn build_rejects_jobs_the_plan_audit_fully_rejects() {
        // A base-256 v4 on a 256x8x256 problem admits exactly one tile,
        // whose staged A transfer (256x256 words) overflows the DMA
        // staging region — every candidate fails the audit, so the job
        // fails at validation (hub submit) time with the lint code.
        let spec = JobSpec {
            dims: Some((256, 8, 256)),
            accels: vec!["v4_256".to_owned()],
            capacity_words: Some(200_000),
            ..JobSpec::default()
        };
        let err = spec.clone().build().unwrap_err();
        assert!(err.message.contains("lint::fifo-capacity"), "{}", err.message);
        assert_eq!(err.code.as_deref(), Some("lint::fifo-capacity"));
        // A base that admits small tiles passes: the sweep merely counts
        // the oversized ones as lint-rejected.
        let ok = JobSpec { accels: vec!["v4_8".to_owned()], ..spec };
        ok.build().unwrap();
    }

    #[test]
    fn malformed_json_members_are_structural_errors() {
        let bad = JsonValue::parse(r#"{"workload": "matmul", "dims": "16x16x16"}"#).unwrap();
        assert!(JobSpec::from_json(&bad).unwrap_err().message.contains("dims"));
        let bad = JsonValue::parse(r#"{"objectives": "clock"}"#).unwrap();
        assert!(JobSpec::from_json(&bad).unwrap_err().message.contains("objectives"));
        assert!(JobSpec::from_json(&JsonValue::Int(5)).is_err());
    }
}
