//! Wire form of an [`ExploreReport`], for the hub protocol.
//!
//! The hub daemon finishes a job with a `done` event carrying the full
//! report; the client on the other end of the socket (the
//! `axi4mlir-explore --hub` mode) rebuilds an [`ExploreReport`] from it
//! and renders `BENCH_explore.json` with the *same* local code the
//! non-hub path uses — which is what makes the two paths byte-identical
//! by construction. Candidate keys and counters reuse the persistent
//! cache's spellings ([`cache::key_to_json`] and friends), so the wire
//! and the cache never drift apart.
//!
//! [`cache::key_to_json`]: super::cache::key_to_json

use axi4mlir_heuristics::TransferEstimate;
use axi4mlir_support::diag::Diagnostic;
use axi4mlir_support::json::JsonValue;

use super::cache::{counters_from_json, counters_to_json, key_from_json, key_to_json};
use super::space::Candidate;
use super::{Evaluation, ExploreReport, Objective};

/// Serializes a candidate (key plus analytical estimate) in the wire
/// spelling shared by the hub's report frames and the remote measurement
/// protocol (see [`super::measure`]).
pub fn candidate_to_json(candidate: &Candidate) -> JsonValue {
    JsonValue::object([
        ("key".to_owned(), key_to_json(&candidate.key)),
        (
            "estimate".to_owned(),
            JsonValue::object([
                ("words_to_accel".to_owned(), candidate.estimate.words_to_accel.into()),
                ("words_from_accel".to_owned(), candidate.estimate.words_from_accel.into()),
                ("transactions".to_owned(), candidate.estimate.transactions.into()),
            ]),
        ),
    ])
}

fn wire_err(what: impl std::fmt::Display) -> Diagnostic {
    Diagnostic::error(format!("malformed wire report: {what}"))
}

/// Parses a candidate serialized by [`candidate_to_json`].
///
/// # Errors
///
/// Returns a [`Diagnostic`] for missing or malformed members.
pub fn candidate_from_json(value: &JsonValue) -> Result<Candidate, Diagnostic> {
    let key = value
        .get("key")
        .and_then(|k| key_from_json(k, false))
        .ok_or_else(|| wire_err("bad candidate key"))?;
    let estimate = value.get("estimate").ok_or_else(|| wire_err("missing estimate"))?;
    let field = |name: &str| {
        estimate
            .get(name)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| wire_err(format!("estimate.{name} must be a non-negative integer")))
    };
    Ok(Candidate {
        key,
        estimate: TransferEstimate {
            words_to_accel: field("words_to_accel")?,
            words_from_accel: field("words_from_accel")?,
            transactions: field("transactions")?,
        },
    })
}

fn evaluation_to_json(eval: &Evaluation) -> JsonValue {
    let pass_ms = eval
        .pass_ms
        .iter()
        .map(|(pass, ms)| JsonValue::Array(vec![pass.clone().into(), (*ms).into()]))
        .collect();
    JsonValue::object([
        ("candidate".to_owned(), candidate_to_json(&eval.candidate)),
        ("counters".to_owned(), counters_to_json(&eval.counters)),
        ("task_clock_ms".to_owned(), eval.task_clock_ms.into()),
        ("verified".to_owned(), eval.verified.into()),
        ("work".to_owned(), eval.work.into()),
        ("pass_ms".to_owned(), JsonValue::Array(pass_ms)),
        ("from_cache".to_owned(), eval.from_cache.into()),
    ])
}

fn evaluation_from_json(value: &JsonValue) -> Result<Evaluation, Diagnostic> {
    let candidate =
        candidate_from_json(value.get("candidate").ok_or_else(|| wire_err("missing candidate"))?)?;
    let counters = value
        .get("counters")
        .and_then(counters_from_json)
        .ok_or_else(|| wire_err("bad counters"))?;
    let mut pass_ms = Vec::new();
    for pair in value.get("pass_ms").and_then(JsonValue::as_array).unwrap_or(&[]) {
        let items = pair.as_array().unwrap_or(&[]);
        let pass = items.first().and_then(JsonValue::as_str);
        let ms = items.get(1).and_then(JsonValue::as_f64);
        match (pass, ms) {
            (Some(pass), Some(ms)) if items.len() == 2 => pass_ms.push((pass.to_owned(), ms)),
            _ => return Err(wire_err("pass_ms must hold [name, millis] pairs")),
        }
    }
    Ok(Evaluation {
        candidate,
        counters,
        task_clock_ms: value
            .get("task_clock_ms")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| wire_err("missing task_clock_ms"))?,
        verified: value
            .get("verified")
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| wire_err("missing verified"))?,
        work: value
            .get("work")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| wire_err("missing work"))?,
        pass_ms,
        from_cache: value
            .get("from_cache")
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| wire_err("missing from_cache"))?,
    })
}

/// Serializes a report as the JSON object a hub `done` event carries.
pub fn report_to_json(report: &ExploreReport) -> JsonValue {
    let mut members: Vec<(String, JsonValue)> = vec![
        ("space".to_owned(), report.space.clone().into()),
        ("workload".to_owned(), report.workload.clone().into()),
        ("search".to_owned(), report.search.clone().into()),
        ("space_size".to_owned(), report.space_size.into()),
        ("pruned_out".to_owned(), report.pruned_out.into()),
        ("lint_rejected".to_owned(), report.lint_rejected.into()),
        ("cache_hits".to_owned(), report.cache_hits.into()),
        ("sims_performed".to_owned(), report.sims_performed.into()),
        ("full_sims_performed".to_owned(), report.full_sims_performed.into()),
        ("full_sim_nanos".to_owned(), report.full_sim_nanos.into()),
        ("warm_started".to_owned(), report.warm_started.into()),
        ("warm_informed".to_owned(), report.warm_informed.into()),
        ("measure_backend".to_owned(), report.measure_backend.clone().into()),
        (
            "worker_sims".to_owned(),
            JsonValue::Array(
                report
                    .worker_sims
                    .iter()
                    .map(|(worker, sims)| {
                        JsonValue::Array(vec![worker.clone().into(), (*sims).into()])
                    })
                    .collect(),
            ),
        ),
        (
            "objectives".to_owned(),
            JsonValue::Array(
                report.objectives.iter().map(|o| JsonValue::from(o.label())).collect(),
            ),
        ),
        (
            "evaluations".to_owned(),
            JsonValue::Array(report.evaluations.iter().map(evaluation_to_json).collect()),
        ),
    ];
    // Omitted when empty (local sweeps, fault-free remote sweeps) so
    // fault-free documents are byte-identical to pre-reconnect ones.
    if !report.worker_reconnects.is_empty() {
        members.push((
            "worker_reconnects".to_owned(),
            JsonValue::Array(
                report
                    .worker_reconnects
                    .iter()
                    .map(|(worker, n)| JsonValue::Array(vec![worker.clone().into(), (*n).into()]))
                    .collect(),
            ),
        ));
    }
    if let Some(heuristic) = &report.heuristic {
        members.push(("heuristic".to_owned(), candidate_to_json(heuristic)));
    }
    if let Some(eval) = &report.heuristic_eval {
        members.push(("heuristic_eval".to_owned(), evaluation_to_json(eval)));
    }
    JsonValue::object(members)
}

/// Rebuilds a report from its wire form.
///
/// # Errors
///
/// Returns a [`Diagnostic`] naming the first malformed member.
pub fn report_from_json(value: &JsonValue) -> Result<ExploreReport, Diagnostic> {
    let text = |name: &str| {
        value
            .get(name)
            .and_then(JsonValue::as_str)
            .map(str::to_owned)
            .ok_or_else(|| wire_err(format!("missing {name}")))
    };
    let count = |name: &str| {
        value
            .get(name)
            .and_then(JsonValue::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| wire_err(format!("missing {name}")))
    };
    let flag = |name: &str| {
        value
            .get(name)
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| wire_err(format!("missing {name}")))
    };
    let objectives = value
        .get("objectives")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| wire_err("missing objectives"))?
        .iter()
        .map(|o| o.as_str().and_then(Objective::parse))
        .collect::<Option<Vec<Objective>>>()
        .ok_or_else(|| wire_err("unknown objective label"))?;
    let evaluations = value
        .get("evaluations")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| wire_err("missing evaluations"))?
        .iter()
        .map(evaluation_from_json)
        .collect::<Result<Vec<Evaluation>, Diagnostic>>()?;
    Ok(ExploreReport {
        space: text("space")?,
        workload: text("workload")?,
        search: text("search")?,
        space_size: count("space_size")?,
        pruned_out: count("pruned_out")?,
        // Absent in pre-audit wire reports; those rejected nothing.
        lint_rejected: value
            .get("lint_rejected")
            .and_then(JsonValue::as_u64)
            .map(|n| n as usize)
            .unwrap_or(0),
        cache_hits: count("cache_hits")?,
        sims_performed: count("sims_performed")?,
        full_sims_performed: count("full_sims_performed")?,
        full_sim_nanos: value
            .get("full_sim_nanos")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| wire_err("missing full_sim_nanos"))?,
        warm_started: flag("warm_started")?,
        warm_informed: count("warm_informed")?,
        measure_backend: text("measure_backend")?,
        worker_sims: {
            let mut worker_sims = Vec::new();
            for pair in value
                .get("worker_sims")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| wire_err("missing worker_sims"))?
            {
                let items = pair.as_array().unwrap_or(&[]);
                let worker = items.first().and_then(JsonValue::as_str);
                let sims = items.get(1).and_then(JsonValue::as_u64);
                match (worker, sims) {
                    (Some(worker), Some(sims)) if items.len() == 2 => {
                        worker_sims.push((worker.to_owned(), sims as usize));
                    }
                    _ => return Err(wire_err("worker_sims must hold [worker, sims] pairs")),
                }
            }
            worker_sims
        },
        // Absent for fault-free sweeps and pre-reconnect wire reports.
        worker_reconnects: {
            let mut reconnects = Vec::new();
            for pair in value.get("worker_reconnects").and_then(JsonValue::as_array).unwrap_or(&[])
            {
                let items = pair.as_array().unwrap_or(&[]);
                let worker = items.first().and_then(JsonValue::as_str);
                let n = items.get(1).and_then(JsonValue::as_u64);
                match (worker, n) {
                    (Some(worker), Some(n)) if items.len() == 2 => {
                        reconnects.push((worker.to_owned(), n as usize));
                    }
                    _ => return Err(wire_err("worker_reconnects must hold [worker, count] pairs")),
                }
            }
            reconnects
        },
        evaluations,
        objectives,
        heuristic: match value.get("heuristic") {
            None => None,
            Some(c) => Some(candidate_from_json(c)?),
        },
        heuristic_eval: match value.get("heuristic_eval") {
            None => None,
            Some(e) => Some(evaluation_from_json(e)?),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::super::{ExploreSpec, Explorer, Prune};
    use super::*;
    use axi4mlir_workloads::matmul::MatMulProblem;

    #[test]
    fn reports_round_trip_through_the_wire() {
        let spec = ExploreSpec::new(MatMulProblem::new(16, 16, 16))
            .base(8)
            .prune(Prune::KeepBest(3))
            .seed(7);
        let report = Explorer::new().explore(&spec).unwrap();
        assert!(report.heuristic.is_some() && report.heuristic_eval.is_some());

        let wire = report_to_json(&report);
        let back = report_from_json(&wire).unwrap();
        // Serializing the rebuilt report again must yield the identical
        // document — every field survived, including float metrics.
        assert_eq!(wire.to_json_string(), report_to_json(&back).to_json_string());
        assert_eq!(back.evaluations.len(), report.evaluations.len());
        assert_eq!(back.optimum().unwrap().candidate.key, report.optimum().unwrap().candidate.key);
        assert_eq!(back.sims_per_sec().is_some(), report.sims_per_sec().is_some());
    }

    #[test]
    fn malformed_wire_reports_are_diagnostics() {
        let report =
            Explorer::new().explore(&ExploreSpec::new(MatMulProblem::new(8, 8, 8))).unwrap();
        let wire = report_to_json(&report);
        // Drop one required member at a time; each must fail by name.
        for member in ["workload", "evaluations", "objectives", "full_sim_nanos", "measure_backend"]
        {
            let pruned = JsonValue::object(
                wire.as_object().unwrap().iter().filter(|(name, _)| name != member).cloned(),
            );
            let err = report_from_json(&pruned).unwrap_err();
            assert!(err.message.contains(member), "`{}` should blame {member}", err.message);
        }
        assert!(report_from_json(&JsonValue::Null).is_err());
    }
}
