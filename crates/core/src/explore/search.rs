//! Search strategies over a design space.
//!
//! Exhaustive enumerate-and-prune measures every survivor at full
//! fidelity — exact, but the space explodes for non-square problems and
//! multi-generation sweeps. Successive halving spends most measurements
//! on cheap *proxy* problems instead: candidates are ranked by the
//! analytical transfer model, then promoted through rounds in which the
//! surviving fraction shrinks by `eta` while the measurement fidelity
//! (the proxy problem size) doubles, until only the finalists are
//! measured on the full problem. Proxy measurements of differently-sized
//! proxies are compared by *time per MAC*, not raw time, so tiles of
//! different shapes race fairly.
//!
//! Every proxy measurement flows through the same candidate-keyed cache
//! as full measurements (proxy realizations carry their proxy problem in
//! the key), so repeated halving runs — and spaces whose proxies
//! degenerate to the full problem — re-simulate nothing.

use axi4mlir_support::diag::Diagnostic;

use super::space::{Candidate, DesignSpace, Fidelity};
use super::{Evaluation, Explorer};

/// Parameters of the successive-halving search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HalvingSpec {
    /// Fraction of survivors kept per round (`1/eta`); clamped to ≥ 2.
    pub eta: usize,
    /// Candidates promoted to the final full-fidelity round (the search
    /// stops cutting once the field is this small); clamped to ≥ 1.
    pub finalists: usize,
    /// Proxy fidelity of the first measured round, in tiles per
    /// dimension; doubles every round. Clamped to ≥ 1.
    pub start_level: u8,
}

impl Default for HalvingSpec {
    fn default() -> Self {
        Self { eta: 2, finalists: 4, start_level: 2 }
    }
}

/// Which candidates a sweep measures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Search {
    /// Measure every candidate surviving the prune, at full fidelity.
    Exhaustive,
    /// Successive halving over the transfer-model ranking.
    Halving(HalvingSpec),
}

impl Search {
    /// The report label.
    pub fn label(&self) -> &'static str {
        match self {
            Search::Exhaustive => "exhaustive",
            Search::Halving(_) => "halving",
        }
    }
}

impl Explorer {
    /// Runs the successive-halving search; returns the full-fidelity
    /// finalist evaluations and the number of proxy-round cache hits.
    pub(crate) fn run_halving(
        &self,
        space: &dyn DesignSpace,
        mut survivors: Vec<Candidate>,
        spec: &HalvingSpec,
        workers: usize,
    ) -> Result<(Vec<Evaluation>, usize), Diagnostic> {
        let eta = spec.eta.max(2);
        let finalists = spec.finalists.max(1);
        // Round 0 is free: rank by the analytical transfer model
        // (stable, so enumeration order breaks ties).
        survivors.sort_by_key(|c| (c.estimate.words_total(), c.estimate.transactions));

        let mut level = spec.start_level.max(1);
        let mut proxy_hits = 0;
        while survivors.len() > finalists {
            let evals = self.measure_set(space, &survivors, Fidelity::Proxy { level }, workers)?;
            proxy_hits += evals.iter().filter(|e| e.from_cache).count();
            // Promote the fastest per unit of work (proxies differ in
            // size); ties keep the round's incoming rank.
            let mut order: Vec<usize> = (0..survivors.len()).collect();
            order.sort_by(|&a, &b| {
                let throughput = |e: &Evaluation| e.task_clock_ms / e.work.max(1) as f64;
                throughput(&evals[a]).total_cmp(&throughput(&evals[b])).then(a.cmp(&b))
            });
            order.truncate(finalists.max(survivors.len().div_ceil(eta)));
            survivors = order.into_iter().map(|i| survivors[i].clone()).collect();
            level = level.saturating_mul(2);
        }

        let finals = self.measure_set(space, &survivors, Fidelity::Full, workers)?;
        Ok((finals, proxy_hits))
    }
}
