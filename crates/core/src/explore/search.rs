//! Search strategies over a design space.
//!
//! Exhaustive enumerate-and-prune measures every survivor at full
//! fidelity — exact, but the space explodes for non-square problems and
//! multi-generation sweeps. Successive halving spends most measurements
//! on cheap *proxy* problems instead: candidates are ranked by the
//! analytical transfer model, then promoted through rounds in which the
//! surviving fraction shrinks by `1/eta` while the measurement fidelity
//! (the proxy problem size) doubles, until only the finalists are
//! measured on the full problem. Promotion ranks by a configurable
//! [`Objective`]; extensive objectives (time, traffic) are normalized
//! *per MAC* so proxies of different sizes race fairly — time per MAC is
//! the default.
//!
//! Every proxy measurement flows through the same candidate-keyed cache
//! as full measurements (proxy realizations carry their proxy problem in
//! the key), so repeated halving runs re-simulate nothing. When a round's
//! proxies stop growing — they already cover the full problem, or the
//! level can no longer rise — further rounds would re-rank identical
//! measurements, so the search cuts straight to the finalists instead of
//! looping on a saturated level.
//!
//! A **warm-started** halving (an [`Explorer`] carrying a cross-problem
//! [`TransferModel`](super::transfer::TransferModel)) replaces the
//! analytical round-0 ranking with the model's calibrated clock
//! predictions, and when the model is *informed* about at least half the
//! field (exact- or coarse-tier observations, not just the global
//! rescale) it trusts the calibration with real budget: one halving cut
//! is taken for free before any proxy is simulated, and the final
//! full-fidelity round runs on half the usual finalist count. That is
//! how measurements banked on one problem shape reduce both proxy and
//! full simulations on the next shape. The model calibrates task-clock
//! only, so searches promoting by any other objective ignore the warm
//! start and run the cold analytical ranking.

use axi4mlir_heuristics::objective::Objective;
use axi4mlir_support::diag::Diagnostic;

use super::space::{Candidate, DesignSpace, Fidelity};
use super::{estimate_rank, notify, Evaluation, Explorer, Observer, ProgressEvent, SweepStats};

/// Parameters of the successive-halving search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HalvingSpec {
    /// Divisor of the survivor count per round: each round keeps `1/eta`
    /// of the field (so `eta = 2` halves it). Clamped to ≥ 2.
    pub eta: usize,
    /// Candidates promoted to the final full-fidelity round (the search
    /// stops cutting once the field is this small); clamped to ≥ 1.
    pub finalists: usize,
    /// Proxy fidelity of the first measured round, in tiles per
    /// dimension; doubles every round. Clamped to ≥ 1.
    pub start_level: u8,
    /// The objective promotion ranks by. `None` — the default — follows
    /// the sweep's *primary* objective (the first one passed to
    /// `explore_with_objectives`), so pruning and promotion always agree
    /// unless a caller explicitly overrides this. Under the default
    /// task-clock primary that is time per MAC.
    pub objective: Option<Objective>,
}

impl Default for HalvingSpec {
    fn default() -> Self {
        Self { eta: 2, finalists: 4, start_level: 2, objective: None }
    }
}

impl HalvingSpec {
    /// Pins the promotion objective, decoupling it from the sweep's
    /// primary.
    #[must_use]
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = Some(objective);
        self
    }

    /// Overrides the finalist count.
    #[must_use]
    pub fn finalists(mut self, finalists: usize) -> Self {
        self.finalists = finalists;
        self
    }
}

/// Which candidates a sweep measures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Search {
    /// Measure every candidate surviving the prune, at full fidelity.
    Exhaustive,
    /// Successive halving over the transfer-model ranking.
    Halving(HalvingSpec),
}

impl Search {
    /// The report label.
    pub fn label(&self) -> &'static str {
        match self {
            Search::Exhaustive => "exhaustive",
            Search::Halving(_) => "halving",
        }
    }
}

impl Explorer {
    /// Runs the successive-halving search; returns the full-fidelity
    /// finalist evaluations, the number of proxy-round cache hits, and
    /// how many candidates the warm-start model was informed about.
    #[allow(clippy::too_many_arguments)] // internal: mirrors explore_streaming's parameters
    pub(crate) fn run_halving(
        &self,
        space: &dyn DesignSpace,
        mut survivors: Vec<Candidate>,
        spec: &HalvingSpec,
        workers: usize,
        primary: Objective,
        observer: Observer,
        stats: &SweepStats,
    ) -> Result<(Vec<Evaluation>, usize, usize), Diagnostic> {
        let eta = spec.eta.max(2);
        let mut finalists = spec.finalists.max(1);
        let objective = spec.objective.unwrap_or(primary);
        // Round 0 is free. Cold: rank by the analytical transfer model
        // under the promotion objective (stable, so enumeration order
        // breaks ties). Warm: rank by the cross-problem model's
        // calibrated clock predictions instead — and when the model is
        // informed about at least half the field, take one halving cut
        // before any proxy is simulated and halve the finalist budget:
        // the calibration already did a rung's worth of discrimination.
        // The model calibrates *clock* only, so the warm path engages
        // only when the promotion objective is task-clock; promoting by
        // traffic/transactions/occupancy under clock predictions would
        // cut the field by the wrong metric, so those sweeps run cold.
        let mut warm_informed = 0;
        match &self.warm {
            Some(model) if objective == Objective::TaskClock => {
                let predictions: Vec<_> = survivors.iter().map(|c| model.predict(c)).collect();
                warm_informed =
                    predictions.iter().filter(|p| p.is_some_and(|p| p.is_informed())).count();
                let mut order: Vec<usize> = (0..survivors.len()).collect();
                order.sort_by(|&a, &b| {
                    let key = |i: usize| {
                        let p = &predictions[i];
                        (p.is_none(), p.map_or(0.0, |p| p.clock_ms))
                    };
                    let (a_none, a_ms) = key(a);
                    let (b_none, b_ms) = key(b);
                    a_none
                        .cmp(&b_none)
                        .then(a_ms.total_cmp(&b_ms))
                        .then_with(|| {
                            estimate_rank(&survivors[a], objective)
                                .cmp(&estimate_rank(&survivors[b], objective))
                        })
                        .then(a.cmp(&b))
                });
                survivors = order.into_iter().map(|i| survivors[i].clone()).collect();
                if warm_informed * 2 >= survivors.len() && !survivors.is_empty() {
                    let keep = finalists.max(survivors.len().div_ceil(eta));
                    survivors.truncate(keep);
                    finalists = finalists.div_ceil(2);
                }
            }
            _ => survivors.sort_by_key(|c| estimate_rank(c, objective)),
        }

        let mut level = spec.start_level.max(1);
        let mut proxy_hits = 0;
        while survivors.len() > finalists {
            // A proxy level is *stalled* when raising it changes no
            // survivor's realization — either the proxies already cover
            // the full problem, or `level` can no longer grow. Further
            // rounds would re-rank identical measurements, so this round
            // ranks once and promotes straight to the finalists.
            let next_level = level.saturating_mul(2);
            let mut stalled = next_level == level;
            if !stalled {
                stalled = true;
                for candidate in &survivors {
                    let here = space.realize(candidate, Fidelity::Proxy { level })?.key;
                    let above =
                        space.realize(candidate, Fidelity::Proxy { level: next_level })?.key;
                    if here != above {
                        stalled = false;
                        break;
                    }
                }
            }

            let sims_before = stats.sims();
            let full_before = stats.full_sims();
            let evals =
                self.measure_set(space, &survivors, Fidelity::Proxy { level }, workers, stats)?;
            let round_hits = evals.iter().filter(|e| e.from_cache).count();
            proxy_hits += round_hits;
            // Promote by the objective's work-normalized score (proxies
            // differ in size); ties keep the round's incoming rank.
            let mut order: Vec<usize> = (0..survivors.len()).collect();
            order.sort_by(|&a, &b| {
                let rank = |e: &Evaluation| e.rank_value(objective);
                rank(&evals[a]).total_cmp(&rank(&evals[b])).then(a.cmp(&b))
            });
            let keep =
                if stalled { finalists } else { finalists.max(survivors.len().div_ceil(eta)) };
            order.truncate(keep);
            survivors = order.into_iter().map(|i| survivors[i].clone()).collect();
            notify(
                observer,
                ProgressEvent::RungComplete {
                    fidelity: Fidelity::Proxy { level },
                    survivors: survivors.len(),
                    sims_performed: stats.sims() - sims_before,
                    cache_hits: round_hits,
                    full_sims_performed: stats.full_sims() - full_before,
                },
            )?;
            if stalled {
                break;
            }
            level = next_level;
        }

        let sims_before = stats.sims();
        let full_before = stats.full_sims();
        let finals = self.measure_set(space, &survivors, Fidelity::Full, workers, stats)?;
        notify(
            observer,
            ProgressEvent::RungComplete {
                fidelity: Fidelity::Full,
                survivors: finals.len(),
                sims_performed: stats.sims() - sims_before,
                cache_hits: finals.iter().filter(|e| e.from_cache).count(),
                full_sims_performed: stats.full_sims() - full_before,
            },
        )?;
        Ok((finals, proxy_hits, warm_informed))
    }
}
