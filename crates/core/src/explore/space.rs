//! The design-space abstraction: what the explorer searches.
//!
//! A [`DesignSpace`] names a set of [`Candidate`]s — points combining a
//! workload problem, an accelerator instantiation, a dataflow, a tile,
//! and the tunable [`PipelineOptions`] axis — and knows how to *realize*
//! any of them into a runnable `(Workload, CompilePlan)` pair for the
//! [`Session`](crate::driver::Session) layer. Three spaces ship in-tree:
//!
//! - [`MatMulSpace`]: the §IV-C space, generalized from "v4 tiles only"
//!   to any mix of Table I generations (v1–v3 contribute their fixed
//!   square tile, v4 the full [`candidate_edges`] search);
//! - [`BatchedSpace`]: the MatMul space applied to a batch of independent
//!   GEMMs;
//! - [`ConvSpace`]: one §IV-D layer; its geometric point is fixed by the
//!   layer, so the space is the `PipelineOptions` axis.
//!
//! Candidates are identified by a structured [`CandidateKey`] — the
//! explorer's cache key, which distinguishes every axis (including the
//! options and the accelerator generation, which the PR-2 string key
//! conflated) and round-trips through the persistent result cache.
//!
//! [`candidate_edges`]: axi4mlir_heuristics::candidate_edges

use axi4mlir_config::{AcceleratorConfig, AcceleratorPreset, FlowStrategy};
use axi4mlir_heuristics::space::{batched_points, conv_point, matmul_points, SpacePoint};
use axi4mlir_heuristics::{best_choice, instantiation_base, ConvShapeEstimate, TransferEstimate};
use axi4mlir_support::diag::Diagnostic;
use axi4mlir_workloads::batched::BatchedMatMulProblem;
use axi4mlir_workloads::matmul::MatMulProblem;
use axi4mlir_workloads::resnet::ConvLayer;

pub use axi4mlir_accelerators::matmul::MatMulVersion;
pub use axi4mlir_heuristics::space::{AccelInstance, OptionsPoint};

use crate::driver::{BatchedMatMulWorkload, CompilePlan, ConvWorkload, MatMulWorkload, Workload};
use crate::options::PipelineOptions;

use super::jobspec::JobSpec;

/// Applies an [`OptionsPoint`] onto a compile plan: the pipeline knobs
/// (coalescing, copy specialization, cache-tiling level) plus the named
/// host whose cache sizes the `Auto` tiling heuristic reads.
pub fn apply_options(plan: CompilePlan, options: &OptionsPoint) -> CompilePlan {
    let pipeline = PipelineOptions {
        coalesce_transfers: options.coalesce,
        specialized_copies: options.specialized_copies,
        cache_tiling: options.cache_tiling,
        ..PipelineOptions::default()
    };
    plan.options(pipeline).cpu_spec(options.cpu.spec())
}

/// The structured identity of one candidate — the explorer's cache key.
///
/// Every axis is a separate field: two candidates differing in *any* of
/// workload (problem dims included), accelerator instantiation, flow,
/// tile, pipeline options, or data seed get distinct keys.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CandidateKey {
    /// Workload kind and problem, e.g. `matmul 16x16x16`,
    /// `batched 8x8x8 x3`, `conv 10_64_3_16_1`.
    pub workload: String,
    /// Accelerator instantiation, e.g. `v4_16`, `v2_8`, `conv2d`.
    pub accel: String,
    /// Dataflow short name (`Ns`/`As`/`Bs`/`Cs`, `FOs` for conv).
    pub flow: String,
    /// The `(tM, tN, tK)` tile; `(0, 0, 0)` for spaces without a tile
    /// axis (conv).
    pub tile: (i64, i64, i64),
    /// The tunable pipeline-options point.
    pub options: OptionsPoint,
    /// Data seed of the measurement.
    pub seed: u64,
}

impl CandidateKey {
    /// The per-space entry label: accelerator, flow, tile (when the space
    /// has a tile axis), and any non-default options.
    pub fn label(&self) -> String {
        let tile = if self.tile == (0, 0, 0) {
            String::new()
        } else {
            format!(" {} {} {}", self.tile.0, self.tile.1, self.tile.2)
        };
        format!("{} {}{}{}", self.accel, self.flow, tile, self.options.suffix())
    }
}

/// One point of a design space: its identity plus the analytical traffic
/// estimate (the cost hook pruning and halving rank on).
#[derive(Clone, Debug, PartialEq)]
pub struct Candidate {
    /// Structured identity (also the cache key).
    pub key: CandidateKey,
    /// Estimated traffic under this candidate.
    pub estimate: TransferEstimate,
}

impl Candidate {
    /// The entry label (see [`CandidateKey::label`]).
    pub fn label(&self) -> String {
        self.key.label()
    }
}

/// How faithfully a candidate is measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fidelity {
    /// A proxy problem capped at `level` units per dimension (tiles for
    /// MatMul spaces, output pixels/channels for conv, with a batch of
    /// one standing in for a batched sweep) — cheap, rank-preserving
    /// enough to steer successive halving. A proxy that already covers
    /// the full problem realizes identically to [`Fidelity::Full`] (the
    /// shared cache key then makes proxy rounds free).
    Proxy {
        /// Tiles per dimension the proxy problem keeps (at least 1).
        level: u8,
    },
    /// The full problem.
    Full,
}

impl Fidelity {
    /// The compact spelling used by progress events and the hub wire
    /// protocol: `full`, or `proxy:N` for [`Fidelity::Proxy`] level `N`.
    pub fn label(&self) -> String {
        match self {
            Fidelity::Full => "full".to_owned(),
            Fidelity::Proxy { level } => format!("proxy:{level}"),
        }
    }

    /// Parses a [`Fidelity::label`] spelling back (`None` for anything
    /// else).
    pub fn parse(label: &str) -> Option<Fidelity> {
        if label == "full" {
            return Some(Fidelity::Full);
        }
        let level = label.strip_prefix("proxy:")?.parse().ok()?;
        (level >= 1).then_some(Fidelity::Proxy { level })
    }
}

/// A realized candidate: what the measurement engine runs.
pub struct Realization {
    /// Identity of the *realized* measurement (fidelity-adjusted: a proxy
    /// realization carries the proxy problem in its `workload` field, so
    /// proxy and full measurements cache separately).
    pub key: CandidateKey,
    /// The workload to run.
    pub workload: Box<dyn Workload>,
    /// The compile plan to run it under.
    pub plan: CompilePlan,
    /// Work (MACs) of the realized problem — the normalizer that makes
    /// proxy measurements of differently-sized proxies comparable.
    pub work: u64,
}

/// A searchable design space: an enumerable candidate set with an
/// analytical cost per candidate, plus the recipe turning any candidate
/// into a runnable workload/plan pair.
pub trait DesignSpace: Sync {
    /// Human-readable identity for reports and diagnostics.
    fn describe(&self) -> String;

    /// The workload kind (`matmul`, `batched`, `conv`).
    fn workload_kind(&self) -> &'static str;

    /// Every legal candidate in a fixed, deterministic order, each with
    /// its analytical estimate.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] when the space is structurally illegal
    /// (e.g. a conv layer exceeding the device buffer capacities).
    fn enumerate(&self) -> Result<Vec<Candidate>, Diagnostic>;

    /// Realizes one candidate at a fidelity.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] for candidates that do not belong to this
    /// space (e.g. an unparseable accelerator name from a foreign cache).
    fn realize(&self, candidate: &Candidate, fidelity: Fidelity)
        -> Result<Realization, Diagnostic>;

    /// The analytical heuristic pick this space's cost model would make,
    /// when it has one — measured alongside the sweep so reports can
    /// state the heuristic-vs-optimum gap.
    fn heuristic(&self) -> Option<Candidate> {
        None
    }

    /// The minimal [`JobSpec`] a remote `axi4mlir-worker` rebuilds this
    /// space from, when the space can travel. Realization depends only
    /// on the problem shape and the data seed — the accelerator, flow,
    /// tile, and options ride inside the candidate key — so the spec
    /// needs neither the accelerator list nor the options axis. `None`
    /// (the default) confines the space to local measurement.
    fn wire_spec(&self) -> Option<JobSpec> {
        None
    }
}

// ---------------------------------------------------------------------
// MatMul
// ---------------------------------------------------------------------

/// The MatMul design space: one problem swept over accelerator
/// instantiations × flows × tiles × pipeline options.
#[derive(Clone, Debug)]
pub struct MatMulSpace {
    /// The GEMM to explore.
    pub problem: MatMulProblem,
    /// Accelerator instantiations to consider, in order.
    pub accels: Vec<AccelInstance>,
    /// Tile-memory budget for flexible (v4) candidates, in words.
    pub capacity_words: u64,
    /// Flows to consider (intersected with each generation's legal set).
    pub flows: Vec<FlowStrategy>,
    /// Pipeline-options points to consider.
    pub options_axis: Vec<OptionsPoint>,
    /// Data seed for every measurement.
    pub seed: u64,
}

impl MatMulSpace {
    /// The standard space: the flexible v4 accelerator with base 16, all
    /// flows, default options.
    pub fn new(problem: MatMulProblem) -> Self {
        Self {
            problem,
            accels: vec![AccelInstance::v4(16)],
            capacity_words: axi4mlir_accelerators::matmul::V4_CAPACITY_WORDS,
            flows: FlowStrategy::all().to_vec(),
            options_axis: vec![OptionsPoint::default()],
            seed: 0xD5E,
        }
    }

    /// Overrides the accelerator instantiations.
    #[must_use]
    pub fn accels(mut self, accels: Vec<AccelInstance>) -> Self {
        self.accels = accels;
        self
    }

    /// Overrides the capacity budget.
    #[must_use]
    pub fn capacity_words(mut self, capacity_words: u64) -> Self {
        self.capacity_words = capacity_words;
        self
    }

    /// Overrides the options axis.
    #[must_use]
    pub fn options_axis(mut self, options_axis: Vec<OptionsPoint>) -> Self {
        self.options_axis = options_axis;
        self
    }

    /// Overrides the data seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn dims(&self) -> (i64, i64, i64) {
        (self.problem.m, self.problem.n, self.problem.k)
    }

    fn workload_label(problem: MatMulProblem) -> String {
        format!("matmul {problem}")
    }
}

/// Expands geometric points by an options axis into keyed candidates,
/// dropping points the options axis is not meaningful for (see
/// [`OptionsPoint::legal_for_matmul`]): illegal fixed cache tiles and
/// host variants that could not change the measurement.
fn keyed(
    points: Vec<SpacePoint>,
    workload: &str,
    problem: (i64, i64, i64),
    options_axis: &[OptionsPoint],
    seed: u64,
) -> Vec<Candidate> {
    let mut out = Vec::with_capacity(points.len() * options_axis.len().max(1));
    for point in points {
        for &options in options_axis {
            if !options.legal_for_matmul(problem, point.tile, point.flow) {
                continue;
            }
            out.push(Candidate {
                key: CandidateKey {
                    workload: workload.to_owned(),
                    accel: point.accel.label(),
                    flow: point.flow.short_name().to_owned(),
                    tile: point.tile,
                    options,
                    seed,
                },
                estimate: point.estimate,
            });
        }
    }
    out
}

/// Parses the structured accelerator/flow fields of a MatMul-shaped key.
fn matmul_key_target(key: &CandidateKey) -> Result<(AccelInstance, FlowStrategy), Diagnostic> {
    let accel = AccelInstance::parse(&key.accel).ok_or_else(|| {
        Diagnostic::error(format!("candidate accelerator `{}` is not a MatMul instance", key.accel))
    })?;
    let flow = FlowStrategy::from_short_name(&key.flow)
        .ok_or_else(|| Diagnostic::error(format!("unknown flow `{}`", key.flow)))?;
    Ok((accel, flow))
}

/// The accelerator configuration a MatMul candidate instantiates.
fn matmul_config(
    accel: AccelInstance,
    tile: (i64, i64, i64),
    flow: FlowStrategy,
) -> AcceleratorConfig {
    let (tm, tn, tk) = tile;
    let config = match accel.version {
        MatMulVersion::V1 => AcceleratorConfig::preset(AcceleratorPreset::V1 { size: accel.size }),
        MatMulVersion::V2 => AcceleratorConfig::preset(AcceleratorPreset::V2 { size: accel.size }),
        MatMulVersion::V3 => AcceleratorConfig::preset(AcceleratorPreset::V3 { size: accel.size }),
        MatMulVersion::V4 => {
            AcceleratorConfig::preset_v4_with_tile(instantiation_base(accel.size, tile), tm, tn, tk)
        }
    };
    config.with_selected_flow(flow.short_name())
}

/// The proxy problem of a tile at `level` tiles per dimension: each
/// dimension capped at `level * tile_edge` (a multiple of the tile, so
/// divisibility is preserved).
fn proxy_problem(problem: MatMulProblem, tile: (i64, i64, i64), level: u8) -> MatMulProblem {
    let level = i64::from(level.max(1));
    MatMulProblem::new(
        problem.m.min(level * tile.0),
        problem.n.min(level * tile.1),
        problem.k.min(level * tile.2),
    )
}

/// The options a *realized* problem can actually run under: a fixed
/// cache-tile edge that was legal on the full problem may not divide a
/// shrunken proxy's dimensions (the enumeration legality check sees the
/// full problem only), and `matmul_plan` would reject it, aborting the
/// sweep. Such proxies fall back to `Off` — the proxy is an
/// approximation anyway, and the clamped options are reflected in the
/// realized cache key so the measurement is never served under the
/// fixed-tile identity.
fn realized_options(
    options: OptionsPoint,
    problem: MatMulProblem,
    tile: (i64, i64, i64),
    flow: FlowStrategy,
) -> OptionsPoint {
    match options.cache_tiling {
        axi4mlir_config::CacheTiling::Fixed(_)
            if !options.legal_for_matmul((problem.m, problem.n, problem.k), tile, flow) =>
        {
            OptionsPoint { cache_tiling: axi4mlir_config::CacheTiling::Off, ..options }
        }
        _ => options,
    }
}

impl DesignSpace for MatMulSpace {
    fn describe(&self) -> String {
        let accels: Vec<String> = self.accels.iter().map(AccelInstance::label).collect();
        format!("matmul {} on {}", self.problem, accels.join("+"))
    }

    fn workload_kind(&self) -> &'static str {
        "matmul"
    }

    fn enumerate(&self) -> Result<Vec<Candidate>, Diagnostic> {
        let points = matmul_points(self.dims(), &self.accels, self.capacity_words, &self.flows);
        Ok(keyed(
            points,
            &Self::workload_label(self.problem),
            self.dims(),
            &self.options_axis,
            self.seed,
        ))
    }

    fn realize(
        &self,
        candidate: &Candidate,
        fidelity: Fidelity,
    ) -> Result<Realization, Diagnostic> {
        let (accel, flow) = matmul_key_target(&candidate.key)?;
        let problem = match fidelity {
            Fidelity::Full => self.problem,
            Fidelity::Proxy { level } => proxy_problem(self.problem, candidate.key.tile, level),
        };
        let options = realized_options(candidate.key.options, problem, candidate.key.tile, flow);
        let config = matmul_config(accel, candidate.key.tile, flow);
        let plan = apply_options(CompilePlan::for_accelerator(config).seed(self.seed), &options);
        Ok(Realization {
            key: CandidateKey {
                workload: Self::workload_label(problem),
                options,
                ..candidate.key.clone()
            },
            workload: Box::new(MatMulWorkload::new(problem)),
            plan,
            work: problem.macs(),
        })
    }

    fn heuristic(&self) -> Option<Candidate> {
        let v4 = self.accels.iter().find(|a| a.version == MatMulVersion::V4)?;
        let choice = best_choice(self.dims(), v4.size, self.capacity_words).ok()?;
        Some(Candidate {
            key: CandidateKey {
                workload: Self::workload_label(self.problem),
                accel: v4.label(),
                flow: choice.flow.short_name().to_owned(),
                tile: choice.tile,
                options: self.options_axis.first().copied().unwrap_or_default(),
                seed: self.seed,
            },
            estimate: choice.estimate,
        })
    }

    fn wire_spec(&self) -> Option<JobSpec> {
        Some(JobSpec { dims: Some(self.dims()), seed: Some(self.seed), ..JobSpec::default() })
    }
}

// ---------------------------------------------------------------------
// Batched MatMul
// ---------------------------------------------------------------------

/// The batched-MatMul design space: the MatMul axes applied to a batch of
/// independent same-shape GEMMs (estimates scale with the batch).
#[derive(Clone, Debug)]
pub struct BatchedSpace {
    /// The batch to explore.
    pub batch: BatchedMatMulProblem,
    /// Accelerator instantiations to consider, in order.
    pub accels: Vec<AccelInstance>,
    /// Tile-memory budget for flexible (v4) candidates, in words.
    pub capacity_words: u64,
    /// Flows to consider.
    pub flows: Vec<FlowStrategy>,
    /// Pipeline-options points to consider.
    pub options_axis: Vec<OptionsPoint>,
    /// Data seed for every measurement.
    pub seed: u64,
}

impl BatchedSpace {
    /// The standard batched space (see [`MatMulSpace::new`]).
    pub fn new(batch: BatchedMatMulProblem) -> Self {
        let base = MatMulSpace::new(batch.problem);
        Self {
            batch,
            accels: base.accels,
            capacity_words: base.capacity_words,
            flows: base.flows,
            options_axis: base.options_axis,
            seed: base.seed,
        }
    }

    /// Overrides the accelerator instantiations.
    #[must_use]
    pub fn accels(mut self, accels: Vec<AccelInstance>) -> Self {
        self.accels = accels;
        self
    }

    /// Overrides the capacity budget.
    #[must_use]
    pub fn capacity_words(mut self, capacity_words: u64) -> Self {
        self.capacity_words = capacity_words;
        self
    }

    /// Overrides the options axis.
    #[must_use]
    pub fn options_axis(mut self, options_axis: Vec<OptionsPoint>) -> Self {
        self.options_axis = options_axis;
        self
    }

    /// Overrides the data seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn dims(&self) -> (i64, i64, i64) {
        (self.batch.problem.m, self.batch.problem.n, self.batch.problem.k)
    }

    fn workload_label(batch: BatchedMatMulProblem) -> String {
        format!("batched {batch}")
    }
}

impl DesignSpace for BatchedSpace {
    fn describe(&self) -> String {
        let accels: Vec<String> = self.accels.iter().map(AccelInstance::label).collect();
        format!("batched {} on {}", self.batch, accels.join("+"))
    }

    fn workload_kind(&self) -> &'static str {
        "batched"
    }

    fn enumerate(&self) -> Result<Vec<Candidate>, Diagnostic> {
        let points = batched_points(
            self.dims(),
            self.batch.batch as u64,
            &self.accels,
            self.capacity_words,
            &self.flows,
        );
        Ok(keyed(
            points,
            &Self::workload_label(self.batch),
            self.dims(),
            &self.options_axis,
            self.seed,
        ))
    }

    fn realize(
        &self,
        candidate: &Candidate,
        fidelity: Fidelity,
    ) -> Result<Realization, Diagnostic> {
        let (accel, flow) = matmul_key_target(&candidate.key)?;
        // The proxy shrinks both axes of the batch: the per-element
        // problem is capped at `level` tiles per dimension, and a single
        // element stands in for the whole batch (the elements are
        // independent and identically shaped, so one preserves the
        // ranking) — without this, every proxy round re-measured the
        // full batch and halving saved nothing here.
        let batch = match fidelity {
            Fidelity::Full => self.batch,
            Fidelity::Proxy { level } => BatchedMatMulProblem::new(
                proxy_problem(self.batch.problem, candidate.key.tile, level),
                1,
            ),
        };
        let options =
            realized_options(candidate.key.options, batch.problem, candidate.key.tile, flow);
        let config = matmul_config(accel, candidate.key.tile, flow);
        let plan = apply_options(CompilePlan::for_accelerator(config).seed(self.seed), &options);
        Ok(Realization {
            key: CandidateKey {
                workload: Self::workload_label(batch),
                options,
                ..candidate.key.clone()
            },
            workload: Box::new(BatchedMatMulWorkload::new(batch)),
            plan,
            work: batch.macs(),
        })
    }

    fn heuristic(&self) -> Option<Candidate> {
        let v4 = self.accels.iter().find(|a| a.version == MatMulVersion::V4)?;
        let choice = best_choice(self.dims(), v4.size, self.capacity_words).ok()?;
        Some(Candidate {
            key: CandidateKey {
                workload: Self::workload_label(self.batch),
                accel: v4.label(),
                flow: choice.flow.short_name().to_owned(),
                tile: choice.tile,
                options: self.options_axis.first().copied().unwrap_or_default(),
                seed: self.seed,
            },
            estimate: axi4mlir_heuristics::batched_matmul_transfers(
                choice.flow,
                self.dims(),
                choice.tile,
                self.batch.batch as u64,
            ),
        })
    }

    fn wire_spec(&self) -> Option<JobSpec> {
        Some(JobSpec {
            workload: "batched".to_owned(),
            dims: Some(self.dims()),
            batch: Some(self.batch.batch as i64),
            seed: Some(self.seed),
            ..JobSpec::default()
        })
    }
}

// ---------------------------------------------------------------------
// Conv2D
// ---------------------------------------------------------------------

/// The reduced-output-extent proxy of a conv layer at `level`: the
/// accelerator's configuration (input channels, filter shape, stride) is
/// kept — the §IV-D device is instantiated from them — while the output
/// is capped at `level` pixels per spatial dimension and `level` output
/// channels, shrinking the input window sweep proportionally. A level
/// covering the full output extent returns the layer itself, so halving's
/// saturation check converges exactly.
fn conv_proxy_layer(layer: ConvLayer, level: u8) -> ConvLayer {
    let level = usize::from(level.max(1));
    let out_hw = layer.out_hw().min(level);
    let out_channels = layer.out_channels.min(level);
    if out_hw == layer.out_hw() && out_channels == layer.out_channels {
        return layer;
    }
    ConvLayer { in_hw: (out_hw - 1) * layer.stride + layer.filter_hw, out_channels, ..layer }
}

/// The Conv2D design space: one §IV-D layer. The accelerator is
/// configured to the layer's channel/filter shape, so the geometric point
/// is fixed and the explored axis is [`PipelineOptions`]; proxy
/// fidelities run a `conv_proxy_layer` with a reduced output extent.
#[derive(Clone, Debug)]
pub struct ConvSpace {
    /// The layer to explore.
    pub layer: ConvLayer,
    /// Pipeline-options points to consider.
    pub options_axis: Vec<OptionsPoint>,
    /// Data seed for every measurement.
    pub seed: u64,
}

impl ConvSpace {
    /// The standard conv space: the full options axis, the conventional
    /// conv data seed.
    pub fn new(layer: ConvLayer) -> Self {
        Self { layer, options_axis: OptionsPoint::axis(), seed: 0xC02 }
    }

    /// Overrides the options axis.
    #[must_use]
    pub fn options_axis(mut self, options_axis: Vec<OptionsPoint>) -> Self {
        self.options_axis = options_axis;
        self
    }

    /// Overrides the data seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn shape(&self) -> ConvShapeEstimate {
        ConvShapeEstimate {
            batch: 1,
            out_channels: self.layer.out_channels as i64,
            out_hw: self.layer.out_hw() as i64,
            in_channels: self.layer.in_channels as i64,
            filter_hw: self.layer.filter_hw as i64,
        }
    }

    fn workload_label(&self) -> String {
        format!("conv {}", self.layer)
    }
}

impl DesignSpace for ConvSpace {
    fn describe(&self) -> String {
        format!("conv {} on conv2d", self.layer)
    }

    fn workload_kind(&self) -> &'static str {
        "conv"
    }

    fn enumerate(&self) -> Result<Vec<Candidate>, Diagnostic> {
        let estimate = conv_point(self.shape())?;
        Ok(self
            .options_axis
            .iter()
            // Conv kernels never cache-tile: the tiling/host axes are
            // dropped here (their points would duplicate measurements).
            .filter(|options| options.legal_for_conv())
            .map(|&options| Candidate {
                key: CandidateKey {
                    workload: self.workload_label(),
                    accel: "conv2d".to_owned(),
                    flow: "FOs".to_owned(),
                    tile: (0, 0, 0),
                    options,
                    seed: self.seed,
                },
                estimate,
            })
            .collect())
    }

    fn realize(
        &self,
        candidate: &Candidate,
        fidelity: Fidelity,
    ) -> Result<Realization, Diagnostic> {
        // The accelerator is sized to the layer's channel/filter shape,
        // which a proxy must keep — but the *output extent* is free:
        // proxy rounds run a reduced-output layer (fewer pixels and
        // output channels), so halving saves real work here instead of
        // re-measuring the full layer every round.
        let layer = match fidelity {
            Fidelity::Full => self.layer,
            Fidelity::Proxy { level } => conv_proxy_layer(self.layer, level),
        };
        let plan = apply_options(
            CompilePlan::for_conv_layer(layer).seed(self.seed),
            &candidate.key.options,
        );
        Ok(Realization {
            key: CandidateKey { workload: format!("conv {layer}"), ..candidate.key.clone() },
            workload: Box::new(ConvWorkload::new(layer)),
            plan,
            work: layer.macs(),
        })
    }

    fn heuristic(&self) -> Option<Candidate> {
        // The paper's configuration is the default options point.
        self.enumerate().ok()?.into_iter().find(|c| c.key.options == OptionsPoint::default())
    }

    fn wire_spec(&self) -> Option<JobSpec> {
        Some(JobSpec {
            workload: "conv".to_owned(),
            layer: Some(self.layer.label()),
            seed: Some(self.seed),
            ..JobSpec::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_layer() -> ConvLayer {
        ConvLayer { in_hw: 10, in_channels: 64, filter_hw: 3, out_channels: 16, stride: 1 }
    }

    #[test]
    fn options_suffix_marks_non_defaults() {
        assert_eq!(OptionsPoint::default().suffix(), "");
        assert_eq!(OptionsPoint { coalesce: true, ..OptionsPoint::default() }.suffix(), " +co");
        assert_eq!(
            OptionsPoint { specialized_copies: false, ..OptionsPoint::default() }.suffix(),
            " -sc"
        );
        assert_eq!(
            OptionsPoint { coalesce: true, specialized_copies: false, ..OptionsPoint::default() }
                .suffix(),
            " +co -sc"
        );
        assert_eq!(OptionsPoint::axis().len(), 4);
        assert_eq!(OptionsPoint::axis()[0], OptionsPoint::default());
    }

    #[test]
    fn widened_axes_enumerate_legally_and_key_distinctly() {
        use axi4mlir_config::{CacheTiling, CpuModel};
        // 64x64x64 on an 8-base v4: fixed edges 16/32 wrap legally, 64
        // covers the whole problem (duplicate of Off, dropped), and the
        // desktop host only appears under Auto tiling.
        let axis = OptionsPoint::cross_cache_tiling(
            &[OptionsPoint::default()],
            &CacheTiling::sweep_levels(),
        );
        let axis = OptionsPoint::cross_cpus(&axis, &[CpuModel::PynqZ2, CpuModel::Desktop]);
        let space = MatMulSpace::new(MatMulProblem::new(64, 64, 64))
            .accels(vec![AccelInstance::v4(8)])
            .options_axis(axis);
        let candidates = space.enumerate().unwrap();
        let keys: std::collections::HashSet<CandidateKey> =
            candidates.iter().map(|c| c.key.clone()).collect();
        assert_eq!(keys.len(), candidates.len(), "every widened key is unique");
        let tilings: std::collections::HashSet<String> =
            candidates.iter().map(|c| c.key.options.cache_tiling.label()).collect();
        assert!(tilings.contains("auto") && tilings.contains("off"));
        assert!(tilings.contains("fixed:16") && tilings.contains("fixed:32"));
        // A fixed-64 level survives only for tiles where it wraps
        // something; with 64-edge problems it never does.
        let sixty_four: Vec<_> = candidates
            .iter()
            .filter(|c| c.key.options.cache_tiling == CacheTiling::Fixed(64))
            .collect();
        assert!(sixty_four.is_empty(), "fixed:64 duplicates off on a 64^3 problem");
        // Desktop hosts appear, and only under Auto.
        let desktop: Vec<_> =
            candidates.iter().filter(|c| c.key.options.cpu == CpuModel::Desktop).collect();
        assert!(!desktop.is_empty());
        assert!(desktop.iter().all(|c| c.key.options.cache_tiling == CacheTiling::Auto));
    }

    #[test]
    fn proxy_realizations_clamp_unrunnable_fixed_cache_tiles() {
        use axi4mlir_config::CacheTiling;
        // Fixed(24) is legal on the 48^3 problem (24 % 8 == 0,
        // 48 % 24 == 0) but a level-4 proxy shrinks the dims to 32,
        // which 24 does not divide — the proxy must fall back to Off
        // (reflected in its cache key) instead of handing `matmul_plan`
        // an edge it rejects mid-sweep.
        let axis =
            vec![OptionsPoint { cache_tiling: CacheTiling::Fixed(24), ..OptionsPoint::default() }];
        let space = MatMulSpace::new(MatMulProblem::new(48, 48, 48))
            .accels(vec![AccelInstance::v4(8)])
            .options_axis(axis);
        let candidate = space
            .enumerate()
            .unwrap()
            .into_iter()
            .find(|c| c.key.tile == (8, 8, 8))
            .expect("the 8-tile survives enumeration legality");
        let full = space.realize(&candidate, Fidelity::Full).unwrap();
        assert_eq!(full.plan.options.cache_tiling, CacheTiling::Fixed(24));
        let proxy = space.realize(&candidate, Fidelity::Proxy { level: 4 }).unwrap();
        assert!(proxy.key.workload.contains("32x32x32"), "{}", proxy.key.workload);
        assert_eq!(proxy.plan.options.cache_tiling, CacheTiling::Off);
        assert_eq!(proxy.key.options.cache_tiling, CacheTiling::Off, "the key says what ran");
        // The clamped proxy actually runs (this aborted the sweep before).
        let report = crate::driver::Session::for_sweep()
            .run(proxy.workload.as_ref(), &proxy.plan)
            .expect("clamped proxy measures");
        assert!(report.verified);
        // A proxy the edge still wraps legally keeps it: level 8 covers
        // the full 48^3 problem, where Fixed(24) was legal all along.
        let covering = space.realize(&candidate, Fidelity::Proxy { level: 8 }).unwrap();
        assert_eq!(covering.key, full.key);
        assert_eq!(covering.plan.options.cache_tiling, CacheTiling::Fixed(24));
    }

    #[test]
    fn cache_tiling_levels_realize_distinct_plans() {
        use axi4mlir_config::{CacheTiling, CpuModel};
        let axis = OptionsPoint::cross_cache_tiling(
            &[OptionsPoint::default()],
            &[CacheTiling::Off, CacheTiling::Fixed(32)],
        );
        let space = MatMulSpace::new(MatMulProblem::new(64, 64, 64))
            .accels(vec![AccelInstance::v4(8)])
            .options_axis(axis);
        let candidates = space.enumerate().unwrap();
        let off = candidates
            .iter()
            .find(|c| c.key.options.cache_tiling == CacheTiling::Off)
            .expect("an off candidate");
        let fixed = candidates
            .iter()
            .find(|c| c.key.options.cache_tiling == CacheTiling::Fixed(32))
            .expect("a fixed candidate");
        let off_plan = space.realize(off, Fidelity::Full).unwrap().plan;
        let fixed_plan = space.realize(fixed, Fidelity::Full).unwrap().plan;
        assert_eq!(off_plan.options.cache_tiling, CacheTiling::Off);
        assert_eq!(fixed_plan.options.cache_tiling, CacheTiling::Fixed(32));
        // The host spec rides along with the cpu axis.
        let desktop = OptionsPoint { cpu: CpuModel::Desktop, ..OptionsPoint::default() };
        let plan = apply_options(CompilePlan::cpu(), &desktop);
        assert_eq!(plan.cpu, CpuModel::Desktop.spec());
    }

    #[test]
    fn keys_distinguish_every_axis() {
        let space = MatMulSpace::new(MatMulProblem::new(16, 16, 16))
            .accels(vec![
                AccelInstance { version: MatMulVersion::V3, size: 8 },
                AccelInstance::v4(8),
            ])
            .options_axis(OptionsPoint::axis());
        let candidates = space.enumerate().unwrap();
        let keys: std::collections::HashSet<CandidateKey> =
            candidates.iter().map(|c| c.key.clone()).collect();
        assert_eq!(keys.len(), candidates.len(), "every candidate key is unique");
        // The same (flow, tile) exists on both accelerators and under
        // several options points — only the structured key separates them.
        let same_geometry: Vec<&Candidate> =
            candidates.iter().filter(|c| c.key.flow == "Ns" && c.key.tile == (8, 8, 8)).collect();
        assert_eq!(same_geometry.len(), 2 * 4, "two accels x four option points");
    }

    #[test]
    fn labels_extend_the_fig14_format() {
        let space = MatMulSpace::new(MatMulProblem::new(16, 16, 16));
        let c = &space.enumerate().unwrap()[0];
        assert!(c.label().starts_with("v4_16 "), "{}", c.label());
        let conv = ConvSpace::new(quick_layer());
        let labels: Vec<String> = conv.enumerate().unwrap().iter().map(Candidate::label).collect();
        assert_eq!(labels[0], "conv2d FOs");
        assert!(labels.contains(&"conv2d FOs +co -sc".to_owned()), "{labels:?}");
    }

    #[test]
    fn proxy_problems_preserve_divisibility_and_cap_at_full() {
        let p = MatMulProblem::new(256, 32, 512);
        let proxied = proxy_problem(p, (16, 32, 16), 2);
        assert_eq!((proxied.m, proxied.n, proxied.k), (32, 32, 32));
        assert_eq!(proxied.m % 16, 0);
        // Level large enough to cover the problem: the proxy is the
        // problem itself.
        let full = proxy_problem(p, (16, 32, 16), 255);
        assert_eq!(full, p);
    }

    #[test]
    fn realize_targets_the_named_generation() {
        let space = MatMulSpace::new(MatMulProblem::new(16, 16, 16)).accels(vec![
            AccelInstance { version: MatMulVersion::V2, size: 8 },
            AccelInstance::v4(8),
        ]);
        let candidates = space.enumerate().unwrap();
        let v2 = candidates.iter().find(|c| c.key.accel == "v2_8").unwrap();
        let r = space.realize(v2, Fidelity::Full).unwrap();
        assert_eq!(r.plan.config.as_ref().unwrap().name, "v2_8");
        assert_eq!(r.work, 16 * 16 * 16);
        let v4 = candidates.iter().find(|c| c.key.accel == "v4_8").unwrap();
        let r = space.realize(v4, Fidelity::Proxy { level: 1 }).unwrap();
        assert!(r.key.workload.contains("8x8x8") || r.key.workload.contains("16x"));
    }

    #[test]
    fn conv_space_is_the_options_axis() {
        let space = ConvSpace::new(quick_layer());
        let candidates = space.enumerate().unwrap();
        assert_eq!(candidates.len(), 4);
        let heuristic = space.heuristic().unwrap();
        assert_eq!(heuristic.key.options, OptionsPoint::default());
    }

    #[test]
    fn conv_proxy_reduces_output_extent_but_keeps_the_accelerator_shape() {
        let layer = quick_layer();
        let space = ConvSpace::new(layer);
        let candidates = space.enumerate().unwrap();
        let full = space.realize(&candidates[0], Fidelity::Full).unwrap();
        let proxy = space.realize(&candidates[0], Fidelity::Proxy { level: 2 }).unwrap();
        // The proxy is a genuinely smaller problem under its own cache key.
        assert!(proxy.work < full.work, "{} !< {}", proxy.work, full.work);
        assert_ne!(proxy.key, full.key);
        // Its accelerator configuration is the layer's (same preset name),
        // so the proxy measures the same device the full layer targets.
        assert_eq!(
            proxy.plan.config.as_ref().unwrap().name,
            full.plan.config.as_ref().unwrap().name
        );
        // Doubling the level grows the proxy toward the layer, and a
        // covering level realizes the layer itself under the full key.
        let bigger = space.realize(&candidates[0], Fidelity::Proxy { level: 4 }).unwrap();
        assert!(proxy.work < bigger.work && bigger.work < full.work);
        let covering = space.realize(&candidates[0], Fidelity::Proxy { level: 255 }).unwrap();
        assert_eq!(covering.key, full.key);
        assert_eq!(covering.work, full.work);
    }

    #[test]
    fn conv_proxy_geometry_is_consistent() {
        // Stride > 1: the proxy input extent must reproduce the capped
        // output extent exactly.
        let layer =
            ConvLayer { in_hw: 30, in_channels: 8, filter_hw: 3, out_channels: 16, stride: 2 };
        for level in [1u8, 2, 3, 7] {
            let proxy = conv_proxy_layer(layer, level);
            assert_eq!(proxy.out_hw(), layer.out_hw().min(usize::from(level)));
            assert_eq!(proxy.out_channels, layer.out_channels.min(usize::from(level)));
            assert_eq!(
                (proxy.in_channels, proxy.filter_hw, proxy.stride),
                (layer.in_channels, layer.filter_hw, layer.stride)
            );
        }
    }

    #[test]
    fn batched_proxy_measures_a_single_element() {
        let batch = BatchedMatMulProblem::new(MatMulProblem::new(32, 32, 32), 3);
        let space = BatchedSpace::new(batch).accels(vec![AccelInstance::v4(8)]);
        let candidates = space.enumerate().unwrap();
        let full = space.realize(&candidates[0], Fidelity::Full).unwrap();
        let proxy = space.realize(&candidates[0], Fidelity::Proxy { level: 1 }).unwrap();
        assert_eq!(full.work, 3 * 32 * 32 * 32);
        assert!(proxy.work < full.work / 3, "batch of one on a reduced problem");
        assert_ne!(proxy.key, full.key);
        assert!(proxy.key.workload.contains("x1"), "{}", proxy.key.workload);
    }

    #[test]
    fn oversized_conv_layers_are_rejected_at_enumeration() {
        let big =
            ConvLayer { in_hw: 10, in_channels: 4096, filter_hw: 3, out_channels: 4, stride: 1 };
        let err = ConvSpace::new(big).enumerate().unwrap_err();
        assert!(err.message.contains("window"), "{}", err.message);
    }
}
