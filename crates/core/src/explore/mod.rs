//! Workload- and generation-generic design-space exploration (the §IV-C
//! search, at scale).
//!
//! The paper's heuristics pick one `(flow, tile)` configuration
//! analytically, for MatMul on the flexible v4 accelerator. This module
//! *searches* instead — and is generic over what it searches:
//!
//! - a [`DesignSpace`] names the candidates: workload problem ×
//!   accelerator generation/base × flow × tile × [`PipelineOptions`]
//!   point. [`MatMulSpace`], [`BatchedSpace`], and [`ConvSpace`] ship
//!   in-tree, each with its own legality/capacity rules (enumerated in
//!   [`axi4mlir_heuristics::space`]) and an analytical traffic estimate
//!   per candidate — the cost hook that lets [`Prune`] and the halving
//!   ranking work on any space;
//! - a [`Search`] strategy decides which candidates are measured:
//!   [`Search::Exhaustive`] measures every survivor of the prune, while
//!   [`Search::Halving`] ranks by the transfer model and promotes
//!   survivors through rounds of increasing measurement fidelity
//!   (proxy problems growing toward the full one);
//! - the [`Explorer`] measures candidates on worker threads (one
//!   recycled-SoC [`Session`] each; results are bit-identical to fresh
//!   runs and independent of the worker count) behind a result cache
//!   keyed by the structured [`CandidateKey`] — and the cache persists:
//!   [`Explorer::with_cache_file`] / [`Explorer::save_cache`] load/merge/
//!   save a `BENCH_cache.json` so repeated sweeps and CI runs share work;
//! - an [`Objective`] set turns the sweep multi-objective:
//!   [`Explorer::explore_with_objectives`] scores every evaluation under
//!   each objective and the report exposes the non-dominated
//!   [`ExploreReport::pareto_front`] plus where the paper's analytical
//!   pick lands relative to it (see [`pareto`]).
//!
//! [`PipelineOptions`]: crate::options::PipelineOptions
//! [`Session`]: crate::driver::Session

pub mod audit;
pub mod cache;
pub mod jobspec;
pub mod measure;
pub mod pareto;
pub mod search;
pub mod shard;
pub mod space;
pub mod transfer;
pub mod wire;

use std::collections::{BTreeSet, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use axi4mlir_sim::counters::PerfCounters;
use axi4mlir_support::diag::Diagnostic;

pub use audit::{audit_candidate, audit_config, audit_plan, audit_space};
pub use axi4mlir_heuristics::objective::Objective;
use cache::CachedEval;
pub use cache::{CACHE_SCHEMA, CACHE_SCHEMA_V1};
pub use jobspec::{AnySpace, ExploreRequest, JobSpec};
pub use measure::{
    Claimed, LocalPool, MeasureBackend, MeasureQueue, MeasureTask, RemotePool, WORKER_SCHEMA,
};
pub use search::{HalvingSpec, Search};
pub use space::{
    apply_options, AccelInstance, BatchedSpace, Candidate, CandidateKey, ConvSpace, DesignSpace,
    Fidelity, MatMulSpace, MatMulVersion, OptionsPoint, Realization,
};
pub use transfer::{Prediction, Tier, TransferModel};

// The PR-2 MatMul-only entry points, kept as thin wrappers.
pub use compat::ExploreSpec;

/// How aggressively the analytical model prunes the space before any
/// simulation runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Prune {
    /// Measure every legal candidate (brute force).
    None,
    /// Keep the `n` candidates with the smallest estimated traffic.
    KeepBest(usize),
    /// Keep candidates whose estimated traffic is within `factor`× of the
    /// smallest estimate (`factor >= 1.0`).
    WithinFactor(f64),
}

/// The analytical rank the prune (and the halving round 0) sorts by: the
/// objective's transfer-model estimate where it has one, the estimated
/// traffic otherwise (task-clock and occupancy are not estimable before
/// simulation), tie-broken by total words then transactions.
fn estimate_rank(candidate: &Candidate, objective: Objective) -> (u64, u64, u64) {
    let words = candidate.estimate.words_total();
    (
        objective.estimate(&candidate.estimate).unwrap_or(words),
        words,
        candidate.estimate.transactions,
    )
}

/// Applies a [`Prune`] strategy to any space's candidates, ranking by
/// `objective`'s analytical extractor and preserving the enumeration
/// order of the survivors. Returns the kept candidates and how many were
/// pruned away.
pub fn prune(
    candidates: Vec<Candidate>,
    strategy: Prune,
    objective: Objective,
) -> (Vec<Candidate>, usize) {
    let total = candidates.len();
    let score = |c: &Candidate| estimate_rank(c, objective).0;
    let kept: Vec<Candidate> = match strategy {
        Prune::None => candidates,
        Prune::KeepBest(n) => {
            let mut ranked: Vec<usize> = (0..candidates.len()).collect();
            ranked.sort_by_key(|&i| (estimate_rank(&candidates[i], objective), i));
            let mut keep = vec![false; candidates.len()];
            for &i in ranked.iter().take(n) {
                keep[i] = true;
            }
            candidates.into_iter().zip(keep).filter_map(|(c, k)| k.then_some(c)).collect()
        }
        Prune::WithinFactor(factor) => {
            let best = candidates.iter().map(score).min().unwrap_or(0);
            let cutoff = (best as f64 * factor.max(1.0)).ceil() as u64;
            candidates.into_iter().filter(|c| score(c) <= cutoff).collect()
        }
    };
    let pruned_out = total - kept.len();
    (kept, pruned_out)
}

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// The candidate (structured key plus analytical estimate).
    pub candidate: Candidate,
    /// Simulator counters for the whole run.
    pub counters: PerfCounters,
    /// Simulated task-clock in milliseconds (the ranking metric).
    pub task_clock_ms: f64,
    /// Whether the run matched the reference kernel.
    pub verified: bool,
    /// Work (MACs) of the measured problem — equals the full problem for
    /// exhaustive sweeps; proxy rounds of a halving search measure less.
    pub work: u64,
    /// Wall-clock compile time per pass (informational: host wall-clock,
    /// not simulated, and excluded from determinism comparisons; empty
    /// for results served from a persisted cache).
    pub pass_ms: Vec<(String, f64)>,
    /// Whether this result came out of the explorer's cache.
    pub from_cache: bool,
}

impl Evaluation {
    /// The deterministic part of the evaluation: everything except the
    /// wall-clock pass timings and the cache provenance. Two sweeps of the
    /// same space must agree on this tuple regardless of worker count.
    pub fn deterministic_key(&self) -> (CandidateKey, PerfCounters, u64, bool) {
        (self.candidate.key.clone(), self.counters, self.task_clock_ms.to_bits(), self.verified)
    }
}

/// What one exploration produced.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// The explored space ([`DesignSpace::describe`]).
    pub space: String,
    /// The workload kind (`matmul`, `batched`, `conv`).
    pub workload: String,
    /// The search strategy label (`exhaustive`, `halving`).
    pub search: String,
    /// Legal candidates before pruning.
    pub space_size: usize,
    /// Candidates removed by the analytical prune.
    pub pruned_out: usize,
    /// Candidates the static plan audit rejected before the measure
    /// queue (each failed a `lint::*` check; zero simulations were
    /// spent on them). See [`audit`].
    pub lint_rejected: usize,
    /// Measurements served from the result cache (including the proxy
    /// rounds of a halving search).
    pub cache_hits: usize,
    /// Simulator runs this exploration actually performed.
    pub sims_performed: usize,
    /// The subset of [`Self::sims_performed`] that simulated the *full*
    /// problem (finalist rounds, exhaustive survivors, the heuristic
    /// pick, and proxy rungs that already covered the whole problem).
    pub full_sims_performed: usize,
    /// Wall-clock nanoseconds this sweep spent inside full-fidelity
    /// simulator runs (summed per run, so the figure is a per-worker
    /// throughput basis independent of the worker count; cache hits
    /// contribute nothing).
    pub full_sim_nanos: u64,
    /// Whether a cross-problem transfer model warm-started this sweep.
    pub warm_started: bool,
    /// Candidates the transfer model predicted from configuration-
    /// specific (exact/coarse tier) observations at round 0; zero for
    /// exhaustive searches.
    pub warm_informed: usize,
    /// The measurement backend that executed the sweep's simulations
    /// ([`MeasureBackend::describe`]: `local`, `remote:2`, …). Context
    /// only — results are bit-identical across backends.
    pub measure_backend: String,
    /// Simulations performed per measuring worker, sorted by worker
    /// label (`local` for the in-process pool, worker addresses for a
    /// remote pool). Load-balance context; excluded, like timing, from
    /// determinism comparisons.
    pub worker_sims: Vec<(String, usize)>,
    /// Per-worker re-registrations: how many times each remote worker's
    /// connection was lost and the worker later rejoined the pool,
    /// sorted by worker label. Empty for local sweeps and fault-free
    /// remote sweeps. Health context; excluded, like timing, from
    /// determinism comparisons.
    pub worker_reconnects: Vec<(String, usize)>,
    /// The measured candidates: every survivor for an exhaustive search,
    /// the finalists for a halving search.
    pub evaluations: Vec<Evaluation>,
    /// The objectives the sweep was scored under (at least one; the
    /// first is the primary the prune and halving rank by).
    pub objectives: Vec<Objective>,
    /// The space's analytical heuristic pick (if one exists).
    pub heuristic: Option<Candidate>,
    /// The heuristic pick's own measurement.
    pub heuristic_eval: Option<Evaluation>,
}

impl ExploreReport {
    /// Full-fidelity simulator throughput of this sweep, in simulations
    /// per second of in-simulator wall time — the `sims_per_sec` metric
    /// `bench-compare` gates. `None` when the sweep performed no full
    /// sims (everything was cached).
    pub fn sims_per_sec(&self) -> Option<f64> {
        (self.full_sims_performed > 0 && self.full_sim_nanos > 0)
            .then(|| self.full_sims_performed as f64 / (self.full_sim_nanos as f64 / 1e9))
    }

    /// The measured optimum: smallest task-clock, first in measurement
    /// order among exact ties (deterministic across worker counts).
    pub fn optimum(&self) -> Option<&Evaluation> {
        self.optimum_by(Objective::TaskClock)
    }

    /// The measured optimum under one objective, first in measurement
    /// order among exact ties.
    pub fn optimum_by(&self, objective: Objective) -> Option<&Evaluation> {
        self.evaluations
            .iter()
            .min_by(|a, b| a.objective_value(objective).total_cmp(&b.objective_value(objective)))
    }

    /// Indices (into [`Self::evaluations`]) of the Pareto front under the
    /// report's objectives, in measurement order. With a single objective
    /// this degenerates to the evaluations attaining its minimum.
    pub fn pareto_front(&self) -> Vec<usize> {
        pareto::pareto_front(&self.evaluations, &self.objectives)
    }

    /// How far the analytical heuristic lands from the explored optimum:
    /// `heuristic ms / optimum ms` (1.0 = the heuristic found the
    /// optimum; 1.25 = the heuristic is 25% slower).
    pub fn heuristic_gap(&self) -> Option<f64> {
        let h = self.heuristic_eval.as_ref()?;
        let o = self.optimum()?;
        Some(h.task_clock_ms / o.task_clock_ms)
    }

    /// How many measured evaluations Pareto-dominate the heuristic pick
    /// under the report's objectives — `Some(0)` means the paper's
    /// analytical choice sits on (or would extend) the front.
    pub fn heuristic_dominated_by(&self) -> Option<usize> {
        let h = self.heuristic_eval.as_ref()?;
        Some(pareto::dominated_by_count(h, &self.evaluations, &self.objectives))
    }

    /// Whether the heuristic pick is non-dominated relative to the
    /// measured front.
    pub fn heuristic_on_front(&self) -> Option<bool> {
        self.heuristic_dominated_by().map(|n| n == 0)
    }
}

/// A live progress signal from an in-flight exploration, delivered to
/// the [`Observer`] of [`Explorer::explore_streaming`] on the exploring
/// thread. The hub daemon forwards these to its clients as `event`
/// frames and checkpoints the shared cache between rungs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProgressEvent {
    /// Enumeration and pruning finished; measurement is about to start.
    SpaceReady {
        /// Legal candidates before pruning.
        space_size: usize,
        /// Candidates surviving the analytical prune.
        survivors: usize,
    },
    /// One measurement rung completed: a halving proxy round, the
    /// full-fidelity finalist round, or the single full round of an
    /// exhaustive sweep.
    RungComplete {
        /// The fidelity the rung measured at.
        fidelity: Fidelity,
        /// Candidates still in the race after this rung's promotion.
        survivors: usize,
        /// Simulator runs the rung actually performed.
        sims_performed: usize,
        /// Rung measurements served from the (shared) result cache.
        cache_hits: usize,
        /// The subset of `sims_performed` at full problem fidelity.
        full_sims_performed: usize,
    },
}

/// A progress callback: receives every [`ProgressEvent`] and returns
/// whether the exploration should continue. Returning `false` cancels
/// the sweep at the next rung boundary with a [`CANCELLED`] diagnostic —
/// measurements already taken stay in the cache.
pub type Observer<'a> = &'a dyn Fn(&ProgressEvent) -> bool;

/// The diagnostic message an observer-cancelled exploration fails with.
pub const CANCELLED: &str = "exploration cancelled by the observer";

fn notify(observer: Observer, event: ProgressEvent) -> Result<(), Diagnostic> {
    if observer(&event) {
        Ok(())
    } else {
        Err(Diagnostic::error(CANCELLED))
    }
}

/// The cross-job in-flight registry: candidates currently being
/// simulated, by key. Concurrent sweeps (hub jobs) that want the same
/// measurement wait for the first simulation instead of duplicating it,
/// then serve the result from the shared cache.
#[derive(Default)]
struct InFlight {
    claimed: Mutex<HashSet<CandidateKey>>,
    released: Condvar,
}

impl InFlight {
    /// Claims `key` for simulation; `false` means someone else holds it.
    fn claim(&self, key: &CandidateKey) -> bool {
        self.claimed.lock().expect("in-flight registry poisoned").insert(key.clone())
    }

    fn release(&self, key: &CandidateKey) {
        self.claimed.lock().expect("in-flight registry poisoned").remove(key);
        self.released.notify_all();
    }

    /// Parks until *some* claim releases, or `timeout` elapses — the
    /// backends' backoff while every pending key is held elsewhere.
    /// Returns immediately when nothing is claimed (there is nothing to
    /// wait out, and a release notification may already be behind us).
    fn wait_release_timeout(&self, timeout: Duration) {
        let set = self.claimed.lock().expect("in-flight registry poisoned");
        if set.is_empty() {
            return;
        }
        let _ = self.released.wait_timeout(set, timeout).expect("in-flight registry poisoned");
    }
}

/// Simulation counters for one sweep. The engine-wide atomics on
/// [`Explorer`] keep counting everything the engine ever did, but a
/// report must charge a sweep only for the simulations *it* ran —
/// deltas of the global counters double-count when sweeps run
/// concurrently (each sees the other's window).
#[derive(Default)]
pub(crate) struct SweepStats {
    sims: AtomicUsize,
    full_sims: AtomicUsize,
    full_sim_nanos: AtomicU64,
    /// Simulations per measuring worker (`local` for the in-process
    /// pool, the worker's address for a remote pool) — the report's
    /// load-balance context.
    worker_sims: Mutex<HashMap<String, usize>>,
    /// Re-registrations per remote worker — the report's worker-health
    /// context.
    reconnects: Mutex<HashMap<String, usize>>,
}

impl SweepStats {
    /// Accounts one performed simulation to `worker`.
    pub(crate) fn record_sim(&self, worker: &str, is_full: bool, nanos: u64) {
        self.sims.fetch_add(1, Ordering::Relaxed);
        if is_full {
            self.full_sims.fetch_add(1, Ordering::Relaxed);
            self.full_sim_nanos.fetch_add(nanos, Ordering::Relaxed);
        }
        *self
            .worker_sims
            .lock()
            .expect("sweep stats poisoned")
            .entry(worker.to_owned())
            .or_insert(0) += 1;
    }

    pub(crate) fn sims(&self) -> usize {
        self.sims.load(Ordering::Relaxed)
    }

    pub(crate) fn full_sims(&self) -> usize {
        self.full_sims.load(Ordering::Relaxed)
    }

    pub(crate) fn full_sim_nanos(&self) -> u64 {
        self.full_sim_nanos.load(Ordering::Relaxed)
    }

    pub(crate) fn worker_sims(&self) -> Vec<(String, usize)> {
        let mut sims: Vec<(String, usize)> = self
            .worker_sims
            .lock()
            .expect("sweep stats poisoned")
            .iter()
            .map(|(worker, sims)| (worker.clone(), *sims))
            .collect();
        sims.sort();
        sims
    }

    /// Accounts one re-registration of a lost remote worker.
    pub(crate) fn record_reconnect(&self, worker: &str) {
        *self
            .reconnects
            .lock()
            .expect("sweep stats poisoned")
            .entry(worker.to_owned())
            .or_insert(0) += 1;
    }

    pub(crate) fn worker_reconnects(&self) -> Vec<(String, usize)> {
        let mut reconnects: Vec<(String, usize)> = self
            .reconnects
            .lock()
            .expect("sweep stats poisoned")
            .iter()
            .map(|(worker, n)| (worker.clone(), *n))
            .collect();
        reconnects.sort();
        reconnects
    }
}

/// A reusable exploration engine with a cross-sweep, persistable result
/// cache.
///
/// One `Explorer` can serve many spaces; configurations already measured
/// (same [`CandidateKey`], which spells out the problem, accelerator
/// instantiation, flow, tile, options point, and seed) are returned from
/// the cache instead of re-simulated — within a process, and across
/// processes via [`Explorer::with_cache_file`] / [`Explorer::save_cache`].
pub struct Explorer {
    cache: Mutex<HashMap<CandidateKey, CachedEval>>,
    in_flight: InFlight,
    evals_performed: AtomicUsize,
    full_evals_performed: AtomicUsize,
    full_sim_nanos: AtomicU64,
    dedup_hits: AtomicUsize,
    /// The cross-problem transfer model a warm-started search ranks by.
    warm: Option<TransferModel>,
    /// The measurement executor sweeps drain through (local pool by
    /// default; see [`Explorer::set_measure_backend`]).
    backend: Box<dyn MeasureBackend>,
    /// Sharded-persistence bookkeeping for [`Explorer::save_cache_dir`].
    shards: Mutex<ShardTracker>,
}

/// Which shards the next [`Explorer::save_cache_dir`] must write: the
/// shards of every key measured since the last save, plus (once) the
/// shards migrated out of legacy non-sharded files found at load time.
#[derive(Default)]
struct ShardTracker {
    dirty: BTreeSet<String>,
    legacy: Vec<PathBuf>,
}

impl Default for Explorer {
    fn default() -> Self {
        Self {
            cache: Mutex::default(),
            in_flight: InFlight::default(),
            evals_performed: AtomicUsize::new(0),
            full_evals_performed: AtomicUsize::new(0),
            full_sim_nanos: AtomicU64::new(0),
            dedup_hits: AtomicUsize::new(0),
            warm: None,
            backend: Box::new(LocalPool),
            shards: Mutex::default(),
        }
    }
}

impl Explorer {
    /// A fresh engine with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine warmed from a persisted `BENCH_cache.json` (a missing
    /// file or a file with a foreign schema yields an empty cache).
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] for unreadable or syntactically broken
    /// cache files.
    pub fn with_cache_file(path: &Path) -> Result<Self, Diagnostic> {
        Ok(Self { cache: Mutex::new(cache::load(path)?), ..Self::default() })
    }

    /// An engine warmed from a sharded cache directory (see [`shard`]):
    /// every `<shard>.json` in `dir` is loaded and merged, and legacy
    /// non-sharded blobs (e.g. a `BENCH_cache.json` copied in) are
    /// migrated into the sharded layout on the next
    /// [`Explorer::save_cache_dir`]. A missing directory yields an empty
    /// cache.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] for unreadable files or directories.
    pub fn with_cache_dir(dir: &Path) -> Result<Self, Diagnostic> {
        let snapshot = shard::load_dir(dir)?;
        Ok(Self {
            cache: Mutex::new(snapshot.entries),
            shards: Mutex::new(ShardTracker { dirty: snapshot.dirty, legacy: snapshot.legacy }),
            ..Self::default()
        })
    }

    /// Installs the measurement backend subsequent sweeps drain through
    /// (a [`LocalPool`] by default; a [`RemotePool`] fans out to
    /// `axi4mlir-worker` daemons).
    pub fn set_measure_backend(&mut self, backend: Box<dyn MeasureBackend>) {
        self.backend = backend;
    }

    /// The installed backend's label (`local`, `remote:2`, …) — what
    /// reports carry as [`ExploreReport::measure_backend`].
    pub fn measure_backend_label(&self) -> String {
        self.backend.describe()
    }

    /// Installs a cross-problem [`TransferModel`]: subsequent
    /// [`Search::Halving`] sweeps rank round 0 by its calibrated clock
    /// predictions and, when it covers the field, pre-cut the candidate
    /// set and promote fewer finalists (see [`search`]).
    pub fn set_warm_start(&mut self, model: TransferModel) {
        self.warm = (!model.is_empty()).then_some(model);
    }

    /// Builder form of [`Explorer::set_warm_start`].
    #[must_use]
    pub fn warm_started(mut self, model: TransferModel) -> Self {
        self.set_warm_start(model);
        self
    }

    /// Whether a (non-empty) transfer model is installed.
    pub fn is_warm_started(&self) -> bool {
        self.warm.is_some()
    }

    /// Fits a cross-problem [`TransferModel`] from everything this
    /// engine's cache currently holds (in-memory results plus whatever
    /// [`Explorer::with_cache_file`] loaded).
    pub fn transfer_model(&self) -> TransferModel {
        TransferModel::fit(&self.cache.lock().expect("explorer cache poisoned"))
    }

    /// Merges this engine's results over `path` and writes the combined
    /// cache back (load/merge/save, so *sequential* sharers accumulate
    /// entries; concurrent savers may each miss the other's additions,
    /// which a cache tolerates — lost entries are re-measured later).
    /// Returns the merged entry count.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors as [`Diagnostic`]s.
    pub fn save_cache(&self, path: &Path) -> Result<usize, Diagnostic> {
        cache::save(path, &self.cache.lock().expect("explorer cache poisoned"))
    }

    /// Checkpoints this engine's results into the sharded cache layout
    /// under `dir`, writing **only dirty shards** — shards holding keys
    /// measured since the last save (plus shards a legacy blob migrated
    /// into). Each written shard is merged over its on-disk content with
    /// the commutative [`shard::merge`], so concurrent savers combine
    /// instead of clobbering; legacy blobs are deleted once their
    /// entries are safely re-homed. Clean shards are not touched at all.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors as [`Diagnostic`]s; the dirty set is
    /// preserved on failure so the next checkpoint retries.
    pub fn save_cache_dir(&self, dir: &Path) -> Result<shard::SaveStats, Diagnostic> {
        let (dirty, legacy) = {
            let mut tracker = self.shards.lock().expect("shard tracker poisoned");
            (std::mem::take(&mut tracker.dirty), std::mem::take(&mut tracker.legacy))
        };
        let snapshot = self.cache.lock().expect("explorer cache poisoned").clone();
        match shard::save_dir(dir, &snapshot, &dirty) {
            Ok(stats) => {
                for path in &legacy {
                    std::fs::remove_file(path).ok();
                }
                Ok(stats)
            }
            Err(err) => {
                let mut tracker = self.shards.lock().expect("shard tracker poisoned");
                tracker.dirty.extend(dirty);
                tracker.legacy.extend(legacy);
                Err(err)
            }
        }
    }

    /// Entry counts per shard of the current in-memory cache, sorted by
    /// shard name (the `--cache-dir` verbose listing).
    pub fn shard_counts(&self) -> Vec<(String, usize)> {
        shard::shard_counts(&self.cache.lock().expect("explorer cache poisoned"))
            .into_iter()
            .collect()
    }

    /// Marks `key`'s shard as needing the next [`Self::save_cache_dir`].
    fn mark_dirty(&self, key: &CandidateKey) {
        self.shards.lock().expect("shard tracker poisoned").dirty.insert(shard::shard_of(key));
    }

    /// How many simulator runs this engine has actually performed (cache
    /// hits excluded).
    pub fn evals_performed(&self) -> usize {
        self.evals_performed.load(Ordering::Relaxed)
    }

    /// How many of those runs simulated a candidate at *full* fidelity —
    /// including proxy rungs whose proxy already covered the whole
    /// problem (they realize the full workload under the full key). This
    /// is the expensive count warm-starting and halving exist to shrink.
    pub fn full_evals_performed(&self) -> usize {
        self.full_evals_performed.load(Ordering::Relaxed)
    }

    /// Wall-clock nanoseconds spent inside full-fidelity simulator runs
    /// so far (the denominator of the `sims_per_sec` benchmark metric).
    pub fn full_sim_nanos(&self) -> u64 {
        self.full_sim_nanos.load(Ordering::Relaxed)
    }

    /// How many measurements were served from the cache *because of
    /// concurrency*: a pending candidate turned out to be already
    /// measured (or in flight) under a concurrent sweep sharing this
    /// engine, so it was not simulated again. Zero for a lone sweep.
    pub fn dedup_hits(&self) -> usize {
        self.dedup_hits.load(Ordering::Relaxed)
    }

    /// How many results the cache currently holds.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("explorer cache poisoned").len()
    }

    /// Runs one PR-2-style MatMul exploration (see [`ExploreSpec`]).
    ///
    /// # Errors
    ///
    /// See [`Explorer::explore_space`].
    pub fn explore(&self, spec: &ExploreSpec) -> Result<ExploreReport, Diagnostic> {
        self.explore_space(&spec.space(), spec.prune, &Search::Exhaustive, spec.workers)
    }

    /// Runs one exploration of any space: enumerate, prune, search
    /// (measuring in parallel through the cache), and relate the space's
    /// heuristic pick to the measured optimum. Single-objective
    /// (task-clock); see [`Explorer::explore_with_objectives`] for the
    /// multi-objective form.
    ///
    /// # Errors
    ///
    /// Propagates enumeration diagnostics, and the first failing
    /// candidate's [`Diagnostic`] (by measurement order, independent of
    /// the worker count).
    pub fn explore_space(
        &self,
        space: &dyn DesignSpace,
        prune_strategy: Prune,
        search: &Search,
        workers: usize,
    ) -> Result<ExploreReport, Diagnostic> {
        self.explore_with_objectives(space, prune_strategy, search, workers, &[])
    }

    /// Runs one exploration scored under `objectives` (empty defaults to
    /// task-clock only). The first objective is the *primary*: the
    /// analytical prune ranks by its transfer-model extractor, and a
    /// [`Search::Halving`] promotes by it too unless its
    /// [`HalvingSpec::objective`] pins something else. Every objective
    /// contributes a coordinate to the report's
    /// [`ExploreReport::pareto_front`].
    ///
    /// # Errors
    ///
    /// See [`Explorer::explore_space`].
    pub fn explore_with_objectives(
        &self,
        space: &dyn DesignSpace,
        prune_strategy: Prune,
        search: &Search,
        workers: usize,
        objectives: &[Objective],
    ) -> Result<ExploreReport, Diagnostic> {
        self.explore_streaming(space, prune_strategy, search, workers, objectives, &|_| true)
    }

    /// [`Explorer::explore_with_objectives`] with a live progress
    /// [`Observer`]: the callback sees a [`ProgressEvent::SpaceReady`]
    /// once the space is enumerated and a [`ProgressEvent::RungComplete`]
    /// after every measurement rung, and can cancel the sweep at any of
    /// those boundaries by returning `false` (measurements already taken
    /// stay cached). This is the hub daemon's entry point: events become
    /// streamed client frames and rung boundaries become incremental
    /// cache checkpoints.
    ///
    /// # Errors
    ///
    /// See [`Explorer::explore_space`]; additionally fails with a
    /// [`CANCELLED`] diagnostic when the observer stops the sweep.
    pub fn explore_streaming(
        &self,
        space: &dyn DesignSpace,
        prune_strategy: Prune,
        search: &Search,
        workers: usize,
        objectives: &[Objective],
        observer: Observer,
    ) -> Result<ExploreReport, Diagnostic> {
        let objectives: Vec<Objective> =
            if objectives.is_empty() { vec![Objective::TaskClock] } else { objectives.to_vec() };
        let primary = objectives[0];
        let all = space.enumerate()?;
        if all.is_empty() {
            return Err(Diagnostic::error(format!(
                "design space for {} is empty",
                space.describe()
            )));
        }
        let space_size = all.len();
        // The static plan audit: candidates whose realized plan fails a
        // lint check are rejected *before* the measure queue — they
        // would abort the simulator mid-sweep, and cost nothing to
        // reject here. The verdict depends only on the realized
        // accelerator configuration, so it is memoized per
        // (accelerator, flow, tile) across the options axis.
        let mut lint_rejected = 0usize;
        let mut first_rejection: Option<Diagnostic> = None;
        /// Audit-verdict memo key: (accelerator, flow, tile) — the only
        /// fields the verdict depends on (options and seed do not).
        type AuditMemoKey = (String, String, (i64, i64, i64));
        let mut verdicts: HashMap<AuditMemoKey, Option<Diagnostic>> = HashMap::new();
        let mut admitted = Vec::with_capacity(all.len());
        for candidate in all {
            let memo =
                (candidate.key.accel.clone(), candidate.key.flow.clone(), candidate.key.tile);
            let verdict = match verdicts.get(&memo) {
                Some(verdict) => verdict.clone(),
                None => {
                    let verdict = audit::audit_candidate(space, &candidate).err();
                    verdicts.insert(memo, verdict.clone());
                    verdict
                }
            };
            match verdict {
                None => admitted.push(candidate),
                Some(finding) => {
                    lint_rejected += 1;
                    first_rejection.get_or_insert(finding);
                }
            }
        }
        if admitted.is_empty() {
            let finding = first_rejection.expect("a non-empty space was fully rejected");
            let mut diag = Diagnostic::error(format!(
                "every candidate failed the plan audit: {}",
                finding.message
            ));
            if let Some(code) = finding.code {
                diag = diag.with_code(code);
            }
            return Err(diag);
        }
        let (candidates, pruned_out) = prune(admitted, prune_strategy, primary);
        // Sweep-local accounting: concurrent sweeps on this engine share
        // its cache and counters, so the report cannot use global deltas.
        let stats = SweepStats::default();
        notify(observer, ProgressEvent::SpaceReady { space_size, survivors: candidates.len() })?;

        let (evaluations, proxy_hits, warm_informed) = match search {
            Search::Exhaustive => {
                let evals =
                    self.measure_set(space, &candidates, Fidelity::Full, workers, &stats)?;
                notify(
                    observer,
                    ProgressEvent::RungComplete {
                        fidelity: Fidelity::Full,
                        survivors: evals.len(),
                        sims_performed: stats.sims(),
                        cache_hits: evals.iter().filter(|e| e.from_cache).count(),
                        full_sims_performed: stats.full_sims(),
                    },
                )?;
                (evals, 0, 0)
            }
            Search::Halving(spec) => {
                self.run_halving(space, candidates, spec, workers, primary, observer, &stats)?
            }
        };
        let cache_hits = proxy_hits + evaluations.iter().filter(|e| e.from_cache).count();

        // The heuristic pick, measured through the same cache path. Its
        // configuration is usually one of the measured candidates, so this
        // is a cache hit unless pruning or halving dropped it.
        let heuristic = space.heuristic();
        let heuristic_eval = match &heuristic {
            // The heuristic pick goes through the same audit gate as the
            // sweep's candidates: a statically-broken pick is reported
            // unmeasured rather than simulated.
            Some(choice) if audit::audit_candidate(space, choice).is_ok() => self
                .measure_set(space, std::slice::from_ref(choice), Fidelity::Full, 1, &stats)?
                .into_iter()
                .next(),
            _ => None,
        };

        Ok(ExploreReport {
            space: space.describe(),
            workload: space.workload_kind().to_owned(),
            search: search.label().to_owned(),
            space_size,
            pruned_out,
            lint_rejected,
            cache_hits,
            sims_performed: stats.sims(),
            full_sims_performed: stats.full_sims(),
            full_sim_nanos: stats.full_sim_nanos(),
            warm_started: self.warm.is_some(),
            warm_informed,
            measure_backend: self.backend.describe(),
            worker_sims: stats.worker_sims(),
            worker_reconnects: stats.worker_reconnects(),
            evaluations,
            objectives,
            heuristic,
            heuristic_eval,
        })
    }

    /// Measures every candidate at one fidelity, fanning cache misses out
    /// over `workers` threads. Results come back in candidate order.
    pub(crate) fn measure_set(
        &self,
        space: &dyn DesignSpace,
        candidates: &[Candidate],
        fidelity: Fidelity,
        workers: usize,
        stats: &SweepStats,
    ) -> Result<Vec<Evaluation>, Diagnostic> {
        // Resolve each candidate's fidelity-adjusted identity and work,
        // then partition into cache hits and pending measurements.
        let mut meta: Vec<(CandidateKey, u64)> = Vec::with_capacity(candidates.len());
        for candidate in candidates {
            let realized = space.realize(candidate, fidelity)?;
            meta.push((realized.key, realized.work));
        }
        let mut slots: Vec<Option<Evaluation>> = Vec::with_capacity(candidates.len());
        let mut pending: Vec<usize> = Vec::new();
        {
            let cache = self.cache.lock().expect("explorer cache poisoned");
            for (i, (key, work)) in meta.iter().enumerate() {
                match cache.get(key) {
                    Some(hit) => {
                        slots.push(Some(hit.to_evaluation(candidates[i].clone(), *work, true)));
                    }
                    None => {
                        slots.push(None);
                        pending.push(i);
                    }
                }
            }
        }
        // A proxy realization whose key equals the full realization's
        // has saturated: simulating it *is* a full-fidelity simulation,
        // and the full-sims accounting must say so. Resolved only for
        // the candidates actually about to be simulated — cache hits
        // never need the (allocation-heavy) second realization.
        let mut is_full: Vec<bool> = vec![matches!(fidelity, Fidelity::Full); candidates.len()];
        if matches!(fidelity, Fidelity::Proxy { .. }) {
            for &index in &pending {
                is_full[index] =
                    space.realize(&candidates[index], Fidelity::Full)?.key == meta[index].0;
            }
        }

        // Measure the pending candidates through the installed backend.
        // The queue owns everything that keeps reports deterministic —
        // cross-sweep claim deduplication, publish-before-release, and
        // per-worker accounting — so a [`LocalPool`] and a [`RemotePool`]
        // produce identical results at any worker count.
        let expected = pending.len();
        if expected > 0 {
            let workers = workers.clamp(1, expected);
            let queue = MeasureQueue::new(
                self, space, candidates, &meta, &is_full, fidelity, stats, workers, pending,
            );
            self.backend.drain(&queue)?;
            let mut results = queue.into_done();
            if results.len() != expected {
                return Err(Diagnostic::error(format!(
                    "measurement backend resolved {} of {expected} candidates",
                    results.len()
                )));
            }
            results.sort_by_key(|(index, _, _)| *index);
            for (index, result, served) in results {
                // On error, report the earliest failing candidate (the
                // sort above makes this independent of scheduling).
                let eval = result?;
                let work = meta[index].1;
                slots[index] = Some(eval.to_evaluation(candidates[index].clone(), work, served));
            }
        }
        Ok(slots.into_iter().map(|s| s.expect("every slot filled")).collect())
    }
}

impl CachedEval {
    fn to_evaluation(&self, candidate: Candidate, work: u64, from_cache: bool) -> Evaluation {
        Evaluation {
            candidate,
            counters: self.counters,
            task_clock_ms: self.task_clock_ms,
            verified: self.verified,
            work,
            pass_ms: self.pass_ms.clone(),
            from_cache,
        }
    }
}

mod compat {
    //! The PR-2 MatMul-only exploration request, kept as a thin facade
    //! over [`MatMulSpace`] so existing callers and tests keep working.

    use axi4mlir_accelerators::matmul::V4_CAPACITY_WORDS;
    use axi4mlir_config::FlowStrategy;
    use axi4mlir_workloads::matmul::MatMulProblem;

    use super::space::{AccelInstance, MatMulSpace, OptionsPoint};
    use super::Prune;

    /// One MatMul exploration request: the problem, the v4 space, and how
    /// to run it. For multi-generation, multi-workload, or
    /// options-swept spaces, build a
    /// [`DesignSpace`](super::DesignSpace) directly.
    #[derive(Clone, Debug)]
    pub struct ExploreSpec {
        /// The GEMM to explore.
        pub problem: MatMulProblem,
        /// The v4 base (divisibility) size candidate tiles are multiples of.
        pub base: i64,
        /// Accelerator tile-memory budget in words.
        pub capacity_words: u64,
        /// The dataflow strategies to consider.
        pub flows: Vec<FlowStrategy>,
        /// Analytical pruning applied before simulation.
        pub prune: Prune,
        /// Worker threads measuring candidates (clamped to at least 1).
        pub workers: usize,
        /// Data seed for every measurement.
        pub seed: u64,
    }

    impl ExploreSpec {
        /// A full-space (no pruning) exploration of `problem` on the
        /// standard v4 accelerator, single-threaded.
        pub fn new(problem: MatMulProblem) -> Self {
            Self {
                problem,
                base: 16,
                capacity_words: V4_CAPACITY_WORDS,
                flows: FlowStrategy::all().to_vec(),
                prune: Prune::None,
                workers: 1,
                seed: 0xD5E,
            }
        }

        /// Overrides the base size.
        #[must_use]
        pub fn base(mut self, base: i64) -> Self {
            self.base = base;
            self
        }

        /// Overrides the capacity budget.
        #[must_use]
        pub fn capacity_words(mut self, capacity_words: u64) -> Self {
            self.capacity_words = capacity_words;
            self
        }

        /// Overrides the pruning strategy.
        #[must_use]
        pub fn prune(mut self, prune: Prune) -> Self {
            self.prune = prune;
            self
        }

        /// Overrides the worker count.
        #[must_use]
        pub fn workers(mut self, workers: usize) -> Self {
            self.workers = workers;
            self
        }

        /// Overrides the data seed.
        #[must_use]
        pub fn seed(mut self, seed: u64) -> Self {
            self.seed = seed;
            self
        }

        /// The [`MatMulSpace`] this spec describes.
        pub fn space(&self) -> MatMulSpace {
            let mut space = MatMulSpace::new(self.problem)
                .accels(vec![AccelInstance::v4(self.base)])
                .capacity_words(self.capacity_words)
                .options_axis(vec![OptionsPoint::default()])
                .seed(self.seed);
            space.flows = self.flows.clone();
            space
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi4mlir_workloads::matmul::MatMulProblem;

    fn small_spec() -> ExploreSpec {
        ExploreSpec::new(MatMulProblem::new(16, 16, 16)).base(8).seed(7)
    }

    fn small_candidates() -> Vec<Candidate> {
        small_spec().space().enumerate().unwrap()
    }

    #[test]
    fn enumeration_is_deterministic_and_capacity_filtered() {
        let a = small_candidates();
        let b = small_candidates();
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
        // 2 edges per dim (8, 16), 4 flows.
        assert_eq!(a.len(), 2 * 2 * 2 * 4);
        let tight = small_spec().capacity_words(3 * 8 * 8);
        assert_eq!(tight.space().enumerate().unwrap().len(), 4, "only the 8x8x8 tile fits");
    }

    #[test]
    fn keep_best_prunes_to_n_preserving_order() {
        let all = small_candidates();
        let (kept, dropped) = prune(all.clone(), Prune::KeepBest(5), Objective::DmaWords);
        assert_eq!(kept.len(), 5);
        assert_eq!(dropped, all.len() - 5);
        // Survivors appear in the same relative order as the enumeration.
        let mut cursor = 0;
        for c in &kept {
            let at = all[cursor..].iter().position(|x| x == c).expect("kept ⊆ all");
            cursor += at + 1;
        }
        // The best estimate always survives.
        let best = all.iter().map(|c| c.estimate.words_total()).min().unwrap();
        assert!(kept.iter().any(|c| c.estimate.words_total() == best));
    }

    #[test]
    fn within_factor_keeps_everything_at_infinity_and_best_at_one() {
        let all = small_candidates();
        let (kept, _) = prune(all.clone(), Prune::WithinFactor(f64::INFINITY), Objective::DmaWords);
        assert_eq!(kept.len(), all.len());
        let best = all.iter().map(|c| c.estimate.words_total()).min().unwrap();
        let (kept, _) = prune(all, Prune::WithinFactor(1.0), Objective::DmaWords);
        assert!(!kept.is_empty());
        assert!(kept.iter().all(|c| c.estimate.words_total() == best));
    }

    #[test]
    fn prune_ranks_by_the_requested_objective() {
        let all = small_candidates();
        // Transactions and words rank candidates differently in general;
        // the transactions prune must keep the transactions minimum.
        let best_txns = all.iter().map(|c| c.estimate.transactions).min().unwrap();
        let (kept, _) = prune(all.clone(), Prune::WithinFactor(1.0), Objective::DmaTransactions);
        assert!(!kept.is_empty());
        assert!(kept.iter().all(|c| c.estimate.transactions == best_txns));
        // Objectives without an analytical extractor fall back to words.
        let (by_clock, _) = prune(all.clone(), Prune::KeepBest(5), Objective::TaskClock);
        let (by_words, _) = prune(all, Prune::KeepBest(5), Objective::DmaWords);
        assert_eq!(by_clock, by_words);
    }

    #[test]
    fn empty_space_is_a_diagnostic() {
        // Capacity too small for any tile, including the degenerate one.
        let spec = small_spec().capacity_words(1);
        let err = Explorer::new().explore(&spec).unwrap_err();
        assert!(err.message.contains("empty"), "{}", err.message);
    }
}
