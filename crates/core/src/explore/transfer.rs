//! The cross-problem transfer model: reuse measurements from one problem
//! shape to warm-start the search on another.
//!
//! The persistent result cache keys every measurement by its full
//! [`CandidateKey`] — problem shape included — so after a few sweeps it
//! holds, for many configurations, the measured task-clock on *several*
//! problem shapes. The analytical transfer model predicts traffic, not
//! time; but the ratio
//!
//! ```text
//! correction = measured task-clock ms ÷ analytically estimated words
//! ```
//!
//! is a per-configuration *calibration* of the analytical model against
//! the simulator, and it varies smoothly with the problem shape. This
//! module fits those correction factors from the cache and blends them
//! across neighboring shapes (inverse-square distance weighting in
//! log₂-shape space), so a sweep over a shape never measured before can
//! rank its candidates by a *calibrated clock prediction* instead of raw
//! traffic estimates. A warm-started [`Search::Halving`] then cuts the
//! field before the first proxy rung and needs fewer full-fidelity
//! finalists (see [`super::search`]).
//!
//! Corrections are looked up at three tiers, most specific first:
//!
//! 1. **exact** — same (accel, flow, tile, options) configuration,
//!    blended over the problem shapes it was measured on;
//! 2. **coarse** — same (accel, flow, options) with the tile folded into
//!    the shape coordinates, so a never-measured tile borrows from its
//!    geometric neighbors;
//! 3. **global** — the workload-kind-wide mean correction, which only
//!    rescales the analytical ranking (it adds no information but keeps
//!    every candidate on one comparable scale).
//!
//! Seeds are deliberately excluded from the signatures: the simulated
//! timing is a function of the configuration and shape, not of the data
//! values, so measurements taken under any seed inform all others.
//!
//! [`Search::Halving`]: super::search::Search::Halving

use std::collections::HashMap;

use axi4mlir_config::FlowStrategy;
use axi4mlir_heuristics::space::OptionsPoint;
use axi4mlir_heuristics::{
    batched_matmul_transfers, conv_transfers, matmul_transfers, ConvShapeEstimate, TransferEstimate,
};

use super::cache::CachedEval;
use super::space::{Candidate, CandidateKey};

/// One calibration observation: where in shape space it was measured and
/// the correction it saw.
#[derive(Clone, Copy, Debug)]
struct Observation {
    /// log₂ coordinates of the measured shape (per-tier layout; see the
    /// module docs).
    shape: [f64; 7],
    /// Number of coordinates actually used by this tier.
    dims: usize,
    /// Measured task-clock ms ÷ analytically estimated words.
    ratio: f64,
}

/// How a prediction was derived — the specificity tier that served it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Same configuration, other problem shapes.
    Exact,
    /// Same accelerator/flow/options, tile folded into the shape.
    Coarse,
    /// Workload-kind-wide mean correction (rescaled analytical rank).
    Global,
}

/// A calibrated clock prediction for one candidate.
#[derive(Clone, Copy, Debug)]
pub struct Prediction {
    /// Predicted task-clock in milliseconds.
    pub clock_ms: f64,
    /// The tier that produced it.
    pub tier: Tier,
}

impl Prediction {
    /// Whether the prediction carries configuration-specific information
    /// (exact or coarse tier) rather than a global rescale.
    pub fn is_informed(&self) -> bool {
        self.tier != Tier::Global
    }
}

/// The parsed identity of a cached measurement: workload kind, shape
/// coordinates, and the analytical estimate recomputed for that shape.
struct ParsedEntry {
    kind: &'static str,
    problem_coords: ([f64; 7], usize),
    estimate: TransferEstimate,
}

/// The exact-tier signature: (kind, accel, flow, tile, options).
type ExactSig = (String, String, String, (i64, i64, i64), OptionsPoint);
/// The coarse-tier signature: (kind, accel, flow, options) — the tile is
/// folded into the shape coordinates instead.
type CoarseSig = (String, String, String, OptionsPoint);

/// The fitted cross-problem transfer model.
#[derive(Clone, Debug, Default)]
pub struct TransferModel {
    /// Exact-tier observations over problem shapes.
    exact: HashMap<ExactSig, Vec<Observation>>,
    /// Coarse-tier observations over problem + tile shapes.
    coarse: HashMap<CoarseSig, Vec<Observation>>,
    /// kind → every correction ratio seen (for the global mean).
    global: HashMap<String, Vec<f64>>,
}

/// Parses `MxNxK` into dims.
fn parse_dims(text: &str) -> Option<(i64, i64, i64)> {
    let parts: Vec<i64> = text.split('x').map(str::parse).collect::<Result<_, _>>().ok()?;
    match parts[..] {
        [m, n, k] if m > 0 && n > 0 && k > 0 => Some((m, n, k)),
        _ => None,
    }
}

fn log2(value: i64) -> f64 {
    (value.max(1) as f64).log2()
}

/// Parses a key's workload label into kind + shape coordinates and
/// recomputes the analytical estimate for that exact shape (the
/// denominator of the correction). Returns `None` for labels this model
/// cannot interpret (foreign caches) or shapes the analytical model
/// rejects (a tile not dividing its problem).
fn parse_entry(key: &CandidateKey) -> Option<ParsedEntry> {
    let mut coords = [0.0; 7];
    if let Some(rest) = key.workload.strip_prefix("matmul ") {
        let (m, n, k) = parse_dims(rest)?;
        let flow = FlowStrategy::from_short_name(&key.flow)?;
        let (tm, tn, tk) = key.tile;
        if tm <= 0 || tn <= 0 || tk <= 0 || m % tm != 0 || n % tn != 0 || k % tk != 0 {
            return None;
        }
        coords[..3].copy_from_slice(&[log2(m), log2(n), log2(k)]);
        Some(ParsedEntry {
            kind: "matmul",
            problem_coords: (coords, 3),
            estimate: matmul_transfers(flow, (m, n, k), key.tile),
        })
    } else if let Some(rest) = key.workload.strip_prefix("batched ") {
        let (dims, batch) = rest.split_once(" x")?;
        let (m, n, k) = parse_dims(dims)?;
        let batch: u64 = batch.parse().ok()?;
        let flow = FlowStrategy::from_short_name(&key.flow)?;
        let (tm, tn, tk) = key.tile;
        if batch == 0 || tm <= 0 || tn <= 0 || tk <= 0 || m % tm != 0 || n % tn != 0 || k % tk != 0
        {
            return None;
        }
        coords[..4].copy_from_slice(&[log2(m), log2(n), log2(k), log2(batch as i64)]);
        Some(ParsedEntry {
            kind: "batched",
            problem_coords: (coords, 4),
            estimate: batched_matmul_transfers(flow, (m, n, k), key.tile, batch),
        })
    } else if let Some(rest) = key.workload.strip_prefix("conv ") {
        // The `iHW_iC_fHW_oC_stride` layer label.
        let parts: Vec<i64> = rest.split('_').map(str::parse).collect::<Result<_, _>>().ok()?;
        let [in_hw, in_channels, filter_hw, out_channels, stride] = parts[..] else { return None };
        if stride <= 0 || filter_hw <= 0 || in_hw < filter_hw || out_channels <= 0 {
            return None;
        }
        let out_hw = (in_hw - filter_hw) / stride + 1;
        coords[..4].copy_from_slice(&[
            log2(out_hw),
            log2(out_channels),
            log2(in_channels),
            log2(filter_hw),
        ]);
        Some(ParsedEntry {
            kind: "conv",
            problem_coords: (coords, 4),
            estimate: conv_transfers(ConvShapeEstimate {
                batch: 1,
                out_channels,
                out_hw,
                in_channels,
                filter_hw,
            }),
        })
    } else {
        None
    }
}

/// Extends problem coordinates with the tile coordinates (the coarse
/// tier's shape space).
fn with_tile_coords(problem: ([f64; 7], usize), tile: (i64, i64, i64)) -> ([f64; 7], usize) {
    let (mut coords, dims) = problem;
    coords[dims] = log2(tile.0);
    coords[dims + 1] = log2(tile.1);
    coords[dims + 2] = log2(tile.2);
    (coords, dims + 3)
}

/// Inverse-square-distance blend of observed corrections at a query
/// point. An observation *at* the query point dominates smoothly
/// (weight 1 at distance 0; no division-by-zero special case).
fn blend(observations: &[Observation], query: &[f64; 7], dims: usize) -> Option<f64> {
    let mut weighted = 0.0;
    let mut total = 0.0;
    for obs in observations.iter().filter(|o| o.dims == dims) {
        let d2: f64 = (0..dims).map(|i| (obs.shape[i] - query[i]).powi(2)).sum();
        let w = 1.0 / (1.0 + d2);
        weighted += w * obs.ratio;
        total += w;
    }
    (total > 0.0).then(|| weighted / total)
}

impl TransferModel {
    /// Fits correction factors from a cache snapshot. Unverified entries,
    /// entries whose workload label the model cannot parse, and entries
    /// with a zero analytical estimate are skipped.
    pub fn fit(entries: &HashMap<CandidateKey, CachedEval>) -> Self {
        let mut model = TransferModel::default();
        for (key, eval) in entries {
            if !eval.verified {
                continue;
            }
            let Some(parsed) = parse_entry(key) else { continue };
            let words = parsed.estimate.words_total();
            if words == 0 || !eval.task_clock_ms.is_finite() || eval.task_clock_ms < 0.0 {
                continue;
            }
            let ratio = eval.task_clock_ms / words as f64;
            let (shape, dims) = parsed.problem_coords;
            model
                .exact
                .entry((
                    parsed.kind.to_owned(),
                    key.accel.clone(),
                    key.flow.clone(),
                    key.tile,
                    key.options,
                ))
                .or_default()
                .push(Observation { shape, dims, ratio });
            let (shape, dims) = with_tile_coords(parsed.problem_coords, key.tile);
            model
                .coarse
                .entry((parsed.kind.to_owned(), key.accel.clone(), key.flow.clone(), key.options))
                .or_default()
                .push(Observation { shape, dims, ratio });
            model.global.entry(parsed.kind.to_owned()).or_default().push(ratio);
        }
        model
    }

    /// Whether the model holds any observation at all.
    pub fn is_empty(&self) -> bool {
        self.global.values().all(Vec::is_empty)
    }

    /// Total observations fitted (one per usable cache entry).
    pub fn observations(&self) -> usize {
        self.global.values().map(Vec::len).sum()
    }

    /// Predicts a candidate's full-problem task-clock by scaling its
    /// analytical estimate with the blended correction of the most
    /// specific tier that has observations. `None` when the model has
    /// never seen the candidate's workload kind (or cannot parse the
    /// candidate's own shape).
    pub fn predict(&self, candidate: &Candidate) -> Option<Prediction> {
        let key = &candidate.key;
        let parsed = parse_entry(key)?;
        let words = candidate.estimate.words_total() as f64;
        let kind = parsed.kind.to_owned();
        let (query, dims) = parsed.problem_coords;
        if let Some(observations) = self.exact.get(&(
            kind.clone(),
            key.accel.clone(),
            key.flow.clone(),
            key.tile,
            key.options,
        )) {
            if let Some(ratio) = blend(observations, &query, dims) {
                return Some(Prediction { clock_ms: ratio * words, tier: Tier::Exact });
            }
        }
        let (query, dims) = with_tile_coords(parsed.problem_coords, key.tile);
        if let Some(observations) =
            self.coarse.get(&(kind.clone(), key.accel.clone(), key.flow.clone(), key.options))
        {
            if let Some(ratio) = blend(observations, &query, dims) {
                return Some(Prediction { clock_ms: ratio * words, tier: Tier::Coarse });
            }
        }
        let ratios = self.global.get(&kind).filter(|r| !r.is_empty())?;
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        Some(Prediction { clock_ms: mean * words, tier: Tier::Global })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi4mlir_sim::counters::PerfCounters;

    fn key(workload: &str, flow: &str, tile: (i64, i64, i64)) -> CandidateKey {
        CandidateKey {
            workload: workload.to_owned(),
            accel: "v4_8".to_owned(),
            flow: flow.to_owned(),
            tile,
            options: OptionsPoint::default(),
            seed: 7,
        }
    }

    fn eval(ms: f64) -> CachedEval {
        CachedEval {
            counters: PerfCounters::new(),
            task_clock_ms: ms,
            verified: true,
            pass_ms: Vec::new(),
        }
    }

    fn candidate(workload: &str, flow: &str, tile: (i64, i64, i64)) -> Candidate {
        let dims = parse_dims(workload.strip_prefix("matmul ").unwrap()).unwrap();
        Candidate {
            key: key(workload, flow, tile),
            estimate: matmul_transfers(FlowStrategy::from_short_name(flow).unwrap(), dims, tile),
        }
    }

    #[test]
    fn fit_skips_unverified_and_unparseable_entries() {
        let mut entries = HashMap::new();
        entries.insert(key("matmul 16x16x16", "Ns", (8, 8, 8)), eval(1.0));
        let mut unverified = eval(1.0);
        unverified.verified = false;
        entries.insert(key("matmul 32x32x32", "Ns", (8, 8, 8)), unverified);
        entries.insert(key("mystery 9q9", "Ns", (8, 8, 8)), eval(1.0));
        // A tile that does not divide its problem is rejected, not a panic.
        entries.insert(key("matmul 10x10x10", "Ns", (3, 4, 5)), eval(1.0));
        let model = TransferModel::fit(&entries);
        assert_eq!(model.observations(), 1);
        assert!(!model.is_empty());
        assert!(TransferModel::fit(&HashMap::new()).is_empty());
    }

    #[test]
    fn exact_observations_transfer_the_measured_ratio() {
        // One configuration measured on 16^3: its correction must carry
        // over to 32^3 scaled by the analytical estimate.
        let donor = candidate("matmul 16x16x16", "Cs", (8, 8, 8));
        let mut entries = HashMap::new();
        entries.insert(donor.key.clone(), eval(2.0));
        let model = TransferModel::fit(&entries);

        let target = candidate("matmul 32x32x32", "Cs", (8, 8, 8));
        let p = model.predict(&target).expect("covered");
        assert_eq!(p.tier, Tier::Exact);
        assert!(p.is_informed());
        let donor_words = donor.estimate.words_total() as f64;
        let target_words = target.estimate.words_total() as f64;
        let expected = 2.0 / donor_words * target_words;
        assert!((p.clock_ms - expected).abs() < 1e-9, "{} vs {expected}", p.clock_ms);
    }

    #[test]
    fn unseen_tiles_fall_back_to_the_coarse_tier_by_distance() {
        // Two donor tiles with very different corrections: a new tile
        // near the cheap one must predict closer to the cheap ratio.
        let near = candidate("matmul 16x16x16", "Cs", (16, 8, 8));
        let far = candidate("matmul 16x16x16", "Cs", (8, 8, 8));
        let mut entries = HashMap::new();
        entries.insert(near.key.clone(), eval(1.0));
        entries.insert(far.key.clone(), eval(100.0));
        let model = TransferModel::fit(&entries);

        let target = candidate("matmul 32x16x16", "Cs", (32, 8, 8));
        let p = model.predict(&target).expect("covered");
        assert_eq!(p.tier, Tier::Coarse, "tile (32,8,8) was never measured");
        let near_ratio = 1.0 / near.estimate.words_total() as f64;
        let far_ratio = 100.0 / far.estimate.words_total() as f64;
        let implied_ratio = p.clock_ms / target.estimate.words_total() as f64;
        let mid = (near_ratio + far_ratio) / 2.0;
        assert!(
            implied_ratio < mid,
            "blend must lean toward the nearer observation: {implied_ratio} !< {mid}"
        );
    }

    #[test]
    fn foreign_flows_get_the_global_rescale_only() {
        let mut entries = HashMap::new();
        entries.insert(key("matmul 16x16x16", "Cs", (8, 8, 8)), eval(2.0));
        let model = TransferModel::fit(&entries);
        // Same kind, different flow: no exact or coarse signature.
        let target = candidate("matmul 16x16x16", "Ns", (8, 8, 8));
        let p = model.predict(&target).expect("kind covered");
        assert_eq!(p.tier, Tier::Global);
        assert!(!p.is_informed());
        // An entirely unknown kind is uncovered.
        let conv = Candidate {
            key: CandidateKey {
                workload: "conv 10_64_3_16_1".to_owned(),
                accel: "conv2d".to_owned(),
                flow: "FOs".to_owned(),
                tile: (0, 0, 0),
                options: OptionsPoint::default(),
                seed: 1,
            },
            estimate: TransferEstimate {
                words_to_accel: 10,
                words_from_accel: 10,
                transactions: 2,
            },
        };
        assert!(model.predict(&conv).is_none());
    }

    #[test]
    fn conv_labels_parse_into_observations() {
        let conv_key = CandidateKey {
            workload: "conv 10_64_3_16_1".to_owned(),
            accel: "conv2d".to_owned(),
            flow: "FOs".to_owned(),
            tile: (0, 0, 0),
            options: OptionsPoint::default(),
            seed: 1,
        };
        let mut entries = HashMap::new();
        entries.insert(conv_key.clone(), eval(3.0));
        let model = TransferModel::fit(&entries);
        assert_eq!(model.observations(), 1);
        // A neighboring layer predicts from the exact conv signature
        // (conv has one geometric point, so accel/flow/tile all match).
        let neighbor = Candidate {
            key: CandidateKey { workload: "conv 12_64_3_16_1".to_owned(), ..conv_key },
            estimate: conv_transfers(ConvShapeEstimate {
                batch: 1,
                out_channels: 16,
                out_hw: 10,
                in_channels: 64,
                filter_hw: 3,
            }),
        };
        let p = model.predict(&neighbor).expect("covered");
        assert_eq!(p.tier, Tier::Exact);
        assert!(p.clock_ms > 0.0);
    }
}
