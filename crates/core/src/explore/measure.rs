//! Pluggable measurement execution behind the [`Explorer`] scheduler.
//!
//! `Explorer::measure_set` owns everything that makes reports
//! deterministic and concurrent sweeps cheap — the cache partition, the
//! proxy-saturation accounting, the cross-job in-flight deduplication,
//! and index-ordered error reporting. What it delegates is only the
//! *execution* of a claimed measurement, through [`MeasureBackend`]:
//!
//! - [`LocalPool`] is the original recycled-session thread pool: `N`
//!   worker threads, one [`Session`] each, pulling claims until the
//!   queue drains;
//! - [`RemotePool`] fans claims out to `axi4mlir-worker` daemons over
//!   the [`axi4mlir_support::proto`] NDJSON framing, with a per-worker
//!   in-flight window. A worker that dies mid-rung has its outstanding
//!   claims requeued and its connection retried; the sweep fails only if
//!   *every* worker is gone with work remaining, so a lost worker
//!   degrades throughput instead of failing the sweep.
//!
//! Both backends publish through the same [`MeasureQueue`], so a report
//! produced through a remote pool is bit-identical (excluding wall-clock
//! timing fields) to the local pool's at any worker count.
//!
//! The second half of this module is the `axi4mlir-worker/v1` wire
//! vocabulary — the `measure`/`result`/`failed` frames both the remote
//! pool and the worker daemon speak — plus [`handle_measure`], the
//! worker-side entry point that rebuilds the space from the request's
//! [`JobSpec`] and runs the candidate. A space can travel because
//! realization depends only on the problem shape and data seed
//! ([`DesignSpace::wire_spec`]); the accelerator, flow, tile, and
//! options all ride inside the candidate's key.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use axi4mlir_support::diag::Diagnostic;
use axi4mlir_support::json::JsonValue;
use axi4mlir_support::proto::{write_frame, write_frame_at, Frame, FrameReader};

use crate::driver::Session;

use super::cache::{self, CachedEval};
use super::space::{Candidate, CandidateKey, DesignSpace, Fidelity};
use super::{wire, Explorer, JobSpec, SweepStats};

/// One backend worker's result for one candidate index: the outcome plus
/// whether it was served from the cache by a concurrent claim.
pub(crate) type Done = (usize, Result<CachedEval, Diagnostic>, bool);

/// Executes the measurements a [`MeasureQueue`] hands out. Implementors
/// claim tasks with [`MeasureQueue::try_claim`] and must resolve every
/// claim through [`MeasureQueue::complete`] (or put it back with
/// [`MeasureQueue::requeue`] / by dropping it).
pub trait MeasureBackend: Send + Sync {
    /// The backend label reports carry (`local`, `remote:2`, …).
    fn describe(&self) -> String;

    /// Drains `queue`: returns once every pending candidate has been
    /// completed (measured, failed, or deduplicated).
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] when the backend cannot finish the queue
    /// (e.g. every remote worker died with work remaining).
    fn drain(&self, queue: &MeasureQueue<'_>) -> Result<(), Diagnostic>;
}

/// One claimed measurement. Dropping a task without completing it
/// releases the claim and requeues the candidate, so an unwinding or
/// disconnected worker can never strand a measurement.
pub struct MeasureTask<'q, 'a> {
    queue: &'q MeasureQueue<'a>,
    index: usize,
}

impl MeasureTask<'_, '_> {
    /// The candidate index this task measures (stable across requeues).
    pub fn index(&self) -> usize {
        self.index
    }
}

impl Drop for MeasureTask<'_, '_> {
    fn drop(&mut self) {
        self.queue.abandon(self.index);
    }
}

/// What [`MeasureQueue::try_claim`] found.
pub enum Claimed<'q, 'a> {
    /// A candidate to measure.
    Task(MeasureTask<'q, 'a>),
    /// Work remains, but every pending key is currently claimed by a
    /// concurrent sweep (or another backend worker). Wait and retry.
    Busy,
    /// The pending queue is empty. Other workers may still hold tasks —
    /// poll [`MeasureQueue::is_drained`] to learn whether the rung is
    /// truly finished.
    Empty,
}

/// The work-distribution state for one `measure_set` rung: the pending
/// candidates, the claim/dedup logic shared with concurrent sweeps, and
/// the accounting every completed measurement flows through.
pub struct MeasureQueue<'a> {
    explorer: &'a Explorer,
    space: &'a dyn DesignSpace,
    candidates: &'a [Candidate],
    meta: &'a [(CandidateKey, u64)],
    is_full: &'a [bool],
    fidelity: Fidelity,
    stats: &'a SweepStats,
    workers: usize,
    total: usize,
    pending: Mutex<VecDeque<usize>>,
    completed: AtomicUsize,
    done: Mutex<Vec<Done>>,
}

impl<'a> MeasureQueue<'a> {
    #[allow(clippy::too_many_arguments)] // crate-internal constructor mirroring measure_set's locals
    pub(crate) fn new(
        explorer: &'a Explorer,
        space: &'a dyn DesignSpace,
        candidates: &'a [Candidate],
        meta: &'a [(CandidateKey, u64)],
        is_full: &'a [bool],
        fidelity: Fidelity,
        stats: &'a SweepStats,
        workers: usize,
        pending: Vec<usize>,
    ) -> Self {
        let total = pending.len();
        Self {
            explorer,
            space,
            candidates,
            meta,
            is_full,
            fidelity,
            stats,
            workers,
            total,
            pending: Mutex::new(pending.into()),
            completed: AtomicUsize::new(0),
            done: Mutex::new(Vec::with_capacity(total)),
        }
    }

    /// The fidelity this rung measures at.
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// The requested local worker-thread count (already clamped to the
    /// pending size). Remote backends may ignore it.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The candidate a task measures.
    pub fn candidate(&self, task: &MeasureTask<'_, 'a>) -> &'a Candidate {
        &self.candidates[task.index]
    }

    /// The wire recipe remote workers rebuild the space from, if this
    /// space can travel.
    pub fn wire_spec(&self) -> Option<JobSpec> {
        self.space.wire_spec()
    }

    /// The space description, for diagnostics.
    pub fn describe_space(&self) -> String {
        self.space.describe()
    }

    /// Whether every pending candidate has been completed.
    pub fn is_drained(&self) -> bool {
        self.completed.load(Ordering::Acquire) == self.total
    }

    /// Claims the next measurable candidate. Candidates whose key is
    /// already cached (a concurrent sweep landed it first) are resolved
    /// inline as dedup hits; candidates whose key is claimed elsewhere
    /// are cycled to the back of the queue.
    pub fn try_claim<'q>(&'q self) -> Claimed<'q, 'a> {
        let mut pending = self.pending.lock().expect("measure queue poisoned");
        let mut cycled = 0;
        while let Some(index) = pending.pop_front() {
            let key = &self.meta[index].0;
            let hit =
                self.explorer.cache.lock().expect("explorer cache poisoned").get(key).cloned();
            if let Some(hit) = hit {
                self.explorer.dedup_hits.fetch_add(1, Ordering::Relaxed);
                self.push_done(index, Ok(hit), true);
                continue;
            }
            if self.explorer.in_flight.claim(key) {
                return Claimed::Task(MeasureTask { queue: self, index });
            }
            pending.push_back(index);
            cycled += 1;
            if cycled >= pending.len() {
                return Claimed::Busy;
            }
        }
        Claimed::Empty
    }

    /// Resolves a claim: publishes a successful measurement to the
    /// shared cache *before* releasing the claim (so concurrent waiters
    /// find it), performs all sweep and engine accounting, and records
    /// the measuring `worker` for the report's per-worker sim counts.
    pub fn complete(
        &self,
        task: MeasureTask<'_, 'a>,
        result: Result<CachedEval, Diagnostic>,
        nanos: u64,
        worker: &str,
    ) {
        let index = task.index;
        std::mem::forget(task); // resolved: skip the requeue-on-drop path
        let key = &self.meta[index].0;
        if let Ok(eval) = &result {
            self.explorer
                .cache
                .lock()
                .expect("explorer cache poisoned")
                .insert(key.clone(), eval.clone());
            self.explorer.mark_dirty(key);
            self.explorer.evals_performed.fetch_add(1, Ordering::Relaxed);
            self.stats.record_sim(worker, self.is_full[index], nanos);
            if self.is_full[index] {
                self.explorer.full_evals_performed.fetch_add(1, Ordering::Relaxed);
                self.explorer.full_sim_nanos.fetch_add(nanos, Ordering::Relaxed);
            }
        }
        self.explorer.in_flight.release(key);
        self.push_done(index, result, false);
    }

    /// Releases a claim and puts the candidate back in the queue (used
    /// when a remote worker dies with the measurement outstanding).
    pub fn requeue(&self, task: MeasureTask<'_, 'a>) {
        drop(task); // the drop handler is exactly the requeue path
    }

    /// Records that `worker` came back after its connection was lost —
    /// surfaced as `worker_reconnects` in the sweep report.
    pub fn record_reconnect(&self, worker: &str) {
        self.stats.record_reconnect(worker);
    }

    fn abandon(&self, index: usize) {
        self.explorer.in_flight.release(&self.meta[index].0);
        self.pending.lock().expect("measure queue poisoned").push_back(index);
    }

    /// Parks briefly (≤10ms) until some in-flight claim releases — the
    /// polite way to wait out [`Claimed::Busy`].
    pub fn wait_for_progress(&self) {
        self.explorer.in_flight.wait_release_timeout(Duration::from_millis(10));
    }

    fn push_done(&self, index: usize, result: Result<CachedEval, Diagnostic>, served: bool) {
        self.done.lock().expect("result sink poisoned").push((index, result, served));
        self.completed.fetch_add(1, Ordering::Release);
    }

    pub(crate) fn into_done(self) -> Vec<Done> {
        self.done.into_inner().expect("result sink poisoned")
    }
}

// ---------------------------------------------------------------------
// Local pool
// ---------------------------------------------------------------------

/// The in-process measurement pool: `queue.workers()` threads, each
/// owning one recycled-SoC [`Session`] for the rung.
#[derive(Clone, Copy, Debug, Default)]
pub struct LocalPool;

/// The worker label local measurements are recorded under.
pub const LOCAL_WORKER: &str = "local";

impl MeasureBackend for LocalPool {
    fn describe(&self) -> String {
        LOCAL_WORKER.to_owned()
    }

    fn drain(&self, queue: &MeasureQueue<'_>) -> Result<(), Diagnostic> {
        std::thread::scope(|scope| {
            for _ in 0..queue.workers() {
                scope.spawn(|| {
                    let mut session = Session::for_sweep();
                    loop {
                        match queue.try_claim() {
                            Claimed::Task(task) => {
                                let started = Instant::now();
                                let result = run_candidate(
                                    &mut session,
                                    queue.space,
                                    queue.candidate(&task),
                                    queue.fidelity(),
                                );
                                let nanos = started.elapsed().as_nanos() as u64;
                                queue.complete(task, result, nanos, LOCAL_WORKER);
                            }
                            Claimed::Busy => queue.wait_for_progress(),
                            Claimed::Empty => break,
                        }
                    }
                });
            }
        });
        Ok(())
    }
}

/// Compiles and runs one realized candidate on `session`'s recycled SoC
/// — the execution primitive both the local pool and the worker daemon
/// share.
///
/// # Errors
///
/// Propagates realization and simulation diagnostics; a run that fails
/// verification is an error naming the candidate.
pub fn run_candidate(
    session: &mut Session,
    space: &dyn DesignSpace,
    candidate: &Candidate,
    fidelity: Fidelity,
) -> Result<CachedEval, Diagnostic> {
    let realized = space.realize(candidate, fidelity)?;
    let report = session.run(realized.workload.as_ref(), &realized.plan)?;
    if !report.verified {
        return Err(Diagnostic::error(format!(
            "candidate {} failed verification on {}",
            candidate.label(),
            realized.key.workload
        )));
    }
    Ok(CachedEval {
        counters: report.counters,
        task_clock_ms: report.task_clock_ms,
        verified: report.verified,
        pass_ms: report.pass_timings.iter().map(|t| (t.pass.clone(), t.millis)).collect(),
    })
}

// ---------------------------------------------------------------------
// Remote pool
// ---------------------------------------------------------------------

/// Consecutive failed connection attempts before a pump *may* give up —
/// and it only actually gives up while no other pool worker is
/// connected. While at least one peer is serving the queue, the pump
/// keeps retrying with backoff forever, so a worker that comes back
/// hours later still rejoins.
const RECONNECT_ATTEMPTS: usize = 3;

/// Initial pause between reconnection attempts (doubles per consecutive
/// failure, capped at [`RECONNECT_BACKOFF_CAP`]).
const RECONNECT_BACKOFF: Duration = Duration::from_millis(100);

/// Ceiling for the exponential reconnect backoff.
const RECONNECT_BACKOFF_CAP: Duration = Duration::from_millis(800);

/// How long a connection handshake may take before the worker is
/// declared unreachable.
const HELLO_DEADLINE: Duration = Duration::from_secs(5);

/// The measurement pool that fans claims out to `axi4mlir-worker`
/// daemons. One pump thread per worker keeps up to
/// [`RemotePool::in_flight`] requests outstanding; a worker that dies
/// has its claims requeued (served by the surviving workers) and its
/// address retried with exponential backoff until it re-registers —
/// a pump abandons its address only when the whole pool is unreachable.
/// Re-registrations are recorded on the queue and surface as
/// `worker_reconnects` in the report.
#[derive(Clone, Debug)]
pub struct RemotePool {
    addrs: Vec<String>,
    window: usize,
    state: Arc<PoolState>,
}

/// Liveness shared by a pool's pumps across connections and drains.
#[derive(Debug, Default)]
struct PoolState {
    /// Pumps currently holding a healthy worker connection.
    connected: AtomicUsize,
    /// Addresses whose last connection was lost. The flag outlives the
    /// rung that observed the loss, so a worker that dies late in one
    /// rung and comes back during a later one is still recorded as a
    /// re-registration.
    lost: Mutex<HashSet<String>>,
}

impl RemotePool {
    /// A pool over `addrs` with the default in-flight window of 4
    /// requests per worker.
    pub fn new(addrs: Vec<String>) -> Self {
        Self { addrs, window: 4, state: Arc::default() }
    }

    /// Overrides the per-worker in-flight window (clamped to ≥ 1).
    #[must_use]
    pub fn in_flight(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }
}

impl MeasureBackend for RemotePool {
    fn describe(&self) -> String {
        format!("remote:{}", self.addrs.len())
    }

    fn drain(&self, queue: &MeasureQueue<'_>) -> Result<(), Diagnostic> {
        if self.addrs.is_empty() {
            return Err(Diagnostic::error("remote measurement pool has no workers"));
        }
        let Some(spec) = queue.wire_spec() else {
            return Err(Diagnostic::error(format!(
                "space {} cannot be measured remotely (no wire form)",
                queue.describe_space()
            )));
        };
        let job = spec.to_json();
        // The per-job worker budget (threaded through `queue.workers()`)
        // caps each pump's in-flight window, so one huge job cannot
        // monopolize the pool's slots across rungs.
        let window = self.window.min(queue.workers().max(1));
        let failures: Vec<Diagnostic> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .addrs
                .iter()
                .map(|addr| {
                    let job = &job;
                    let state = &self.state;
                    scope.spawn(move || pump(addr, job, window, queue, state))
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|handle| handle.join().expect("worker pump panicked").err())
                .collect()
        });
        if queue.is_drained() {
            // Lost workers (if any) only degraded throughput.
            return Ok(());
        }
        Err(failures.into_iter().next().unwrap_or_else(|| {
            Diagnostic::error("remote measurement workers lost with work remaining")
        }))
    }
}

struct Conn {
    reader: FrameReader<BufReader<TcpStream>>,
    writer: TcpStream,
}

fn io_err(addr: &str, what: impl std::fmt::Display) -> Diagnostic {
    Diagnostic::error(format!("worker {addr}: {what}"))
}

fn connect(addr: &str) -> Result<Conn, Diagnostic> {
    let stream =
        TcpStream::connect(addr).map_err(|err| io_err(addr, format!("cannot connect: {err}")))?;
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .map_err(|err| io_err(addr, format!("cannot set read timeout: {err}")))?;
    let writer = stream.try_clone().map_err(|err| io_err(addr, err))?;
    let mut conn = Conn { reader: FrameReader::new(BufReader::new(stream)), writer };
    write_frame(&mut conn.writer, &JsonValue::object([("type".to_owned(), "hello".into())]))
        .map_err(|err| io_err(addr, format!("hello failed: {err}")))?;
    let deadline = Instant::now() + HELLO_DEADLINE;
    loop {
        match conn.reader.next_frame() {
            Ok(Frame::Value(frame)) => {
                let schema = frame.get("schema").and_then(JsonValue::as_str);
                if schema != Some(WORKER_SCHEMA) {
                    return Err(io_err(
                        addr,
                        format!(
                            "speaks {} (expected {WORKER_SCHEMA})",
                            schema.unwrap_or("no schema")
                        ),
                    ));
                }
                return Ok(conn);
            }
            Ok(Frame::Idle) if Instant::now() < deadline => continue,
            Ok(Frame::Idle) | Ok(Frame::Eof) => {
                return Err(io_err(addr, "closed during handshake"))
            }
            Err(err) => return Err(io_err(addr, err.message)),
        }
    }
}

/// One worker's reply to a `measure` frame.
enum WorkerReply {
    Result { id: u64, eval: CachedEval, nanos: u64 },
    Failed { id: u64, reason: String },
    Other,
}

fn parse_reply(frame: &JsonValue) -> Option<WorkerReply> {
    match frame.get("type").and_then(JsonValue::as_str)? {
        "result" => Some(WorkerReply::Result {
            id: frame.get("id").and_then(JsonValue::as_u64)?,
            eval: CachedEval {
                counters: frame.get("counters").and_then(cache::counters_from_json)?,
                task_clock_ms: frame.get("task_clock_ms").and_then(JsonValue::as_f64)?,
                verified: frame.get("verified").and_then(JsonValue::as_bool)?,
                pass_ms: Vec::new(),
            },
            nanos: frame.get("nanos").and_then(JsonValue::as_u64)?,
        }),
        "failed" => Some(WorkerReply::Failed {
            id: frame.get("id").and_then(JsonValue::as_u64)?,
            reason: frame
                .get("reason")
                .and_then(JsonValue::as_str)
                .unwrap_or("worker reported failure")
                .to_owned(),
        }),
        _ => Some(WorkerReply::Other),
    }
}

/// Why [`serve_worker`] returned.
enum Served {
    /// The queue drained while this connection was healthy.
    Drained,
    /// The connection died (EOF, I/O error, or a malformed frame);
    /// outstanding claims were requeued by drop.
    Lost,
}

/// Drives one worker address for the life of the rung. A lost connection
/// requeues its outstanding claims (by drop) and is retried with
/// exponential backoff; a successful reconnect after a loss re-registers
/// the worker via [`MeasureQueue::record_reconnect`]. The pump abandons
/// the address only once [`RECONNECT_ATTEMPTS`] consecutive connects
/// failed *and* no other pump in the pool is connected — while any peer
/// is serving the queue, a dead worker's address keeps being retried so
/// it can rejoin whenever it comes back.
fn pump(
    addr: &str,
    job: &JsonValue,
    window: usize,
    queue: &MeasureQueue<'_>,
    state: &PoolState,
) -> Result<(), Diagnostic> {
    let mut failures = 0usize;
    loop {
        if queue.is_drained() {
            return Ok(());
        }
        let mut conn = match connect(addr) {
            Ok(conn) => conn,
            Err(err) => {
                failures += 1;
                if failures >= RECONNECT_ATTEMPTS && state.connected.load(Ordering::Acquire) == 0 {
                    return Err(err);
                }
                let backoff = RECONNECT_BACKOFF
                    .saturating_mul(1 << (failures - 1).min(4) as u32)
                    .min(RECONNECT_BACKOFF_CAP);
                std::thread::sleep(backoff);
                continue;
            }
        };
        failures = 0;
        // The loss flag lives on the pool, not this pump: a worker
        // that died in an earlier rung and reconnects here is still a
        // re-registration.
        if state.lost.lock().expect("pool state poisoned").remove(addr) {
            queue.record_reconnect(addr);
        }
        state.connected.fetch_add(1, Ordering::AcqRel);
        let served = serve_worker(addr, &mut conn, job, window, queue);
        state.connected.fetch_sub(1, Ordering::AcqRel);
        match served {
            Served::Drained => return Ok(()),
            Served::Lost => {
                state.lost.lock().expect("pool state poisoned").insert(addr.to_owned());
            }
        }
    }
}

/// Runs one healthy connection until the queue drains or the connection
/// dies. Outstanding claims are requeued (by drop) on every exit path
/// that loses the connection, so no candidate is ever lost to a worker
/// death.
fn serve_worker(
    addr: &str,
    conn: &mut Conn,
    job: &JsonValue,
    window: usize,
    queue: &MeasureQueue<'_>,
) -> Served {
    let mut next_id: u64 = 1;
    let mut outstanding = HashMap::new();
    loop {
        // Keep the in-flight window full.
        let mut starved = false;
        while outstanding.len() < window {
            match queue.try_claim() {
                Claimed::Task(task) => {
                    let frame =
                        measure_request(next_id, job, queue.fidelity(), queue.candidate(&task));
                    if write_frame_at("pool.send", &mut conn.writer, &frame).is_err() {
                        // `task` and `outstanding` requeue on drop.
                        return Served::Lost;
                    }
                    outstanding.insert(next_id, task);
                    next_id += 1;
                }
                Claimed::Busy | Claimed::Empty => {
                    starved = true;
                    break;
                }
            }
        }
        if outstanding.is_empty() {
            if queue.is_drained() {
                return Served::Drained;
            }
            if starved {
                // Work remains, but none is claimable by us right
                // now (held by concurrent sweeps or other pumps
                // whose death would requeue it). Stay alive.
                queue.wait_for_progress();
                continue;
            }
        }
        match conn.reader.next_frame() {
            Ok(Frame::Idle) => continue,
            Ok(Frame::Value(frame)) => match parse_reply(&frame) {
                Some(WorkerReply::Result { id, eval, nanos }) => {
                    if let Some(task) = outstanding.remove(&id) {
                        queue.complete(task, Ok(eval), nanos, addr);
                    }
                }
                Some(WorkerReply::Failed { id, reason }) => {
                    if let Some(task) = outstanding.remove(&id) {
                        queue.complete(task, Err(Diagnostic::error(reason)), 0, addr);
                    }
                }
                Some(WorkerReply::Other) => {}
                None => return Served::Lost, // malformed: reset the connection
            },
            Ok(Frame::Eof) | Err(_) => return Served::Lost,
        }
    }
}

// ---------------------------------------------------------------------
// The axi4mlir-worker/v1 wire vocabulary
// ---------------------------------------------------------------------

/// The worker protocol schema tag, exchanged in `hello`.
pub const WORKER_SCHEMA: &str = "axi4mlir-worker/v1";

/// Builds a `measure` request: measure `candidate` at `fidelity` in the
/// space rebuilt from `job` (a [`JobSpec`] in JSON form).
pub fn measure_request(
    id: u64,
    job: &JsonValue,
    fidelity: Fidelity,
    candidate: &Candidate,
) -> JsonValue {
    JsonValue::object([
        ("type".to_owned(), "measure".into()),
        ("id".to_owned(), id.into()),
        ("job".to_owned(), job.clone()),
        ("fidelity".to_owned(), fidelity.label().into()),
        ("candidate".to_owned(), wire::candidate_to_json(candidate)),
    ])
}

/// Builds the `result` frame answering measure request `id`.
pub fn result_frame(id: u64, eval: &CachedEval, nanos: u64) -> JsonValue {
    JsonValue::object([
        ("type".to_owned(), "result".into()),
        ("id".to_owned(), id.into()),
        ("counters".to_owned(), cache::counters_to_json(&eval.counters)),
        ("task_clock_ms".to_owned(), JsonValue::Float(eval.task_clock_ms)),
        ("verified".to_owned(), eval.verified.into()),
        ("nanos".to_owned(), nanos.into()),
    ])
}

/// Builds the `failed` frame answering measure request `id`.
pub fn failed_frame(id: u64, reason: &str) -> JsonValue {
    JsonValue::object([
        ("type".to_owned(), "failed".into()),
        ("id".to_owned(), id.into()),
        ("reason".to_owned(), reason.into()),
    ])
}

/// The worker-side execution of one `measure` frame: rebuild the space
/// from the embedded job spec, realize the candidate at the requested
/// fidelity, run it on `session`, and answer with a `result` or `failed`
/// frame (the request `id` echoed either way). Transport never sees
/// Rust errors: every failure becomes a `failed` frame.
pub fn handle_measure(session: &mut Session, frame: &JsonValue) -> JsonValue {
    let id = frame.get("id").and_then(JsonValue::as_u64).unwrap_or(0);
    match run_measure(session, frame) {
        Ok((eval, nanos)) => result_frame(id, &eval, nanos),
        Err(diag) => failed_frame(id, &diag.message),
    }
}

fn run_measure(session: &mut Session, frame: &JsonValue) -> Result<(CachedEval, u64), Diagnostic> {
    let job = frame.get("job").ok_or_else(|| Diagnostic::error("measure requires a `job`"))?;
    let request = JobSpec::from_json(job)?.build()?;
    let fidelity = frame
        .get("fidelity")
        .and_then(JsonValue::as_str)
        .and_then(Fidelity::parse)
        .ok_or_else(|| Diagnostic::error("measure requires a `fidelity` label"))?;
    let candidate = wire::candidate_from_json(
        frame
            .get("candidate")
            .ok_or_else(|| Diagnostic::error("measure requires a `candidate`"))?,
    )?;
    let started = Instant::now();
    let eval = run_candidate(session, request.space.as_dyn(), &candidate, fidelity)?;
    Ok((eval, started.elapsed().as_nanos() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi4mlir_workloads::matmul::MatMulProblem;

    #[test]
    fn measure_frames_round_trip_through_the_worker_entry_point() {
        let space = super::super::MatMulSpace::new(MatMulProblem::new(8, 8, 8)).seed(7);
        let candidate = space.enumerate().unwrap().into_iter().next().unwrap();
        let job = space.wire_spec().unwrap().to_json();
        let request = measure_request(42, &job, Fidelity::Full, &candidate);
        let mut session = Session::for_sweep();
        let reply = handle_measure(&mut session, &request);
        assert_eq!(reply.get("type").and_then(JsonValue::as_str), Some("result"));
        assert_eq!(reply.get("id").and_then(JsonValue::as_u64), Some(42));
        let parsed = parse_reply(&reply).unwrap();
        let WorkerReply::Result { id, eval, nanos } = parsed else { panic!("expected result") };
        assert_eq!(id, 42);
        assert!(eval.verified);
        assert!(nanos > 0);

        // The measurement equals a direct local run, bit for bit.
        let direct = run_candidate(&mut session, &space, &candidate, Fidelity::Full).unwrap();
        assert_eq!(eval.counters, direct.counters);
        assert_eq!(eval.task_clock_ms.to_bits(), direct.task_clock_ms.to_bits());
    }

    #[test]
    fn malformed_measure_frames_fail_with_the_id_echoed() {
        let mut session = Session::for_sweep();
        let bad = JsonValue::object([
            ("type".to_owned(), "measure".into()),
            ("id".to_owned(), 9u64.into()),
        ]);
        let reply = handle_measure(&mut session, &bad);
        assert_eq!(reply.get("type").and_then(JsonValue::as_str), Some("failed"));
        assert_eq!(reply.get("id").and_then(JsonValue::as_u64), Some(9));
        assert!(reply.get("reason").and_then(JsonValue::as_str).unwrap().contains("job"));
    }
}
