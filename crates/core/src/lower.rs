//! Step 5b: lower `accel` ops to the DMA runtime library calls of Fig. 9.
//!
//! | accel op                  | lowering                                              |
//! |---------------------------|-------------------------------------------------------|
//! | `accel.dma_init`          | `call @dma_init(id, inAddr, inSize, outAddr, outSize)`|
//! | `accel.sendLiteral`       | `call @write_literal_to_dma_region(lit, off)` (+flush)|
//! | `accel.sendDim`           | `memref.dim` + `index_cast` + literal write (+flush)  |
//! | `accel.sendIdx`           | literal write of the index (+flush)                   |
//! | `accel.send`              | `call @copy_to_dma_region(view, off)` (+flush)        |
//! | `accel.recv`              | `call @dma_start_recv(len, off)` + wait + `call @copy_from_dma_region` |
//!
//! where *flush* is `call @dma_start_send(total, 0)` followed by
//! `call @dma_wait_send_completion()` — one batched transaction per opcode,
//! as §III-A describes.

use axi4mlir_dialects::{accel, arith, func, memref};
use axi4mlir_ir::builder::OpBuilder;
use axi4mlir_ir::ops::{IrCtx, Module, OpId, ValueId};
use axi4mlir_ir::pass::Pass;
use axi4mlir_ir::types::Type;
use axi4mlir_support::diag::{Diagnostic, DiagnosticEngine};

/// Runtime library entry-point names (defined by the DMA library itself;
/// the interpreter dispatches on the same constants).
pub mod callees {
    pub use axi4mlir_runtime::dma_lib::names::*;
}

/// Lowers every `accel` op under the module to runtime calls.
#[derive(Debug, Default)]
pub struct LowerAccelToRuntimePass;

impl Pass for LowerAccelToRuntimePass {
    fn name(&self) -> &str {
        "axi4mlir-lower-to-runtime"
    }

    fn run(
        &mut self,
        module: &mut Module,
        _diags: &mut DiagnosticEngine,
    ) -> Result<(), Diagnostic> {
        let top = module.top();
        let accel_ops: Vec<OpId> = module
            .ctx
            .walk(top)
            .into_iter()
            .filter(|op| accel::is_accel_op(&module.ctx, *op))
            .collect();
        for op in accel_ops {
            lower_one(&mut module.ctx, top, op)?;
        }
        Ok(())
    }
}

fn emit_flush(b: &mut OpBuilder<'_>, total_len: ValueId) {
    let zero = arith::const_i32(b, 0);
    func::call(b, callees::START_SEND, vec![total_len, zero], vec![]);
    func::call(b, callees::WAIT_SEND, vec![], vec![]);
}

fn lower_one(ctx: &mut IrCtx, top: OpId, op: OpId) -> Result<(), Diagnostic> {
    let name = ctx.op(op).name.clone();
    let operands = ctx.op(op).operands.clone();
    let results = ctx.op(op).results.clone();
    let flush = accel::has_flush(ctx, op);
    let block = ctx.op(op).parent.ok_or_else(|| Diagnostic::error("accel op must be attached"))?;
    let index = ctx.position_in_block(op).expect("attached");
    // Build replacements *before* the op, then erase it.
    let mut b = OpBuilder::at(ctx, block, index);
    let replacement: Option<ValueId> = match name.as_str() {
        accel::DMA_INIT => {
            func::call(&mut b, callees::DMA_INIT, operands.clone(), vec![]);
            None
        }
        accel::SEND_LITERAL => {
            let call =
                func::call(&mut b, callees::WRITE_LITERAL, operands.clone(), vec![Type::i32()]);
            let new_off = b.ctx_ref().result(call, 0);
            if flush {
                emit_flush(&mut b, new_off);
            }
            Some(new_off)
        }
        accel::SEND_IDX => {
            let call =
                func::call(&mut b, callees::WRITE_LITERAL, operands.clone(), vec![Type::i32()]);
            let new_off = b.ctx_ref().result(call, 0);
            if flush {
                emit_flush(&mut b, new_off);
            }
            Some(new_off)
        }
        accel::SEND_DIM => {
            let dim = accel::dim_of(b.ctx_ref(), op)
                .ok_or_else(|| Diagnostic::error("accel.sendDim without dim attribute"))?;
            let d = memref::dim(&mut b, operands[0], dim);
            let word = arith::index_cast(&mut b, d, Type::i32());
            let call = func::call(
                &mut b,
                callees::WRITE_LITERAL,
                vec![word, operands[1]],
                vec![Type::i32()],
            );
            let new_off = b.ctx_ref().result(call, 0);
            if flush {
                emit_flush(&mut b, new_off);
            }
            Some(new_off)
        }
        accel::SEND => {
            let call = func::call(&mut b, callees::COPY_TO, operands.clone(), vec![Type::i32()]);
            let new_off = b.ctx_ref().result(call, 0);
            if flush {
                emit_flush(&mut b, new_off);
            }
            Some(new_off)
        }
        accel::RECV => {
            let view_ty = b
                .ctx_ref()
                .value_type(operands[0])
                .as_memref()
                .ok_or_else(|| Diagnostic::error("accel.recv expects a memref view"))?;
            let bytes = view_ty
                .num_elements()
                .ok_or_else(|| Diagnostic::error("accel.recv view must have a static shape"))?
                * 4;
            let accumulate = accel::recv_accumulates(b.ctx_ref(), op);
            let len = arith::const_i32(&mut b, bytes as i32);
            func::call(&mut b, callees::START_RECV, vec![len, operands[1]], vec![]);
            func::call(&mut b, callees::WAIT_RECV, vec![], vec![]);
            let acc = arith::const_i32(&mut b, i64::from(accumulate) as i32);
            let call = func::call(
                &mut b,
                callees::COPY_FROM,
                vec![operands[0], operands[1], acc],
                vec![Type::i32()],
            );
            Some(b.ctx_ref().result(call, 0))
        }
        other => return Err(Diagnostic::error(format!("unknown accel op `{other}`"))),
    };
    if let (Some(new_value), Some(old_result)) = (replacement, results.first()) {
        ctx.replace_uses_in(top, *old_result, new_value);
    }
    ctx.erase_op(op);
    Ok(())
}

/// Convenience: `true` if no accel ops remain under `root`.
pub fn fully_lowered(ctx: &IrCtx, root: OpId) -> bool {
    ctx.walk(root).into_iter().all(|op| !accel::is_accel_op(ctx, op))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::MatchAndAnnotatePass;
    use crate::codegen::GenerateAccelDriverPass;
    use axi4mlir_config::{AcceleratorConfig, AcceleratorPreset, FlowStrategy};
    use axi4mlir_dialects::{linalg, verify::DialectVerifierPass};
    use axi4mlir_ir::pass::PassManager;
    use axi4mlir_ir::printer::print_op;

    fn lowered_module(flow: FlowStrategy) -> Module {
        let mut m = Module::new();
        let f = func::func(&mut m, "matmul_call", vec![], vec![]);
        let mut b = func::entry_builder(&mut m.ctx, &f);
        let a = memref::alloc(&mut b, vec![16, 16], Type::i32());
        let bb = memref::alloc(&mut b, vec![16, 16], Type::i32());
        let c = memref::alloc(&mut b, vec![16, 16], Type::i32());
        linalg::generic_matmul(&mut b, a, bb, c);
        let cfg = AcceleratorConfig::preset(AcceleratorPreset::V3 { size: 4 })
            .with_selected_flow(flow.short_name());
        let perm: Vec<String> = flow.matmul_permutation().iter().map(|s| (*s).to_owned()).collect();
        let mut pm = PassManager::new();
        pm.add(Box::new(MatchAndAnnotatePass::new(cfg, perm, None)));
        pm.add(Box::new(GenerateAccelDriverPass::default()));
        pm.add(Box::new(LowerAccelToRuntimePass));
        pm.add(Box::new(DialectVerifierPass));
        pm.run(&mut m).unwrap();
        m
    }

    #[test]
    fn lowering_removes_all_accel_ops() {
        let m = lowered_module(FlowStrategy::NothingStationary);
        assert!(fully_lowered(&m.ctx, m.top()));
        let printed = print_op(&m.ctx, m.top());
        for callee in [
            callees::DMA_INIT,
            callees::COPY_TO,
            callees::WRITE_LITERAL,
            callees::START_SEND,
            callees::WAIT_SEND,
            callees::START_RECV,
            callees::WAIT_RECV,
            callees::COPY_FROM,
        ] {
            assert!(
                printed.contains(&format!("callee = {callee:?}")),
                "missing {callee}: {printed}"
            );
        }
    }

    #[test]
    fn one_transaction_per_opcode() {
        // Ns with v3: four opcodes per innermost iteration (sA, sB, cC, rC)
        // means exactly four start_send calls inside the innermost loop.
        let m = lowered_module(FlowStrategy::NothingStationary);
        let fors = m.ctx.find_ops(m.top(), "scf.for");
        let innermost =
            fors.iter().copied().find(|f| m.ctx.find_ops(*f, "scf.for").len() == 1).unwrap();
        let starts = m
            .ctx
            .find_ops(innermost, "func.call")
            .into_iter()
            .filter(|c| func::callee(&m.ctx, *c) == Some(callees::START_SEND))
            .count();
        assert_eq!(starts, 4);
        let waits = m
            .ctx
            .find_ops(innermost, "func.call")
            .into_iter()
            .filter(|c| func::callee(&m.ctx, *c) == Some(callees::WAIT_SEND))
            .count();
        assert_eq!(waits, 4, "every start_send pairs with a wait");
    }

    #[test]
    fn recv_lowers_to_start_wait_copy() {
        let m = lowered_module(FlowStrategy::OutputStationary);
        let calls = m.ctx.find_ops(m.top(), "func.call");
        let recv_start =
            calls.iter().filter(|c| func::callee(&m.ctx, **c) == Some(callees::START_RECV)).count();
        let copy_from =
            calls.iter().filter(|c| func::callee(&m.ctx, **c) == Some(callees::COPY_FROM)).count();
        assert_eq!(recv_start, 1, "Cs flow receives once per (m, n) tile — one call site");
        assert_eq!(copy_from, 1);
    }

    #[test]
    fn lowered_ir_round_trips() {
        let m = lowered_module(FlowStrategy::InputAStationary);
        let printed = print_op(&m.ctx, m.top());
        let m2 = axi4mlir_ir::parser::parse_module(&printed).unwrap();
        assert_eq!(print_op(&m2.ctx, m2.top()), printed);
    }

    #[test]
    fn send_dim_lowers_through_memref_dim() {
        // Conv init opcodes exercise sendDim.
        let mut m = Module::new();
        let f = func::func(&mut m, "conv_call", vec![], vec![]);
        let mut b = func::entry_builder(&mut m.ctx, &f);
        let i = memref::alloc(&mut b, vec![1, 8, 7, 7], Type::i32());
        let w = memref::alloc(&mut b, vec![4, 8, 3, 3], Type::i32());
        let o = memref::alloc(&mut b, vec![1, 4, 5, 5], Type::i32());
        linalg::conv_2d_nchw_fchw(&mut b, i, w, o, 1);
        let cfg = AcceleratorConfig::preset(AcceleratorPreset::Conv2d { ic: 8, fhw: 3 });
        let mut pm = PassManager::new();
        pm.add(Box::new(MatchAndAnnotatePass::new(cfg, vec![], None)));
        pm.add(Box::new(GenerateAccelDriverPass::default()));
        pm.add(Box::new(LowerAccelToRuntimePass));
        pm.run(&mut m).unwrap();
        assert!(fully_lowered(&m.ctx, m.top()));
        assert_eq!(m.ctx.find_ops(m.top(), "memref.dim").len(), 2, "fH and iC");
        assert!(!m.ctx.find_ops(m.top(), "arith.index_cast").is_empty());
    }
}
