//! Step 3: match `linalg` operations and annotate them with the
//! accelerator trait attributes (Fig. 6a).

use axi4mlir_config::{AcceleratorConfig, KernelKind};
use axi4mlir_dialects::linalg;
use axi4mlir_ir::attrs::Attribute;
use axi4mlir_ir::ops::{Module, OpId};
use axi4mlir_ir::pass::Pass;
use axi4mlir_support::diag::{Diagnostic, DiagnosticEngine};

/// Finds offloadable ops and attaches the accelerator trait.
///
/// Matching is trait-based, as in the paper: for MatMul accelerators any
/// `linalg.generic` with the Fig. 2a indexing maps and iterator types (or a
/// `linalg.matmul` named op, converted first); for Conv2D accelerators the
/// `linalg.conv_2d_nchw_fchw` named op.
pub struct MatchAndAnnotatePass {
    config: AcceleratorConfig,
    /// Loop permutation (outermost first, dim names), usually derived from
    /// the selected flow's stationarity.
    permutation: Vec<String>,
    /// Optional cache-tiling edge to record on the op (consumed by codegen).
    cache_tile: Option<i64>,
    annotated: Vec<OpId>,
}

impl MatchAndAnnotatePass {
    /// Creates the pass for one accelerator.
    pub fn new(
        config: AcceleratorConfig,
        permutation: Vec<String>,
        cache_tile: Option<i64>,
    ) -> Self {
        Self { config, permutation, cache_tile, annotated: Vec::new() }
    }

    /// Ops annotated by the last run.
    pub fn annotated(&self) -> &[OpId] {
        &self.annotated
    }

    fn matches(&self, module: &Module, op: OpId) -> bool {
        match self.config.kernel {
            KernelKind::MatMul => linalg::is_matmul_generic(&module.ctx, op),
            KernelKind::Conv2dNchwFchw => module.ctx.op(op).name == "linalg.conv_2d_nchw_fchw",
        }
    }
}

impl Pass for MatchAndAnnotatePass {
    fn name(&self) -> &str {
        "axi4mlir-match-and-annotate"
    }

    fn run(
        &mut self,
        module: &mut Module,
        _diags: &mut DiagnosticEngine,
    ) -> Result<(), Diagnostic> {
        self.config.validate()?;
        self.annotated.clear();
        // Named matmuls become generics first (compiler flow box "convert
        // named ops to linalg.generic").
        let top = module.top();
        linalg::convert_named_to_generic(&mut module.ctx, top);
        let candidates: Vec<OpId> =
            module.ctx.walk(top).into_iter().filter(|op| self.matches(module, *op)).collect();
        if candidates.is_empty() {
            return Err(Diagnostic::error(format!(
                "no operation matches accelerator {} (kernel {})",
                self.config.name,
                self.config.kernel.op_name()
            )));
        }
        let perm: Vec<&str> = self.permutation.iter().map(String::as_str).collect();
        let attrs = self.config.to_trait_attrs(if perm.is_empty() { None } else { Some(&perm) });
        for op in candidates {
            for (k, v) in &attrs {
                module.ctx.set_attr(op, k, v.clone());
            }
            if let Some(tile) = self.cache_tile {
                module.ctx.set_attr(op, "cache_tile", Attribute::Int(tile));
            }
            self.annotated.push(op);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi4mlir_config::AcceleratorPreset;
    use axi4mlir_dialects::{func, memref};
    use axi4mlir_ir::pass::PassManager;
    use axi4mlir_ir::types::Type;

    fn matmul_module(dims: i64) -> Module {
        let mut m = Module::new();
        let f = func::func(&mut m, "matmul_call", vec![], vec![]);
        let mut b = func::entry_builder(&mut m.ctx, &f);
        let a = memref::alloc(&mut b, vec![dims, dims], Type::i32());
        let bb = memref::alloc(&mut b, vec![dims, dims], Type::i32());
        let c = memref::alloc(&mut b, vec![dims, dims], Type::i32());
        linalg::named_matmul(&mut b, a, bb, c);
        m
    }

    #[test]
    fn annotates_matched_matmul() {
        let mut module = matmul_module(16);
        let cfg =
            AcceleratorConfig::preset(AcceleratorPreset::V3 { size: 8 }).with_selected_flow("As");
        let mut pass = MatchAndAnnotatePass::new(
            cfg,
            vec!["m".to_owned(), "k".to_owned(), "n".to_owned()],
            Some(16),
        );
        let pm = PassManager::new();
        let mut diags = DiagnosticEngine::new();
        pass.run(&mut module, &mut diags).unwrap();
        let _ = pm;
        let generics = module.ctx.find_ops(module.top(), "linalg.generic");
        assert_eq!(generics.len(), 1);
        let op = generics[0];
        assert!(module.ctx.attr(op, "opcode_map").is_some());
        assert!(module.ctx.attr(op, "opcode_flow").is_some());
        assert!(module.ctx.attr(op, "dma_init_config").is_some());
        assert_eq!(module.ctx.attr(op, "cache_tile").and_then(|a| a.as_int()), Some(16));
        let perm = module.ctx.attr(op, "permutation_map").unwrap().as_map().unwrap();
        assert_eq!(perm.as_permutation(), Some(vec![0, 2, 1]));
        assert_eq!(pass.annotated().len(), 1);
    }

    #[test]
    fn no_match_is_an_error() {
        let mut module = Module::new();
        func::func(&mut module, "empty", vec![], vec![]);
        let cfg = AcceleratorConfig::preset(AcceleratorPreset::V3 { size: 8 });
        let mut pass = MatchAndAnnotatePass::new(cfg, vec![], None);
        let mut diags = DiagnosticEngine::new();
        let err = pass.run(&mut module, &mut diags).unwrap_err();
        assert!(err.message.contains("no operation matches"));
    }

    #[test]
    fn conv_accelerator_matches_conv_op() {
        let mut m = Module::new();
        let f = func::func(&mut m, "conv_call", vec![], vec![]);
        let mut b = func::entry_builder(&mut m.ctx, &f);
        let i = memref::alloc(&mut b, vec![1, 256, 7, 7], Type::i32());
        let w = memref::alloc(&mut b, vec![64, 256, 3, 3], Type::i32());
        let o = memref::alloc(&mut b, vec![1, 64, 5, 5], Type::i32());
        linalg::conv_2d_nchw_fchw(&mut b, i, w, o, 1);
        let cfg = AcceleratorConfig::preset(AcceleratorPreset::Conv2d { ic: 256, fhw: 3 });
        let mut pass = MatchAndAnnotatePass::new(cfg, vec![], None);
        let mut diags = DiagnosticEngine::new();
        pass.run(&mut m, &mut diags).unwrap();
        let op = m.ctx.find_ops(m.top(), "linalg.conv_2d_nchw_fchw")[0];
        assert!(m.ctx.attr(op, "opcode_flow").is_some());
        assert!(m.ctx.attr(op, "permutation_map").is_none(), "no permutation requested");
    }
}
