//! Loop planning and flow-directed opcode placement (steps 4 & 5a).
//!
//! A [`LoopPlan`] describes the tiled loop nest for one offloaded op:
//! ordered loop levels (optional cache-tiling loops wrapping the
//! accelerator-tile loops, in permuted order) and, per data argument, how
//! its tile subview is addressed from the loop induction variables.
//!
//! [`place_flow`] then maps the `opcode_flow` onto that nest: opcodes in
//! the *deepest* flow scope run in the innermost loop; opcodes in enclosing
//! scopes are **hoisted** to the shallowest loop their data allows (the
//! stationary optimization of §III-C), positioned before or after the
//! nested loop according to their position relative to the nested scope.

use std::collections::BTreeSet;

use axi4mlir_ir::attrs::{FlowElem, OpcodeAction, OpcodeFlow, OpcodeMap};
use axi4mlir_support::diag::Diagnostic;

/// How one dimension of a tile subview is offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OffsetExpr {
    /// Offset 0 (the dimension is consumed whole).
    Zero,
    /// `iv(level) * scale` — `scale` is 1 for matmul tiles (the induction
    /// variable already steps in elements) and the spatial stride for
    /// convolution windows.
    LoopIv {
        /// Index into [`LoopPlan::levels`].
        level: usize,
        /// Multiplier applied to the induction variable.
        scale: i64,
    },
}

/// One loop of the generated nest, outermost first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopLevel {
    /// The iteration-space dimension this loop walks.
    pub dim: String,
    /// Trip extent in elements (upper bound when `base` is `None`).
    pub extent: i64,
    /// Step in elements.
    pub step: i64,
    /// For accelerator loops nested inside a cache loop of the same dim:
    /// the cache loop's level index; the loop then runs
    /// `[iv(base), iv(base) + extent)`.
    pub base: Option<usize>,
    /// `true` for cache-tiling loops (no subview/opcode ever binds to them).
    pub is_cache_level: bool,
}

/// Per-argument tiling information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgPlan {
    /// Argument name from the configuration (`A`, `B`, `C`, `I`, ...).
    pub name: String,
    /// Offset expression per memref dimension.
    pub dim_offsets: Vec<OffsetExpr>,
    /// Static tile shape (the subview sizes).
    pub tile_sizes: Vec<i64>,
    /// `true` for the kernel output (recv'd tiles accumulate).
    pub is_output: bool,
}

impl ArgPlan {
    /// 1-based depth of the deepest loop this argument's subview reads;
    /// 0 when the tile is loop-invariant.
    pub fn ready_depth(&self) -> usize {
        self.dim_offsets
            .iter()
            .map(|o| match o {
                OffsetExpr::Zero => 0,
                OffsetExpr::LoopIv { level, .. } => level + 1,
            })
            .max()
            .unwrap_or(0)
    }
}

/// The full tiled-loop plan for one offloaded operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopPlan {
    /// Loops, outermost first.
    pub levels: Vec<LoopLevel>,
    /// Data arguments in operand order.
    pub args: Vec<ArgPlan>,
}

impl LoopPlan {
    /// Number of loops.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// 1-based depth of the accelerator loop walking `dim` (cache levels
    /// are skipped).
    pub fn accel_loop_depth(&self, dim: &str) -> Option<usize> {
        self.levels.iter().position(|l| !l.is_cache_level && l.dim == dim).map(|i| i + 1)
    }

    /// The loop depth an opcode requires: the deepest loop feeding any
    /// subview it sends/receives, or any `send_idx` dimension it streams.
    pub fn required_depth(
        &self,
        opcode_map: &OpcodeMap,
        opcode: &str,
    ) -> Result<usize, Diagnostic> {
        let actions = opcode_map.get(opcode).ok_or_else(|| {
            Diagnostic::error(format!("flow references undefined opcode `{opcode}`"))
        })?;
        let mut depth = 0;
        for action in actions {
            match action {
                OpcodeAction::Send { arg } | OpcodeAction::Recv { arg } => {
                    let plan = self.args.get(*arg as usize).ok_or_else(|| {
                        Diagnostic::error(format!(
                            "opcode `{opcode}` references argument {arg} outside the plan"
                        ))
                    })?;
                    depth = depth.max(plan.ready_depth());
                }
                OpcodeAction::SendIdx { dim } => {
                    let d = self.accel_loop_depth(dim).ok_or_else(|| {
                        Diagnostic::error(format!("send_idx({dim}) but no loop iterates `{dim}`"))
                    })?;
                    depth = depth.max(d);
                }
                OpcodeAction::SendLiteral { .. } | OpcodeAction::SendDim { .. } => {}
            }
        }
        Ok(depth)
    }
}

/// Where an opcode sits relative to the nested loop of its depth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Position {
    /// Before the nested loop (transfers feeding deeper iterations).
    Pre,
    /// After the nested loop (results collected once the loop finishes).
    Post,
}

/// One opcode assigned to a loop depth.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlacedOpcode {
    /// Opcode name (an `opcode_map` key).
    pub opcode: String,
    /// 1-based loop depth (1 = outermost).
    pub depth: usize,
    /// Before or after the nested loop.
    pub position: Position,
}

/// Maps an `opcode_flow` onto a loop plan.
///
/// # Errors
///
/// Rejects flows with sibling scopes (the nest is a simple loop chain),
/// opcodes whose data needs a deeper loop than their scope allows (an
/// illegal stationarity for the chosen permutation), and references to
/// unknown opcodes.
pub fn place_flow(
    plan: &LoopPlan,
    opcode_map: &OpcodeMap,
    flow: &OpcodeFlow,
) -> Result<Vec<PlacedOpcode>, Diagnostic> {
    let total_depth = plan.depth();
    // Depth of the flow tree (scope chain length).
    fn scope_depth(elems: &[FlowElem]) -> Result<usize, Diagnostic> {
        let scopes: Vec<&Vec<FlowElem>> = elems
            .iter()
            .filter_map(|e| match e {
                FlowElem::Scope(inner) => Some(inner),
                FlowElem::Opcode(_) => None,
            })
            .collect();
        match scopes.len() {
            0 => Ok(1),
            1 => Ok(1 + scope_depth(scopes[0])?),
            _ => Err(Diagnostic::error(
                "opcode_flow has sibling scopes; the tiled loop nest is a single chain",
            )),
        }
    }
    let flow_depth = scope_depth(&flow.root)?;
    if flow_depth > total_depth {
        return Err(Diagnostic::error(format!(
            "opcode_flow nests {flow_depth} scopes but the loop nest is only {total_depth} deep"
        )));
    }

    let mut placed = Vec::new();
    place_scope(plan, opcode_map, &flow.root, 0, flow_depth, total_depth, &mut placed)?;
    Ok(placed)
}

fn place_scope(
    plan: &LoopPlan,
    opcode_map: &OpcodeMap,
    elems: &[FlowElem],
    scope_index: usize,
    flow_depth: usize,
    total_depth: usize,
    out: &mut Vec<PlacedOpcode>,
) -> Result<(), Diagnostic> {
    let is_deepest = scope_index + 1 == flow_depth;
    // Opcodes in scope `i` may sit no deeper than this (the remaining
    // scopes each need at least one deeper loop).
    let max_allowed = total_depth - (flow_depth - 1 - scope_index);
    let mut seen_scope = false;
    for elem in elems {
        match elem {
            FlowElem::Scope(inner) => {
                place_scope(
                    plan,
                    opcode_map,
                    inner,
                    scope_index + 1,
                    flow_depth,
                    total_depth,
                    out,
                )?;
                seen_scope = true;
            }
            FlowElem::Opcode(name) => {
                let required = plan.required_depth(opcode_map, name)?;
                let depth = if is_deepest {
                    // Innermost scope: runs every iteration of every loop.
                    total_depth
                } else if required == 0 {
                    max_allowed
                } else {
                    if required > max_allowed {
                        return Err(Diagnostic::error(format!(
                            "opcode `{name}` needs loop depth {required} but its flow scope allows at most {max_allowed}; \
                             the permutation does not legalize this stationarity"
                        )));
                    }
                    required
                };
                out.push(PlacedOpcode {
                    opcode: name.clone(),
                    depth,
                    position: if seen_scope { Position::Post } else { Position::Pre },
                });
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Plan builders
// ---------------------------------------------------------------------

/// Builds the MatMul loop plan: optional square cache tiling (edge
/// `cache_tile`) around accelerator tiling `(tm, tn, tk)`, loops in
/// `permutation` order (indices into `(m, n, k)`, outermost first).
///
/// # Errors
///
/// Requires every tile to divide its dimension, and the cache tile (when
/// present and smaller than the dimension) to be a multiple of the
/// accelerator tile and a divisor of the dimension.
pub fn matmul_plan(
    dims: (i64, i64, i64),
    tiles: (i64, i64, i64),
    permutation: &[usize; 3],
    cache_tile: Option<i64>,
) -> Result<LoopPlan, Diagnostic> {
    let dim_names = ["m", "n", "k"];
    let sizes = [dims.0, dims.1, dims.2];
    let tile_sizes = [tiles.0, tiles.1, tiles.2];
    {
        let seen: BTreeSet<usize> = permutation.iter().copied().collect();
        if seen != BTreeSet::from([0, 1, 2]) {
            return Err(Diagnostic::error("permutation must be a permutation of (m, n, k)"));
        }
    }
    for i in 0..3 {
        if tile_sizes[i] <= 0 || sizes[i] % tile_sizes[i] != 0 {
            return Err(Diagnostic::error(format!(
                "tile {} for dim {} must divide the problem size {}",
                tile_sizes[i], dim_names[i], sizes[i]
            )));
        }
    }
    let mut levels: Vec<LoopLevel> = Vec::new();
    // Which dims get a cache loop. The innermost permuted dimension is
    // never cache-tiled: splitting the streaming dimension would multiply
    // the stationary operand's transfers (e.g. re-reading C once per
    // cache-k chunk under the Cs flow), defeating the selected dataflow.
    let mut cache_level_of = [None; 3];
    if let Some(ct) = cache_tile {
        for &d in &permutation[..2] {
            if ct < sizes[d] {
                if ct % tile_sizes[d] != 0 || sizes[d] % ct != 0 {
                    return Err(Diagnostic::error(format!(
                        "cache tile {ct} must be a multiple of tile {} and divide dim {} ({})",
                        tile_sizes[d], dim_names[d], sizes[d]
                    )));
                }
                cache_level_of[d] = Some(levels.len());
                levels.push(LoopLevel {
                    dim: dim_names[d].to_owned(),
                    extent: sizes[d],
                    step: ct,
                    base: None,
                    is_cache_level: true,
                });
            }
        }
    }
    let mut accel_level_of = [0usize; 3];
    for &d in permutation {
        accel_level_of[d] = levels.len();
        match cache_level_of[d] {
            Some(cache_level) => levels.push(LoopLevel {
                dim: dim_names[d].to_owned(),
                extent: cache_tile.expect("cache level implies cache tile"),
                step: tile_sizes[d],
                base: Some(cache_level),
                is_cache_level: false,
            }),
            None => levels.push(LoopLevel {
                dim: dim_names[d].to_owned(),
                extent: sizes[d],
                step: tile_sizes[d],
                base: None,
                is_cache_level: false,
            }),
        }
    }
    let (m, n, k) = (0, 1, 2);
    let iv = |d: usize| OffsetExpr::LoopIv { level: accel_level_of[d], scale: 1 };
    let args = vec![
        ArgPlan {
            name: "A".to_owned(),
            dim_offsets: vec![iv(m), iv(k)],
            tile_sizes: vec![tiles.0, tiles.2],
            is_output: false,
        },
        ArgPlan {
            name: "B".to_owned(),
            dim_offsets: vec![iv(k), iv(n)],
            tile_sizes: vec![tiles.2, tiles.1],
            is_output: false,
        },
        ArgPlan {
            name: "C".to_owned(),
            dim_offsets: vec![iv(m), iv(n)],
            tile_sizes: vec![tiles.0, tiles.1],
            is_output: true,
        },
    ];
    Ok(LoopPlan { levels, args })
}

/// Shape parameters for the convolution plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvPlanParams {
    /// Batch size.
    pub batch: i64,
    /// Output channels.
    pub out_channels: i64,
    /// Output height/width (square).
    pub out_hw: i64,
    /// Input channels (whole dimension goes to the accelerator).
    pub in_channels: i64,
    /// Filter height/width (square).
    pub filter_hw: i64,
    /// Spatial stride.
    pub stride: i64,
}

/// Builds the Conv2D loop plan of Fig. 15b: loops `(b, oc, oh, ow)`,
/// filter slice at `oc`, input window at `(oh, ow)` (scaled by the spatial
/// stride), output slice at `(b, oc)`.
pub fn conv_plan(p: ConvPlanParams) -> Result<LoopPlan, Diagnostic> {
    if p.batch <= 0 || p.out_channels <= 0 || p.out_hw <= 0 {
        return Err(Diagnostic::error("convolution plan requires positive extents"));
    }
    let levels = vec![
        LoopLevel {
            dim: "b".to_owned(),
            extent: p.batch,
            step: 1,
            base: None,
            is_cache_level: false,
        },
        LoopLevel {
            dim: "oc".to_owned(),
            extent: p.out_channels,
            step: 1,
            base: None,
            is_cache_level: false,
        },
        LoopLevel {
            dim: "oh".to_owned(),
            extent: p.out_hw,
            step: 1,
            base: None,
            is_cache_level: false,
        },
        LoopLevel {
            dim: "ow".to_owned(),
            extent: p.out_hw,
            step: 1,
            base: None,
            is_cache_level: false,
        },
    ];
    let args = vec![
        ArgPlan {
            name: "I".to_owned(),
            dim_offsets: vec![
                OffsetExpr::LoopIv { level: 0, scale: 1 },
                OffsetExpr::Zero,
                OffsetExpr::LoopIv { level: 2, scale: p.stride },
                OffsetExpr::LoopIv { level: 3, scale: p.stride },
            ],
            tile_sizes: vec![1, p.in_channels, p.filter_hw, p.filter_hw],
            is_output: false,
        },
        ArgPlan {
            name: "W".to_owned(),
            dim_offsets: vec![
                OffsetExpr::LoopIv { level: 1, scale: 1 },
                OffsetExpr::Zero,
                OffsetExpr::Zero,
                OffsetExpr::Zero,
            ],
            tile_sizes: vec![1, p.in_channels, p.filter_hw, p.filter_hw],
            is_output: false,
        },
        ArgPlan {
            name: "O".to_owned(),
            dim_offsets: vec![
                OffsetExpr::LoopIv { level: 0, scale: 1 },
                OffsetExpr::LoopIv { level: 1, scale: 1 },
                OffsetExpr::Zero,
                OffsetExpr::Zero,
            ],
            tile_sizes: vec![1, 1, p.out_hw, p.out_hw],
            is_output: true,
        },
    ];
    Ok(LoopPlan { levels, args })
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi4mlir_config::{AcceleratorConfig, AcceleratorPreset};

    fn v3_map() -> OpcodeMap {
        AcceleratorConfig::preset(AcceleratorPreset::V3 { size: 4 }).opcode_map
    }

    fn flow(text: &str) -> OpcodeFlow {
        OpcodeFlow::parse(text).unwrap()
    }

    #[test]
    fn matmul_plan_identity_permutation() {
        let plan = matmul_plan((64, 64, 64), (4, 4, 4), &[0, 1, 2], None).unwrap();
        assert_eq!(plan.depth(), 3);
        assert_eq!(plan.levels[0].dim, "m");
        assert_eq!(plan.levels[2].dim, "k");
        assert_eq!(plan.args[0].ready_depth(), 3, "A needs m (1) and k (3)");
        assert_eq!(plan.args[2].ready_depth(), 2, "C needs m (1) and n (2)");
    }

    #[test]
    fn matmul_plan_rejects_non_dividing_tiles() {
        let err = matmul_plan((30, 64, 64), (4, 4, 4), &[0, 1, 2], None).unwrap_err();
        assert!(err.message.contains("must divide"));
        let err = matmul_plan((64, 64, 64), (4, 4, 4), &[0, 0, 2], None).unwrap_err();
        assert!(err.message.contains("permutation"));
    }

    #[test]
    fn cache_tiling_adds_outer_levels() {
        let plan = matmul_plan((256, 256, 256), (8, 8, 8), &[0, 1, 2], Some(64)).unwrap();
        // m and n get cache loops; the innermost dim (k) never does.
        assert_eq!(plan.depth(), 5);
        assert!(plan.levels[0].is_cache_level);
        assert_eq!(plan.levels[0].step, 64);
        let accel_m = &plan.levels[2];
        assert_eq!(accel_m.dim, "m");
        assert_eq!(accel_m.base, Some(0));
        assert_eq!(accel_m.extent, 64);
        // A's subview depends on the accel loops only (m at 3, k at 5).
        assert_eq!(plan.args[0].ready_depth(), 5);
        assert_eq!(plan.accel_loop_depth("m"), Some(3));
    }

    #[test]
    fn cache_tile_must_be_compatible() {
        let err = matmul_plan((256, 256, 256), (8, 8, 8), &[0, 1, 2], Some(60)).unwrap_err();
        assert!(err.message.contains("cache tile"));
    }

    #[test]
    fn ns_flow_places_everything_innermost() {
        let plan = matmul_plan((64, 64, 64), (4, 4, 4), &[0, 1, 2], None).unwrap();
        let placed = place_flow(&plan, &v3_map(), &flow("(sA sB cC rC)")).unwrap();
        assert!(placed.iter().all(|p| p.depth == 3 && p.position == Position::Pre));
        assert_eq!(placed.len(), 4);
    }

    #[test]
    fn as_flow_hoists_sa_to_second_loop() {
        // Paper: with permutation (m, k, n), "logic related to sA would be
        // transmitted inside of the second loop".
        let plan = matmul_plan((60, 72, 80), (4, 4, 4), &[0, 2, 1], None).unwrap();
        let placed = place_flow(&plan, &v3_map(), &flow("(sA (sB cC rC))")).unwrap();
        let sa = placed.iter().find(|p| p.opcode == "sA").unwrap();
        assert_eq!(sa.depth, 2);
        assert_eq!(sa.position, Position::Pre);
        for inner in ["sB", "cC", "rC"] {
            let p = placed.iter().find(|p| p.opcode == inner).unwrap();
            assert_eq!(p.depth, 3, "{inner} stays innermost");
        }
    }

    #[test]
    fn cs_flow_reads_c_after_the_k_loop() {
        let plan = matmul_plan((64, 64, 64), (8, 8, 8), &[0, 1, 2], None).unwrap();
        let placed = place_flow(&plan, &v3_map(), &flow("((sA sB cC) rC)")).unwrap();
        let rc = placed.iter().find(|p| p.opcode == "rC").unwrap();
        assert_eq!(rc.depth, 2);
        assert_eq!(rc.position, Position::Post, "rC collects after the k loop finishes");
        let cc = placed.iter().find(|p| p.opcode == "cC").unwrap();
        assert_eq!(cc.depth, 3);
    }

    #[test]
    fn illegal_stationarity_is_rejected() {
        // As flow with identity permutation (m, n, k): sA needs the k loop
        // (depth 3) but sits in the outer scope (max depth 2).
        let plan = matmul_plan((64, 64, 64), (4, 4, 4), &[0, 1, 2], None).unwrap();
        let err = place_flow(&plan, &v3_map(), &flow("(sA (sB cC rC))")).unwrap_err();
        assert!(err.message.contains("does not legalize"), "{}", err.message);
    }

    #[test]
    fn sibling_scopes_are_rejected() {
        let plan = matmul_plan((64, 64, 64), (4, 4, 4), &[0, 1, 2], None).unwrap();
        let err = place_flow(&plan, &v3_map(), &flow("((sA) (sB) cC rC)")).unwrap_err();
        assert!(err.message.contains("sibling scopes"));
    }

    #[test]
    fn flow_deeper_than_nest_is_rejected() {
        let plan = matmul_plan((64, 64, 64), (4, 4, 4), &[0, 1, 2], None).unwrap();
        let err = place_flow(&plan, &v3_map(), &flow("(sA (sB (cC (rC))))")).unwrap_err();
        assert!(err.message.contains("scopes but the loop nest"));
    }

    #[test]
    fn conv_plan_matches_fig15b_structure() {
        let p = ConvPlanParams {
            batch: 1,
            out_channels: 64,
            out_hw: 5,
            in_channels: 256,
            filter_hw: 3,
            stride: 1,
        };
        let plan = conv_plan(p).unwrap();
        assert_eq!(plan.depth(), 4);
        let cfg = AcceleratorConfig::preset(AcceleratorPreset::Conv2d { ic: 256, fhw: 3 });
        let placed = place_flow(&plan, &cfg.opcode_map, cfg.selected()).unwrap();
        let sf = placed.iter().find(|p| p.opcode == "sF").unwrap();
        assert_eq!((sf.depth, sf.position), (2, Position::Pre), "filter loads once per oc");
        let sico = placed.iter().find(|p| p.opcode == "sIcO").unwrap();
        assert_eq!((sico.depth, sico.position), (4, Position::Pre), "window per output pixel");
        let ro = placed.iter().find(|p| p.opcode == "rO").unwrap();
        assert_eq!((ro.depth, ro.position), (2, Position::Post), "slice read after oh/ow loops");
    }

    #[test]
    fn conv_window_scales_by_stride() {
        let p = ConvPlanParams {
            batch: 1,
            out_channels: 8,
            out_hw: 7,
            in_channels: 64,
            filter_hw: 3,
            stride: 2,
        };
        let plan = conv_plan(p).unwrap();
        assert_eq!(plan.args[0].dim_offsets[2], OffsetExpr::LoopIv { level: 2, scale: 2 });
    }

    #[test]
    fn send_idx_requires_a_loop() {
        let plan = matmul_plan((16, 16, 16), (4, 4, 4), &[0, 1, 2], None).unwrap();
        let map = OpcodeMap::parse("opcode_map<sx = [send_idx(z)]>").unwrap();
        let err = plan.required_depth(&map, "sx").unwrap_err();
        assert!(err.message.contains("no loop iterates"));
        let map2 = OpcodeMap::parse("opcode_map<sx = [send_idx(k)]>").unwrap();
        assert_eq!(plan.required_depth(&map2, "sx").unwrap(), 3);
    }
}
