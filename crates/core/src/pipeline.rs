//! End-to-end pipeline: build IR → annotate → generate driver → lower →
//! execute on the simulated SoC → verify against the reference kernel.
//!
//! This is the programmatic equivalent of the paper's
//! `app.mlir → axi4mlir passes → cross-compile → run on the PYNQ board`
//! loop, collapsed into one call so experiments can sweep configurations.

use axi4mlir_support::diag::Diagnostic;
use axi4mlir_accelerators::conv::ConvAccel;
use axi4mlir_accelerators::matmul::{MatMulAccel, MatMulVersion};
use axi4mlir_config::{AcceleratorConfig, CpuSpec, FlowStrategy, KernelKind};
use axi4mlir_dialects::{func, linalg};
use axi4mlir_ir::attrs::Attribute;
use axi4mlir_ir::ops::Module;
use axi4mlir_ir::pass::{IrSnapshot, PassManager};
use axi4mlir_ir::types::{MemRefType, Type};
use axi4mlir_interp::{run_func, RtValue};
use axi4mlir_runtime::kernels;
use axi4mlir_runtime::memref::MemRefDesc;
use axi4mlir_runtime::soc::Soc;
use axi4mlir_sim::axi::{LoopbackAccelerator, StreamAccelerator};
use axi4mlir_sim::counters::PerfCounters;
use axi4mlir_sim::mem::ElemType;
use axi4mlir_workloads::matmul::MatMulProblem;
use axi4mlir_workloads::resnet::ConvLayer;

use crate::annotate::MatchAndAnnotatePass;
use crate::codegen::GenerateAccelDriverPass;
use crate::lower::LowerAccelToRuntimePass;
use crate::options::{CacheTiling, PipelineOptions};

/// What one compile-and-execute run produced.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Accelerator (or `"cpu"`) the run used.
    pub accel_name: String,
    /// Flow name the driver implemented.
    pub flow: String,
    /// Perf counters for the whole kernel execution.
    pub counters: PerfCounters,
    /// Task clock in milliseconds.
    pub task_clock_ms: f64,
    /// Whether the numeric result matched the reference kernel.
    pub verified: bool,
    /// Cache-tiling edge the compiler chose (if any).
    pub cache_tile: Option<i64>,
    /// IR snapshots (when requested).
    pub ir_after: Vec<IrSnapshot>,
    /// The computed output buffer.
    pub result: Vec<i32>,
}

/// Instantiates the functional accelerator model a configuration describes.
///
/// MatMul configurations are named `v<1-4>_<size>` (Table I); anything else
/// defaults to a v3 of the configured tile size. Conv configurations get
/// the §IV-D Conv2D model.
pub fn instantiate_accelerator(config: &AcceleratorConfig) -> Box<dyn StreamAccelerator> {
    match config.kernel {
        KernelKind::Conv2dNchwFchw => Box::new(ConvAccel::new()),
        KernelKind::MatMul => {
            let (version, size) = parse_matmul_name(config)
                .unwrap_or((MatMulVersion::V3, config.accel_dims.first().copied().unwrap_or(4) as u32));
            Box::new(MatMulAccel::new(version, size))
        }
    }
}

fn parse_matmul_name(config: &AcceleratorConfig) -> Option<(MatMulVersion, u32)> {
    let (v, s) = config.name.split_once('_')?;
    let version = match v {
        "v1" => MatMulVersion::V1,
        "v2" => MatMulVersion::V2,
        "v3" => MatMulVersion::V3,
        "v4" => MatMulVersion::V4,
        _ => return None,
    };
    Some((version, s.parse().ok()?))
}

/// Builds `func.func @matmul_call(%A, %B, %C)` containing one
/// matmul-traited `linalg.generic`.
pub fn build_matmul_module(problem: MatMulProblem) -> Module {
    let mut module = Module::new();
    let a_ty = Type::MemRef(MemRefType::contiguous(vec![problem.m, problem.k], Type::i32()));
    let b_ty = Type::MemRef(MemRefType::contiguous(vec![problem.k, problem.n], Type::i32()));
    let c_ty = Type::MemRef(MemRefType::contiguous(vec![problem.m, problem.n], Type::i32()));
    let f = func::func(&mut module, "matmul_call", vec![a_ty, b_ty, c_ty], vec![]);
    let a = func::arg(&module.ctx, f.op, 0);
    let b = func::arg(&module.ctx, f.op, 1);
    let c = func::arg(&module.ctx, f.op, 2);
    let mut builder = func::entry_builder(&mut module.ctx, &f);
    linalg::generic_matmul(&mut builder, a, b, c);
    module
}

/// Builds `func.func @conv_call(%I, %W, %O)` containing one
/// `linalg.conv_2d_nchw_fchw`.
pub fn build_conv_module(layer: ConvLayer) -> Module {
    let mut module = Module::new();
    let i_ty = Type::MemRef(MemRefType::contiguous(
        vec![1, layer.in_channels as i64, layer.in_hw as i64, layer.in_hw as i64],
        Type::i32(),
    ));
    let w_ty = Type::MemRef(MemRefType::contiguous(
        vec![layer.out_channels as i64, layer.in_channels as i64, layer.filter_hw as i64, layer.filter_hw as i64],
        Type::i32(),
    ));
    let o_ty = Type::MemRef(MemRefType::contiguous(
        vec![1, layer.out_channels as i64, layer.out_hw() as i64, layer.out_hw() as i64],
        Type::i32(),
    ));
    let f = func::func(&mut module, "conv_call", vec![i_ty, w_ty, o_ty], vec![]);
    let i = func::arg(&module.ctx, f.op, 0);
    let w = func::arg(&module.ctx, f.op, 1);
    let o = func::arg(&module.ctx, f.op, 2);
    let mut builder = func::entry_builder(&mut module.ctx, &f);
    linalg::conv_2d_nchw_fchw(&mut builder, i, w, o, layer.stride as i64);
    module
}

/// One-stop MatMul compile-and-run.
#[derive(Clone, Debug)]
pub struct CompileAndRun {
    config: AcceleratorConfig,
    problem: MatMulProblem,
    options: PipelineOptions,
    cpu: CpuSpec,
    seed: u64,
}

impl CompileAndRun {
    /// Creates a run for the given accelerator and problem.
    pub fn new(config: AcceleratorConfig, problem: MatMulProblem) -> Self {
        Self { config, problem, options: PipelineOptions::default(), cpu: CpuSpec::pynq_z2(), seed: 0xA41 }
    }

    /// Selects one of the paper's Ns/As/Bs/Cs flows.
    ///
    /// # Panics
    ///
    /// Panics if the accelerator does not offer the flow.
    #[must_use]
    pub fn flow(mut self, flow: FlowStrategy) -> Self {
        self.config = self.config.with_selected_flow(flow.short_name());
        self
    }

    /// Overrides pipeline options.
    #[must_use]
    pub fn options(mut self, options: PipelineOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the host CPU description.
    #[must_use]
    pub fn cpu(mut self, cpu: CpuSpec) -> Self {
        self.cpu = cpu;
        self
    }

    /// Overrides the data seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Compiles, executes, and verifies.
    ///
    /// # Errors
    ///
    /// Propagates compilation diagnostics, interpreter errors, DMA protocol
    /// violations, and accelerator protocol errors.
    pub fn execute(self) -> Result<RunReport, Diagnostic> {
        let flow_name = self.config.selected_flow.clone();
        let strategy = FlowStrategy::from_short_name(&flow_name);
        let permutation: Vec<String> = match strategy {
            Some(s) => s.matmul_permutation().iter().map(|x| (*x).to_owned()).collect(),
            None => Vec::new(),
        };
        let tiles = (
            self.config.accel_dims[0],
            self.config.accel_dims[1],
            self.config.accel_dims[2],
        );
        let cache_tile = match self.options.cache_tiling {
            CacheTiling::Off => None,
            CacheTiling::Fixed(t) => Some(t),
            CacheTiling::Auto => axi4mlir_heuristics::select_cache_tile(
                &self.cpu,
                (self.problem.m, self.problem.n, self.problem.k),
                tiles,
            ),
        };

        let mut module = build_matmul_module(self.problem);
        let mut pm = PassManager::new();
        pm.capture_ir(self.options.capture_ir);
        pm.add(Box::new(MatchAndAnnotatePass::new(self.config.clone(), permutation, cache_tile)));
        pm.add(Box::new(GenerateAccelDriverPass::new(self.options.coalesce_transfers)));
        if self.options.lower_to_runtime_calls {
            pm.add(Box::new(LowerAccelToRuntimePass));
        }
        pm.add(Box::new(axi4mlir_dialects::verify::DialectVerifierPass));
        let ir_after = pm.run(&mut module)?;

        let mut soc = Soc::new(instantiate_accelerator(&self.config));
        let (a_data, b_data) = self.problem.generate_inputs(self.seed);
        let a = MemRefDesc::alloc(&mut soc.mem, &[self.problem.m, self.problem.k], ElemType::I32);
        let b = MemRefDesc::alloc(&mut soc.mem, &[self.problem.k, self.problem.n], ElemType::I32);
        let c = MemRefDesc::alloc(&mut soc.mem, &[self.problem.m, self.problem.n], ElemType::I32);
        soc.mem.store_i32_slice(a.base, &a_data);
        soc.mem.store_i32_slice(b.base, &b_data);
        soc.reset_run_state();

        let copy_strategy = self.options.copy_strategy(&soc.cost);
        run_func(
            &mut soc,
            &module,
            "matmul_call",
            vec![RtValue::MemRef(a.clone()), RtValue::MemRef(b.clone()), RtValue::MemRef(c.clone())],
            copy_strategy,
        )
        .map_err(Diagnostic::from)?;
        if soc.accel.protocol_errors() > 0 {
            return Err(Diagnostic::error(format!(
                "accelerator {} observed {} protocol errors",
                soc.accel.name(),
                soc.accel.protocol_errors()
            )));
        }

        let result = soc.mem.load_i32_slice(c.base, (self.problem.m * self.problem.n) as usize);
        let verified = if self.options.verify_result {
            let expect = kernels::ref_matmul_i32(
                &a_data,
                &b_data,
                self.problem.m as usize,
                self.problem.n as usize,
                self.problem.k as usize,
            );
            result == expect
        } else {
            true
        };
        Ok(RunReport {
            accel_name: self.config.name.clone(),
            flow: flow_name,
            counters: soc.counters,
            task_clock_ms: soc.task_clock_ms(),
            verified,
            cache_tile,
            ir_after,
            result,
        })
    }
}

/// Runs the `mlir CPU` baseline for a MatMul: the tiled CPU kernel with no
/// accelerator involved.
pub fn run_cpu_matmul(problem: MatMulProblem, cache_tile: Option<i64>, seed: u64) -> RunReport {
    let mut module = build_matmul_module(problem);
    if let Some(t) = cache_tile {
        let top = module.top();
        let generic = module.ctx.find_ops(top, "linalg.generic")[0];
        module.ctx.set_attr(generic, "cpu_tile", Attribute::Int(t));
    }
    let mut soc = Soc::new(Box::new(LoopbackAccelerator::new()));
    let (a_data, b_data) = problem.generate_inputs(seed);
    let a = MemRefDesc::alloc(&mut soc.mem, &[problem.m, problem.k], ElemType::I32);
    let b = MemRefDesc::alloc(&mut soc.mem, &[problem.k, problem.n], ElemType::I32);
    let c = MemRefDesc::alloc(&mut soc.mem, &[problem.m, problem.n], ElemType::I32);
    soc.mem.store_i32_slice(a.base, &a_data);
    soc.mem.store_i32_slice(b.base, &b_data);
    soc.reset_run_state();
    run_func(
        &mut soc,
        &module,
        "matmul_call",
        vec![RtValue::MemRef(a), RtValue::MemRef(b), RtValue::MemRef(c.clone())],
        axi4mlir_runtime::copy::CopyStrategy::ElementWise,
    )
    .expect("CPU baseline interprets supported ops only");
    let result = soc.mem.load_i32_slice(c.base, (problem.m * problem.n) as usize);
    let expect =
        kernels::ref_matmul_i32(&a_data, &b_data, problem.m as usize, problem.n as usize, problem.k as usize);
    RunReport {
        accel_name: "cpu".to_owned(),
        flow: "cpu".to_owned(),
        counters: soc.counters,
        task_clock_ms: soc.task_clock_ms(),
        verified: result == expect,
        cache_tile,
        ir_after: Vec::new(),
        result,
    }
}

/// One-stop Conv2D compile-and-run against the §IV-D accelerator.
#[derive(Clone, Debug)]
pub struct ConvCompileAndRun {
    layer: ConvLayer,
    options: PipelineOptions,
    seed: u64,
}

impl ConvCompileAndRun {
    /// Creates a run for one ResNet-style layer.
    pub fn new(layer: ConvLayer) -> Self {
        Self { layer, options: PipelineOptions::default(), seed: 0xC02 }
    }

    /// Overrides pipeline options.
    #[must_use]
    pub fn options(mut self, options: PipelineOptions) -> Self {
        self.options = options;
        self
    }

    /// Compiles, executes, and verifies.
    ///
    /// # Errors
    ///
    /// See [`CompileAndRun::execute`].
    pub fn execute(self) -> Result<RunReport, Diagnostic> {
        let config = AcceleratorConfig::preset(axi4mlir_config::AcceleratorPreset::Conv2d {
            ic: self.layer.in_channels as i64,
            fhw: self.layer.filter_hw as i64,
        });
        let mut module = build_conv_module(self.layer);
        let mut pm = PassManager::new();
        pm.capture_ir(self.options.capture_ir);
        pm.add(Box::new(MatchAndAnnotatePass::new(config.clone(), Vec::new(), None)));
        pm.add(Box::new(GenerateAccelDriverPass::default()));
        if self.options.lower_to_runtime_calls {
            pm.add(Box::new(LowerAccelToRuntimePass));
        }
        pm.add(Box::new(axi4mlir_dialects::verify::DialectVerifierPass));
        let ir_after = pm.run(&mut module)?;

        let mut soc = Soc::new(instantiate_accelerator(&config));
        let (i_data, w_data) = self.layer.generate_inputs(self.seed);
        let shape = kernels::ConvShape {
            batch: 1,
            in_channels: self.layer.in_channels,
            in_hw: self.layer.in_hw,
            out_channels: self.layer.out_channels,
            filter_hw: self.layer.filter_hw,
            stride: self.layer.stride,
        };
        let i = MemRefDesc::alloc(
            &mut soc.mem,
            &[1, shape.in_channels as i64, shape.in_hw as i64, shape.in_hw as i64],
            ElemType::I32,
        );
        let w = MemRefDesc::alloc(
            &mut soc.mem,
            &[shape.out_channels as i64, shape.in_channels as i64, shape.filter_hw as i64, shape.filter_hw as i64],
            ElemType::I32,
        );
        let o = MemRefDesc::alloc(
            &mut soc.mem,
            &[1, shape.out_channels as i64, shape.out_hw() as i64, shape.out_hw() as i64],
            ElemType::I32,
        );
        soc.mem.store_i32_slice(i.base, &i_data);
        soc.mem.store_i32_slice(w.base, &w_data);
        soc.reset_run_state();

        let copy_strategy = self.options.copy_strategy(&soc.cost);
        run_func(
            &mut soc,
            &module,
            "conv_call",
            vec![RtValue::MemRef(i), RtValue::MemRef(w), RtValue::MemRef(o.clone())],
            copy_strategy,
        )
        .map_err(Diagnostic::from)?;
        if soc.accel.protocol_errors() > 0 {
            return Err(Diagnostic::error("conv accelerator observed protocol errors"));
        }
        let result = soc.mem.load_i32_slice(o.base, shape.output_len());
        let verified = if self.options.verify_result {
            result == kernels::ref_conv2d_i32(&i_data, &w_data, shape)
        } else {
            true
        };
        Ok(RunReport {
            accel_name: config.name,
            flow: "FOs".to_owned(),
            counters: soc.counters,
            task_clock_ms: soc.task_clock_ms(),
            verified,
            cache_tile: None,
            ir_after,
            result,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi4mlir_config::AcceleratorPreset;

    #[test]
    fn v3_ns_flow_end_to_end() {
        let config = AcceleratorConfig::preset(AcceleratorPreset::V3 { size: 4 });
        let report = CompileAndRun::new(config, MatMulProblem::square(8))
            .flow(FlowStrategy::NothingStationary)
            .execute()
            .unwrap();
        assert!(report.verified, "numerics must match the oracle");
        assert!(report.counters.dma_transactions > 0);
        assert!(report.counters.accel_macs >= 8 * 8 * 8);
        assert!(report.task_clock_ms > 0.0);
    }

    #[test]
    fn every_v3_flow_verifies() {
        for flow in FlowStrategy::all() {
            let config = AcceleratorConfig::preset(AcceleratorPreset::V3 { size: 4 });
            let report = CompileAndRun::new(config, MatMulProblem::square(8))
                .flow(flow)
                .execute()
                .unwrap();
            assert!(report.verified, "{flow} must verify");
        }
    }

    #[test]
    fn accel_and_lowered_paths_agree() {
        let mk = |lower: bool| {
            let config = AcceleratorConfig::preset(AcceleratorPreset::V3 { size: 4 });
            let mut options = PipelineOptions::default();
            options.lower_to_runtime_calls = lower;
            CompileAndRun::new(config, MatMulProblem::square(8))
                .flow(FlowStrategy::InputAStationary)
                .options(options)
                .execute()
                .unwrap()
        };
        let lowered = mk(true);
        let direct = mk(false);
        assert_eq!(lowered.result, direct.result);
        assert_eq!(lowered.counters.dma_bytes_to_accel, direct.counters.dma_bytes_to_accel);
        assert_eq!(lowered.counters.dma_transactions, direct.counters.dma_transactions);
        assert_eq!(lowered.counters.cache_references, direct.counters.cache_references);
    }

    #[test]
    fn cpu_baseline_verifies_and_uses_no_dma() {
        let report = run_cpu_matmul(MatMulProblem::square(16), Some(8), 1);
        assert!(report.verified);
        assert_eq!(report.counters.dma_transactions, 0);
        assert_eq!(report.counters.accel_macs, 0);
    }

    #[test]
    fn conv_pipeline_end_to_end() {
        let layer = ConvLayer { in_hw: 7, in_channels: 8, filter_hw: 3, out_channels: 4, stride: 1 };
        let report = ConvCompileAndRun::new(layer).execute().unwrap();
        assert!(report.verified);
        assert!(report.counters.dma_bytes_from_accel > 0);
    }

    #[test]
    fn instantiates_matching_accelerators() {
        let v1 = AcceleratorConfig::preset(AcceleratorPreset::V1 { size: 8 });
        assert_eq!(instantiate_accelerator(&v1).name(), "v1_8");
        let v4 = AcceleratorConfig::preset(AcceleratorPreset::V4 { size: 16 });
        assert_eq!(instantiate_accelerator(&v4).name(), "v4_16");
        let conv = AcceleratorConfig::preset(AcceleratorPreset::Conv2d { ic: 4, fhw: 1 });
        assert_eq!(instantiate_accelerator(&conv).name(), "conv2d");
    }
}
