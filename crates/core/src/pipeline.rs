//! IR module builders and the legacy one-shot entry points.
//!
//! The compile-and-run loop itself lives in the [`crate::driver`] layer
//! ([`Workload`](crate::driver::Workload) + [`Session`]); this module keeps
//! the `func`/`linalg` module builders and the original one-call APIs
//! ([`CompileAndRun`], [`ConvCompileAndRun`], [`run_cpu_matmul`]), which
//! are now thin wrappers constructing a [`CompilePlan`] and a one-shot
//! [`Session`]. Sweeps that want to amortize SoC setup across runs should
//! hold a `Session` directly.

use axi4mlir_accelerators::conv::ConvAccel;
use axi4mlir_accelerators::matmul::{MatMulAccel, MatMulVersion};
use axi4mlir_config::{AcceleratorConfig, CpuSpec, FlowStrategy, KernelKind};
use axi4mlir_dialects::{func, linalg};
use axi4mlir_ir::ops::Module;
use axi4mlir_ir::types::{MemRefType, Type};
use axi4mlir_sim::axi::StreamAccelerator;
use axi4mlir_support::diag::Diagnostic;
use axi4mlir_workloads::batched::BatchedMatMulProblem;
use axi4mlir_workloads::matmul::MatMulProblem;
use axi4mlir_workloads::resnet::ConvLayer;

use crate::driver::{CompilePlan, ConvWorkload, MatMulWorkload, Session};
use crate::options::PipelineOptions;

pub use crate::driver::RunReport;

/// Instantiates the functional accelerator model a configuration describes.
///
/// MatMul configurations are named `v<1-4>_<size>` (Table I); anything else
/// defaults to a v3 of the configured tile size. Conv configurations get
/// the §IV-D Conv2D model.
pub fn instantiate_accelerator(config: &AcceleratorConfig) -> Box<dyn StreamAccelerator> {
    match config.kernel {
        KernelKind::Conv2dNchwFchw => Box::new(ConvAccel::new()),
        KernelKind::MatMul => {
            let (version, size) = parse_matmul_name(config).unwrap_or((
                MatMulVersion::V3,
                config.accel_dims.first().copied().unwrap_or(4) as u32,
            ));
            Box::new(MatMulAccel::new(version, size))
        }
    }
}

pub(crate) fn parse_matmul_name(config: &AcceleratorConfig) -> Option<(MatMulVersion, u32)> {
    let (v, s) = config.name.split_once('_')?;
    let version = match v {
        "v1" => MatMulVersion::V1,
        "v2" => MatMulVersion::V2,
        "v3" => MatMulVersion::V3,
        "v4" => MatMulVersion::V4,
        _ => return None,
    };
    Some((version, s.parse().ok()?))
}

/// Builds `func.func @matmul_call(%A, %B, %C)` containing one
/// matmul-traited `linalg.generic`.
pub fn build_matmul_module(problem: MatMulProblem) -> Module {
    let mut module = Module::new();
    let a_ty = Type::MemRef(MemRefType::contiguous(vec![problem.m, problem.k], Type::i32()));
    let b_ty = Type::MemRef(MemRefType::contiguous(vec![problem.k, problem.n], Type::i32()));
    let c_ty = Type::MemRef(MemRefType::contiguous(vec![problem.m, problem.n], Type::i32()));
    let f = func::func(&mut module, "matmul_call", vec![a_ty, b_ty, c_ty], vec![]);
    let a = func::arg(&module.ctx, f.op, 0);
    let b = func::arg(&module.ctx, f.op, 1);
    let c = func::arg(&module.ctx, f.op, 2);
    let mut builder = func::entry_builder(&mut module.ctx, &f);
    linalg::generic_matmul(&mut builder, a, b, c);
    module
}

/// Builds `func.func @batched_matmul_call(%A0, %B0, %C0, %A1, ...)` with
/// one matmul-traited `linalg.generic` per batch element. All generics
/// match the same accelerator trait, so the standard passes annotate and
/// rewrite every element of the batch.
pub fn build_batched_matmul_module(batch: BatchedMatMulProblem) -> Module {
    let p = batch.problem;
    let mut module = Module::new();
    let a_ty = Type::MemRef(MemRefType::contiguous(vec![p.m, p.k], Type::i32()));
    let b_ty = Type::MemRef(MemRefType::contiguous(vec![p.k, p.n], Type::i32()));
    let c_ty = Type::MemRef(MemRefType::contiguous(vec![p.m, p.n], Type::i32()));
    let mut arg_types = Vec::with_capacity(3 * batch.batch);
    for _ in 0..batch.batch {
        arg_types.push(a_ty.clone());
        arg_types.push(b_ty.clone());
        arg_types.push(c_ty.clone());
    }
    let f = func::func(&mut module, "batched_matmul_call", arg_types, vec![]);
    let args: Vec<_> = (0..3 * batch.batch).map(|i| func::arg(&module.ctx, f.op, i)).collect();
    let mut builder = func::entry_builder(&mut module.ctx, &f);
    for element in 0..batch.batch {
        linalg::generic_matmul(
            &mut builder,
            args[3 * element],
            args[3 * element + 1],
            args[3 * element + 2],
        );
    }
    module
}

/// Builds `func.func @conv_call(%I, %W, %O)` containing one
/// `linalg.conv_2d_nchw_fchw`.
pub fn build_conv_module(layer: ConvLayer) -> Module {
    let mut module = Module::new();
    let i_ty = Type::MemRef(MemRefType::contiguous(
        vec![1, layer.in_channels as i64, layer.in_hw as i64, layer.in_hw as i64],
        Type::i32(),
    ));
    let w_ty = Type::MemRef(MemRefType::contiguous(
        vec![
            layer.out_channels as i64,
            layer.in_channels as i64,
            layer.filter_hw as i64,
            layer.filter_hw as i64,
        ],
        Type::i32(),
    ));
    let o_ty = Type::MemRef(MemRefType::contiguous(
        vec![1, layer.out_channels as i64, layer.out_hw() as i64, layer.out_hw() as i64],
        Type::i32(),
    ));
    let f = func::func(&mut module, "conv_call", vec![i_ty, w_ty, o_ty], vec![]);
    let i = func::arg(&module.ctx, f.op, 0);
    let w = func::arg(&module.ctx, f.op, 1);
    let o = func::arg(&module.ctx, f.op, 2);
    let mut builder = func::entry_builder(&mut module.ctx, &f);
    linalg::conv_2d_nchw_fchw(&mut builder, i, w, o, layer.stride as i64);
    module
}

/// One-stop MatMul compile-and-run (wrapper over a one-shot
/// [`Session`]).
#[derive(Clone, Debug)]
pub struct CompileAndRun {
    config: AcceleratorConfig,
    problem: MatMulProblem,
    options: PipelineOptions,
    cpu: CpuSpec,
    seed: u64,
}

impl CompileAndRun {
    /// Creates a run for the given accelerator and problem.
    pub fn new(config: AcceleratorConfig, problem: MatMulProblem) -> Self {
        Self {
            config,
            problem,
            options: PipelineOptions::default(),
            cpu: CpuSpec::pynq_z2(),
            seed: 0xA41,
        }
    }

    /// Selects one of the paper's Ns/As/Bs/Cs flows.
    ///
    /// # Panics
    ///
    /// Panics if the accelerator does not offer the flow.
    #[must_use]
    pub fn flow(mut self, flow: FlowStrategy) -> Self {
        self.config = self.config.with_selected_flow(flow.short_name());
        self
    }

    /// Overrides pipeline options.
    #[must_use]
    pub fn options(mut self, options: PipelineOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the host CPU description.
    #[must_use]
    pub fn cpu(mut self, cpu: CpuSpec) -> Self {
        self.cpu = cpu;
        self
    }

    /// Overrides the data seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Compiles, executes, and verifies.
    ///
    /// # Errors
    ///
    /// Propagates compilation diagnostics, interpreter errors, DMA protocol
    /// violations, and accelerator protocol errors.
    pub fn execute(self) -> Result<RunReport, Diagnostic> {
        let plan = CompilePlan::for_accelerator(self.config)
            .options(self.options)
            .cpu_spec(self.cpu)
            .seed(self.seed);
        Session::for_plan(&plan).run(&MatMulWorkload::new(self.problem), &plan)
    }
}

/// Runs the `mlir CPU` baseline for a MatMul: the tiled CPU kernel with no
/// accelerator involved (wrapper over a one-shot CPU [`Session`]).
pub fn run_cpu_matmul(problem: MatMulProblem, cache_tile: Option<i64>, seed: u64) -> RunReport {
    let plan = CompilePlan::cpu().seed(seed).cpu_tile(cache_tile);
    Session::cpu()
        .run(&MatMulWorkload::new(problem).with_cpu_tile(cache_tile), &plan)
        .expect("CPU baseline interprets supported ops only")
}

/// One-stop Conv2D compile-and-run against the §IV-D accelerator
/// (wrapper over a one-shot [`Session`]).
#[derive(Clone, Debug)]
pub struct ConvCompileAndRun {
    layer: ConvLayer,
    options: PipelineOptions,
    seed: u64,
}

impl ConvCompileAndRun {
    /// Creates a run for one ResNet-style layer.
    pub fn new(layer: ConvLayer) -> Self {
        Self { layer, options: PipelineOptions::default(), seed: 0xC02 }
    }

    /// Overrides pipeline options.
    #[must_use]
    pub fn options(mut self, options: PipelineOptions) -> Self {
        self.options = options;
        self
    }

    /// Compiles, executes, and verifies.
    ///
    /// # Errors
    ///
    /// See [`CompileAndRun::execute`].
    pub fn execute(self) -> Result<RunReport, Diagnostic> {
        let plan = CompilePlan::for_conv_layer(self.layer).options(self.options).seed(self.seed);
        Session::for_plan(&plan).run(&ConvWorkload::new(self.layer), &plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::CacheTiling;
    use axi4mlir_config::AcceleratorPreset;

    #[test]
    fn v3_ns_flow_end_to_end() {
        let config = AcceleratorConfig::preset(AcceleratorPreset::V3 { size: 4 });
        let report = CompileAndRun::new(config, MatMulProblem::square(8))
            .flow(FlowStrategy::NothingStationary)
            .execute()
            .unwrap();
        assert!(report.verified, "numerics must match the oracle");
        assert!(report.counters.dma_transactions > 0);
        assert!(report.counters.accel_macs >= 8 * 8 * 8);
        assert!(report.task_clock_ms > 0.0);
    }

    #[test]
    fn every_v3_flow_verifies() {
        for flow in FlowStrategy::all() {
            let config = AcceleratorConfig::preset(AcceleratorPreset::V3 { size: 4 });
            let report =
                CompileAndRun::new(config, MatMulProblem::square(8)).flow(flow).execute().unwrap();
            assert!(report.verified, "{flow} must verify");
        }
    }

    #[test]
    fn accel_and_lowered_paths_agree() {
        let mk = |lower: bool| {
            let config = AcceleratorConfig::preset(AcceleratorPreset::V3 { size: 4 });
            let options =
                PipelineOptions { lower_to_runtime_calls: lower, ..PipelineOptions::default() };
            CompileAndRun::new(config, MatMulProblem::square(8))
                .flow(FlowStrategy::InputAStationary)
                .options(options)
                .execute()
                .unwrap()
        };
        let lowered = mk(true);
        let direct = mk(false);
        assert_eq!(lowered.result, direct.result);
        assert_eq!(lowered.counters.dma_bytes_to_accel, direct.counters.dma_bytes_to_accel);
        assert_eq!(lowered.counters.dma_transactions, direct.counters.dma_transactions);
        assert_eq!(lowered.counters.cache_references, direct.counters.cache_references);
    }

    #[test]
    fn cpu_baseline_verifies_and_uses_no_dma() {
        let report = run_cpu_matmul(MatMulProblem::square(16), Some(8), 1);
        assert!(report.verified);
        assert_eq!(report.counters.dma_transactions, 0);
        assert_eq!(report.counters.accel_macs, 0);
        assert_eq!(report.cache_tile, Some(8), "the requested CPU tile is reported");
        assert_eq!(report.accel_name, "cpu");
        assert_eq!(report.flow, "cpu");
    }

    #[test]
    fn conv_pipeline_end_to_end() {
        let layer =
            ConvLayer { in_hw: 7, in_channels: 8, filter_hw: 3, out_channels: 4, stride: 1 };
        let report = ConvCompileAndRun::new(layer).execute().unwrap();
        assert!(report.verified);
        assert!(report.counters.dma_bytes_from_accel > 0);
    }

    #[test]
    fn instantiates_matching_accelerators() {
        let v1 = AcceleratorConfig::preset(AcceleratorPreset::V1 { size: 8 });
        assert_eq!(instantiate_accelerator(&v1).name(), "v1_8");
        let v4 = AcceleratorConfig::preset(AcceleratorPreset::V4 { size: 16 });
        assert_eq!(instantiate_accelerator(&v4).name(), "v4_16");
        let conv = AcceleratorConfig::preset(AcceleratorPreset::Conv2d { ic: 4, fhw: 1 });
        assert_eq!(instantiate_accelerator(&conv).name(), "conv2d");
    }

    #[test]
    fn malformed_names_fall_back_to_v3_of_the_configured_size() {
        // `v5_4`: unknown version prefix. `v3_x`: unparseable size.
        // `nounderscore`: no `_` separator at all. Every one falls back to
        // a v3 model sized by `accel_dims[0]`.
        for bad_name in ["v5_4", "v3_x", "nounderscore"] {
            let mut config = AcceleratorConfig::preset(AcceleratorPreset::V3 { size: 8 });
            config.name = bad_name.to_owned();
            assert_eq!(
                instantiate_accelerator(&config).name(),
                "v3_8",
                "`{bad_name}` must fall back to the v3 default"
            );
        }
        // The fallback size itself defaults to 4 when accel_dims is empty.
        let mut config = AcceleratorConfig::preset(AcceleratorPreset::V3 { size: 8 });
        config.name = "weird".to_owned();
        config.accel_dims = Vec::new();
        assert_eq!(instantiate_accelerator(&config).name(), "v3_4");
    }

    #[test]
    fn well_formed_names_choose_every_version() {
        for (name, expect) in
            [("v1_4", "v1_4"), ("v2_8", "v2_8"), ("v3_16", "v3_16"), ("v4_32", "v4_32")]
        {
            let mut config = AcceleratorConfig::preset(AcceleratorPreset::V3 { size: 4 });
            config.name = name.to_owned();
            assert_eq!(instantiate_accelerator(&config).name(), expect);
        }
    }

    #[test]
    fn flow_short_names_roundtrip() {
        for flow in FlowStrategy::all() {
            assert_eq!(
                FlowStrategy::from_short_name(flow.short_name()),
                Some(flow),
                "{flow} must round-trip through its short name"
            );
        }
        for unknown in ["", "ns", "NS", "Xs", "v3"] {
            assert_eq!(FlowStrategy::from_short_name(unknown), None, "`{unknown}`");
        }
    }

    #[test]
    fn fixed_cache_tiling_is_reported() {
        let mut options = PipelineOptions::optimized();
        options.cache_tiling = CacheTiling::Fixed(32);
        let config = AcceleratorConfig::preset(AcceleratorPreset::V3 { size: 8 });
        let report = CompileAndRun::new(config, MatMulProblem::square(64))
            .flow(FlowStrategy::NothingStationary)
            .options(options)
            .execute()
            .unwrap();
        assert!(report.verified);
        assert_eq!(report.cache_tile, Some(32));
    }
}
