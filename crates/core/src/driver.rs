//! The generic compile-and-run driver layer.
//!
//! Every experiment in this workspace runs the same loop: build an IR
//! module, push it through the AXI4MLIR pass pipeline, allocate and seed
//! SoC buffers, execute on the simulated system, and verify against a
//! reference kernel. This module factors that loop into three pieces so a
//! new kernel is one `Workload` implementation instead of a new monolith:
//!
//! - [`Workload`]: what varies per kernel — module construction, buffer
//!   binding, the entry function, and the reference result. Implemented
//!   here for MatMul, Conv2D, and batched MatMul.
//! - [`CompilePlan`] + [`PipelineBuilder`]: what varies per compilation —
//!   the accelerator configuration (or none, for CPU-only execution), the
//!   selected flow, and [`PipelineOptions`].
//! - [`Session`]: the executor. It owns the simulated [`Soc`] and
//!   **reuses it across runs**: memory, cache, DMA, and device state are
//!   recycled (bit-identically to a fresh build) instead of reallocated,
//!   which amortizes per-run setup in benchmark sweeps, and the device is
//!   only re-instantiated when a plan targets a different accelerator.
//!
//! The legacy entry points ([`CompileAndRun`](crate::pipeline::CompileAndRun),
//! [`ConvCompileAndRun`](crate::pipeline::ConvCompileAndRun),
//! [`run_cpu_matmul`](crate::pipeline::run_cpu_matmul)) are thin wrappers
//! over a one-shot `Session`.

use axi4mlir_config::{AcceleratorConfig, CpuSpec, FlowStrategy, KernelKind};
use axi4mlir_interp::{run_func_with_scratch, InterpScratch, RtValue};
use axi4mlir_ir::attrs::Attribute;
use axi4mlir_ir::ops::Module;
use axi4mlir_ir::pass::{IrSnapshot, PassManager, PassTiming};
use axi4mlir_runtime::copy::CopyStrategy;
use axi4mlir_runtime::kernels;
use axi4mlir_runtime::memref::MemRefDesc;
use axi4mlir_runtime::soc::Soc;
use axi4mlir_sim::axi::LoopbackAccelerator;
use axi4mlir_sim::counters::PerfCounters;
use axi4mlir_sim::mem::ElemType;
use axi4mlir_support::diag::Diagnostic;
use axi4mlir_workloads::batched::BatchedMatMulProblem;
use axi4mlir_workloads::matmul::MatMulProblem;
use axi4mlir_workloads::resnet::ConvLayer;

use crate::annotate::MatchAndAnnotatePass;
use crate::codegen::GenerateAccelDriverPass;
use crate::lower::LowerAccelToRuntimePass;
use crate::options::{CacheTiling, PipelineOptions};
use crate::pipeline::{build_conv_module, build_matmul_module, instantiate_accelerator};

/// What one compile-and-execute run produced.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Accelerator (or `"cpu"`) the run used.
    pub accel_name: String,
    /// Flow name the driver implemented.
    pub flow: String,
    /// Perf counters for the whole kernel execution.
    pub counters: PerfCounters,
    /// Task clock in milliseconds.
    pub task_clock_ms: f64,
    /// Whether the numeric result matched the reference kernel.
    pub verified: bool,
    /// Cache-tiling edge the compiler chose (if any).
    pub cache_tile: Option<i64>,
    /// IR snapshots (when requested).
    pub ir_after: Vec<IrSnapshot>,
    /// Wall-clock time each compiler pass took.
    pub pass_timings: Vec<PassTiming>,
    /// The computed output buffer(s), concatenated.
    pub result: Vec<i32>,
}

/// SoC buffers bound for one run: interpreter arguments plus the output
/// descriptors to read back (in verification order).
pub struct BoundBuffers {
    /// Arguments for the entry function, in signature order.
    pub args: Vec<RtValue>,
    /// Output buffers, read back contiguously and concatenated.
    pub outputs: Vec<MemRefDesc>,
    /// The reference result the concatenated outputs must equal. Filled
    /// when the session asked for it (`want_reference`), computed from the
    /// same generated inputs that seeded the buffers — data is generated
    /// once per run.
    pub expected: Option<Vec<i32>>,
}

/// One kernel the driver layer can compile and run.
///
/// Implementations describe everything kernel-specific; [`Session`]
/// supplies everything execution-specific. The contract between the two:
/// [`Workload::bind`] is called on a freshly recycled SoC, and when
/// `want_reference` is `true` the concatenated contents of
/// [`BoundBuffers::outputs`] after execution must equal
/// [`BoundBuffers::expected`].
pub trait Workload {
    /// Human-readable description for diagnostics.
    fn name(&self) -> String;

    /// Name of the entry `func.func` in the built module.
    fn entry_func(&self) -> &str;

    /// Builds the IR module containing the kernel(s).
    fn build_module(&self) -> Module;

    /// Allocates and seeds SoC buffers for one run; computes the
    /// reference result from the same data when `want_reference` is set.
    fn bind(&self, soc: &mut Soc, seed: u64, want_reference: bool) -> BoundBuffers;

    /// GEMM dimensions `(m, n, k)` if this workload is MatMul-shaped —
    /// consumed by the cache-tiling heuristic.
    fn matmul_dims(&self) -> Option<(i64, i64, i64)> {
        None
    }

    /// Stable identity of the module [`Workload::build_module`] would
    /// return, used by [`Session`] to reuse the compiled module across
    /// back-to-back runs of the same workload and plan. The default
    /// (`None`) opts out: every run recompiles. Implementations whose
    /// built module is a pure function of printable state should return
    /// that state here — and must include *all* of it (the in-tree
    /// workloads fold in fields their display name omits, like the CPU
    /// tile request).
    fn module_fingerprint(&self) -> Option<String> {
        None
    }
}

// ---------------------------------------------------------------------
// Workload implementations
// ---------------------------------------------------------------------

/// The single-GEMM workload of Figs. 10-14.
#[derive(Clone, Copy, Debug)]
pub struct MatMulWorkload {
    problem: MatMulProblem,
    cpu_tile: Option<i64>,
}

impl MatMulWorkload {
    /// A workload for one GEMM.
    pub fn new(problem: MatMulProblem) -> Self {
        Self { problem, cpu_tile: None }
    }

    /// Requests CPU-kernel tiling (only meaningful for pipeline-less CPU
    /// execution, where no compiler pass decides the tiling).
    #[must_use]
    pub fn with_cpu_tile(mut self, cpu_tile: Option<i64>) -> Self {
        self.cpu_tile = cpu_tile;
        self
    }
}

impl Workload for MatMulWorkload {
    fn name(&self) -> String {
        format!("matmul {}", self.problem)
    }

    fn entry_func(&self) -> &str {
        "matmul_call"
    }

    fn build_module(&self) -> Module {
        let mut module = build_matmul_module(self.problem);
        if let Some(tile) = self.cpu_tile {
            let top = module.top();
            for generic in module.ctx.find_ops(top, "linalg.generic") {
                module.ctx.set_attr(generic, "cpu_tile", Attribute::Int(tile));
            }
        }
        module
    }

    fn bind(&self, soc: &mut Soc, seed: u64, want_reference: bool) -> BoundBuffers {
        let (a_data, b_data) = self.problem.generate_inputs(seed);
        let a = MemRefDesc::alloc(&mut soc.mem, &[self.problem.m, self.problem.k], ElemType::I32);
        let b = MemRefDesc::alloc(&mut soc.mem, &[self.problem.k, self.problem.n], ElemType::I32);
        let c = MemRefDesc::alloc(&mut soc.mem, &[self.problem.m, self.problem.n], ElemType::I32);
        soc.mem.store_i32_slice(a.base, &a_data);
        soc.mem.store_i32_slice(b.base, &b_data);
        let expected = want_reference.then(|| {
            kernels::ref_matmul_i32(
                &a_data,
                &b_data,
                self.problem.m as usize,
                self.problem.n as usize,
                self.problem.k as usize,
            )
        });
        BoundBuffers {
            args: vec![RtValue::MemRef(a), RtValue::MemRef(b), RtValue::MemRef(c.clone())],
            outputs: vec![c],
            expected,
        }
    }

    fn matmul_dims(&self) -> Option<(i64, i64, i64)> {
        Some((self.problem.m, self.problem.n, self.problem.k))
    }

    fn module_fingerprint(&self) -> Option<String> {
        // `name()` omits the CPU tile, which changes the built module's
        // `cpu_tile` attributes — fold it in.
        Some(format!("matmul {} cpu_tile={:?}", self.problem, self.cpu_tile))
    }
}

/// One ResNet-style convolution layer on the §IV-D accelerator.
#[derive(Clone, Copy, Debug)]
pub struct ConvWorkload {
    layer: ConvLayer,
}

impl ConvWorkload {
    /// A workload for one layer.
    pub fn new(layer: ConvLayer) -> Self {
        Self { layer }
    }

    fn shape(&self) -> kernels::ConvShape {
        kernels::ConvShape {
            batch: 1,
            in_channels: self.layer.in_channels,
            in_hw: self.layer.in_hw,
            out_channels: self.layer.out_channels,
            filter_hw: self.layer.filter_hw,
            stride: self.layer.stride,
        }
    }
}

impl Workload for ConvWorkload {
    fn name(&self) -> String {
        format!("conv2d {}", self.layer)
    }

    fn entry_func(&self) -> &str {
        "conv_call"
    }

    fn build_module(&self) -> Module {
        build_conv_module(self.layer)
    }

    fn bind(&self, soc: &mut Soc, seed: u64, want_reference: bool) -> BoundBuffers {
        let shape = self.shape();
        let (i_data, w_data) = self.layer.generate_inputs(seed);
        let i = MemRefDesc::alloc(
            &mut soc.mem,
            &[1, shape.in_channels as i64, shape.in_hw as i64, shape.in_hw as i64],
            ElemType::I32,
        );
        let w = MemRefDesc::alloc(
            &mut soc.mem,
            &[
                shape.out_channels as i64,
                shape.in_channels as i64,
                shape.filter_hw as i64,
                shape.filter_hw as i64,
            ],
            ElemType::I32,
        );
        let o = MemRefDesc::alloc(
            &mut soc.mem,
            &[1, shape.out_channels as i64, shape.out_hw() as i64, shape.out_hw() as i64],
            ElemType::I32,
        );
        soc.mem.store_i32_slice(i.base, &i_data);
        soc.mem.store_i32_slice(w.base, &w_data);
        let expected = want_reference.then(|| kernels::ref_conv2d_i32(&i_data, &w_data, shape));
        BoundBuffers {
            args: vec![RtValue::MemRef(i), RtValue::MemRef(w), RtValue::MemRef(o.clone())],
            outputs: vec![o],
            expected,
        }
    }

    fn module_fingerprint(&self) -> Option<String> {
        Some(self.name())
    }
}

/// A batch of independent same-shape GEMMs in one module/run — the
/// driver layer's extensibility proof, and the shape of per-head attention
/// GEMMs. The module carries one `linalg.generic` per element; annotate /
/// codegen / lower handle all of them, and the batch shares one SoC (and
/// one set of staging allocations) end to end.
#[derive(Clone, Copy, Debug)]
pub struct BatchedMatMulWorkload {
    batch: BatchedMatMulProblem,
}

impl BatchedMatMulWorkload {
    /// A workload for the given batch.
    pub fn new(batch: BatchedMatMulProblem) -> Self {
        Self { batch }
    }
}

impl Workload for BatchedMatMulWorkload {
    fn name(&self) -> String {
        format!("batched matmul {}", self.batch)
    }

    fn entry_func(&self) -> &str {
        "batched_matmul_call"
    }

    fn build_module(&self) -> Module {
        crate::pipeline::build_batched_matmul_module(self.batch)
    }

    fn bind(&self, soc: &mut Soc, seed: u64, want_reference: bool) -> BoundBuffers {
        let p = self.batch.problem;
        let mut args = Vec::new();
        let mut outputs = Vec::new();
        let mut expected = want_reference
            .then(|| Vec::with_capacity(self.batch.batch * self.batch.output_elems()));
        for index in 0..self.batch.batch {
            let (a_data, b_data) = self.batch.generate_inputs(seed, index);
            let a = MemRefDesc::alloc(&mut soc.mem, &[p.m, p.k], ElemType::I32);
            let b = MemRefDesc::alloc(&mut soc.mem, &[p.k, p.n], ElemType::I32);
            let c = MemRefDesc::alloc(&mut soc.mem, &[p.m, p.n], ElemType::I32);
            soc.mem.store_i32_slice(a.base, &a_data);
            soc.mem.store_i32_slice(b.base, &b_data);
            args.push(RtValue::MemRef(a));
            args.push(RtValue::MemRef(b));
            args.push(RtValue::MemRef(c.clone()));
            outputs.push(c);
            if let Some(expect) = &mut expected {
                expect.extend(kernels::ref_matmul_i32(
                    &a_data,
                    &b_data,
                    p.m as usize,
                    p.n as usize,
                    p.k as usize,
                ));
            }
        }
        BoundBuffers { args, outputs, expected }
    }

    fn matmul_dims(&self) -> Option<(i64, i64, i64)> {
        let p = self.batch.problem;
        Some((p.m, p.n, p.k))
    }

    fn module_fingerprint(&self) -> Option<String> {
        Some(self.name())
    }
}

// ---------------------------------------------------------------------
// Pipeline construction
// ---------------------------------------------------------------------

/// What the pipeline starts from.
#[derive(Clone, Debug, Default)]
enum PipelineInput {
    /// Plain `linalg` on the CPU: no passes at all.
    #[default]
    CpuOnly,
    /// IR that already carries the Fig. 6a trait attributes: codegen,
    /// optional lowering, and dialect verification only.
    PreAnnotated,
    /// Plain `linalg` plus a configuration: the full pipeline.
    Accelerator(Box<AcceleratorConfig>),
}

/// Builds the standard AXI4MLIR pass pipeline. This is the one place the
/// pass list is wired; `Session` and `axi4mlir-opt` both use it.
#[derive(Clone, Debug)]
pub struct PipelineBuilder {
    input: PipelineInput,
    permutation: Vec<String>,
    cache_tile: Option<i64>,
    coalesce: bool,
    lower: bool,
    capture_ir: bool,
}

impl PipelineBuilder {
    /// An empty (CPU-only) pipeline with lowering enabled once a target is
    /// selected.
    pub fn new() -> Self {
        Self {
            input: PipelineInput::CpuOnly,
            permutation: Vec::new(),
            cache_tile: None,
            coalesce: false,
            lower: true,
            capture_ir: false,
        }
    }

    /// Targets an accelerator: enables the annotate pass and derives the
    /// loop permutation from the configuration's selected flow (when that
    /// flow is one of the paper's MatMul strategies).
    #[must_use]
    pub fn accelerator(mut self, config: AcceleratorConfig) -> Self {
        self.permutation = FlowStrategy::from_short_name(&config.selected_flow)
            .map(|s| s.matmul_permutation().iter().map(|d| (*d).to_owned()).collect())
            .unwrap_or_default();
        self.input = PipelineInput::Accelerator(Box::new(config));
        self
    }

    /// Declares the input IR already annotated (the `axi4mlir-opt`
    /// no-config mode): skip matching, run codegen and lowering only.
    #[must_use]
    pub fn pre_annotated(mut self) -> Self {
        self.input = PipelineInput::PreAnnotated;
        self
    }

    /// Overrides the loop permutation (dimension names, outermost first).
    #[must_use]
    pub fn permutation(mut self, permutation: Vec<String>) -> Self {
        self.permutation = permutation;
        self
    }

    /// Records the cache-tiling edge on annotated ops.
    #[must_use]
    pub fn cache_tile(mut self, cache_tile: Option<i64>) -> Self {
        self.cache_tile = cache_tile;
        self
    }

    /// Batches same-site transfers into one DMA transaction (§V).
    #[must_use]
    pub fn coalesce(mut self, coalesce: bool) -> Self {
        self.coalesce = coalesce;
        self
    }

    /// Lowers `accel` ops to the DMA runtime calls of Fig. 9.
    #[must_use]
    pub fn lower(mut self, lower: bool) -> Self {
        self.lower = lower;
        self
    }

    /// Captures IR snapshots after each pass.
    #[must_use]
    pub fn capture_ir(mut self, capture_ir: bool) -> Self {
        self.capture_ir = capture_ir;
        self
    }

    /// Assembles the pass manager, consuming the builder (the accelerator
    /// configuration moves into the annotate pass without another clone).
    pub fn build(self) -> PassManager {
        let mut pm = PassManager::new();
        pm.capture_ir(self.capture_ir);
        match self.input {
            PipelineInput::CpuOnly => return pm,
            PipelineInput::PreAnnotated => {}
            PipelineInput::Accelerator(config) => {
                pm.add(Box::new(MatchAndAnnotatePass::new(
                    *config,
                    self.permutation,
                    self.cache_tile,
                )));
            }
        }
        pm.add(Box::new(GenerateAccelDriverPass::new(self.coalesce)));
        if self.lower {
            pm.add(Box::new(LowerAccelToRuntimePass));
        }
        pm.add(Box::new(axi4mlir_dialects::verify::DialectVerifierPass));
        pm
    }
}

impl Default for PipelineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------
// Compile plans
// ---------------------------------------------------------------------

/// Everything one run needs besides the workload: the target (an
/// accelerator configuration, or CPU-only execution), pipeline options,
/// host description, and data seed.
#[derive(Clone, Debug)]
pub struct CompilePlan {
    /// The accelerator to compile for; `None` executes the unannotated
    /// kernel on the host CPU.
    pub config: Option<AcceleratorConfig>,
    /// Pipeline options.
    pub options: PipelineOptions,
    /// Host CPU description (cache sizes for the tiling heuristic).
    pub cpu: CpuSpec,
    /// Data seed.
    pub seed: u64,
    /// Overrides the copy strategy implied by `options` (the CPU baseline
    /// pins the element-wise copy).
    pub copy_override: Option<CopyStrategy>,
    /// Cache tile to report for pipeline-less runs (where no compiler pass
    /// chooses one).
    pub cpu_tile: Option<i64>,
}

impl CompilePlan {
    /// A plan compiling for `config` with default options.
    pub fn for_accelerator(config: AcceleratorConfig) -> Self {
        Self {
            config: Some(config),
            options: PipelineOptions::default(),
            cpu: CpuSpec::pynq_z2(),
            seed: 0xA41,
            copy_override: None,
            cpu_tile: None,
        }
    }

    /// A plan for the §IV-D Conv2D accelerator matched to one layer, with
    /// the conventional conv data seed (shared by the wrapper, the bench
    /// harness, and the examples).
    pub fn for_conv_layer(layer: ConvLayer) -> Self {
        let config = AcceleratorConfig::preset(axi4mlir_config::AcceleratorPreset::Conv2d {
            ic: layer.in_channels as i64,
            fhw: layer.filter_hw as i64,
        });
        Self::for_accelerator(config).seed(0xC02)
    }

    /// A CPU-only plan: no passes run, and the interpreter executes the
    /// `linalg` op directly with element-wise copies (the `mlir CPU`
    /// baseline of the figures).
    pub fn cpu() -> Self {
        Self {
            config: None,
            options: PipelineOptions::default(),
            cpu: CpuSpec::pynq_z2(),
            seed: 0xA41,
            copy_override: Some(CopyStrategy::ElementWise),
            cpu_tile: None,
        }
    }

    /// Selects one of the paper's Ns/As/Bs/Cs flows. On a CPU-only plan
    /// (no accelerator configuration) this is a no-op: nothing is
    /// offloaded, so there is no flow to select.
    ///
    /// # Panics
    ///
    /// Panics if the plan's accelerator does not offer the flow.
    #[must_use]
    pub fn flow(mut self, flow: FlowStrategy) -> Self {
        self.config = self.config.map(|c| c.with_selected_flow(flow.short_name()));
        self
    }

    /// Overrides pipeline options.
    #[must_use]
    pub fn options(mut self, options: PipelineOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the host CPU description.
    #[must_use]
    pub fn cpu_spec(mut self, cpu: CpuSpec) -> Self {
        self.cpu = cpu;
        self
    }

    /// Overrides the data seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Records the CPU tile reported for pipeline-less runs.
    #[must_use]
    pub fn cpu_tile(mut self, cpu_tile: Option<i64>) -> Self {
        self.cpu_tile = cpu_tile;
        self
    }

    /// The name reported as `accel_name`.
    pub fn target_name(&self) -> &str {
        self.config.as_ref().map_or("cpu", |c| c.name.as_str())
    }

    /// The flow label reported in the run report.
    pub fn flow_name(&self) -> &str {
        self.config.as_ref().map_or("cpu", |c| c.selected_flow.as_str())
    }

    /// Key identifying the functional device this plan targets.
    fn device_key(&self) -> String {
        device_key(self.config.as_ref())
    }

    /// The accelerator tile sizes `(tm, tn, tk)`.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] when a MatMul configuration lists fewer
    /// than three `accel_size` dimensions (previously a panic site).
    fn accel_tiles(config: &AcceleratorConfig) -> Result<(i64, i64, i64), Diagnostic> {
        match config.accel_dims[..] {
            [tm, tn, tk, ..] => Ok((tm, tn, tk)),
            _ => Err(Diagnostic::error(format!(
                "accelerator {}: accel_size must list at least three dimensions (m, n, k), got {:?}",
                config.name, config.accel_dims
            ))),
        }
    }

    /// Resolves the cache-tiling edge for a workload.
    fn resolve_cache_tile(&self, workload: &dyn Workload) -> Result<Option<i64>, Diagnostic> {
        let Some(config) = &self.config else { return Ok(self.cpu_tile) };
        if config.kernel != KernelKind::MatMul {
            return Ok(None);
        }
        let tiles = Self::accel_tiles(config)?;
        Ok(match self.options.cache_tiling {
            CacheTiling::Off => None,
            CacheTiling::Fixed(t) => Some(t),
            CacheTiling::Auto => workload
                .matmul_dims()
                .and_then(|dims| axi4mlir_heuristics::select_cache_tile(&self.cpu, dims, tiles)),
        })
    }
}

/// Identity of the functional device a configuration instantiates —
/// mirrors exactly what [`instantiate_accelerator`] decides (including
/// the v3 fallback for unparseable MatMul names and its
/// `accel_dims`-derived size), so two configs share a key iff they build
/// the same model.
fn device_key(config: Option<&AcceleratorConfig>) -> String {
    let Some(config) = config else { return "cpu".to_owned() };
    match config.kernel {
        KernelKind::Conv2dNchwFchw => "conv2d".to_owned(),
        KernelKind::MatMul => {
            let (version, size) = crate::pipeline::parse_matmul_name(config).unwrap_or((
                axi4mlir_accelerators::matmul::MatMulVersion::V3,
                config.accel_dims.first().copied().unwrap_or(4) as u32,
            ));
            format!("{version}_{size}")
        }
    }
}

// ---------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------

/// Everything that determines the compiled module a `(workload, plan)`
/// pair produces. Two runs whose keys compare equal would compile the
/// exact same module, so [`Session`] reuses the first run's output.
#[derive(Clone, Debug, PartialEq)]
struct CompileKey {
    workload: String,
    config: Option<AcceleratorConfig>,
    options: PipelineOptions,
    cache_tile: Option<i64>,
}

/// One compiled module cached inside a [`Session`]. `key == None` marks
/// a module from an unfingerprintable workload: kept only for the run
/// that compiled it, never reused.
struct CompiledModule {
    key: Option<CompileKey>,
    module: Module,
    ir_after: Vec<IrSnapshot>,
    pass_timings: Vec<PassTiming>,
}

/// A reusable executor: one simulated SoC that compiles and runs
/// workloads. Successive [`Session::run`] calls recycle the SoC (memory
/// capacity and device instance are kept) instead of rebuilding it, so
/// sweeps pay allocation once; results and counters are bit-identical to
/// using a fresh `Session` per run. Re-running the same workload under
/// the same plan also skips recompilation entirely: the session caches
/// the last compiled module keyed by [`Workload::module_fingerprint`]
/// and the plan's compile-relevant fields.
pub struct Session {
    soc: Soc,
    device_key: String,
    /// A user-supplied device is pinned: plans never swap it out.
    pinned: bool,
    /// Interpreter value-frame and opcode buffers, kept warm across
    /// `Soc::recycle` so steady-state sweep runs allocate nothing there.
    scratch: InterpScratch,
    /// Last compiled module, reused when the compile key matches.
    compiled: Option<CompiledModule>,
}

impl Session {
    /// A session around an already-built (possibly custom) device. The
    /// device is **pinned**: plans drive compilation as usual, but the
    /// session never replaces the device with the model the plan's
    /// configuration describes.
    pub fn new(accel: Box<dyn axi4mlir_sim::axi::StreamAccelerator>) -> Self {
        let device_key = format!("pinned:{}", accel.name());
        Self {
            soc: Soc::new(accel),
            device_key,
            pinned: true,
            scratch: InterpScratch::new(),
            compiled: None,
        }
    }

    /// A session targeting the device a plan's configuration describes
    /// (or the CPU for a [`CompilePlan::cpu`] plan).
    pub fn for_plan(plan: &CompilePlan) -> Self {
        match &plan.config {
            Some(config) => Self::for_config(config),
            None => Self::cpu(),
        }
    }

    /// A session around the functional model `config` describes.
    pub fn for_config(config: &AcceleratorConfig) -> Self {
        Self {
            soc: Soc::new(instantiate_accelerator(config)),
            device_key: device_key(Some(config)),
            pinned: false,
            scratch: InterpScratch::new(),
            compiled: None,
        }
    }

    /// A CPU-only session (loopback device; nothing is offloaded).
    pub fn cpu() -> Self {
        Self {
            soc: Soc::new(Box::new(LoopbackAccelerator::new())),
            device_key: "cpu".to_owned(),
            pinned: false,
            scratch: InterpScratch::new(),
            compiled: None,
        }
    }

    /// A session for sweeping over accelerator configurations: the device
    /// is instantiated (and later swapped) on demand by each plan, while
    /// memory and cache structures persist across the whole sweep.
    pub fn for_sweep() -> Self {
        Self::cpu()
    }

    /// The simulated system (for inspecting counters or cost model).
    pub fn soc(&self) -> &Soc {
        &self.soc
    }

    /// Swaps the device when the plan targets a different accelerator
    /// than the current one; keeps it (and its warm allocations) otherwise.
    /// Pinned (user-supplied) devices are never swapped.
    fn retarget(&mut self, plan: &CompilePlan) {
        if self.pinned {
            return;
        }
        let wanted = plan.device_key();
        if self.device_key == wanted {
            return;
        }
        let device: Box<dyn axi4mlir_sim::axi::StreamAccelerator> = match &plan.config {
            Some(config) => instantiate_accelerator(config),
            None => Box::new(LoopbackAccelerator::new()),
        };
        self.soc.replace_accelerator(device);
        self.device_key = wanted;
    }

    /// Compiles `workload` according to `plan`, executes it on this
    /// session's SoC, and verifies the result.
    ///
    /// # Errors
    ///
    /// Propagates compilation diagnostics, interpreter errors, DMA
    /// protocol violations, and accelerator protocol errors.
    pub fn run(
        &mut self,
        workload: &dyn Workload,
        plan: &CompilePlan,
    ) -> Result<RunReport, Diagnostic> {
        // Compile — unless this session just compiled the identical
        // module (same workload fingerprint, accelerator configuration,
        // options, and resolved cache tile), in which case the cached
        // module is reused verbatim. Execution never mutates the module,
        // so a cache hit is bit-identical to recompiling.
        let cache_tile = plan.resolve_cache_tile(workload)?;
        let key = workload.module_fingerprint().map(|workload| CompileKey {
            workload,
            config: plan.config.clone(),
            options: plan.options,
            cache_tile,
        });
        let reuse = key.is_some() && self.compiled.as_ref().is_some_and(|cached| cached.key == key);
        if !reuse {
            let mut builder = PipelineBuilder::new()
                .cache_tile(cache_tile)
                .coalesce(plan.options.coalesce_transfers)
                .lower(plan.options.lower_to_runtime_calls)
                .capture_ir(plan.options.capture_ir);
            if let Some(config) = &plan.config {
                builder = builder.accelerator(config.clone());
            }
            let mut module = workload.build_module();
            let mut pm = builder.build();
            let ir_after = pm.run(&mut module)?;
            let pass_timings = pm.timings().to_vec();
            self.compiled = Some(CompiledModule { key, module, ir_after, pass_timings });
        }

        // Execute on the recycled SoC.
        self.retarget(plan);
        self.soc.recycle();
        let buffers = workload.bind(&mut self.soc, plan.seed, plan.options.verify_result);
        self.soc.reset_run_state();
        let copy_strategy =
            plan.copy_override.unwrap_or_else(|| plan.options.copy_strategy(&self.soc.cost));
        let compiled = self.compiled.as_ref().expect("compiled just above");
        run_func_with_scratch(
            &mut self.soc,
            &compiled.module,
            workload.entry_func(),
            buffers.args,
            copy_strategy,
            &mut self.scratch,
        )
        .map_err(Diagnostic::from)?;
        if self.soc.accel.protocol_errors() > 0 {
            return Err(Diagnostic::error(format!(
                "accelerator {} observed {} protocol errors running {}",
                self.soc.accel.name(),
                self.soc.accel.protocol_errors(),
                workload.name()
            )));
        }

        // Read back and verify.
        let mut result = Vec::new();
        for output in &buffers.outputs {
            result.extend(self.soc.mem.load_i32_slice(output.base, output.num_elements() as usize));
        }
        let verified = match (&buffers.expected, plan.options.verify_result) {
            (Some(expected), true) => result == *expected,
            (None, true) => {
                return Err(Diagnostic::error(format!(
                    "workload {} did not produce a reference result although verification was requested",
                    workload.name()
                )))
            }
            (_, false) => true,
        };
        Ok(RunReport {
            accel_name: plan.target_name().to_owned(),
            flow: plan.flow_name().to_owned(),
            counters: self.soc.counters,
            task_clock_ms: self.soc.task_clock_ms(),
            verified,
            cache_tile,
            ir_after: compiled.ir_after.clone(),
            pass_timings: compiled.pass_timings.clone(),
            result,
        })
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").field("device", &self.device_key).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi4mlir_config::AcceleratorPreset;

    fn v3(size: i64) -> AcceleratorConfig {
        AcceleratorConfig::preset(AcceleratorPreset::V3 { size })
    }

    #[test]
    fn session_runs_matmul_end_to_end() {
        let plan = CompilePlan::for_accelerator(v3(4)).flow(FlowStrategy::OutputStationary);
        let report = Session::for_plan(&plan)
            .run(&MatMulWorkload::new(MatMulProblem::square(8)), &plan)
            .unwrap();
        assert!(report.verified);
        assert!(report.counters.dma_transactions > 0);
        assert!(!report.pass_timings.is_empty(), "pass timings are captured");
    }

    #[test]
    fn session_reuse_is_bit_identical_to_fresh_sessions() {
        let plan = CompilePlan::for_accelerator(v3(4)).flow(FlowStrategy::InputAStationary);
        let workload = MatMulWorkload::new(MatMulProblem::square(16));
        let mut shared = Session::for_plan(&plan);
        let first = shared.run(&workload, &plan).unwrap();
        let second = shared.run(&workload, &plan).unwrap();
        let fresh = Session::for_plan(&plan).run(&workload, &plan).unwrap();
        assert_eq!(first.counters, second.counters, "recycling is deterministic");
        assert_eq!(first.result, second.result);
        assert_eq!(first.counters, fresh.counters, "reuse matches a fresh session");
        assert_eq!(first.task_clock_ms, fresh.task_clock_ms);
    }

    #[test]
    fn session_retargets_between_devices() {
        let mut session = Session::cpu();
        let cpu_plan = CompilePlan::cpu();
        let workload = MatMulWorkload::new(MatMulProblem::square(8));
        let cpu = session.run(&workload, &cpu_plan).unwrap();
        assert!(cpu.verified);
        assert_eq!(cpu.counters.dma_transactions, 0);
        // Same session, now on a v3 accelerator.
        let accel_plan = CompilePlan::for_accelerator(v3(4)).flow(FlowStrategy::NothingStationary);
        let accel = session.run(&workload, &accel_plan).unwrap();
        assert!(accel.verified);
        assert!(accel.counters.dma_transactions > 0);
        assert_eq!(accel.accel_name, "v3_4");
    }

    #[test]
    fn batched_matmul_runs_and_verifies() {
        let batch = BatchedMatMulProblem::new(MatMulProblem::square(8), 3);
        let plan = CompilePlan::for_accelerator(v3(4)).flow(FlowStrategy::OutputStationary);
        let report =
            Session::for_plan(&plan).run(&BatchedMatMulWorkload::new(batch), &plan).unwrap();
        assert!(report.verified, "all batch elements must match their references");
        assert_eq!(report.result.len(), 3 * 64);
        // The batch moves roughly batch-times the data of one element.
        let single = Session::for_plan(&plan)
            .run(&MatMulWorkload::new(MatMulProblem::square(8)), &plan)
            .unwrap();
        assert!(report.counters.dma_bytes_to_accel > 2 * single.counters.dma_bytes_to_accel);
    }

    #[test]
    fn custom_devices_are_pinned() {
        // A hand-built v3 model under a session created with `new` must
        // not be swapped out by a plan whose config names the same model.
        let mut session = Session::new(Box::new(axi4mlir_accelerators::matmul::MatMulAccel::new(
            axi4mlir_accelerators::matmul::MatMulVersion::V3,
            4,
        )));
        let plan = CompilePlan::for_accelerator(v3(4)).flow(FlowStrategy::NothingStationary);
        let report = session.run(&MatMulWorkload::new(MatMulProblem::square(8)), &plan).unwrap();
        assert!(report.verified);
        assert_eq!(session.soc().accel.name(), "v3_4", "the pinned device still serves the run");
        // Even a CPU plan keeps the pinned device in place.
        let cpu = session.run(&MatMulWorkload::new(MatMulProblem::square(8)), &CompilePlan::cpu());
        assert!(cpu.unwrap().verified);
        assert_eq!(session.soc().accel.name(), "v3_4");
    }

    #[test]
    fn fallback_named_configs_retarget_on_dims_change() {
        // Two configs with the same unparseable name but different
        // accel_dims instantiate different v3 sizes; the session must
        // swap devices between them.
        let mut small = v3(4);
        small.name = "custom_accel".to_owned();
        let mut large = v3(8);
        large.name = "custom_accel".to_owned();
        let mut session = Session::for_sweep();
        let a = CompilePlan::for_accelerator(small).flow(FlowStrategy::NothingStationary);
        session.run(&MatMulWorkload::new(MatMulProblem::square(8)), &a).unwrap();
        assert_eq!(session.soc().accel.name(), "v3_4");
        let b = CompilePlan::for_accelerator(large).flow(FlowStrategy::NothingStationary);
        let report = session.run(&MatMulWorkload::new(MatMulProblem::square(8)), &b).unwrap();
        assert!(report.verified);
        assert_eq!(session.soc().accel.name(), "v3_8", "dims change must re-instantiate");
    }

    #[test]
    fn too_few_accel_dims_is_a_diagnostic_not_a_panic() {
        let mut config = v3(4);
        config.accel_dims = vec![4, 4];
        let plan = CompilePlan::for_accelerator(config);
        let err = Session::for_plan(&plan)
            .run(&MatMulWorkload::new(MatMulProblem::square(8)), &plan)
            .unwrap_err();
        assert!(err.message.contains("at least three dimensions"), "{}", err.message);
    }

    #[test]
    fn pipeline_builder_wires_the_standard_pipeline() {
        let pm = PipelineBuilder::new().accelerator(v3(8)).build();
        assert_eq!(pm.len(), 4, "annotate, codegen, lower, verify");
        let pm = PipelineBuilder::new().accelerator(v3(8)).lower(false).build();
        assert_eq!(pm.len(), 3);
        let pm = PipelineBuilder::new().build();
        assert!(pm.is_empty(), "CPU-only plans run no passes");
        let pm = PipelineBuilder::new().pre_annotated().build();
        assert_eq!(pm.len(), 3, "pre-annotated IR skips the matcher");
    }
}
