//! Compilation options.

use axi4mlir_runtime::copy::CopyStrategy;
use axi4mlir_sim::cost::CostModel;

// `CacheTiling` moved down into `axi4mlir-config` so the design-space
// enumerators can treat the tiling level as a candidate axis; re-exported
// here because it is still, first of all, a pipeline option.
pub use axi4mlir_config::CacheTiling;

/// Options steering the AXI4MLIR pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipelineOptions {
    /// Cache-hierarchy tiling level.
    pub cache_tiling: CacheTiling,
    /// Use the specialized (`memcpy`-style) staging copies. `false`
    /// reproduces the pre-optimization AXI4MLIR of Fig. 12a.
    pub specialized_copies: bool,
    /// Lower `accel` ops to DMA library calls before execution. `false`
    /// executes the `accel` dialect directly (both paths are tested to
    /// agree).
    pub lower_to_runtime_calls: bool,
    /// Batch same-site transfers into one DMA transaction per receive
    /// boundary — the coalescing optimization the paper lists as future
    /// work (§V). Off by default to match the published system.
    pub coalesce_transfers: bool,
    /// Capture IR snapshots after each pass.
    pub capture_ir: bool,
    /// Verify results against the reference kernel after execution.
    pub verify_result: bool,
}

impl PipelineOptions {
    /// The settings used by the paper's headline results: auto cache
    /// tiling + specialized copies + full lowering.
    pub fn optimized() -> Self {
        Self {
            cache_tiling: CacheTiling::Auto,
            specialized_copies: true,
            lower_to_runtime_calls: true,
            coalesce_transfers: false,
            capture_ir: false,
            verify_result: true,
        }
    }

    /// The pre-copy-optimization configuration of Fig. 12a.
    pub fn unoptimized_copies() -> Self {
        Self { specialized_copies: false, ..Self::optimized() }
    }

    /// The copy strategy implied by `specialized_copies`.
    pub fn copy_strategy(&self, cost: &CostModel) -> CopyStrategy {
        if self.specialized_copies {
            CopyStrategy::specialized(cost)
        } else {
            CopyStrategy::ElementWise
        }
    }
}

impl Default for PipelineOptions {
    fn default() -> Self {
        Self::optimized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_defaults() {
        let o = PipelineOptions::default();
        assert_eq!(o.cache_tiling, CacheTiling::Auto);
        assert!(o.specialized_copies);
        assert!(o.lower_to_runtime_calls);
    }

    #[test]
    fn copy_strategy_follows_flag() {
        let cost = CostModel::pynq_z2();
        let o = PipelineOptions::optimized();
        assert_eq!(o.copy_strategy(&cost), CopyStrategy::Chunked { chunk_bytes: 16 });
        let u = PipelineOptions::unoptimized_copies();
        assert_eq!(u.copy_strategy(&cost), CopyStrategy::ElementWise);
    }
}
