//! The AXI4MLIR compiler — the paper's primary contribution.
//!
//! Implements the numbered steps of the compiler flow (paper Fig. 4):
//!
//! 1./2. Accelerator + host description and parsing — `axi4mlir-config`.
//! 3. **Match and annotate** ([`annotate`]): find `linalg` operations whose
//!    traits match the accelerator's kernel and attach the Fig. 6a trait
//!    attributes (`dma_init_config`, `init_opcodes`, `accel_dim`,
//!    `permutation_map`, `opcode_map`, `opcode_flow`).
//! 4. **Tiling** for the CPU cache hierarchy and the accelerator size, and
//!    loop permutation for the selected stationary flow — [`plan`] decides,
//!    [`codegen`] emits the `scf` nest.
//! 5. **Host code transformations** ([`codegen`], [`lower`]): place `accel`
//!    dialect ops at the loop depth dictated by the `opcode_flow` (hoisting
//!    stationary transfers out of inner loops), then lower them to the
//!    seven DMA runtime library calls of Fig. 9.
//! 6. The DMA library itself — `axi4mlir-runtime`.
//!
//! [`pipeline::CompileAndRun`] wires everything to the simulated SoC and is
//! the API the examples, tests, and benchmarks use.

pub mod annotate;
pub mod codegen;
pub mod lower;
pub mod options;
pub mod pipeline;
pub mod plan;

pub use options::{CacheTiling, PipelineOptions};
pub use pipeline::{CompileAndRun, RunReport};
