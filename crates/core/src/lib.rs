//! The AXI4MLIR compiler — the paper's primary contribution.
//!
//! Implements the numbered steps of the compiler flow (paper Fig. 4):
//!
//! 1./2. Accelerator + host description and parsing — `axi4mlir-config`.
//! 3. **Match and annotate** ([`annotate`]): find `linalg` operations whose
//!    traits match the accelerator's kernel and attach the Fig. 6a trait
//!    attributes (`dma_init_config`, `init_opcodes`, `accel_dim`,
//!    `permutation_map`, `opcode_map`, `opcode_flow`).
//! 4. **Tiling** for the CPU cache hierarchy and the accelerator size, and
//!    loop permutation for the selected stationary flow — [`plan`] decides,
//!    [`codegen`] emits the `scf` nest.
//! 5. **Host code transformations** ([`codegen`], [`lower`]): place `accel`
//!    dialect ops at the loop depth dictated by the `opcode_flow` (hoisting
//!    stationary transfers out of inner loops), then lower them to the
//!    seven DMA runtime library calls of Fig. 9.
//! 6. The DMA library itself — `axi4mlir-runtime`.
//!
//! # The driver layer
//!
//! Experiments consume the compiler through the [`driver`] module, which
//! splits the compile-and-run loop into three orthogonal pieces:
//!
//! - a [`driver::Workload`] describes one kernel: how to build its IR
//!   module, bind and seed its SoC buffers, and compute its reference
//!   result. MatMul ([`driver::MatMulWorkload`]), Conv2D
//!   ([`driver::ConvWorkload`]), and batched MatMul
//!   ([`driver::BatchedMatMulWorkload`]) ship in-tree; a new kernel is one
//!   new implementation of this trait.
//! - a [`driver::CompilePlan`] names the target (an accelerator
//!   configuration, or CPU-only execution), the selected flow, and the
//!   [`PipelineOptions`]; [`driver::PipelineBuilder`] turns it into the
//!   standard pass pipeline (the single place the pass list is wired —
//!   `axi4mlir-opt` uses it too).
//! - a [`driver::Session`] owns the simulated SoC, executes plans, and
//!   **recycles the system between runs** (same addresses, zeroed memory,
//!   reset device), so sweeps amortize allocation while staying
//!   bit-identical to fresh runs. It produces a [`driver::RunReport`] with
//!   counters, verification, IR snapshots, and per-pass timings.
//!
//! The original one-call entry points — [`pipeline::CompileAndRun`],
//! [`pipeline::ConvCompileAndRun`], [`pipeline::run_cpu_matmul`] — remain
//! as thin wrappers over one-shot sessions.
//!
//! On top of the driver layer, [`explore`] turns the §IV-C configuration
//! heuristics into a measured search that is generic over what it
//! searches: an [`explore::DesignSpace`] (MatMul, batched MatMul, or
//! Conv2D; accelerator generations v1–v4; flows, tiles, and pipeline
//! options) enumerated per workload, swept by an [`explore::Search`]
//! strategy (exhaustive, or successive halving over the transfer-model
//! ranking) across a pool of worker threads (one recycled SoC each),
//! behind a candidate-keyed result cache that persists to
//! `BENCH_cache.json`. Reports state how close the analytical pick comes
//! to the explored optimum.

pub mod annotate;
pub mod codegen;
pub mod driver;
pub mod explore;
pub mod lower;
pub mod options;
pub mod pipeline;
pub mod plan;

pub use driver::{
    BatchedMatMulWorkload, CompilePlan, ConvWorkload, MatMulWorkload, PipelineBuilder, RunReport,
    Session, Workload,
};
pub use explore::{
    Candidate, CandidateKey, DesignSpace, Evaluation, ExploreReport, ExploreSpec, Explorer, Prune,
    Search,
};
pub use options::{CacheTiling, PipelineOptions};
pub use pipeline::CompileAndRun;
