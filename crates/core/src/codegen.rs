//! Steps 4 & 5a: tiled loop-nest generation with flow-directed `accel` op
//! placement.
//!
//! [`GenerateAccelDriverPass`] rewrites every annotated `linalg` op into the
//! Fig. 6b / Fig. 15b shape: `accel.dma_init` + `init_opcodes` once, then
//! the (cache- and accelerator-) tiled `scf.for` nest with `memref.subview`s
//! at the depth their dimensions become available and the `accel` ops of
//! each opcode placed at the depth the `opcode_flow` dictates.

use axi4mlir_config::KernelKind;
use axi4mlir_dialects::{accel, arith, linalg, memref, scf};
use axi4mlir_ir::attrs::{Attribute, OpcodeAction, OpcodeFlow, OpcodeMap};
use axi4mlir_ir::builder::OpBuilder;
use axi4mlir_ir::ops::{IrCtx, Module, OpId, ValueId};
use axi4mlir_ir::pass::Pass;
use axi4mlir_ir::types::Type;
use axi4mlir_support::diag::{Diagnostic, DiagnosticEngine};

use crate::plan::{self, LoopPlan, OffsetExpr, PlacedOpcode, Position};

/// Rewrites annotated linalg ops into accelerator driver code.
///
/// With `coalesce` enabled (the paper's §V future-work optimization), all
/// opcodes placed at the same loop site batch their staged words into a
/// single `dma_start_send`/`wait` pair per receive boundary, instead of one
/// transaction per opcode.
#[derive(Debug, Default)]
pub struct GenerateAccelDriverPass {
    coalesce: bool,
}

impl GenerateAccelDriverPass {
    /// Creates the pass; `coalesce` batches same-site transfers.
    pub fn new(coalesce: bool) -> Self {
        Self { coalesce }
    }
}

impl Pass for GenerateAccelDriverPass {
    fn name(&self) -> &str {
        "axi4mlir-generate-driver"
    }

    fn run(
        &mut self,
        module: &mut Module,
        _diags: &mut DiagnosticEngine,
    ) -> Result<(), Diagnostic> {
        let top = module.top();
        let annotated: Vec<OpId> = module
            .ctx
            .walk(top)
            .into_iter()
            .filter(|op| {
                module.ctx.op(*op).name.starts_with("linalg.")
                    && module.ctx.attr(*op, "opcode_flow").is_some()
            })
            .collect();
        if annotated.is_empty() {
            return Err(Diagnostic::error("no annotated linalg operation to rewrite"));
        }
        for op in annotated {
            rewrite_one(&mut module.ctx, op, self.coalesce)?;
        }
        Ok(())
    }
}

/// Everything read back from the Fig. 6a trait attributes.
struct Trait {
    opcode_map: OpcodeMap,
    flow: OpcodeFlow,
    init_opcodes: Vec<String>,
    accel_dims: Vec<i64>,
    permutation: Option<Vec<usize>>,
    dma: [i64; 5],
    cache_tile: Option<i64>,
}

fn read_trait(ctx: &IrCtx, op: OpId) -> Result<Trait, Diagnostic> {
    let attr_err = |name: &str| Diagnostic::error(format!("annotated op is missing `{name}`"));
    let opcode_map = ctx
        .attr(op, "opcode_map")
        .and_then(|a| a.as_opcodes())
        .ok_or_else(|| attr_err("opcode_map"))?
        .clone();
    let flow = ctx
        .attr(op, "opcode_flow")
        .and_then(|a| a.as_flow())
        .ok_or_else(|| attr_err("opcode_flow"))?
        .clone();
    let init_opcodes = ctx
        .attr(op, "init_opcodes")
        .and_then(|a| a.as_flow())
        .map(|f| f.opcode_names().into_iter().map(str::to_owned).collect())
        .unwrap_or_default();
    let accel_dim_map =
        ctx.attr(op, "accel_dim").and_then(|a| a.as_map()).ok_or_else(|| attr_err("accel_dim"))?;
    let zeros = vec![0i64; accel_dim_map.num_dims()];
    let accel_dims = accel_dim_map.eval(&zeros);
    let permutation = match ctx.attr(op, "permutation_map").and_then(|a| a.as_map()) {
        Some(map) => Some(
            map.as_permutation()
                .ok_or_else(|| Diagnostic::error("permutation_map must be a pure permutation"))?,
        ),
        None => None,
    };
    let dma_dict = ctx
        .attr(op, "dma_init_config")
        .and_then(|a| match a {
            Attribute::Dict(d) => Some(d),
            _ => None,
        })
        .ok_or_else(|| attr_err("dma_init_config"))?;
    let dma_field = |key: &str| {
        dma_dict
            .get(key)
            .and_then(Attribute::as_int)
            .ok_or_else(|| Diagnostic::error(format!("dma_init_config is missing `{key}`")))
    };
    let dma = [
        dma_field("id")?,
        dma_field("inputAddress")?,
        dma_field("inputBufferSize")?,
        dma_field("outputAddress")?,
        dma_field("outputBufferSize")?,
    ];
    let cache_tile = ctx.attr(op, "cache_tile").and_then(|a| a.as_int());
    Ok(Trait { opcode_map, flow, init_opcodes, accel_dims, permutation, dma, cache_tile })
}

fn rewrite_one(ctx: &mut IrCtx, op: OpId, coalesce: bool) -> Result<(), Diagnostic> {
    let tr = read_trait(ctx, op)?;
    let operands = ctx.op(op).operands.clone();
    let kernel = if ctx.op(op).name == "linalg.conv_2d_nchw_fchw" {
        KernelKind::Conv2dNchwFchw
    } else {
        KernelKind::MatMul
    };
    let plan = match kernel {
        KernelKind::MatMul => {
            let (m, n, k) = linalg::matmul_dims(ctx, op).ok_or_else(|| {
                Diagnostic::error("annotated op does not have static MatMul shapes")
            })?;
            if tr.accel_dims.len() != 3 {
                return Err(Diagnostic::error("matmul accel_dim must have three results"));
            }
            let tiles = (tr.accel_dims[0], tr.accel_dims[1], tr.accel_dims[2]);
            let perm: [usize; 3] = match &tr.permutation {
                Some(p) if p.len() == 3 => [p[0], p[1], p[2]],
                Some(_) => return Err(Diagnostic::error("matmul permutation must rank 3")),
                None => [0, 1, 2],
            };
            plan::matmul_plan((m, n, k), tiles, &perm, tr.cache_tile)?
        }
        KernelKind::Conv2dNchwFchw => {
            let shapes: Vec<Vec<i64>> = operands
                .iter()
                .map(|v| {
                    ctx.value_type(*v)
                        .as_memref()
                        .map(|m| m.shape.clone())
                        .ok_or_else(|| Diagnostic::error("conv operands must be memrefs"))
                })
                .collect::<Result<_, _>>()?;
            let stride = ctx
                .attr(op, "strides")
                .and_then(|a| a.as_array())
                .and_then(|a| a.first())
                .and_then(Attribute::as_int)
                .unwrap_or(1);
            // accel_dim = (B,H,W,iC,oC,fH,fW) -> (0,0,0,ic,1,fhw,fhw).
            if tr.accel_dims.len() != 7 {
                return Err(Diagnostic::error("conv accel_dim must have seven results"));
            }
            let (ic, fhw) = (tr.accel_dims[3], tr.accel_dims[5]);
            if shapes[0][1] != ic {
                return Err(Diagnostic::error(format!(
                    "accelerator is configured for {ic} input channels but the operation has {}",
                    shapes[0][1]
                )));
            }
            if shapes[1][3] != fhw {
                return Err(Diagnostic::error(format!(
                    "accelerator is configured for filter size {fhw} but the operation has {}",
                    shapes[1][3]
                )));
            }
            plan::conv_plan(plan::ConvPlanParams {
                batch: shapes[0][0],
                out_channels: shapes[1][0],
                out_hw: shapes[2][2],
                in_channels: ic,
                filter_hw: fhw,
                stride,
            })?
        }
    };
    let placed = plan::place_flow(&plan, &tr.opcode_map, &tr.flow)?;
    validate_opcodes(&tr.opcode_map)?;

    let block =
        ctx.op(op).parent.ok_or_else(|| Diagnostic::error("annotated op must be attached"))?;
    let index = ctx.position_in_block(op).expect("attached op has a position");
    ctx.erase_op(op);
    let mut b = OpBuilder::at(ctx, block, index);
    let mut gen = DriverGen {
        plan: &plan,
        placed: &placed,
        opcode_map: &tr.opcode_map,
        operands: &operands,
        subviews: vec![None; operands.len()],
        ivs: Vec::new(),
        coalesce,
    };
    gen.emit_prologue(&mut b, &tr)?;
    gen.emit_level(&mut b, 0)?;
    Ok(())
}

/// Static opcode sanity: no staging action may follow a `recv` within one
/// opcode (the staged words would never be flushed before the accelerator
/// is expected to produce output — a guaranteed hang).
fn validate_opcodes(map: &OpcodeMap) -> Result<(), Diagnostic> {
    for (name, actions) in map.iter() {
        let mut seen_recv = false;
        for a in actions {
            match a {
                OpcodeAction::Recv { .. } => seen_recv = true,
                _ if seen_recv => {
                    return Err(Diagnostic::error(format!(
                        "opcode `{name}` stages data after a recv; the transfer would hang"
                    )))
                }
                _ => {}
            }
        }
    }
    Ok(())
}

struct DriverGen<'a> {
    plan: &'a LoopPlan,
    placed: &'a [PlacedOpcode],
    opcode_map: &'a OpcodeMap,
    operands: &'a [ValueId],
    /// Current tile subview per argument (None until created).
    subviews: Vec<Option<ValueId>>,
    /// Induction variable per emitted loop level.
    ivs: Vec<ValueId>,
    /// Batch same-site transfers into single transactions (§V).
    coalesce: bool,
}

impl<'a> DriverGen<'a> {
    fn emit_prologue(&mut self, b: &mut OpBuilder<'_>, tr: &Trait) -> Result<(), Diagnostic> {
        // accel.dma_init with the five configuration scalars.
        let vals: Vec<ValueId> = tr.dma.iter().map(|v| arith::const_i32(b, *v as i32)).collect();
        accel::dma_init(b, vals[0], vals[1], vals[2], vals[3], vals[4]);
        // Init opcodes run once per kernel, against the *full* operands.
        for opcode in &tr.init_opcodes {
            let actions = self
                .opcode_map
                .get(opcode)
                .ok_or_else(|| Diagnostic::error(format!("init opcode `{opcode}` is not defined")))?
                .to_vec();
            let views: Vec<ValueId> = self.operands.to_vec();
            expand_actions(b, &actions, &views, &self.output_flags(), None)?;
        }
        Ok(())
    }

    fn output_flags(&self) -> Vec<bool> {
        self.plan.args.iter().map(|a| a.is_output).collect()
    }

    /// Emits loop `level` (0-based) and everything inside it at the
    /// builder's position.
    fn emit_level(&mut self, b: &mut OpBuilder<'_>, level: usize) -> Result<(), Diagnostic> {
        let info = self.plan.levels[level].clone();
        let step = arith::const_index(b, info.step);
        let (lb, ub) = match info.base {
            None => {
                let lb = arith::const_index(b, 0);
                let ub = arith::const_index(b, info.extent);
                (lb, ub)
            }
            Some(base_level) => {
                let base_iv = self.ivs[base_level];
                let extent = arith::const_index(b, info.extent);
                let ub = arith::addi(b, base_iv, extent);
                (base_iv, ub)
            }
        };
        let loop_ = scf::for_loop(b, lb, ub, step);
        self.ivs.push(loop_.iv);
        let depth = level + 1; // 1-based
        {
            let mut body = scf::body_builder(b.ctx(), &loop_);
            // Subviews that become available at this depth.
            for arg in 0..self.plan.args.len() {
                if self.plan.args[arg].ready_depth() == depth {
                    let view = self.emit_subview(&mut body, arg)?;
                    self.subviews[arg] = Some(view);
                }
            }
            // Pre-positioned opcodes.
            self.emit_placed(&mut body, depth, Position::Pre)?;
            // The nested loop.
            if level + 1 < self.plan.depth() {
                self.emit_level(&mut body, level + 1)?;
            }
            // Post-positioned opcodes.
            self.emit_placed(&mut body, depth, Position::Post)?;
        }
        // Subviews and the induction variable go out of scope with the loop.
        for (arg, plan) in self.plan.args.iter().enumerate() {
            if plan.ready_depth() == depth {
                self.subviews[arg] = None;
            }
        }
        self.ivs.pop();
        Ok(())
    }

    fn emit_subview(&mut self, b: &mut OpBuilder<'_>, arg: usize) -> Result<ValueId, Diagnostic> {
        let plan = &self.plan.args[arg];
        let mut offsets = Vec::with_capacity(plan.dim_offsets.len());
        for off in &plan.dim_offsets {
            let v = match off {
                OffsetExpr::Zero => arith::const_index(b, 0),
                OffsetExpr::LoopIv { level, scale } => {
                    let iv = *self.ivs.get(*level).ok_or_else(|| {
                        Diagnostic::error(format!(
                            "argument {} subview needs loop {level} before it exists",
                            plan.name
                        ))
                    })?;
                    if *scale == 1 {
                        iv
                    } else {
                        let s = arith::const_index(b, *scale);
                        arith::muli(b, iv, s)
                    }
                }
            };
            offsets.push(v);
        }
        Ok(memref::subview(b, self.operands[arg], offsets, plan.tile_sizes.clone()))
    }

    fn emit_placed(
        &mut self,
        b: &mut OpBuilder<'_>,
        depth: usize,
        position: Position,
    ) -> Result<(), Diagnostic> {
        let outputs = self.output_flags();
        let site: Vec<&PlacedOpcode> =
            self.placed.iter().filter(|p| p.depth == depth && p.position == position).collect();
        if site.is_empty() {
            return Ok(());
        }
        let views: Vec<ValueId> =
            self.subviews.iter().zip(self.operands).map(|(sv, full)| sv.unwrap_or(*full)).collect();
        let ivs_by_dim: Vec<(String, ValueId)> = self
            .plan
            .levels
            .iter()
            .zip(&self.ivs)
            .filter(|(l, _)| !l.is_cache_level)
            .map(|(l, iv)| (l.dim.clone(), *iv))
            .collect();
        if self.coalesce {
            // Concatenate the whole site's actions: one transaction per
            // receive boundary (the §V coalescing optimization).
            let mut combined = Vec::new();
            for placed in &site {
                let actions = self.opcode_map.get(&placed.opcode).ok_or_else(|| {
                    Diagnostic::error(format!("undefined opcode `{}`", placed.opcode))
                })?;
                combined.extend(actions.iter().cloned());
            }
            expand_actions(b, &combined, &views, &outputs, Some(&ivs_by_dim))?;
        } else {
            for placed in &site {
                let actions = self
                    .opcode_map
                    .get(&placed.opcode)
                    .ok_or_else(|| {
                        Diagnostic::error(format!("undefined opcode `{}`", placed.opcode))
                    })?
                    .to_vec();
                expand_actions(b, &actions, &views, &outputs, Some(&ivs_by_dim))?;
            }
        }
        Ok(())
    }
}

/// Expands an action list into `accel` ops with offset chaining.
///
/// A *flush* (the batched `dma_start_send` + wait) is attached to the last
/// staging action before each `recv` and to the last staging action of the
/// list — so a single opcode produces one transaction (the §III-A batching)
/// and a coalesced site produces one transaction per receive boundary.
fn expand_actions(
    b: &mut OpBuilder<'_>,
    actions: &[OpcodeAction],
    views: &[ValueId],
    is_output: &[bool],
    ivs_by_dim: Option<&[(String, ValueId)]>,
) -> Result<(), Diagnostic> {
    if !actions.iter().any(|a| !matches!(a, OpcodeAction::Recv { .. })) {
        return Err(Diagnostic::error("opcode has no staging actions"));
    }
    // Which staging actions flush: the last one before each recv boundary
    // and the last one overall.
    let mut flush_at = vec![false; actions.len()];
    let mut last_stager: Option<usize> = None;
    for (i, action) in actions.iter().enumerate() {
        if matches!(action, OpcodeAction::Recv { .. }) {
            if let Some(s) = last_stager.take() {
                flush_at[s] = true;
            }
        } else {
            last_stager = Some(i);
        }
    }
    if let Some(s) = last_stager {
        flush_at[s] = true;
    }

    let mut off = arith::const_i32(b, 0);
    for (i, action) in actions.iter().enumerate() {
        let flush = flush_at[i];
        match action {
            OpcodeAction::SendLiteral { value } => {
                let lit = arith::const_i32(b, *value as i32);
                off = accel::send_literal(b, lit, off, flush);
            }
            OpcodeAction::Send { arg } => {
                let view = *views
                    .get(*arg as usize)
                    .ok_or_else(|| Diagnostic::error(format!("send({arg}) out of range")))?;
                off = accel::send(b, view, off, flush);
            }
            OpcodeAction::SendDim { arg, dim } => {
                let view = *views.get(*arg as usize).ok_or_else(|| {
                    Diagnostic::error(format!("send_dim({arg}, {dim}) out of range"))
                })?;
                off = accel::send_dim(b, view, i64::from(*dim), off, flush);
            }
            OpcodeAction::SendIdx { dim } => {
                let ivs = ivs_by_dim.ok_or_else(|| {
                    Diagnostic::error("send_idx is not available in init opcodes")
                })?;
                let iv =
                    ivs.iter().find(|(d, _)| d == dim).map(|(_, v)| *v).ok_or_else(|| {
                        Diagnostic::error(format!("send_idx({dim}): no such loop"))
                    })?;
                let cast = arith::index_cast(b, iv, Type::i32());
                off = accel::send_idx(b, cast, off, flush);
            }
            OpcodeAction::Recv { arg } => {
                let view = *views
                    .get(*arg as usize)
                    .ok_or_else(|| Diagnostic::error(format!("recv({arg}) out of range")))?;
                let zero = arith::const_i32(b, 0);
                accel::recv(b, view, zero, is_output.get(*arg as usize).copied().unwrap_or(true));
            }
        }
        // Staging restarts at offset zero after a flushed transaction.
        if flush && i + 1 < actions.len() {
            off = arith::const_i32(b, 0);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::MatchAndAnnotatePass;
    use axi4mlir_config::{AcceleratorConfig, AcceleratorPreset, FlowStrategy};
    use axi4mlir_dialects::{func, verify::DialectVerifierPass};
    use axi4mlir_ir::pass::PassManager;
    use axi4mlir_ir::printer::print_op;

    fn matmul_module(dims: i64) -> Module {
        let mut m = Module::new();
        let f = func::func(&mut m, "matmul_call", vec![], vec![]);
        let mut b = func::entry_builder(&mut m.ctx, &f);
        let a = memref::alloc(&mut b, vec![dims, dims], Type::i32());
        let bb = memref::alloc(&mut b, vec![dims, dims], Type::i32());
        let c = memref::alloc(&mut b, vec![dims, dims], Type::i32());
        linalg::generic_matmul(&mut b, a, bb, c);
        m
    }

    fn compile(
        dims: i64,
        preset: AcceleratorPreset,
        flow: FlowStrategy,
        cache_tile: Option<i64>,
    ) -> Module {
        let mut module = matmul_module(dims);
        let cfg = AcceleratorConfig::preset(preset).with_selected_flow(flow.short_name());
        let perm: Vec<String> = flow.matmul_permutation().iter().map(|s| (*s).to_owned()).collect();
        let mut pm = PassManager::new();
        pm.add(Box::new(MatchAndAnnotatePass::new(cfg, perm, cache_tile)));
        pm.add(Box::new(GenerateAccelDriverPass::default()));
        pm.add(Box::new(DialectVerifierPass));
        pm.run(&mut module).unwrap();
        module
    }

    #[test]
    fn ns_flow_generates_three_loops_with_innermost_transfers() {
        let m =
            compile(16, AcceleratorPreset::V3 { size: 4 }, FlowStrategy::NothingStationary, None);
        let fors = m.ctx.find_ops(m.top(), "scf.for");
        assert_eq!(fors.len(), 3);
        assert!(m.ctx.find_ops(m.top(), "linalg.generic").is_empty(), "linalg op replaced");
        assert_eq!(m.ctx.find_ops(m.top(), accel::DMA_INIT).len(), 1);
        // All sends/recvs sit in the innermost loop.
        let innermost = fors
            .iter()
            .copied()
            .find(|f| m.ctx.find_ops(*f, "scf.for").len() == 1)
            .expect("innermost loop");
        assert_eq!(m.ctx.find_ops(innermost, accel::SEND).len(), 2, "sA and sB");
        assert_eq!(m.ctx.find_ops(innermost, accel::RECV).len(), 1, "rC");
    }

    #[test]
    fn as_flow_hoists_sa_out_of_innermost() {
        let m =
            compile(16, AcceleratorPreset::V3 { size: 4 }, FlowStrategy::InputAStationary, None);
        let fors = m.ctx.find_ops(m.top(), "scf.for");
        let innermost =
            fors.iter().copied().find(|f| m.ctx.find_ops(*f, "scf.for").len() == 1).unwrap();
        // Only sB inside the innermost loop; sA was hoisted one level up.
        assert_eq!(m.ctx.find_ops(innermost, accel::SEND).len(), 1);
        let printed = print_op(&m.ctx, m.top());
        assert_eq!(
            printed.matches("accel.send\"").count(),
            2,
            "sA at depth 2, sB at depth 3: {printed}"
        );
    }

    #[test]
    fn cs_flow_receives_after_inner_loop() {
        let m =
            compile(16, AcceleratorPreset::V3 { size: 4 }, FlowStrategy::OutputStationary, None);
        let fors = m.ctx.find_ops(m.top(), "scf.for");
        let innermost =
            fors.iter().copied().find(|f| m.ctx.find_ops(*f, "scf.for").len() == 1).unwrap();
        assert!(m.ctx.find_ops(innermost, accel::RECV).is_empty(), "recv hoisted out of k loop");
        // The recv lives in the depth-2 loop, after the inner loop.
        let depth2 =
            fors.iter().copied().find(|f| m.ctx.find_ops(*f, "scf.for").len() == 2).unwrap();
        let body = scf::for_body(&m.ctx, depth2);
        let ops = &m.ctx.block(body).ops;
        let recv_pos = ops.iter().position(|o| m.ctx.op(*o).name == accel::RECV);
        let for_pos = ops.iter().position(|o| m.ctx.op(*o).name == "scf.for");
        assert!(recv_pos.unwrap() > for_pos.unwrap(), "recv must follow the k loop");
    }

    #[test]
    fn cache_tiling_adds_outer_loops() {
        let m = compile(
            64,
            AcceleratorPreset::V3 { size: 8 },
            FlowStrategy::NothingStationary,
            Some(32),
        );
        // m and n gain cache loops; the streaming dim k does not.
        assert_eq!(m.ctx.find_ops(m.top(), "scf.for").len(), 5);
    }

    #[test]
    fn init_opcodes_run_before_loops() {
        let m =
            compile(16, AcceleratorPreset::V3 { size: 4 }, FlowStrategy::NothingStationary, None);
        let f = m.funcs()[0];
        let entry = m.ctx.sole_block(f, 0);
        let names: Vec<String> =
            m.ctx.block(entry).ops.iter().map(|o| m.ctx.op(*o).name.clone()).collect();
        let init_pos = names.iter().position(|n| n == accel::DMA_INIT).unwrap();
        let reset_pos = names.iter().position(|n| n == accel::SEND_LITERAL).unwrap();
        let loop_pos = names.iter().position(|n| n == "scf.for").unwrap();
        assert!(init_pos < reset_pos && reset_pos < loop_pos);
    }

    #[test]
    fn generated_ir_round_trips_through_text() {
        let m =
            compile(16, AcceleratorPreset::V3 { size: 8 }, FlowStrategy::InputBStationary, None);
        let printed = print_op(&m.ctx, m.top());
        let m2 = axi4mlir_ir::parser::parse_module(&printed).unwrap();
        assert_eq!(print_op(&m2.ctx, m2.top()), printed);
    }

    #[test]
    fn conv_codegen_matches_fig15b() {
        let mut m = Module::new();
        let f = func::func(&mut m, "conv_call", vec![], vec![]);
        let mut b = func::entry_builder(&mut m.ctx, &f);
        let i = memref::alloc(&mut b, vec![1, 256, 7, 7], Type::i32());
        let w = memref::alloc(&mut b, vec![64, 256, 3, 3], Type::i32());
        let o = memref::alloc(&mut b, vec![1, 64, 5, 5], Type::i32());
        linalg::conv_2d_nchw_fchw(&mut b, i, w, o, 1);
        let cfg = AcceleratorConfig::preset(AcceleratorPreset::Conv2d { ic: 256, fhw: 3 });
        let mut pm = PassManager::new();
        pm.add(Box::new(MatchAndAnnotatePass::new(cfg, vec![], None)));
        pm.add(Box::new(GenerateAccelDriverPass::default()));
        pm.add(Box::new(DialectVerifierPass));
        pm.run(&mut m).unwrap();
        // Four loops: b, oc, oh, ow.
        assert_eq!(m.ctx.find_ops(m.top(), "scf.for").len(), 4);
        // Init opcodes use sendDim for fH and iC.
        assert_eq!(m.ctx.find_ops(m.top(), accel::SEND_DIM).len(), 2);
        let printed = print_op(&m.ctx, m.top());
        assert!(printed.contains("accel.recv"));
    }

    #[test]
    fn conv_config_shape_mismatch_is_reported() {
        let mut m = Module::new();
        let f = func::func(&mut m, "conv_call", vec![], vec![]);
        let mut b = func::entry_builder(&mut m.ctx, &f);
        let i = memref::alloc(&mut b, vec![1, 128, 7, 7], Type::i32());
        let w = memref::alloc(&mut b, vec![64, 128, 3, 3], Type::i32());
        let o = memref::alloc(&mut b, vec![1, 64, 5, 5], Type::i32());
        linalg::conv_2d_nchw_fchw(&mut b, i, w, o, 1);
        let cfg = AcceleratorConfig::preset(AcceleratorPreset::Conv2d { ic: 256, fhw: 3 });
        let mut pm = PassManager::new();
        pm.add(Box::new(MatchAndAnnotatePass::new(cfg, vec![], None)));
        pm.add(Box::new(GenerateAccelDriverPass::default()));
        let err = pm.run(&mut m).unwrap_err();
        assert!(err.message.contains("input channels"), "{}", err.message);
    }

    #[test]
    fn opcode_staging_after_recv_is_rejected() {
        let mut module = matmul_module(16);
        let mut cfg = AcceleratorConfig::preset(AcceleratorPreset::V3 { size: 4 });
        // Corrupt the opcode map: stage after recv.
        let broken = OpcodeMap::parse("opcode_map<sA = [send_literal(0x22), send(0)], sB = [send_literal(0x23), send(1)], cC = [send_literal(0xF0)], rC = [recv(2), send_literal(9)], reset = [send_literal(0xFF)]>").unwrap();
        cfg.opcode_map = broken;
        let mut pm = PassManager::new();
        pm.add(Box::new(MatchAndAnnotatePass::new(cfg, vec![], None)));
        pm.add(Box::new(GenerateAccelDriverPass::default()));
        let err = pm.run(&mut module).unwrap_err();
        assert!(err.message.contains("stages data after a recv"), "{}", err.message);
    }
}
