//! Chaos tests: seeded fault plans drive the real daemon binaries
//! through worker crashes, torn frames, dropped connections, and client
//! reconnects. The invariant under test is the distributed layer's
//! founding one: faults degrade throughput, never results — every
//! faulted sweep must produce evaluations bit-identical to the
//! fault-free run with the same seed.
//!
//! Fault plans are per *process* (`--faults` / `AXI4MLIR_FAULTS`), so
//! every faulted component here is a spawned binary; the test process
//! itself never arms a plan, which keeps the in-process baseline hubs
//! clean.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

use axi4mlir_core::explore::{ExploreReport, JobSpec};
use axi4mlir_hub::{run_resilient, Hub, HubClient, HubConfig};
use axi4mlir_support::json::JsonValue;

/// A halving sweep with proxy rungs and finalists; `dim` scales how
/// long it runs (16 finishes fast, 32 leaves plenty of mid-sweep time
/// for faults and rejoins to land).
fn spec(dim: i64) -> JobSpec {
    JobSpec {
        dims: Some((dim, dim, dim)),
        accels: vec!["v4_8".to_owned()],
        search: "halving".to_owned(),
        seed: Some(7),
        ..JobSpec::default()
    }
}

/// A fault-free in-process sweep of `spec`: the ground truth every
/// faulted run must reproduce bit-for-bit.
fn baseline(spec: &JobSpec) -> ExploreReport {
    let hub = Hub::bind(HubConfig { workers: 1, sim_workers: 2, ..HubConfig::default() })
        .expect("bind the baseline hub");
    let addr = hub.local_addr().to_string();
    let serving = std::thread::spawn(move || hub.run().expect("baseline hub run"));
    let mut client = HubClient::connect(&addr).expect("connect");
    let report = client.run(spec, &mut |_| ()).expect("baseline job");
    client.shutdown().expect("shutdown");
    serving.join().unwrap();
    report
}

/// The faulted run carried exactly the baseline's measurements: same
/// evaluations (bit-identical deterministic keys), same optimum, same
/// simulation counters. Only wall-clock (and reconnect) fields may
/// differ.
fn assert_same_results(faulted: &ExploreReport, clean: &ExploreReport) {
    assert_eq!(faulted.evaluations.len(), clean.evaluations.len());
    for (f, c) in faulted.evaluations.iter().zip(&clean.evaluations) {
        assert_eq!(f.deterministic_key(), c.deterministic_key());
    }
    assert_eq!(
        faulted.optimum().unwrap().deterministic_key(),
        clean.optimum().unwrap().deterministic_key()
    );
    assert_eq!(faulted.sims_performed, clean.sims_performed);
    assert_eq!(faulted.full_sims_performed, clean.full_sims_performed);
}

/// A spawned daemon binary. Killed (never gracefully stopped) on drop;
/// the stdout pipe is kept open so a late print cannot panic the child.
struct Daemon {
    child: Child,
    addr: String,
    _stdout: BufReader<ChildStdout>,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

fn spawn_daemon(binary: &Path, name: &str, args: &[&str]) -> Daemon {
    let mut child = Command::new(binary)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap_or_else(|err| panic!("spawn {name}: {err}"));
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("daemon banner");
    let prefix = format!("{name} listening on ");
    let addr = banner
        .trim_end()
        .strip_prefix(&prefix)
        .unwrap_or_else(|| panic!("unexpected {name} banner {banner:?}"))
        .to_owned();
    Daemon { child, addr, _stdout: stdout }
}

fn hub_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_axi4mlir-hub"))
}

/// The worker binary, a sibling of the hub binary. A workspace-level
/// `cargo test` builds both; a bare `cargo test -p axi4mlir-hub` does
/// not, so build it on demand with the matching profile.
fn worker_binary() -> PathBuf {
    let worker = hub_binary().with_file_name("axi4mlir-worker");
    if !worker.exists() {
        let mut build = Command::new(env!("CARGO"));
        build.args(["build", "-q", "-p", "axi4mlir-worker", "--bin", "axi4mlir-worker"]);
        if hub_binary().components().any(|c| c.as_os_str() == "release") {
            build.arg("--release");
        }
        let status = build.status().expect("run cargo build");
        assert!(status.success(), "building axi4mlir-worker failed");
    }
    worker
}

fn spawn_worker(faults: Option<&str>) -> Daemon {
    let mut args = vec!["--bind", "127.0.0.1:0", "--slots", "2"];
    if let Some(spec) = faults {
        args.extend(["--faults", spec]);
    }
    spawn_daemon(&worker_binary(), "axi4mlir-worker", &args)
}

/// Respawns a clean worker on a fixed address, retrying while the
/// kernel releases the dead process's port.
fn respawn_worker(bind: &str) -> Daemon {
    let binary = worker_binary();
    for _ in 0..40 {
        let mut child = Command::new(&binary)
            .args(["--bind", bind, "--slots", "2"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("respawn the worker");
        let mut stdout = BufReader::new(child.stdout.take().unwrap());
        let mut banner = String::new();
        if stdout.read_line(&mut banner).is_ok()
            && banner.starts_with("axi4mlir-worker listening on ")
        {
            return Daemon { child, addr: bind.to_owned(), _stdout: stdout };
        }
        // The port was still held; reap this attempt and retry.
        child.kill().ok();
        child.wait().ok();
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("could not rebind a worker on {bind}");
}

#[test]
fn torn_and_dropped_frames_never_change_results() {
    let spec = spec(16);
    let clean = baseline(&spec);
    assert!(clean.full_sims_performed > 0, "a cold sweep must simulate");
    assert!(clean.worker_reconnects.is_empty(), "a fault-free run reports no reconnects");

    // One worker tears its 3rd reply mid-frame, the other silently
    // drops its 2nd; the hub itself drops its 5th outbound measure
    // request and fails its first cache checkpoint.
    let torn = spawn_worker(Some("seed=3,worker.reply:torn@3"));
    let droppy = spawn_worker(Some("seed=5,worker.reply:drop@2"));
    let dir = std::env::temp_dir().join(format!("axi4mlir-chaos-torn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("cache.json");
    let hub = spawn_daemon(
        &hub_binary(),
        "axi4mlir-hub",
        &[
            "--bind",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--sim-workers",
            "2",
            "--worker",
            &torn.addr,
            "--worker",
            &droppy.addr,
            "--cache",
            cache.to_str().unwrap(),
            "--faults",
            "seed=11,pool.send:drop@5,hub.checkpoint:fail@1",
        ],
    );

    let mut client = HubClient::connect(&hub.addr).expect("connect");
    let report = client.run(&spec, &mut |_| ()).expect("the faulted sweep still completes");
    assert_same_results(&report, &clean);
    let reconnects: usize = report.worker_reconnects.iter().map(|(_, n)| n).sum();
    assert!(
        reconnects >= 1,
        "torn/dropped frames force at least one re-registration: {:?}",
        report.worker_reconnects
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_crashed_worker_rejoins_and_results_are_unchanged() {
    let spec = spec(32);
    let clean = baseline(&spec);

    // The victim exits (code 86) on its 4th accepted measure; a monitor
    // thread restarts a clean worker on the same address, which the
    // scheduler's retry loop must re-register mid-sweep.
    let victim = spawn_worker(Some("seed=9,worker.measure:crash@4"));
    let survivor = spawn_worker(None);
    let victim_addr = victim.addr.clone();

    let hub = Hub::bind(HubConfig {
        workers: 1,
        sim_workers: 2,
        measure_workers: vec![victim_addr.clone(), survivor.addr.clone()],
        ..HubConfig::default()
    })
    .expect("bind the hub");
    let addr = hub.local_addr().to_string();
    let serving = std::thread::spawn(move || hub.run().expect("hub run"));

    let respawn = std::thread::spawn(move || {
        let mut victim = victim;
        let status = victim.child.wait().expect("reap the victim");
        assert_eq!(status.code(), Some(86), "the victim dies of its scripted crash");
        respawn_worker(&victim.addr)
    });

    let mut client = HubClient::connect(&addr).expect("connect");
    let report = client.run(&spec, &mut |_| ()).expect("the sweep survives the crash");
    let replacement = respawn.join().unwrap();

    assert_same_results(&report, &clean);
    let rejoined = report
        .worker_reconnects
        .iter()
        .find(|(worker, _)| *worker == victim_addr)
        .map_or(0, |(_, n)| *n);
    assert!(
        rejoined >= 1,
        "the respawned worker re-registered under its old address: {:?}",
        report.worker_reconnects
    );
    drop(replacement);

    client.shutdown().expect("shutdown");
    serving.join().unwrap();
}

#[test]
fn a_dropped_event_stream_is_recovered_by_follow() {
    let spec = spec(16);
    let clean = baseline(&spec);

    // The hub drops its 2nd event write, killing the submitting
    // connection mid-stream; `run_resilient` must reconnect and
    // `follow` the job to its terminal event.
    let hub = spawn_daemon(
        &hub_binary(),
        "axi4mlir-hub",
        &[
            "--bind",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--sim-workers",
            "1",
            "--faults",
            "seed=3,hub.event:drop@2",
        ],
    );

    let mut states: Vec<String> = Vec::new();
    let report = run_resilient(&hub.addr, &spec, 3, &mut |event| {
        if let Some(state) = event.get("state").and_then(JsonValue::as_str) {
            states.push(state.to_owned());
        }
    })
    .expect("the client recovers the stream and the report");
    assert_same_results(&report, &clean);
    assert_eq!(
        states.last().map(String::as_str),
        Some("done"),
        "the follow delivered the terminal event: {states:?}"
    );
    assert!(
        states.iter().filter(|s| *s == "queued").count() >= 2,
        "the replay re-delivered events the first connection already saw: {states:?}"
    );

    // The finished job stays followable from a fresh connection: the
    // replay alone reaches the terminal `done` and rebuilds the report.
    let mut late = HubClient::connect(&hub.addr).expect("connect");
    let mut late_states: Vec<String> = Vec::new();
    let followed = late
        .follow(1, &mut |event| {
            if let Some(state) = event.get("state").and_then(JsonValue::as_str) {
                late_states.push(state.to_owned());
            }
        })
        .expect("a finished job replays to its terminal event");
    assert_same_results(&followed, &clean);
    assert_eq!(late_states.last().map(String::as_str), Some("done"));

    // An unknown job id gets a field-blaming error, not a hangup.
    let err = late.follow(999, &mut |_| ()).expect_err("unknown jobs are refused");
    assert!(err.message.contains("follow") && err.message.contains("job"), "{}", err.message);
}
