//! Integration tests for the hub daemon: the service property (shared
//! measurements across clients), queue backpressure, graceful SIGTERM
//! checkpointing, and the `docs/PROTOCOL.md` transcript.

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};

use axi4mlir_core::explore::{cache, JobSpec};
use axi4mlir_hub::{Hub, HubClient, HubConfig};
use axi4mlir_support::json::JsonValue;

/// A halving sweep with a few dozen candidates: big enough to have
/// proxy rungs and finalists, small enough to finish in well under a
/// second per unique simulation set.
fn halving_spec() -> JobSpec {
    JobSpec {
        dims: Some((16, 16, 16)),
        accels: vec!["v4_8".to_owned()],
        search: "halving".to_owned(),
        seed: Some(7),
        ..JobSpec::default()
    }
}

fn start_hub(config: HubConfig) -> (String, std::thread::JoinHandle<axi4mlir_hub::HubSummary>) {
    let hub = Hub::bind(config).expect("bind");
    let addr = hub.local_addr().to_string();
    let handle = std::thread::spawn(move || hub.run().expect("hub run"));
    (addr, handle)
}

fn states_of(events: &[JsonValue]) -> Vec<String> {
    events
        .iter()
        .filter_map(|e| e.get("state").and_then(JsonValue::as_str))
        .map(str::to_owned)
        .collect()
}

#[test]
fn a_second_identical_job_reuses_every_measurement() {
    let (addr, hub) = start_hub(HubConfig { workers: 1, sim_workers: 2, ..HubConfig::default() });
    let mut client = HubClient::connect(&addr).expect("connect");
    assert_eq!(client.info().cache_entries, 0);

    let mut events = Vec::new();
    let first = client.run(&halving_spec(), &mut |e| events.push(e.clone())).expect("first job");
    assert!(first.full_sims_performed > 0, "a cold sweep must simulate");
    let states = states_of(&events);
    assert_eq!(states.first().map(String::as_str), Some("queued"));
    assert_eq!(states.get(1).map(String::as_str), Some("running"));
    assert_eq!(states.get(2).map(String::as_str), Some("space-ready"));
    assert!(states.iter().filter(|s| *s == "rung-complete").count() >= 2);
    assert_eq!(states.last().map(String::as_str), Some("done"));
    let done = events.last().unwrap();
    assert!(done.get("full_sims_performed").and_then(JsonValue::as_u64).is_some());
    assert!(done.get("sims_per_sec").is_some(), "done events carry the throughput metric");

    // The identical job again, over a fresh connection: the shared
    // cache serves everything, so zero new full-fidelity simulations.
    let mut second_client = HubClient::connect(&addr).expect("reconnect");
    assert!(second_client.info().cache_entries > 0, "the hub remembered the first sweep");
    let second = second_client.run(&halving_spec(), &mut |_| ()).expect("second job");
    assert_eq!(second.full_sims_performed, 0, "everything came from the shared cache");
    assert_eq!(second.sims_performed, 0);
    // Both sweeps measured the same space and agree on the optimum.
    assert_eq!(second.optimum().unwrap().candidate.key, first.optimum().unwrap().candidate.key);

    client.shutdown().expect("shutdown");
    let summary = hub.join().unwrap();
    assert_eq!(summary.completed, 2);
    assert_eq!(summary.failed, 0);
}

#[test]
fn concurrent_identical_jobs_simulate_each_candidate_once() {
    // Baseline: what one isolated sweep costs.
    let (addr, hub) = start_hub(HubConfig { workers: 1, sim_workers: 1, ..HubConfig::default() });
    let mut client = HubClient::connect(&addr).expect("connect");
    let isolated = client.run(&halving_spec(), &mut |_| ()).expect("baseline job");
    client.shutdown().expect("shutdown");
    hub.join().unwrap();
    assert!(isolated.full_sims_performed > 0);

    // Two clients race the same sweep on a fresh hub with two
    // executors: the in-flight registry must keep the *total* spend at
    // exactly one isolated run — strictly fewer than two CLI processes
    // (2 × isolated) would pay.
    let (addr, hub) = start_hub(HubConfig { workers: 2, sim_workers: 2, ..HubConfig::default() });
    let totals: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = HubClient::connect(&addr).expect("connect");
                    let report = client.run(&halving_spec(), &mut |_| ()).expect("racing job");
                    report.full_sims_performed
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let combined: usize = totals.iter().sum();
    assert_eq!(
        combined, isolated.full_sims_performed,
        "concurrent sweeps {totals:?} must share, not duplicate, the isolated cost"
    );

    let mut client = HubClient::connect(&addr).expect("connect");
    let status = client.status().expect("status");
    assert_eq!(status.get("completed").and_then(JsonValue::as_u64), Some(2));
    client.shutdown().expect("shutdown");
    hub.join().unwrap();
}

#[test]
fn a_full_queue_rejects_with_backpressure() {
    // No executors: submitted jobs stay queued forever, so the queue
    // state is deterministic.
    let (addr, hub) =
        start_hub(HubConfig { workers: 0, queue_capacity: 1, ..HubConfig::default() });
    let mut client = HubClient::connect(&addr).expect("connect");
    client.submit(&halving_spec()).expect("the first job fits the queue");
    let err = client.submit(&halving_spec()).expect_err("the second must be rejected");
    assert!(err.message.contains("queue full"), "{}", err.message);

    // A malformed job is an error, not a rejection — and not queued.
    let bad = JobSpec { workload: "gemv".to_owned(), ..JobSpec::default() };
    let err = client.submit(&bad).expect_err("bad specs fail at submit");
    assert!(err.message.contains("workload"), "{}", err.message);

    // Shutdown fails the still-queued job explicitly.
    client.shutdown().expect("shutdown");
    let summary = hub.join().unwrap();
    assert_eq!(summary.completed, 0);
    assert_eq!(summary.failed, 1);
}

#[test]
fn sigterm_mid_sweep_leaves_a_loadable_checkpoint() {
    let dir = std::env::temp_dir().join(format!("axi4mlir-hub-term-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache_path = dir.join("cache.json");
    let mut child = Command::new(env!("CARGO_BIN_EXE_axi4mlir-hub"))
        .args(["--bind", "127.0.0.1:0", "--workers", "1", "--sim-workers", "1"])
        .arg("--cache")
        .arg(&cache_path)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn the daemon");
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines.next().unwrap().unwrap();
    let addr = banner.strip_prefix("axi4mlir-hub listening on ").expect("banner").to_owned();

    // A sweep with several proxy rungs, so SIGTERM lands mid-run.
    let spec = JobSpec {
        dims: Some((32, 32, 32)),
        accels: vec!["v4_8".to_owned()],
        search: "halving".to_owned(),
        seed: Some(7),
        ..JobSpec::default()
    };
    let mut client = HubClient::connect(&addr).expect("connect");
    let rungs = AtomicUsize::new(0);
    let outcome = client.run(&spec, &mut |event| {
        if event.get("state").and_then(JsonValue::as_str) == Some("rung-complete")
            && rungs.fetch_add(1, Ordering::Relaxed) == 0
        {
            // First rung is checkpointed; now interrupt the daemon.
            let status = Command::new("kill")
                .args(["-TERM", &child.id().to_string()])
                .status()
                .expect("send SIGTERM");
            assert!(status.success());
        }
    });
    // The job is either cancelled at the next rung boundary (the
    // expected path) or — if it was already on its last rung — done.
    if let Err(err) = &outcome {
        assert!(
            err.message.contains("cancel") || err.message.contains("shut"),
            "unexpected failure: {}",
            err.message
        );
    }
    assert!(rungs.load(Ordering::Relaxed) >= 1, "SIGTERM must have landed after a rung");

    let status = child.wait().expect("daemon exit");
    assert!(status.success(), "graceful SIGTERM shutdown exits 0, got {status:?}");
    let entries = cache::load(&cache_path).expect("the checkpoint must parse");
    assert!(!entries.is_empty(), "the checkpoint holds the rungs measured before SIGTERM");
    std::fs::remove_dir_all(&dir).ok();
}
