//! The `axi4mlir-hub` daemon binary.
//!
//! ```text
//! axi4mlir-hub [--bind ADDR] [--workers N] [--sim-workers N]
//!              [--queue N] [--cache PATH | --cache-dir DIR]
//!              [--worker ADDR]... [--event-buffer N] [--faults SPEC]
//! ```
//!
//! Binds, prints `axi4mlir-hub listening on ADDR` (port 0 in `--bind`
//! resolves to a free port — scripts parse this line), and serves the
//! `axi4mlir-hub/v1` protocol until SIGTERM/ctrl-c or a client
//! `shutdown` request; either path drains gracefully and flushes the
//! cache. See `docs/PROTOCOL.md` for the wire protocol and
//! `docs/ARCHITECTURE.md` for where the hub sits in the stack.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

use axi4mlir_hub::{Hub, HubConfig};
use axi4mlir_support::fault;

/// Set by the signal handler, polled by every hub loop.
static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: one atomic store.
    STOP.store(true, Ordering::SeqCst);
}

// `signal` comes from libc, which every Rust binary already links; an
// inline declaration avoids a dependency the build image lacks.
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

const USAGE: &str = "usage: axi4mlir-hub [--bind ADDR] [--workers N] [--sim-workers N] \
                     [--queue N] [--cache PATH | --cache-dir DIR] [--worker ADDR]... \
                     [--event-buffer N] [--faults SPEC]

  --bind ADDR        listen address (default 127.0.0.1:0 — a free port)
  --workers N        concurrent jobs (executor threads; default 2)
  --sim-workers N    measurement threads per job (default: host parallelism, max 4)
  --queue N          job-queue capacity; submits beyond it are rejected (default 16)
  --cache PATH       load/checkpoint the shared result cache at PATH (single file)
  --cache-dir DIR    load/checkpoint the cache sharded across DIR (dirty shards only)
  --worker ADDR      fan measurements out to an axi4mlir-worker at ADDR (repeatable;
                     default: measure in-process)
  --event-buffer N   events retained per job for `follow` replay (default 64)
  --faults SPEC      arm a deterministic fault plan, e.g.
                     'seed=7,hub.event:drop@2' (chaos testing; wins over
                     the AXI4MLIR_FAULTS environment variable)";

fn parse_args(args: &[String]) -> Result<(HubConfig, Option<String>), String> {
    let mut config = HubConfig { stop: Some(&STOP), ..HubConfig::default() };
    let mut faults = None;
    let mut at = 0;
    let value = |at: &mut usize, flag: &str| -> Result<String, String> {
        *at += 1;
        args.get(*at).cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while at < args.len() {
        let flag = args[at].as_str();
        match flag {
            "--bind" => config.bind = value(&mut at, flag)?,
            "--workers" => {
                config.workers =
                    value(&mut at, flag)?.parse().map_err(|_| "--workers needs an integer")?;
            }
            "--sim-workers" => {
                config.sim_workers =
                    value(&mut at, flag)?.parse().map_err(|_| "--sim-workers needs an integer")?;
            }
            "--queue" => {
                config.queue_capacity =
                    value(&mut at, flag)?.parse().map_err(|_| "--queue needs an integer")?;
            }
            "--cache" => config.cache_path = Some(PathBuf::from(value(&mut at, flag)?)),
            "--cache-dir" => config.cache_dir = Some(PathBuf::from(value(&mut at, flag)?)),
            "--worker" => config.measure_workers.push(value(&mut at, flag)?),
            "--event-buffer" => {
                config.event_buffer =
                    value(&mut at, flag)?.parse().map_err(|_| "--event-buffer needs an integer")?;
            }
            "--faults" => faults = Some(value(&mut at, flag)?),
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
        at += 1;
    }
    if config.cache_path.is_some() && config.cache_dir.is_some() {
        return Err(format!("--cache and --cache-dir are mutually exclusive\n{USAGE}"));
    }
    Ok((config, faults))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, faults) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    // `--faults` wins over AXI4MLIR_FAULTS (first install sticks).
    let armed = match faults {
        Some(spec) => fault::FaultPlan::parse(&spec).map(|plan| {
            fault::install(plan);
        }),
        None => fault::install_from_env().map(|_| ()),
    };
    if let Err(err) = armed {
        eprintln!("axi4mlir-hub: {}", err.message);
        return ExitCode::FAILURE;
    }
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
    let hub = match Hub::bind(config) {
        Ok(hub) => hub,
        Err(err) => {
            eprintln!("axi4mlir-hub: {}", err.message);
            return ExitCode::FAILURE;
        }
    };
    // Scripts (and the integration tests) parse this line for the
    // resolved port; stdout is line-buffered, so it flushes here.
    println!("axi4mlir-hub listening on {}", hub.local_addr());
    match hub.run() {
        Ok(summary) => {
            println!(
                "axi4mlir-hub: {} completed, {} failed, cache holds {} entries",
                summary.completed, summary.failed, summary.cache_entries
            );
            if let Some(plan) = fault::active() {
                for fired in plan.fired() {
                    eprintln!("axi4mlir-hub: fault fired: {fired}");
                }
            }
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("axi4mlir-hub: {}", err.message);
            ExitCode::FAILURE
        }
    }
}
