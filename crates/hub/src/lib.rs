//! Exploration-as-a-service: the `axi4mlir-hub` daemon and its client.
//!
//! A sweep of a design space is expensive and its result cache is the
//! asset: every full-fidelity simulation banked once benefits every
//! later sweep that touches the same configuration. Running sweeps as
//! isolated CLI processes wastes that asset — two engineers exploring
//! neighbouring problems re-simulate each other's candidates, and the
//! caches they persist race on the same file. The hub inverts the
//! arrangement: one long-running daemon owns a single in-memory
//! [`Explorer`](axi4mlir_core::explore::Explorer) (shared result cache,
//! in-flight dedup registry, warm-start transfer model) and clients
//! submit exploration *jobs* over a newline-delimited JSON protocol
//! (`axi4mlir-hub/v1`, see `docs/PROTOCOL.md`), watching queued →
//! running → rung-complete → done progress events stream back.
//!
//! The crate splits into:
//!
//! - [`protocol`]: the wire vocabulary — request parsing, reply and
//!   event builders, the schema tag;
//! - [`server`]: the daemon — bounded job queue with backpressure,
//!   executor pool over the shared explorer, incremental cache
//!   checkpoints at rung boundaries, graceful SIGTERM shutdown;
//! - [`client`]: a small blocking client used by
//!   `axi4mlir-explore --hub` and the integration tests.
//!
//! Framing (one compact JSON value per line) lives in
//! [`axi4mlir_support::proto`] so protocol and tests share it with any
//! future wire speaker.

#![deny(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{run_resilient, HubClient, HubInfo};
pub use protocol::{Request, SCHEMA};
pub use server::{Hub, HubConfig, HubSummary};
