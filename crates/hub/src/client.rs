//! A blocking `axi4mlir-hub` client.
//!
//! Used by `axi4mlir-explore --hub` and the integration tests. The
//! client is deliberately synchronous: connect, submit, then read the
//! event stream until the job reaches a terminal state. The `done`
//! event carries the full wire-form report, which
//! [`HubClient::run`] rebuilds into the same [`ExploreReport`] a local
//! sweep would have produced — callers render output with the exact
//! code they use without a hub.
//!
//! A connection lost mid-job does not lose the job: the hub keeps
//! running it and buffers its events, so a fresh connection can send
//! `follow JOB_ID` ([`HubClient::follow`]) to replay the buffer and
//! resume the live stream. [`run_resilient`] packages that loop —
//! submit, and on connection loss reconnect-and-follow until the
//! terminal event — for callers like `axi4mlir-explore --hub` that
//! should survive a hub-side connection drop.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

use axi4mlir_core::explore::{wire, ExploreReport, JobSpec};
use axi4mlir_support::diag::Diagnostic;
use axi4mlir_support::json::JsonValue;
use axi4mlir_support::proto::{write_frame, Frame, FrameReader};

use crate::protocol::{Request, SCHEMA};

/// What the hub said in its `hello` reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HubInfo {
    /// The hub's protocol schema (always [`SCHEMA`] after a successful
    /// connect).
    pub schema: String,
    /// Result-cache entries the hub held at connect time.
    pub cache_entries: usize,
    /// The hub's job-queue capacity.
    pub queue_capacity: usize,
    /// The hub's executor-thread count.
    pub workers: usize,
}

/// One connection to a hub.
pub struct HubClient {
    reader: FrameReader<BufReader<TcpStream>>,
    writer: TcpStream,
    info: HubInfo,
}

fn connect_err(what: impl std::fmt::Display) -> Diagnostic {
    Diagnostic::error(format!("cannot reach the hub: {what}"))
}

impl HubClient {
    /// Connects and performs the `hello` handshake, verifying the
    /// schema.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] for connection failures and for a hub
    /// speaking a different schema.
    pub fn connect(addr: &str) -> Result<HubClient, Diagnostic> {
        let stream = TcpStream::connect(addr).map_err(connect_err)?;
        let writer = stream.try_clone().map_err(connect_err)?;
        let mut client = HubClient {
            reader: FrameReader::new(BufReader::new(stream)),
            writer,
            info: HubInfo {
                schema: String::new(),
                cache_entries: 0,
                queue_capacity: 0,
                workers: 0,
            },
        };
        let hello = client.request(&Request::Hello)?;
        let schema = hello.get("schema").and_then(JsonValue::as_str).unwrap_or("");
        if schema != SCHEMA {
            return Err(connect_err(format!(
                "schema mismatch: hub speaks `{schema}`, this client `{SCHEMA}`"
            )));
        }
        let count = |name: &str| {
            hello.get(name).and_then(JsonValue::as_u64).map(|n| n as usize).unwrap_or(0)
        };
        client.info = HubInfo {
            schema: schema.to_owned(),
            cache_entries: count("cache_entries"),
            queue_capacity: count("queue_capacity"),
            workers: count("workers"),
        };
        Ok(client)
    }

    /// The `hello` handshake's answers.
    pub fn info(&self) -> &HubInfo {
        &self.info
    }

    fn send(&mut self, request: &Request) -> Result<(), Diagnostic> {
        write_frame(&mut self.writer, &request.to_json())
            .map_err(|err| connect_err(format!("send failed: {err}")))
    }

    /// Blocks until the next frame from the hub.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] if the hub hangs up or sends a
    /// malformed frame.
    pub fn next_frame(&mut self) -> Result<JsonValue, Diagnostic> {
        loop {
            match self.reader.next_frame()? {
                Frame::Value(value) => return Ok(value),
                Frame::Idle => continue,
                Frame::Eof => return Err(connect_err("the hub closed the connection")),
            }
        }
    }

    fn request(&mut self, request: &Request) -> Result<JsonValue, Diagnostic> {
        self.send(request)?;
        loop {
            let reply = self.next_frame()?;
            match reply.get("type").and_then(JsonValue::as_str) {
                // Progress of already-submitted jobs may interleave
                // ahead of the reply; replies stay in request order.
                Some("event") => continue,
                Some("error") => {
                    let reason =
                        reply.get("reason").and_then(JsonValue::as_str).unwrap_or("unknown");
                    return Err(Diagnostic::error(format!("hub rejected the request: {reason}")));
                }
                _ => return Ok(reply),
            }
        }
    }

    /// Submits one job at the default priority (0); returns its id once
    /// the hub accepts it.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] for `error` (bad spec) and `rejected`
    /// (queue full) replies.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, Diagnostic> {
        self.submit_with_priority(spec, 0)
    }

    /// Submits one job at an explicit priority. The hub always runs the
    /// highest-priority queued job next, FIFO within a priority.
    ///
    /// # Errors
    ///
    /// See [`HubClient::submit`].
    pub fn submit_with_priority(
        &mut self,
        spec: &JobSpec,
        priority: i64,
    ) -> Result<u64, Diagnostic> {
        self.submit_with_options(spec, priority, None)
    }

    /// Submits one job with an explicit priority and an optional
    /// per-job simulation-worker budget (`None` accepts the hub's fair
    /// share).
    ///
    /// # Errors
    ///
    /// See [`HubClient::submit`].
    pub fn submit_with_options(
        &mut self,
        spec: &JobSpec,
        priority: i64,
        sim_workers: Option<usize>,
    ) -> Result<u64, Diagnostic> {
        let reply =
            self.request(&Request::Submit { spec: Box::new(spec.clone()), priority, sim_workers })?;
        match reply.get("type").and_then(JsonValue::as_str) {
            Some("accepted") => reply
                .get("job")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| connect_err("accepted reply without a job id")),
            Some("rejected") => {
                let reason = reply.get("reason").and_then(JsonValue::as_str).unwrap_or("rejected");
                Err(Diagnostic::error(format!("hub rejected the job: {reason}")))
            }
            other => Err(connect_err(format!("unexpected submit reply type {other:?}"))),
        }
    }

    /// Submits `spec` and follows its event stream to completion,
    /// handing every event frame (including the terminal one) to
    /// `on_event`.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] when the job fails, the hub shuts down
    /// mid-job, or the connection breaks.
    pub fn run(
        &mut self,
        spec: &JobSpec,
        on_event: &mut dyn FnMut(&JsonValue),
    ) -> Result<ExploreReport, Diagnostic> {
        let id = self.submit(spec)?;
        match self.await_job(id, on_event) {
            JobOutcome::Done(report) => Ok(*report),
            JobOutcome::Failed(err) | JobOutcome::Lost(err) => Err(err),
        }
    }

    /// Resumes job `id`'s event stream on this connection (replaying
    /// the hub's buffered events first) and follows it to its terminal
    /// state, exactly like [`HubClient::run`] from the `accepted` point
    /// on. Replayed events are handed to `on_event` again — a caller
    /// that saw some of them on a previous connection sees duplicates.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] for an unknown/evicted job id, a failed
    /// job, or a broken connection.
    pub fn follow(
        &mut self,
        id: u64,
        on_event: &mut dyn FnMut(&JsonValue),
    ) -> Result<ExploreReport, Diagnostic> {
        match self.follow_outcome(id, on_event) {
            JobOutcome::Done(report) => Ok(*report),
            JobOutcome::Failed(err) | JobOutcome::Lost(err) => Err(err),
        }
    }

    fn follow_outcome(&mut self, id: u64, on_event: &mut dyn FnMut(&JsonValue)) -> JobOutcome {
        if let Err(err) = self.send(&Request::Follow { job: id }) {
            return JobOutcome::Lost(err);
        }
        // The `following` reply precedes the replayed events.
        loop {
            let frame = match self.next_frame() {
                Ok(frame) => frame,
                Err(err) => return JobOutcome::Lost(err),
            };
            match frame.get("type").and_then(JsonValue::as_str) {
                Some("following") => break,
                Some("error") => {
                    let reason =
                        frame.get("reason").and_then(JsonValue::as_str).unwrap_or("unknown");
                    return JobOutcome::Failed(Diagnostic::error(format!(
                        "hub rejected the follow: {reason}"
                    )));
                }
                _ => continue, // unrelated frames
            }
        }
        self.await_job(id, on_event)
    }

    /// Reads job `id`'s events to the terminal one, classifying how the
    /// wait ended (so a resilient caller can tell a lost connection —
    /// worth a reconnect-and-follow — from a genuinely failed job).
    fn await_job(&mut self, id: u64, on_event: &mut dyn FnMut(&JsonValue)) -> JobOutcome {
        loop {
            let frame = match self.next_frame() {
                Ok(frame) => frame,
                Err(err) => return JobOutcome::Lost(err),
            };
            match frame.get("type").and_then(JsonValue::as_str) {
                Some("event") if frame.get("job").and_then(JsonValue::as_u64) == Some(id) => {
                    on_event(&frame);
                    match frame.get("state").and_then(JsonValue::as_str) {
                        Some("done") => {
                            let Some(report) = frame.get("report") else {
                                return JobOutcome::Failed(connect_err(
                                    "done event without a report",
                                ));
                            };
                            return match wire::report_from_json(report) {
                                Ok(report) => JobOutcome::Done(Box::new(report)),
                                Err(err) => JobOutcome::Failed(err),
                            };
                        }
                        Some("failed") => {
                            let reason = frame
                                .get("reason")
                                .and_then(JsonValue::as_str)
                                .unwrap_or("unknown");
                            return JobOutcome::Failed(Diagnostic::error(format!(
                                "job {id} failed: {reason}"
                            )));
                        }
                        _ => {}
                    }
                }
                Some("shutting_down") => {
                    return JobOutcome::Failed(connect_err(
                        "the hub shut down before the job finished",
                    ))
                }
                _ => {} // another job's event, or an unrelated reply
            }
        }
    }

    /// Asks for the hub's queue/cache counters.
    ///
    /// # Errors
    ///
    /// See [`HubClient::next_frame`].
    pub fn status(&mut self) -> Result<JsonValue, Diagnostic> {
        self.request(&Request::Status)
    }

    /// Requests a graceful shutdown and waits for the goodbye frame.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] if the connection breaks before the
    /// hub acknowledges.
    pub fn shutdown(mut self) -> Result<(), Diagnostic> {
        self.send(&Request::Shutdown)?;
        loop {
            match self.reader.next_frame()? {
                Frame::Value(frame)
                    if frame.get("type").and_then(JsonValue::as_str) == Some("shutting_down") =>
                {
                    return Ok(());
                }
                Frame::Value(_) | Frame::Idle => continue,
                Frame::Eof => return Ok(()),
            }
        }
    }
}

/// How waiting on a job's event stream ended.
enum JobOutcome {
    /// The terminal `done` event arrived with its report.
    Done(Box<ExploreReport>),
    /// The job failed, the hub shut down, or the hub refused the
    /// request — reconnecting will not help.
    Failed(Diagnostic),
    /// The *connection* died mid-stream; the job may well still be
    /// running, so a reconnect-and-follow can recover it.
    Lost(Diagnostic),
}

/// Runs `spec` on the hub at `addr`, surviving connection loss: when
/// the event stream dies mid-job, reconnects (up to `reconnects` times,
/// with growing pauses) and resumes via `follow`. Replayed events reach
/// `on_event` a second time — callers render streams idempotently or
/// tolerate the duplicates.
///
/// # Errors
///
/// Returns a [`Diagnostic`] when the job itself fails, the hub shuts
/// down, or the connection cannot be re-established within the retry
/// budget.
pub fn run_resilient(
    addr: &str,
    spec: &JobSpec,
    reconnects: usize,
    on_event: &mut dyn FnMut(&JsonValue),
) -> Result<ExploreReport, Diagnostic> {
    let mut client = HubClient::connect(addr)?;
    let id = client.submit(spec)?;
    let mut lost = match client.await_job(id, on_event) {
        JobOutcome::Done(report) => return Ok(*report),
        JobOutcome::Failed(err) => return Err(err),
        JobOutcome::Lost(err) => err,
    };
    for attempt in 1..=reconnects {
        std::thread::sleep(Duration::from_millis(100 * attempt as u64));
        let mut client = match HubClient::connect(addr) {
            Ok(client) => client,
            Err(err) => {
                lost = err;
                continue;
            }
        };
        match client.follow_outcome(id, on_event) {
            JobOutcome::Done(report) => return Ok(*report),
            JobOutcome::Failed(err) => return Err(err),
            JobOutcome::Lost(err) => lost = err,
        }
    }
    Err(Diagnostic::error(format!(
        "job {id}: connection lost and not recovered after {reconnects} reconnects: {}",
        lost.message
    )))
}
