//! The hub daemon: a bounded job queue over one shared
//! [`Explorer`].
//!
//! ## Shape
//!
//! One listener thread accepts connections; each connection gets a
//! serving thread that parses requests and *owns all writes* to its
//! socket (replies and events never interleave mid-frame). Submitted
//! jobs land in a bounded queue drained highest-priority-first (FIFO
//! within a priority) by a pool of executor threads, running each job
//! through
//! [`Explorer::explore_streaming`](axi4mlir_core::explore::Explorer::explore_streaming)
//! on the shared engine. Sharing the engine is the whole point: every
//! job reads and feeds the same result cache, and the engine's
//! in-flight registry guarantees a candidate wanted by two concurrent
//! jobs is simulated exactly once.
//!
//! Progress events flow from executor into a per-job `EventHub` log:
//! every event is appended to a bounded replay buffer *and* forwarded
//! to the job's current subscriber connection, which writes it between
//! reads (its socket reads time out every 50 ms, so events are never
//! stalled behind an idle client). Because the buffer outlives the
//! submitting connection, a client that loses its connection mid-job
//! can reconnect and send `follow JOB_ID`: the hub replays the
//! buffered events and re-attaches the live stream, ending with the
//! terminal `done`/`failed` event exactly as the original connection
//! would have seen it.
//!
//! ## Durability
//!
//! With a `--cache` path, the hub loads the persisted cache at startup
//! and checkpoints after every completed rung and at shutdown — each
//! checkpoint is the PR-4 load/merge/atomic-rename path, so a `kill
//! -TERM` at any instant leaves a loadable file. With a `--cache-dir`
//! the same checkpoints go to the sharded layout instead, and each one
//! rewrites only the shards dirtied since the last flush.
//! SIGTERM/ctrl-c (via [`HubConfig::stop`]) and the `shutdown` request
//! trigger the same graceful sequence: executors cancel their sweeps
//! at the next rung boundary, queued jobs fail with a `shutting down`
//! reason, clients see a final `shutting_down` frame, and the cache is
//! flushed once more.
//!
//! ## Distributed measurement
//!
//! With one or more `--worker ADDR` flags the hub swaps its local
//! measurement thread pool for an
//! [`axi4mlir_core::explore::RemotePool`] that fans candidate batches
//! out to `axi4mlir-worker` daemons; scheduling,
//! caching, and dedup stay hub-side, so reports are bit-identical to
//! local runs (timing aside) and a lost worker only costs throughput.

use std::collections::{HashMap, VecDeque};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use axi4mlir_core::explore::{wire, ExploreReport, Explorer, JobSpec, ProgressEvent, RemotePool};
use axi4mlir_support::diag::Diagnostic;
use axi4mlir_support::fault::{self, FaultAction};
use axi4mlir_support::json::JsonValue;
use axi4mlir_support::proto::{write_frame, write_frame_at, Frame, FrameReader};

use crate::protocol::{self, Request};

/// How the daemon is set up.
#[derive(Clone, Debug)]
pub struct HubConfig {
    /// The address to listen on; port 0 picks a free port (the bound
    /// address is on [`Hub::local_addr`]).
    pub bind: String,
    /// Executor threads draining the job queue (how many jobs run
    /// concurrently). Zero is legal and means jobs queue forever — the
    /// integration tests use it to exercise backpressure.
    pub workers: usize,
    /// Measurement threads *per job* (the `workers` argument of each
    /// job's `explore_streaming` call).
    pub sim_workers: usize,
    /// Queue slots; a `submit` beyond this is rejected.
    pub queue_capacity: usize,
    /// Cache file to load at startup and checkpoint into; `None` keeps
    /// the cache purely in-memory.
    pub cache_path: Option<PathBuf>,
    /// Sharded cache directory; when set it wins over
    /// [`Self::cache_path`] and checkpoints rewrite only dirty shards.
    pub cache_dir: Option<PathBuf>,
    /// `axi4mlir-worker` addresses to fan measurements out to; empty
    /// keeps the local in-process measurement pool.
    pub measure_workers: Vec<String>,
    /// Events retained per job for `follow` replay (the newest N;
    /// older events are evicted, the terminal event is always last and
    /// therefore always replayable for a retained job).
    pub event_buffer: usize,
    /// An external stop flag (the binary's signal handler sets it);
    /// polled alongside the internal one.
    pub stop: Option<&'static AtomicBool>,
}

impl Default for HubConfig {
    fn default() -> Self {
        Self {
            bind: "127.0.0.1:0".to_owned(),
            workers: 2,
            sim_workers: std::thread::available_parallelism().map_or(1, |n| n.get().min(4)),
            queue_capacity: 16,
            cache_path: None,
            cache_dir: None,
            measure_workers: Vec::new(),
            event_buffer: 64,
            stop: None,
        }
    }
}

/// What [`Hub::run`] hands back after a graceful shutdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HubSummary {
    /// Jobs that finished with a report.
    pub completed: usize,
    /// Jobs that failed (including those cancelled by the shutdown).
    pub failed: usize,
    /// Result-cache entries held at shutdown (and flushed to the cache
    /// file, when one is configured).
    pub cache_entries: usize,
}

/// One queued job: its id, spec, priority, and requested worker
/// budget. Events reach the submitting (or following) connection
/// through the [`EventHub`], not a field here — the event stream must
/// outlive the connection that submitted the job.
struct Job {
    id: u64,
    spec: JobSpec,
    priority: i64,
    sim_workers: Option<usize>,
}

/// Jobs already terminal whose event logs are retained for late
/// `follow` requests; older finished jobs are evicted.
const RETAINED_FINISHED: usize = 16;

/// One job's event log: the bounded replay buffer plus the connection
/// currently subscribed to the live stream.
struct JobLog {
    events: VecDeque<JsonValue>,
    subscriber: Option<Sender<JsonValue>>,
    terminal: bool,
}

/// The per-job event fan-out: every published event lands in the job's
/// bounded replay buffer and is forwarded to its current subscriber.
/// `follow` swaps the subscriber and replays the buffer, which is what
/// lets a reconnecting client resume a live (or recently finished)
/// job's stream.
struct EventHub {
    capacity: usize,
    inner: Mutex<EventLog>,
}

#[derive(Default)]
struct EventLog {
    jobs: HashMap<u64, JobLog>,
    /// Terminal jobs in finishing order, for bounded retention.
    finished: VecDeque<u64>,
}

impl EventHub {
    fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), inner: Mutex::new(EventLog::default()) }
    }

    /// Starts a job's log with `subscriber` attached.
    fn register(&self, id: u64, subscriber: Sender<JsonValue>) {
        let mut inner = self.inner.lock().expect("event hub poisoned");
        inner.jobs.insert(
            id,
            JobLog { events: VecDeque::new(), subscriber: Some(subscriber), terminal: false },
        );
    }

    /// Appends `event` to the job's replay buffer and forwards it to
    /// the current subscriber (a dead subscriber is ignored — the
    /// buffer is what a future `follow` replays). A `done`/`failed`
    /// event marks the log terminal and starts its retention clock.
    fn publish(&self, id: u64, event: JsonValue) {
        let mut inner = self.inner.lock().expect("event hub poisoned");
        let newly_terminal = {
            let Some(log) = inner.jobs.get_mut(&id) else { return };
            if log.events.len() >= self.capacity {
                log.events.pop_front();
            }
            let terminal = matches!(
                event.get("state").and_then(JsonValue::as_str),
                Some("done") | Some("failed")
            );
            log.events.push_back(event.clone());
            if let Some(subscriber) = &log.subscriber {
                let _ = subscriber.send(event);
            }
            let newly = terminal && !log.terminal;
            log.terminal |= terminal;
            newly
        };
        if newly_terminal {
            inner.finished.push_back(id);
            while inner.finished.len() > RETAINED_FINISHED {
                if let Some(evicted) = inner.finished.pop_front() {
                    inner.jobs.remove(&evicted);
                }
            }
        }
    }

    /// Re-attaches a job's stream to `subscriber`: the previous
    /// subscriber (if any) receives a synthetic `detached` event (not
    /// buffered — it describes the old connection, not the job), and
    /// the buffered events are returned for replay. `Err` carries the
    /// `error` frame for an unknown or evicted job.
    fn follow(&self, id: u64, subscriber: Sender<JsonValue>) -> Result<Vec<JsonValue>, JsonValue> {
        let mut inner = self.inner.lock().expect("event hub poisoned");
        let Some(log) = inner.jobs.get_mut(&id) else {
            return Err(protocol::error(&format!(
                "follow `job` {id} is unknown (never submitted, or its events were evicted)"
            )));
        };
        if let Some(previous) = log.subscriber.replace(subscriber) {
            let _ = previous.send(protocol::event(id, "detached", vec![]));
        }
        Ok(log.events.iter().cloned().collect())
    }
}

/// Pops the job to run next: highest priority first, FIFO (lowest id)
/// within a priority.
fn take_next(queue: &mut VecDeque<Job>) -> Option<Job> {
    let (at, _) = queue
        .iter()
        .enumerate()
        .max_by_key(|(_, job)| (job.priority, std::cmp::Reverse(job.id)))?;
    queue.remove(at)
}

#[derive(Default)]
struct Stats {
    queued: usize,
    running: usize,
    completed: usize,
    failed: usize,
}

/// State shared by the listener, connection threads, and executors.
struct Shared {
    explorer: Explorer,
    config: HubConfig,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    stats: Mutex<Stats>,
    events: EventHub,
    next_job: AtomicU64,
    stop: AtomicBool,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
            || self.config.stop.is_some_and(|flag| flag.load(Ordering::SeqCst))
    }

    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }

    fn with_stats<T>(&self, act: impl FnOnce(&mut Stats) -> T) -> T {
        act(&mut self.stats.lock().expect("hub stats poisoned"))
    }

    /// Checkpoints the shared cache; a hub without a cache location
    /// reports its in-memory entry count. A `--cache-dir` flushes only
    /// the shards dirtied since the previous checkpoint, a `--cache`
    /// file takes the load/merge/atomic-rename path.
    fn checkpoint(&self) -> Result<usize, Diagnostic> {
        if let Some(plan) = fault::active() {
            if plan.tick("hub.checkpoint") == Some(FaultAction::Fail) {
                return Err(Diagnostic::error("injected checkpoint failure at hub.checkpoint"));
            }
        }
        match (&self.config.cache_dir, &self.config.cache_path) {
            (Some(dir), _) => self.explorer.save_cache_dir(dir).map(|stats| stats.entries),
            (None, Some(path)) => self.explorer.save_cache(path),
            (None, None) => Ok(self.explorer.cache_len()),
        }
    }

    fn hello(&self) -> JsonValue {
        protocol::tagged(
            "hello",
            vec![
                ("schema".to_owned(), protocol::SCHEMA.into()),
                ("cache_entries".to_owned(), self.explorer.cache_len().into()),
                ("queue_capacity".to_owned(), self.config.queue_capacity.into()),
                ("workers".to_owned(), self.config.workers.into()),
            ],
        )
    }

    fn status(&self) -> JsonValue {
        let (queued, running, completed, failed) =
            self.with_stats(|s| (s.queued, s.running, s.completed, s.failed));
        protocol::tagged(
            "status",
            vec![
                ("queued".to_owned(), queued.into()),
                ("running".to_owned(), running.into()),
                ("completed".to_owned(), completed.into()),
                ("failed".to_owned(), failed.into()),
                ("cache_entries".to_owned(), self.explorer.cache_len().into()),
                ("dedup_hits".to_owned(), self.explorer.dedup_hits().into()),
            ],
        )
    }

    /// Validates and enqueues one job. `Err` carries the reply frame to
    /// send instead of `accepted` (an `error` for a bad spec, a
    /// `rejected` for a full queue).
    fn submit(
        &self,
        spec: JobSpec,
        priority: i64,
        sim_workers: Option<usize>,
        events: Sender<JsonValue>,
    ) -> Result<(u64, usize), JsonValue> {
        if let Err(err) = spec.build() {
            return Err(protocol::error(&err.message));
        }
        let mut queue = self.queue.lock().expect("hub queue poisoned");
        if queue.len() >= self.config.queue_capacity {
            return Err(protocol::tagged(
                "rejected",
                vec![
                    ("reason".to_owned(), "queue full".into()),
                    ("queued".to_owned(), queue.len().into()),
                    ("queue_capacity".to_owned(), self.config.queue_capacity.into()),
                ],
            ));
        }
        let id = self.next_job.fetch_add(1, Ordering::Relaxed);
        // How many queued jobs would run before this one under the
        // priority-then-FIFO discipline.
        let ahead = queue.iter().filter(|job| job.priority >= priority).count();
        // Register and publish `queued` *before* the queue push (still
        // under the queue lock), so no executor can publish `running`
        // first.
        self.events.register(id, events);
        self.events.publish(id, protocol::event(id, "queued", vec![]));
        queue.push_back(Job { id, spec, priority, sim_workers });
        drop(queue);
        self.with_stats(|s| s.queued += 1);
        self.available.notify_one();
        Ok((id, ahead))
    }
}

/// The simulation-worker budget one job actually gets: its requested
/// cap (default: everything), clamped to the hub's `--sim-workers` and
/// to a fair share of it across the jobs running right now — so one
/// huge job cannot monopolize the pool across rungs.
fn job_budget(total: usize, requested: Option<usize>, running: usize) -> usize {
    let total = total.max(1);
    let fair = (total / running.max(1)).max(1);
    requested.unwrap_or(total).clamp(1, total).min(fair)
}

/// A running hub, bound but not yet serving.
pub struct Hub {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Hub {
    /// Binds the listener and loads the persisted cache (if any).
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] for bind failures and unreadable cache
    /// files.
    pub fn bind(config: HubConfig) -> Result<Hub, Diagnostic> {
        let mut explorer = match (&config.cache_dir, &config.cache_path) {
            (Some(dir), _) => Explorer::with_cache_dir(dir)?,
            (None, Some(path)) => Explorer::with_cache_file(path)?,
            (None, None) => Explorer::new(),
        };
        if !config.measure_workers.is_empty() {
            let pool = RemotePool::new(config.measure_workers.clone())
                .in_flight(config.sim_workers.max(1));
            explorer.set_measure_backend(Box::new(pool));
        }
        let listener = TcpListener::bind(&config.bind)
            .map_err(|err| Diagnostic::error(format!("cannot bind {}: {err}", config.bind)))?;
        let addr = listener
            .local_addr()
            .map_err(|err| Diagnostic::error(format!("cannot resolve bound address: {err}")))?;
        Ok(Hub {
            listener,
            addr,
            shared: Arc::new(Shared {
                explorer,
                events: EventHub::new(config.event_buffer),
                config,
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                stats: Mutex::new(Stats::default()),
                next_job: AtomicU64::new(1),
                stop: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until a stop is requested (SIGTERM via
    /// [`HubConfig::stop`], or a client `shutdown`), then drains
    /// gracefully and flushes the cache.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] for listener failures and for a failed
    /// final cache flush. Per-connection and per-job errors are
    /// reported to the affected client, never here.
    pub fn run(self) -> Result<HubSummary, Diagnostic> {
        self.listener
            .set_nonblocking(true)
            .map_err(|err| Diagnostic::error(format!("cannot poll the listener: {err}")))?;
        let mut executors = Vec::new();
        for _ in 0..self.shared.config.workers {
            let shared = Arc::clone(&self.shared);
            executors.push(std::thread::spawn(move || executor_loop(&shared)));
        }
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shared.stopping() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    connections.push(std::thread::spawn(move || {
                        // A connection error affects one client only;
                        // the daemon keeps serving.
                        let _ = serve_connection(&shared, stream);
                    }));
                    connections.retain(|handle| !handle.is_finished());
                }
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(err) => {
                    self.shared.request_stop();
                    return Err(Diagnostic::error(format!("listener failed: {err}")));
                }
            }
        }

        // Graceful drain: executors cancel at the next rung boundary...
        self.shared.request_stop();
        for executor in executors {
            let _ = executor.join();
        }
        // ...jobs still queued fail explicitly...
        let leftover: Vec<Job> = {
            let mut queue = self.shared.queue.lock().expect("hub queue poisoned");
            queue.drain(..).collect()
        };
        for job in leftover {
            self.shared.with_stats(|s| {
                s.queued -= 1;
                s.failed += 1;
            });
            self.shared.events.publish(
                job.id,
                protocol::event(
                    job.id,
                    "failed",
                    vec![("reason".to_owned(), "hub shutting down".into())],
                ),
            );
        }
        // ...connections forward those terminal events, say goodbye,
        // and hang up.
        for connection in connections {
            let _ = connection.join();
        }
        let cache_entries = self.shared.checkpoint()?;
        let (completed, failed) = self.shared.with_stats(|s| (s.completed, s.failed));
        Ok(HubSummary { completed, failed, cache_entries })
    }
}

/// Serves one client connection. All socket writes happen here.
fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) -> Result<(), Diagnostic> {
    let fail = |err: std::io::Error| Diagnostic::error(format!("connection setup failed: {err}"));
    // The accepted socket must block (the listener polls), but with a
    // short read timeout so queued events and the stop flag are polled
    // between frames.
    stream.set_nonblocking(false).map_err(fail)?;
    stream.set_read_timeout(Some(Duration::from_millis(50))).map_err(fail)?;
    let mut writer = stream.try_clone().map_err(fail)?;
    let mut reader = FrameReader::new(BufReader::new(stream));
    let (events_tx, events_rx): (Sender<JsonValue>, Receiver<JsonValue>) = mpsc::channel();
    // Jobs this connection submitted that have not reached a terminal
    // state; the goodbye frame waits for them.
    let mut active = 0usize;
    let io = |err: std::io::Error| Diagnostic::error(format!("connection write failed: {err}"));
    loop {
        while let Ok(event) = events_rx.try_recv() {
            let state = event.get("state").and_then(JsonValue::as_str);
            if matches!(state, Some("done") | Some("failed") | Some("detached")) {
                // `detached`: another connection took over this job's
                // stream via `follow`; it no longer holds our goodbye.
                active = active.saturating_sub(1);
            }
            write_frame_at("hub.event", &mut writer, &event).map_err(io)?;
        }
        if shared.stopping() && active == 0 {
            let _ = write_frame(&mut writer, &protocol::tagged("shutting_down", vec![]));
            return Ok(());
        }
        let frame = reader.next_frame().inspect_err(|err| {
            // Framing/JSON errors are fatal to the connection; say why
            // before hanging up (best effort — the peer may be gone).
            let _ = write_frame(&mut writer, &protocol::error(&err.message));
        })?;
        match frame {
            Frame::Idle => continue,
            Frame::Eof => return Ok(()),
            Frame::Value(value) => {
                let reply = match Request::from_json(&value) {
                    Err(err) => protocol::error(&err.message),
                    Ok(Request::Hello) => shared.hello(),
                    Ok(Request::Status) => shared.status(),
                    Ok(Request::Shutdown) => {
                        shared.request_stop();
                        // The goodbye frame is sent (above) once this
                        // connection's jobs drain.
                        continue;
                    }
                    Ok(Request::Submit { spec, priority, sim_workers }) => {
                        match shared.submit(*spec, priority, sim_workers, events_tx.clone()) {
                            Err(reply) => reply,
                            Ok((id, ahead)) => {
                                active += 1;
                                let accepted = protocol::tagged(
                                    "accepted",
                                    vec![
                                        ("job".to_owned(), id.into()),
                                        ("queued_ahead".to_owned(), ahead.into()),
                                    ],
                                );
                                write_frame(&mut writer, &accepted).map_err(io)?;
                                // The `queued` event (already published)
                                // arrives through the events channel.
                                continue;
                            }
                        }
                    }
                    Ok(Request::Follow { job }) => {
                        match shared.events.follow(job, events_tx.clone()) {
                            Err(reply) => reply,
                            Ok(replay) => {
                                let replayed_terminal = replay.iter().any(|event| {
                                    matches!(
                                        event.get("state").and_then(JsonValue::as_str),
                                        Some("done") | Some("failed")
                                    )
                                });
                                if !replayed_terminal {
                                    // A live job: its terminal event will
                                    // arrive on our channel; hold the
                                    // goodbye for it.
                                    active += 1;
                                }
                                let following = protocol::tagged(
                                    "following",
                                    vec![
                                        ("job".to_owned(), job.into()),
                                        ("replayed".to_owned(), replay.len().into()),
                                    ],
                                );
                                write_frame(&mut writer, &following).map_err(io)?;
                                for event in &replay {
                                    write_frame_at("hub.event", &mut writer, event).map_err(io)?;
                                }
                                continue;
                            }
                        }
                    }
                };
                write_frame(&mut writer, &reply).map_err(io)?;
            }
        }
    }
}

/// One executor: drains the queue until the hub stops.
fn executor_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("hub queue poisoned");
            loop {
                if shared.stopping() {
                    return;
                }
                if let Some(job) = take_next(&mut queue) {
                    break job;
                }
                let (reacquired, _) = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("hub queue poisoned");
                queue = reacquired;
            }
        };
        let running = shared.with_stats(|s| {
            s.queued -= 1;
            s.running += 1;
            s.running
        });
        let budget = job_budget(shared.config.sim_workers, job.sim_workers, running);
        shared.events.publish(
            job.id,
            protocol::event(job.id, "running", vec![("sim_workers".to_owned(), budget.into())]),
        );
        let started = Instant::now();
        let outcome = run_job(shared, &job, budget);
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        match outcome {
            Ok(report) => {
                shared.with_stats(|s| {
                    s.running -= 1;
                    s.completed += 1;
                });
                shared.events.publish(
                    job.id,
                    protocol::event(
                        job.id,
                        "done",
                        vec![
                            ("full_sims_performed".to_owned(), report.full_sims_performed.into()),
                            (
                                "sims_per_sec".to_owned(),
                                report.sims_per_sec().map_or(JsonValue::Null, JsonValue::from),
                            ),
                            ("elapsed_ms".to_owned(), elapsed_ms.into()),
                            ("report".to_owned(), wire::report_to_json(&report)),
                        ],
                    ),
                );
            }
            Err(err) => {
                shared.with_stats(|s| {
                    s.running -= 1;
                    s.failed += 1;
                });
                shared.events.publish(
                    job.id,
                    protocol::event(
                        job.id,
                        "failed",
                        vec![("reason".to_owned(), err.message.into())],
                    ),
                );
            }
        }
    }
}

/// Runs one job on the shared explorer, streaming progress and
/// checkpointing the cache at every rung boundary.
fn run_job(shared: &Arc<Shared>, job: &Job, budget: usize) -> Result<ExploreReport, Diagnostic> {
    let request = job.spec.build()?;
    let observer = |event: &ProgressEvent| {
        shared.events.publish(job.id, protocol::progress_event(job.id, event));
        if matches!(event, ProgressEvent::RungComplete { .. }) {
            // A failed checkpoint must not kill the sweep; the final
            // flush at shutdown will surface persistent trouble.
            if let Err(err) = shared.checkpoint() {
                eprintln!("axi4mlir-hub: cache checkpoint failed: {}", err.message);
            }
        }
        !shared.stopping()
    };
    shared.explorer.explore_streaming(
        request.space.as_dyn(),
        request.prune,
        &request.search,
        budget,
        &request.objectives,
        &observer,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, priority: i64) -> Job {
        Job { id, spec: JobSpec::default(), priority, sim_workers: None }
    }

    #[test]
    fn the_queue_pops_priority_first_then_fifo() {
        let mut queue: VecDeque<Job> = VecDeque::new();
        for (id, priority) in [(1, 0), (2, 5), (3, 5), (4, -1), (5, 0)] {
            queue.push_back(job(id, priority));
        }
        let order: Vec<u64> =
            std::iter::from_fn(|| take_next(&mut queue).map(|job| job.id)).collect();
        assert_eq!(order, [2, 3, 1, 5, 4]);
        assert!(take_next(&mut queue).is_none());
    }

    #[test]
    fn budgets_are_a_fair_share_capped_by_the_request() {
        // A lone job gets the whole pool unless it asked for less.
        assert_eq!(job_budget(8, None, 1), 8);
        assert_eq!(job_budget(8, Some(2), 1), 2);
        // Concurrent jobs split the pool; a request cannot exceed the
        // fair share, and the floor is always one worker.
        assert_eq!(job_budget(8, None, 2), 4);
        assert_eq!(job_budget(8, Some(6), 2), 4);
        assert_eq!(job_budget(8, Some(3), 2), 3);
        assert_eq!(job_budget(2, None, 5), 1);
        assert_eq!(job_budget(0, Some(9), 1), 1);
    }

    #[test]
    fn event_logs_replay_bounded_and_fail_unknown_follows() {
        let hub = EventHub::new(3);
        let (tx, rx) = mpsc::channel();
        hub.register(7, tx);
        for n in 0..5u64 {
            hub.publish(7, protocol::event(7, "progress", vec![("n".to_owned(), n.into())]));
        }
        // The live subscriber saw everything…
        assert_eq!(rx.try_iter().count(), 5);
        // …but the replay buffer keeps only the newest 3.
        let (tx2, rx2) = mpsc::channel();
        let replay = hub.follow(7, tx2).unwrap();
        assert_eq!(replay.len(), 3);
        assert_eq!(replay[0].get("n").and_then(JsonValue::as_u64), Some(2));
        // The old subscriber was told it lost the stream (not buffered).
        assert_eq!(rx.try_iter().count(), 1);
        // New events reach the new subscriber only.
        hub.publish(7, protocol::event(7, "done", vec![]));
        assert_eq!(rx2.try_iter().count(), 1);
        assert_eq!(rx.try_iter().count(), 0);
        // A terminal job stays followable; an unknown one blames `job`.
        let (tx3, _rx3) = mpsc::channel();
        assert!(hub.follow(7, tx3).is_ok());
        let (tx4, _rx4) = mpsc::channel();
        let err = hub.follow(99, tx4).unwrap_err();
        assert_eq!(err.get("type").and_then(JsonValue::as_str), Some("error"));
        assert!(err.get("reason").and_then(JsonValue::as_str).unwrap().contains("job"));
    }

    #[test]
    fn finished_job_logs_are_evicted_beyond_the_retention_window() {
        let hub = EventHub::new(4);
        for id in 0..(RETAINED_FINISHED as u64 + 5) {
            let (tx, _rx) = mpsc::channel();
            hub.register(id, tx);
            hub.publish(id, protocol::event(id, "done", vec![]));
        }
        let (tx, _rx) = mpsc::channel();
        assert!(hub.follow(0, tx).is_err(), "oldest finished job evicted");
        let (tx, _rx) = mpsc::channel();
        assert!(hub.follow(RETAINED_FINISHED as u64 + 4, tx).is_ok(), "newest retained");
    }
}
