//! The `axi4mlir-hub/v1` wire vocabulary.
//!
//! Every message is one JSON object per line (see
//! [`axi4mlir_support::proto`] for the framing), discriminated by its
//! `type` member. Clients send [`Request`]s; the server answers with
//! reply frames (`hello`, `accepted`, `rejected`, `error`, `status`,
//! `shutting_down`) and streams `event` frames for submitted jobs. The
//! full protocol, field by field, is documented in `docs/PROTOCOL.md` —
//! and a transcript from that document is replayed against a live hub
//! by the integration tests, so the prose cannot drift from this code.

use axi4mlir_core::explore::{JobSpec, ProgressEvent};
use axi4mlir_support::diag::Diagnostic;
use axi4mlir_support::json::JsonValue;

/// The protocol schema tag, exchanged in `hello`.
pub const SCHEMA: &str = "axi4mlir-hub/v1";

/// One client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Identify the hub: schema, cache size, queue capacity, workers.
    Hello,
    /// Queue one exploration job at a priority (default 0; higher runs
    /// first, ties run in submission order).
    Submit {
        /// The job to queue.
        spec: Box<JobSpec>,
        /// Scheduling priority; the executor pool always takes the
        /// highest-priority queued job, FIFO within a priority.
        priority: i64,
        /// Requested per-job simulation-worker budget. `None` accepts
        /// the hub's fair share; `Some(n)` caps this job at `n` workers
        /// (further clamped to the hub's `--sim-workers`).
        sim_workers: Option<usize>,
    },
    /// Resume a job's event stream on this connection: replay the
    /// buffered events, then stream live ones (the reconnect path for a
    /// client whose connection died mid-job).
    Follow {
        /// The job id an earlier `accepted` reply named.
        job: u64,
    },
    /// Report queue/cache counters.
    Status,
    /// Ask the hub to shut down gracefully.
    Shutdown,
}

impl Request {
    /// Parses one request frame.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] for non-objects, unknown `type` tags,
    /// and malformed `submit` jobs. These are *application* errors: the
    /// server replies with an `error` frame and keeps the connection.
    pub fn from_json(value: &JsonValue) -> Result<Request, Diagnostic> {
        let kind = value
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| Diagnostic::error("request must be an object with a `type` member"))?;
        match kind {
            "hello" => Ok(Request::Hello),
            "status" => Ok(Request::Status),
            "shutdown" => Ok(Request::Shutdown),
            "submit" => {
                let job = value
                    .get("job")
                    .ok_or_else(|| Diagnostic::error("submit requires a `job` member"))?;
                let priority = match value.get("priority") {
                    None => 0,
                    Some(raw) => raw
                        .as_i64()
                        .ok_or_else(|| Diagnostic::error("submit `priority` must be an integer"))?,
                };
                let sim_workers = match value.get("sim_workers") {
                    None => None,
                    Some(raw) => Some(raw.as_u64().filter(|&n| n > 0).ok_or_else(|| {
                        Diagnostic::error("submit `sim_workers` must be a positive integer")
                    })? as usize),
                };
                Ok(Request::Submit {
                    spec: Box::new(JobSpec::from_json(job)?),
                    priority,
                    sim_workers,
                })
            }
            "follow" => {
                let job = value
                    .get("job")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| Diagnostic::error("follow requires a numeric `job` member"))?;
                Ok(Request::Follow { job })
            }
            other => Err(Diagnostic::error(format!("unknown request type `{other}`"))),
        }
    }

    /// Serializes the request (the client side of [`Request::from_json`]).
    pub fn to_json(&self) -> JsonValue {
        match self {
            Request::Hello => tagged("hello", vec![]),
            Request::Status => tagged("status", vec![]),
            Request::Shutdown => tagged("shutdown", vec![]),
            Request::Submit { spec, priority, sim_workers } => {
                let mut members = vec![("job".to_owned(), spec.to_json())];
                // Priority 0 is the default; omitting it keeps the
                // frame identical to a pre-priority client's. Likewise
                // an unset worker budget stays off the wire.
                if *priority != 0 {
                    members.push(("priority".to_owned(), (*priority).into()));
                }
                if let Some(budget) = sim_workers {
                    members.push(("sim_workers".to_owned(), (*budget).into()));
                }
                tagged("submit", members)
            }
            Request::Follow { job } => tagged("follow", vec![("job".to_owned(), (*job).into())]),
        }
    }
}

/// Builds a `{"type": tag, ...members}` frame.
pub fn tagged(tag: &str, members: Vec<(String, JsonValue)>) -> JsonValue {
    let mut all = vec![("type".to_owned(), tag.into())];
    all.extend(members);
    JsonValue::object(all)
}

/// Builds an `error` reply.
pub fn error(reason: &str) -> JsonValue {
    tagged("error", vec![("reason".to_owned(), reason.into())])
}

/// Builds a job `event` frame in state `state` with extra members.
pub fn event(job: u64, state: &str, members: Vec<(String, JsonValue)>) -> JsonValue {
    let mut all = vec![("job".to_owned(), job.into()), ("state".to_owned(), state.into())];
    all.extend(members);
    tagged("event", all)
}

/// The `event` frame for one in-flight [`ProgressEvent`].
pub fn progress_event(job: u64, progress: &ProgressEvent) -> JsonValue {
    match progress {
        ProgressEvent::SpaceReady { space_size, survivors } => event(
            job,
            "space-ready",
            vec![
                ("space_size".to_owned(), (*space_size).into()),
                ("survivors".to_owned(), (*survivors).into()),
            ],
        ),
        ProgressEvent::RungComplete {
            fidelity,
            survivors,
            sims_performed,
            cache_hits,
            full_sims_performed,
        } => event(
            job,
            "rung-complete",
            vec![
                ("fidelity".to_owned(), fidelity.label().into()),
                ("survivors".to_owned(), (*survivors).into()),
                ("sims_performed".to_owned(), (*sims_performed).into()),
                ("cache_hits".to_owned(), (*cache_hits).into()),
                ("full_sims_performed".to_owned(), (*full_sims_performed).into()),
            ],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let spec = JobSpec { dims: Some((8, 8, 8)), ..JobSpec::default() };
        for request in [
            Request::Hello,
            Request::Status,
            Request::Shutdown,
            Request::Follow { job: 12 },
            Request::Submit { spec: Box::new(spec.clone()), priority: 0, sim_workers: None },
            Request::Submit { spec: Box::new(spec.clone()), priority: -3, sim_workers: None },
            Request::Submit { spec: Box::new(spec), priority: 0, sim_workers: Some(2) },
        ] {
            assert_eq!(Request::from_json(&request.to_json()).unwrap(), request);
        }
    }

    #[test]
    fn default_priority_stays_off_the_wire() {
        let spec = JobSpec { dims: Some((8, 8, 8)), ..JobSpec::default() };
        let plain =
            Request::Submit { spec: Box::new(spec.clone()), priority: 0, sim_workers: None }
                .to_json();
        assert!(plain.get("priority").is_none(), "priority 0 is implicit");
        assert!(plain.get("sim_workers").is_none(), "unset budget is implicit");
        let urgent =
            Request::Submit { spec: Box::new(spec), priority: 7, sim_workers: Some(3) }.to_json();
        assert_eq!(urgent.get("priority").unwrap().as_i64(), Some(7));
        assert_eq!(urgent.get("sim_workers").unwrap().as_u64(), Some(3));
        let fractional = JsonValue::parse(r#"{"type": "submit", "job": {}, "priority": 1.5}"#);
        let err = Request::from_json(&fractional.unwrap()).unwrap_err();
        assert!(err.message.contains("integer"));
        let zero = JsonValue::parse(r#"{"type": "submit", "job": {}, "sim_workers": 0}"#);
        let err = Request::from_json(&zero.unwrap()).unwrap_err();
        assert!(err.message.contains("sim_workers"));
    }

    #[test]
    fn follow_requires_a_job_id() {
        let bare = JsonValue::parse(r#"{"type": "follow"}"#).unwrap();
        assert!(Request::from_json(&bare).unwrap_err().message.contains("job"));
        let named = JsonValue::parse(r#"{"type": "follow", "job": 4}"#).unwrap();
        assert_eq!(Request::from_json(&named).unwrap(), Request::Follow { job: 4 });
    }

    #[test]
    fn bad_requests_are_application_errors() {
        let unknown = JsonValue::parse(r#"{"type": "teleport"}"#).unwrap();
        assert!(Request::from_json(&unknown).unwrap_err().message.contains("teleport"));
        let untyped = JsonValue::parse(r#"{"job": {}}"#).unwrap();
        assert!(Request::from_json(&untyped).is_err());
        let jobless = JsonValue::parse(r#"{"type": "submit"}"#).unwrap();
        assert!(Request::from_json(&jobless).unwrap_err().message.contains("job"));
    }

    #[test]
    fn progress_events_carry_the_rung_counters() {
        use axi4mlir_core::explore::Fidelity;
        let frame = progress_event(
            3,
            &ProgressEvent::RungComplete {
                fidelity: Fidelity::Proxy { level: 2 },
                survivors: 8,
                sims_performed: 10,
                cache_hits: 6,
                full_sims_performed: 0,
            },
        );
        assert_eq!(frame.get("type").unwrap().as_str(), Some("event"));
        assert_eq!(frame.get("state").unwrap().as_str(), Some("rung-complete"));
        assert_eq!(frame.get("fidelity").unwrap().as_str(), Some("proxy:2"));
        assert_eq!(frame.get("cache_hits").unwrap().as_u64(), Some(6));
    }
}
