//! Property tests pinning the batched DMA burst path to per-word
//! reference semantics.
//!
//! `DmaEngine::start_send` / `start_recv` move whole bursts through
//! [`StreamAccelerator::consume_burst`] / `produce_burst` instead of one
//! beat at a time. These tests replay arbitrary transfer sequences (any
//! offsets, lengths, and alignments — including failing ones) through the
//! real engine and through a per-word replica of the pre-burst engine,
//! and require *bit-identical* [`PerfCounters`], memory contents, device
//! state, and errors.

use proptest::prelude::*;

use std::collections::VecDeque;

use axi4mlir_sim::axi::{LoopbackAccelerator, StreamAccelerator};
use axi4mlir_sim::cost::CostModel;
use axi4mlir_sim::counters::PerfCounters;
use axi4mlir_sim::dma::{Direction, DmaConfig, DmaEngine, DmaError};
use axi4mlir_sim::mem::{SimAddr, SimMemory};

// -----------------------------------------------------------------
// A beat-order-sensitive FSM device
// -----------------------------------------------------------------

/// An accelerator whose output depends on the exact arrival order of
/// beats and which charges compute cycles per beat — if the burst path
/// reordered, dropped, or double-charged anything, this device would
/// diverge from the per-word replay. It deliberately keeps the default
/// `consume_burst` / `produce_burst` (the per-word forwarding path).
#[derive(Default)]
struct MixFsm {
    state: u32,
    out: VecDeque<u32>,
}

impl StreamAccelerator for MixFsm {
    fn name(&self) -> &str {
        "mixfsm"
    }

    fn reset(&mut self) {
        self.state = 0;
        self.out.clear();
    }

    fn consume_word(&mut self, word: u32, counters: &mut PerfCounters) {
        self.state = self.state.rotate_left(5) ^ word;
        counters.accel_compute_cycles += 1;
        counters.accel_macs += u64::from(word & 1);
        self.out.push_back(self.state);
    }

    fn pop_output_word(&mut self) -> Option<u32> {
        self.out.pop_front()
    }

    fn output_len(&self) -> usize {
        self.out.len()
    }
}

// -----------------------------------------------------------------
// The per-word reference engine
// -----------------------------------------------------------------

/// A replica of the DMA engine from before burst batching: identical
/// checks and charges, but every beat moves through `mem.read_u32` /
/// `consume_word` (send) and `pop_output_word` / `mem.write_u32` (recv).
struct RefDma {
    config: Option<DmaConfig>,
}

impl RefDma {
    fn init(&mut self, config: DmaConfig, counters: &mut PerfCounters, cost: &CostModel) {
        self.config = Some(config);
        counters.host_cycles += cost.dma_init_host_cycles;
        counters.instructions += 1;
    }

    fn checked(&self, direction: Direction, offset: u64, len: u64) -> Result<DmaConfig, DmaError> {
        let config = self.config.ok_or(DmaError::NotInitialized)?;
        if !len.is_multiple_of(4) {
            return Err(DmaError::UnalignedLength { len });
        }
        let capacity = match direction {
            Direction::Send => config.input_size,
            Direction::Recv => config.output_size,
        };
        if offset + len > capacity {
            return Err(DmaError::OutOfRange { direction, offset, len, capacity });
        }
        Ok(config)
    }

    fn start_send(
        &mut self,
        mem: &mut SimMemory,
        accel: &mut dyn StreamAccelerator,
        offset: u64,
        len: u64,
        counters: &mut PerfCounters,
        cost: &CostModel,
    ) -> Result<(), DmaError> {
        let config = self.checked(Direction::Send, offset, len)?;
        counters.host_cycles += cost.dma_start_host_cycles;
        counters.instructions += 1;
        counters.branch_instructions += 1;
        counters.dma_transactions += 1;
        counters.dma_bytes_to_accel += len;
        counters.device_cycles += cost.stream_device_cycles(len);
        let base = config.input_base.offset(offset);
        for i in 0..len / 4 {
            let word = mem.read_u32(base.offset(i * 4));
            accel.consume_word(word, counters);
        }
        Ok(())
    }

    fn start_recv(
        &mut self,
        mem: &mut SimMemory,
        accel: &mut dyn StreamAccelerator,
        offset: u64,
        len: u64,
        counters: &mut PerfCounters,
        cost: &CostModel,
    ) -> Result<(), DmaError> {
        let config = self.checked(Direction::Recv, offset, len)?;
        let words = len / 4;
        let available = accel.output_len() as u64;
        if available < words {
            return Err(DmaError::StreamUnderflow {
                requested_words: words,
                available_words: available,
            });
        }
        counters.host_cycles += cost.dma_start_host_cycles;
        counters.instructions += 1;
        counters.branch_instructions += 1;
        counters.dma_transactions += 1;
        counters.dma_bytes_from_accel += len;
        counters.device_cycles += cost.stream_device_cycles(len);
        let base = config.output_base.offset(offset);
        for i in 0..words {
            let word = accel.pop_output_word().expect("checked available");
            mem.write_u32(base.offset(i * 4), word);
        }
        Ok(())
    }

    fn wait(&mut self, counters: &mut PerfCounters, cost: &CostModel) {
        counters.host_cycles += cost.dma_wait_host_cycles;
        counters.instructions += 1;
        counters.branch_instructions += 2;
    }
}

// -----------------------------------------------------------------
// Replay harness
// -----------------------------------------------------------------

const REGION: u64 = 256;

struct Stack {
    mem: SimMemory,
    input: SimAddr,
    output: SimAddr,
    counters: PerfCounters,
}

fn stack(seed_words: &[u32]) -> Stack {
    let mut mem = SimMemory::new();
    let input = mem.alloc(REGION, 64);
    let output = mem.alloc(REGION, 64);
    for (i, w) in seed_words.iter().enumerate() {
        mem.write_u32(input.offset(i as u64 * 4), *w);
    }
    Stack { mem, input, output, counters: PerfCounters::new() }
}

/// One transfer request: direction selector plus raw offset/length in
/// bytes (any alignment, possibly exceeding the staging region).
type Op = (u8, u64, u64);

/// Replays `ops` on both engines over the same device type and asserts
/// every observable — per-op results, counters, both staging regions,
/// and the drained output FIFO — is bit-identical.
fn assert_burst_matches_reference<A: StreamAccelerator + Default>(
    seed_words: &[u32],
    ops: &[Op],
) -> Result<(), TestCaseError> {
    let cost = CostModel::pynq_z2();

    let mut real = stack(seed_words);
    let mut real_accel = A::default();
    let mut real_dma = DmaEngine::new();
    real_dma.init(
        DmaConfig {
            id: 0,
            input_base: real.input,
            input_size: REGION,
            output_base: real.output,
            output_size: REGION,
        },
        &mut real.counters,
        &cost,
    );

    let mut reference = stack(seed_words);
    let mut ref_accel = A::default();
    let mut ref_dma = RefDma { config: None };
    ref_dma.init(
        DmaConfig {
            id: 0,
            input_base: reference.input,
            input_size: REGION,
            output_base: reference.output,
            output_size: REGION,
        },
        &mut reference.counters,
        &cost,
    );

    for (i, &(kind, offset, len)) in ops.iter().enumerate() {
        if kind % 2 == 0 {
            let a = real_dma.start_send(
                &mut real.mem,
                &mut real_accel,
                offset,
                len,
                &mut real.counters,
                &cost,
            );
            let b = ref_dma.start_send(
                &mut reference.mem,
                &mut ref_accel,
                offset,
                len,
                &mut reference.counters,
                &cost,
            );
            prop_assert_eq!(&a, &b, "send op {} (offset {}, len {})", i, offset, len);
            if a.is_ok() {
                real_dma.wait_send_completion(&mut real.counters, &cost);
                ref_dma.wait(&mut reference.counters, &cost);
            }
        } else {
            let a = real_dma.start_recv(
                &mut real.mem,
                &mut real_accel,
                offset,
                len,
                &mut real.counters,
                &cost,
            );
            let b = ref_dma.start_recv(
                &mut reference.mem,
                &mut ref_accel,
                offset,
                len,
                &mut reference.counters,
                &cost,
            );
            prop_assert_eq!(&a, &b, "recv op {} (offset {}, len {})", i, offset, len);
            if a.is_ok() {
                real_dma.wait_recv_completion(&mut real.counters, &cost);
                ref_dma.wait(&mut reference.counters, &cost);
            }
        }
        prop_assert_eq!(real.counters, reference.counters, "counters diverged at op {}", i);
    }

    prop_assert_eq!(
        real.mem.read_bytes(real.input, REGION),
        reference.mem.read_bytes(reference.input, REGION)
    );
    prop_assert_eq!(
        real.mem.read_bytes(real.output, REGION),
        reference.mem.read_bytes(reference.output, REGION)
    );
    prop_assert_eq!(real_accel.output_len(), ref_accel.output_len());
    loop {
        let (a, b) = (real_accel.pop_output_word(), ref_accel.pop_output_word());
        prop_assert_eq!(a, b, "leftover FIFO beats must match");
        if a.is_none() {
            break;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An FSM device using the *default* per-word burst forwarding:
    /// decode order, compute-cycle charges, and produced beats must be
    /// bit-identical to the pre-burst per-word engine on any sequence.
    #[test]
    fn fsm_bursts_match_per_word_reference(
        seed in proptest::collection::vec(0u32..u32::MAX, 64),
        ops in proptest::collection::vec((0u8..2, 0u64..300, 0u64..300), 1..24),
    ) {
        assert_burst_matches_reference::<MixFsm>(&seed, &ops)?;
    }

    /// The loopback device *overrides* `consume_burst` with a bulk FIFO
    /// append; the override must stay indistinguishable from per-word
    /// streaming.
    #[test]
    fn loopback_bursts_match_per_word_reference(
        seed in proptest::collection::vec(0u32..u32::MAX, 64),
        ops in proptest::collection::vec((0u8..2, 0u64..300, 0u64..300), 1..24),
    ) {
        assert_burst_matches_reference::<LoopbackAccelerator>(&seed, &ops)?;
    }

    /// Word-aligned in-range sequences (every op succeeds): the strongest
    /// form of the equivalence, with no error paths to hide behind.
    #[test]
    fn aligned_bursts_match_per_word_reference(
        seed in proptest::collection::vec(0u32..u32::MAX, 64),
        ops in proptest::collection::vec((0u8..2, 0u64..32, 0u64..33), 1..24),
    ) {
        // Scale to whole words inside the region; send before recv often
        // enough that recvs find beats to drain.
        let ops: Vec<Op> = ops
            .iter()
            .map(|&(kind, off_w, len_w)| {
                let len = (len_w * 4).min(REGION);
                let off = (off_w * 4).min(REGION - len);
                (kind, off, len)
            })
            .collect();
        assert_burst_matches_reference::<MixFsm>(&seed, &ops)?;
    }
}
