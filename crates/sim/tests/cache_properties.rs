//! Property-based tests of the cache hierarchy: the invariants every
//! experiment's counters rest on.

use proptest::prelude::*;

use axi4mlir_sim::cache::{AccessKind, CacheConfig, CacheHierarchy};

fn small_hierarchy() -> CacheHierarchy {
    // 2 KiB L1 (32B lines, 4-way), 16 KiB L2 — small enough for proptest to
    // exercise evictions.
    CacheHierarchy::new(&[CacheConfig::new(2048, 32, 4), CacheConfig::new(16 * 1024, 32, 8)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Immediately re-accessing any address hits L1.
    #[test]
    fn repeat_access_hits(addrs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = small_hierarchy();
        for addr in &addrs {
            h.access(*addr, 4, AccessKind::Read);
            let again = h.access(*addr, 4, AccessKind::Read);
            prop_assert_eq!(again.l1_misses, 0, "address {} must be resident", addr);
        }
    }

    /// A working set that fits in L1 becomes fully resident after one pass.
    #[test]
    fn small_working_set_stays_resident(base in 0u64..1_000_000) {
        let mut h = small_hierarchy();
        let lines = 16u64; // 512 B out of 2 KiB: comfortably resident
        for pass in 0..3 {
            for i in 0..lines {
                let o = h.access(base + i * 32, 4, AccessKind::Read);
                if pass > 0 {
                    prop_assert_eq!(o.l1_misses, 0, "pass {} line {}", pass, i);
                }
            }
        }
    }

    /// The hierarchy is deterministic: the same trace gives the same stats.
    #[test]
    fn traces_are_deterministic(addrs in proptest::collection::vec(0u64..100_000, 1..300)) {
        let run = |addrs: &[u64]| {
            let mut h = small_hierarchy();
            for a in addrs {
                h.access(*a, 4, AccessKind::Read);
            }
            (h.l1_stats(), h.l2_stats())
        };
        prop_assert_eq!(run(&addrs), run(&addrs));
    }

    /// Misses never exceed accesses, and L2 sees exactly the L1 misses.
    #[test]
    fn miss_accounting_is_consistent(addrs in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = small_hierarchy();
        for a in &addrs {
            h.access(*a, 4, AccessKind::Write);
        }
        let l1 = h.l1_stats();
        let l2 = h.l2_stats();
        prop_assert_eq!(l1.hits + l1.misses, l1.accesses);
        prop_assert_eq!(l2.accesses, l1.misses, "L2 lookups = L1 misses");
        prop_assert!(l2.misses <= l2.accesses);
    }

    /// Streaming a larger working set can never produce fewer L1 misses
    /// than a prefix of it (monotonicity under extension of the trace).
    #[test]
    fn misses_monotone_in_trace_length(addrs in proptest::collection::vec(0u64..1_000_000, 2..300)) {
        let mut h1 = small_hierarchy();
        let cut = addrs.len() / 2;
        for a in &addrs[..cut] {
            h1.access(*a, 4, AccessKind::Read);
        }
        let prefix_misses = h1.l1_stats().misses;
        let mut h2 = small_hierarchy();
        for a in &addrs {
            h2.access(*a, 4, AccessKind::Read);
        }
        prop_assert!(h2.l1_stats().misses >= prefix_misses);
    }

    /// Unaligned multi-byte accesses touch the right number of lines.
    #[test]
    fn span_lookup_counts(addr in 0u64..100_000, bytes in 1u64..96) {
        let mut h = small_hierarchy();
        let o = h.access(addr, bytes, AccessKind::Read);
        let first = addr / 32;
        let last = (addr + bytes - 1) / 32;
        prop_assert_eq!(o.l1_lookups, last - first + 1);
    }
}

/// Thrashing beyond associativity: cycling through `ways + 1` lines of one
/// set misses every time with true LRU.
#[test]
fn lru_thrash_pattern_always_misses() {
    let cfg = CacheConfig::new(128, 32, 2); // 2 sets, 2 ways
    let mut h = CacheHierarchy::new(&[cfg]);
    let set_stride = 64; // lines mapping to the same set
    let lines = [0u64, set_stride, 2 * set_stride];
    // Warm: all miss. Then each subsequent access still misses (LRU cycle).
    for round in 0..4 {
        for l in lines {
            let o = h.access(l, 4, AccessKind::Read);
            assert_eq!(o.l1_misses, 1, "round {round} line {l}");
        }
    }
}
