//! AXI-Stream modelling: word FIFOs and the accelerator-side interface.
//!
//! The paper targets AXI-Stream (AXI-S) accelerators: the host never shares
//! memory with the device; instead the DMA engine streams 32-bit beats into
//! the accelerator's input FIFO and drains its output FIFO. Accelerators are
//! finite-state machines decoding a micro-ISA from the input stream
//! ([`StreamAccelerator::consume_word`]) and producing result words
//! ([`StreamAccelerator::pop_output_word`]).

use std::collections::VecDeque;

use crate::counters::PerfCounters;

/// A FIFO of 32-bit AXI-Stream beats.
///
/// # Examples
///
/// ```
/// use axi4mlir_sim::axi::AxiStreamFifo;
///
/// let mut fifo = AxiStreamFifo::new();
/// fifo.push(7);
/// fifo.push(9);
/// assert_eq!(fifo.len(), 2);
/// assert_eq!(fifo.pop(), Some(7));
/// ```
#[derive(Clone, Debug, Default)]
pub struct AxiStreamFifo {
    words: VecDeque<u32>,
}

impl AxiStreamFifo {
    /// Creates an empty FIFO.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues one beat.
    pub fn push(&mut self, word: u32) {
        self.words.push_back(word);
    }

    /// Dequeues the oldest beat.
    pub fn pop(&mut self) -> Option<u32> {
        self.words.pop_front()
    }

    /// Number of queued beats.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` when no beats are queued.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Drops all queued beats.
    pub fn clear(&mut self) {
        self.words.clear();
    }
}

/// Device-side interface of an AXI-Stream accelerator.
///
/// Implementations are functional *and* timed: they perform the real
/// arithmetic (so results can be verified) and charge compute cycles to the
/// [`PerfCounters`] passed with each beat, using Table I throughput figures.
///
/// The trait is object-safe; the SoC owns a `Box<dyn StreamAccelerator>`.
pub trait StreamAccelerator {
    /// Short identifier, e.g. `"v3_16"` or `"conv2d"`.
    fn name(&self) -> &str;

    /// Hardware reset: clears FIFOs and internal state.
    fn reset(&mut self);

    /// Feeds one 32-bit beat from the host. The accelerator decodes its
    /// micro-ISA from the beat stream and may run a computation (charging
    /// `accel_compute_cycles`/`device_cycles` and pushing result beats to
    /// the output FIFO).
    fn consume_word(&mut self, word: u32, counters: &mut PerfCounters);

    /// Feeds a whole DMA burst of little-endian beats.
    ///
    /// The default forwards each word to [`Self::consume_word`], so FSM
    /// decoding and cycle charging are beat-identical to per-word
    /// streaming; devices with word-oblivious input paths may override it
    /// with a bulk FIFO append.
    fn consume_burst(&mut self, bytes: &[u8], counters: &mut PerfCounters) {
        for chunk in bytes.chunks_exact(4) {
            let word = u32::from_le_bytes(chunk.try_into().expect("4-byte beat"));
            self.consume_word(word, counters);
        }
    }

    /// Pops one result beat, if available.
    fn pop_output_word(&mut self) -> Option<u32>;

    /// Drains one result beat per 4-byte chunk of `out`, little-endian.
    ///
    /// The caller guarantees [`Self::output_len`] covers the burst (the
    /// DMA engine's underflow check). The default pops word by word;
    /// devices may override it with a bulk FIFO drain.
    ///
    /// # Panics
    ///
    /// Panics if the output FIFO underflows mid-burst.
    fn produce_burst(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_exact_mut(4) {
            let word = self.pop_output_word().expect("checked available");
            chunk.copy_from_slice(&word.to_le_bytes());
        }
    }

    /// Number of result beats currently queued.
    fn output_len(&self) -> usize;

    /// Number of protocol violations observed (unknown opcodes, oversized
    /// configurations). Drivers are buggy if this is non-zero after a run;
    /// the default is for devices that cannot detect violations.
    fn protocol_errors(&self) -> u64 {
        0
    }
}

/// A trivial accelerator that echoes every input beat — used by DMA tests.
#[derive(Clone, Debug, Default)]
pub struct LoopbackAccelerator {
    out: AxiStreamFifo,
}

impl LoopbackAccelerator {
    /// Creates a loopback device.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StreamAccelerator for LoopbackAccelerator {
    fn name(&self) -> &str {
        "loopback"
    }

    fn reset(&mut self) {
        self.out.clear();
    }

    fn consume_word(&mut self, word: u32, _counters: &mut PerfCounters) {
        self.out.push(word);
    }

    fn consume_burst(&mut self, bytes: &[u8], _counters: &mut PerfCounters) {
        // Word-oblivious echo device: bulk-append the burst.
        for chunk in bytes.chunks_exact(4) {
            self.out.push(u32::from_le_bytes(chunk.try_into().expect("4-byte beat")));
        }
    }

    fn pop_output_word(&mut self) -> Option<u32> {
        self.out.pop()
    }

    fn output_len(&self) -> usize {
        self.out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_is_first_in_first_out() {
        let mut f = AxiStreamFifo::new();
        assert!(f.is_empty());
        for w in [1u32, 2, 3] {
            f.push(w);
        }
        assert_eq!(f.len(), 3);
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn fifo_clear_empties() {
        let mut f = AxiStreamFifo::new();
        f.push(1);
        f.clear();
        assert!(f.is_empty());
    }

    #[test]
    fn loopback_echoes() {
        let mut acc = LoopbackAccelerator::new();
        let mut counters = PerfCounters::new();
        acc.consume_word(0xAB, &mut counters);
        acc.consume_word(0xCD, &mut counters);
        assert_eq!(acc.output_len(), 2);
        assert_eq!(acc.pop_output_word(), Some(0xAB));
        assert_eq!(acc.pop_output_word(), Some(0xCD));
        assert_eq!(acc.name(), "loopback");
    }

    #[test]
    fn loopback_reset_drops_output() {
        let mut acc = LoopbackAccelerator::new();
        let mut counters = PerfCounters::new();
        acc.consume_word(1, &mut counters);
        acc.reset();
        assert_eq!(acc.output_len(), 0);
    }
}
