//! Simulated byte-addressable main memory.
//!
//! Buffers used by workloads, the DMA staging regions, and MLIR `memref`
//! allocations all live in one [`SimMemory`] so that the cache model sees a
//! single, realistic address space. Addresses start at a non-zero base (as on
//! real hardware, where low memory is reserved) and a bump allocator hands
//! out aligned regions.

use std::fmt;

/// Base address of the first allocation.
///
/// Chosen non-zero so address `0` can serve as a poison value and so that
/// cache-set indices are exercised realistically.
pub const BASE_ADDR: u64 = 0x1_0000;

/// A physical address in the simulated memory.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimAddr(pub u64);

impl SimAddr {
    /// Returns the address offset by `bytes`.
    #[must_use]
    pub fn offset(self, bytes: u64) -> SimAddr {
        SimAddr(self.0 + bytes)
    }
}

impl fmt::Debug for SimAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::Display for SimAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// Element types supported by the simulated buffers.
///
/// The paper's accelerators compute on `int32`; the host-side `linalg`
/// kernels also exist in `f32` form (Fig. 2 uses f32). Data travels over the
/// 32-bit AXI stream as raw words either way.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ElemType {
    /// 32-bit signed integer (the accelerator-native type).
    I32,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit signed integer (host-side index computations).
    I64,
    /// 64-bit IEEE float.
    F64,
}

impl ElemType {
    /// Size of one element in bytes.
    pub fn byte_width(self) -> u64 {
        match self {
            ElemType::I32 | ElemType::F32 => 4,
            ElemType::I64 | ElemType::F64 => 8,
        }
    }
}

impl fmt::Display for ElemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElemType::I32 => write!(f, "i32"),
            ElemType::F32 => write!(f, "f32"),
            ElemType::I64 => write!(f, "i64"),
            ElemType::F64 => write!(f, "f64"),
        }
    }
}

/// Simulated main memory with a bump allocator.
///
/// # Examples
///
/// ```
/// use axi4mlir_sim::mem::SimMemory;
///
/// let mut mem = SimMemory::new();
/// let buf = mem.alloc(64, 16);
/// mem.write_i32(buf, 42);
/// assert_eq!(mem.read_i32(buf), 42);
/// ```
#[derive(Clone)]
pub struct SimMemory {
    data: Vec<u8>,
    next: u64,
}

impl fmt::Debug for SimMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimMemory")
            .field("allocated_bytes", &(self.next - BASE_ADDR))
            .field("backing_len", &self.data.len())
            .finish()
    }
}

impl SimMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self { data: Vec::new(), next: BASE_ADDR }
    }

    /// Allocates `bytes` with the given power-of-two `align`ment and returns
    /// the base address. Memory is zero-initialized.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> SimAddr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + bytes;
        let needed = (self.next - BASE_ADDR) as usize;
        if self.data.len() < needed {
            self.data.resize(needed, 0);
        }
        SimAddr(base)
    }

    /// Total bytes allocated so far.
    pub fn allocated_bytes(&self) -> u64 {
        self.next - BASE_ADDR
    }

    /// Frees every allocation and zeroes contents, keeping the backing
    /// storage's capacity. After a reset the allocator hands out the same
    /// address sequence as a fresh memory, so reusing one `SimMemory`
    /// across runs is bit-identical to rebuilding it — minus the
    /// re-allocation cost this amortizes in benchmark sweeps.
    pub fn reset(&mut self) {
        self.data.clear();
        self.next = BASE_ADDR;
    }

    fn index(&self, addr: SimAddr, len: u64) -> usize {
        let off = addr.0.checked_sub(BASE_ADDR).expect("address below base");
        let end = (off + len) as usize;
        assert!(end <= self.data.len(), "out-of-bounds access at {addr} len {len}");
        off as usize
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: SimAddr, len: u64) -> &[u8] {
        let i = self.index(addr, len);
        &self.data[i..i + len as usize]
    }

    /// Writes `bytes` starting at `addr`.
    pub fn write_bytes(&mut self, addr: SimAddr, bytes: &[u8]) {
        let i = self.index(addr, bytes.len() as u64);
        self.data[i..i + bytes.len()].copy_from_slice(bytes);
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: SimAddr) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr, 4).try_into().expect("4 bytes"))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: SimAddr, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads an `i32`.
    pub fn read_i32(&self, addr: SimAddr) -> i32 {
        self.read_u32(addr) as i32
    }

    /// Writes an `i32`.
    pub fn write_i32(&mut self, addr: SimAddr, value: i32) {
        self.write_u32(addr, value as u32);
    }

    /// Reads an `f32` (bit-cast from the stored word).
    pub fn read_f32(&self, addr: SimAddr) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32` as its bit pattern.
    pub fn write_f32(&mut self, addr: SimAddr, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: SimAddr) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr, 8).try_into().expect("8 bytes"))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: SimAddr, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads an `i64`.
    pub fn read_i64(&self, addr: SimAddr) -> i64 {
        self.read_u64(addr) as i64
    }

    /// Writes an `i64`.
    pub fn write_i64(&mut self, addr: SimAddr, value: i64) {
        self.write_u64(addr, value as u64);
    }

    /// Reads an `f64`.
    pub fn read_f64(&self, addr: SimAddr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64`.
    pub fn write_f64(&mut self, addr: SimAddr, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Copies `len` bytes from `src` to `dst` within the simulated memory.
    ///
    /// # Panics
    ///
    /// Panics if the ranges overlap or are out of bounds.
    pub fn copy(&mut self, dst: SimAddr, src: SimAddr, len: u64) {
        let si = self.index(src, len);
        let di = self.index(dst, len);
        assert!(
            si + len as usize <= di || di + len as usize <= si || len == 0,
            "overlapping copy is not supported"
        );
        // Zero-copy: no temporary buffer, `copy_within` is a single
        // memmove over the backing storage.
        self.data.copy_within(si..si + len as usize, di);
    }

    /// Mutable view of `len` bytes starting at `addr` — the zero-copy
    /// write path for bulk transfers.
    pub fn bytes_mut(&mut self, addr: SimAddr, len: u64) -> &mut [u8] {
        let i = self.index(addr, len);
        &mut self.data[i..i + len as usize]
    }

    /// Convenience: allocates a buffer of `n` elements of `elem` type.
    pub fn alloc_elems(&mut self, n: u64, elem: ElemType) -> SimAddr {
        self.alloc(n * elem.byte_width(), 64)
    }

    /// Fills an i32 buffer from a slice (single bounds check, bulk write).
    pub fn store_i32_slice(&mut self, base: SimAddr, values: &[i32]) {
        let dst = self.bytes_mut(base, 4 * values.len() as u64);
        for (chunk, v) in dst.chunks_exact_mut(4).zip(values) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Reads an i32 buffer into a vector (single bounds check, bulk read).
    pub fn load_i32_slice(&self, base: SimAddr, n: usize) -> Vec<i32> {
        self.read_bytes(base, 4 * n as u64)
            .chunks_exact(4)
            .map(|chunk| i32::from_le_bytes(chunk.try_into().expect("4 bytes")))
            .collect()
    }

    /// Fills an f32 buffer from a slice (single bounds check, bulk write).
    pub fn store_f32_slice(&mut self, base: SimAddr, values: &[f32]) {
        let dst = self.bytes_mut(base, 4 * values.len() as u64);
        for (chunk, v) in dst.chunks_exact_mut(4).zip(values) {
            chunk.copy_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Reads an f32 buffer into a vector (single bounds check, bulk read).
    pub fn load_f32_slice(&self, base: SimAddr, n: usize) -> Vec<f32> {
        self.read_bytes(base, 4 * n as u64)
            .chunks_exact(4)
            .map(|chunk| f32::from_bits(u32::from_le_bytes(chunk.try_into().expect("4 bytes"))))
            .collect()
    }
}

impl Default for SimMemory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_replays_the_same_address_sequence() {
        let mut mem = SimMemory::new();
        let a = mem.alloc(64, 16);
        let b = mem.alloc(8, 64);
        mem.write_i32(a, 7);
        mem.reset();
        assert_eq!(mem.allocated_bytes(), 0);
        let a2 = mem.alloc(64, 16);
        let b2 = mem.alloc(8, 64);
        assert_eq!(a, a2, "allocator replays addresses after reset");
        assert_eq!(b, b2);
        assert_eq!(mem.read_i32(a2), 0, "contents are zeroed");
    }

    #[test]
    fn alloc_respects_alignment() {
        let mut mem = SimMemory::new();
        let a = mem.alloc(3, 1);
        let b = mem.alloc(8, 64);
        assert_eq!(b.0 % 64, 0);
        assert!(b.0 >= a.0 + 3);
    }

    #[test]
    fn alloc_zero_initializes() {
        let mut mem = SimMemory::new();
        let a = mem.alloc(16, 4);
        assert_eq!(mem.read_u32(a), 0);
        assert_eq!(mem.read_u32(a.offset(12)), 0);
    }

    #[test]
    fn roundtrip_scalars() {
        let mut mem = SimMemory::new();
        let a = mem.alloc(32, 8);
        mem.write_i32(a, -7);
        mem.write_f32(a.offset(4), 2.5);
        mem.write_i64(a.offset(8), -1);
        mem.write_f64(a.offset(16), 1e300);
        assert_eq!(mem.read_i32(a), -7);
        assert_eq!(mem.read_f32(a.offset(4)), 2.5);
        assert_eq!(mem.read_i64(a.offset(8)), -1);
        assert_eq!(mem.read_f64(a.offset(16)), 1e300);
    }

    #[test]
    fn slice_roundtrip() {
        let mut mem = SimMemory::new();
        let a = mem.alloc_elems(5, ElemType::I32);
        mem.store_i32_slice(a, &[1, 2, 3, 4, 5]);
        assert_eq!(mem.load_i32_slice(a, 5), vec![1, 2, 3, 4, 5]);
        let b = mem.alloc_elems(3, ElemType::F32);
        mem.store_f32_slice(b, &[0.5, -1.0, 3.25]);
        assert_eq!(mem.load_f32_slice(b, 3), vec![0.5, -1.0, 3.25]);
    }

    #[test]
    fn copy_moves_bytes() {
        let mut mem = SimMemory::new();
        let a = mem.alloc(16, 4);
        let b = mem.alloc(16, 4);
        mem.store_i32_slice(a, &[10, 20, 30, 40]);
        mem.copy(b, a, 16);
        assert_eq!(mem.load_i32_slice(b, 4), vec![10, 20, 30, 40]);
    }

    #[test]
    #[should_panic(expected = "out-of-bounds")]
    fn out_of_bounds_read_panics() {
        let mut mem = SimMemory::new();
        let a = mem.alloc(4, 4);
        let _ = mem.read_u64(a);
    }

    #[test]
    fn elem_widths() {
        assert_eq!(ElemType::I32.byte_width(), 4);
        assert_eq!(ElemType::F32.byte_width(), 4);
        assert_eq!(ElemType::I64.byte_width(), 8);
        assert_eq!(ElemType::F64.byte_width(), 8);
        assert_eq!(ElemType::I32.to_string(), "i32");
    }

    #[test]
    fn addresses_start_at_base() {
        let mut mem = SimMemory::new();
        let a = mem.alloc(4, 4);
        assert!(a.0 >= BASE_ADDR);
        assert_eq!(format!("{a}"), format!("0x{:x}", a.0));
    }
}
