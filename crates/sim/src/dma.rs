//! The DMA engine between host memory and the AXI-Stream accelerator.
//!
//! Models the Xilinx AXI DMA configuration the paper's runtime drives:
//! `dma_init` maps an input and an output staging buffer (uncached, as with
//! `mmap`ed udmabuf regions on the real board), `dma_start_send` streams a
//! byte range of the input region into the accelerator, and
//! `dma_start_recv` drains accelerator output beats into the output region.
//! All four `start`/`wait` entry points charge the MMIO/poll costs of
//! [`crate::cost::CostModel`]; streaming charges device cycles at one beat
//! per device cycle.
//!
//! Transfers are functionally instantaneous (the accelerator FSM runs as
//! beats arrive) but the *cost accounting* matches the blocking semantics of
//! the paper's library: `start` + `wait` pairs serialize host and device
//! time.

use std::fmt;

use crate::axi::StreamAccelerator;
use crate::cost::CostModel;
use crate::counters::PerfCounters;
use crate::mem::{SimAddr, SimMemory};

/// Parameters of `accel.dma_init` (Fig. 6a `dma_init_config`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DmaConfig {
    /// Engine identifier (multiple accelerators get distinct engines).
    pub id: u32,
    /// Base address of the input (host→accel) staging region.
    pub input_base: SimAddr,
    /// Size of the input staging region in bytes.
    pub input_size: u64,
    /// Base address of the output (accel→host) staging region.
    pub output_base: SimAddr,
    /// Size of the output staging region in bytes.
    pub output_size: u64,
}

/// Errors surfaced by DMA transactions.
///
/// On real hardware most of these hang the board; the simulator turns them
/// into actionable errors so driver-generation bugs fail tests loudly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DmaError {
    /// A transfer was attempted before `dma_init`.
    NotInitialized,
    /// `offset + len` exceeds the staging region.
    OutOfRange {
        /// Which direction was requested.
        direction: Direction,
        /// Requested offset in bytes.
        offset: u64,
        /// Requested length in bytes.
        len: u64,
        /// Region capacity in bytes.
        capacity: u64,
    },
    /// A recv requested more beats than the accelerator produced — the
    /// simulated equivalent of a bus hang.
    StreamUnderflow {
        /// Beats requested.
        requested_words: u64,
        /// Beats available in the accelerator output FIFO.
        available_words: u64,
    },
    /// Transfer length not a multiple of the 4-byte beat size.
    UnalignedLength {
        /// Requested length in bytes.
        len: u64,
    },
}

/// Transfer direction, for error reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Host to accelerator (send).
    Send,
    /// Accelerator to host (recv).
    Recv,
}

impl fmt::Display for DmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmaError::NotInitialized => write!(f, "dma engine used before dma_init"),
            DmaError::OutOfRange { direction, offset, len, capacity } => write!(
                f,
                "{} transfer of {len} bytes at offset {offset} exceeds staging region of {capacity} bytes",
                match direction {
                    Direction::Send => "send",
                    Direction::Recv => "recv",
                }
            ),
            DmaError::StreamUnderflow { requested_words, available_words } => write!(
                f,
                "recv requested {requested_words} beats but accelerator produced {available_words} (bus would hang)"
            ),
            DmaError::UnalignedLength { len } => {
                write!(f, "transfer length {len} is not a multiple of the 4-byte beat size")
            }
        }
    }
}

impl std::error::Error for DmaError {}

/// The DMA engine state machine.
///
/// # Examples
///
/// ```
/// use axi4mlir_sim::axi::LoopbackAccelerator;
/// use axi4mlir_sim::cost::CostModel;
/// use axi4mlir_sim::counters::PerfCounters;
/// use axi4mlir_sim::dma::{DmaConfig, DmaEngine};
/// use axi4mlir_sim::mem::SimMemory;
///
/// let mut mem = SimMemory::new();
/// let input = mem.alloc(256, 64);
/// let output = mem.alloc(256, 64);
/// let mut dma = DmaEngine::new();
/// let mut counters = PerfCounters::new();
/// let cost = CostModel::pynq_z2();
/// dma.init(
///     DmaConfig { id: 0, input_base: input, input_size: 256, output_base: output, output_size: 256 },
///     &mut counters,
///     &cost,
/// );
/// let mut accel = LoopbackAccelerator::new();
/// mem.write_u32(input, 0x1234);
/// dma.start_send(&mut mem, &mut accel, 0, 4, &mut counters, &cost).unwrap();
/// dma.wait_send_completion(&mut counters, &cost);
/// dma.start_recv(&mut mem, &mut accel, 0, 4, &mut counters, &cost).unwrap();
/// dma.wait_recv_completion(&mut counters, &cost);
/// assert_eq!(mem.read_u32(output), 0x1234);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DmaEngine {
    config: Option<DmaConfig>,
    send_in_flight: bool,
    recv_in_flight: bool,
}

impl DmaEngine {
    /// Creates an uninitialized engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Initializes the engine (the one-time `dma_init` of the runtime
    /// library); charges `dma_init_host_cycles`.
    pub fn init(&mut self, config: DmaConfig, counters: &mut PerfCounters, cost: &CostModel) {
        self.config = Some(config);
        self.send_in_flight = false;
        self.recv_in_flight = false;
        counters.host_cycles += cost.dma_init_host_cycles;
        counters.instructions += 1;
    }

    /// Returns the active configuration.
    pub fn config(&self) -> Option<&DmaConfig> {
        self.config.as_ref()
    }

    /// `true` once `init` has been called.
    pub fn is_initialized(&self) -> bool {
        self.config.is_some()
    }

    fn checked(
        config: Option<&DmaConfig>,
        direction: Direction,
        offset: u64,
        len: u64,
    ) -> Result<DmaConfig, DmaError> {
        let config = config.ok_or(DmaError::NotInitialized)?;
        if !len.is_multiple_of(4) {
            return Err(DmaError::UnalignedLength { len });
        }
        let capacity = match direction {
            Direction::Send => config.input_size,
            Direction::Recv => config.output_size,
        };
        if offset + len > capacity {
            return Err(DmaError::OutOfRange { direction, offset, len, capacity });
        }
        Ok(*config)
    }

    /// Streams `len` bytes starting at `offset` within the input staging
    /// region into the accelerator.
    ///
    /// # Errors
    ///
    /// Returns [`DmaError`] if uninitialized, unaligned, or out of range.
    pub fn start_send(
        &mut self,
        mem: &mut SimMemory,
        accel: &mut dyn StreamAccelerator,
        offset: u64,
        len: u64,
        counters: &mut PerfCounters,
        cost: &CostModel,
    ) -> Result<(), DmaError> {
        let config = Self::checked(self.config.as_ref(), Direction::Send, offset, len)?;
        counters.host_cycles += cost.dma_start_host_cycles;
        counters.instructions += 1;
        counters.branch_instructions += 1; // the MMIO call
        counters.dma_transactions += 1;
        counters.dma_bytes_to_accel += len;
        counters.device_cycles += cost.stream_device_cycles(len);
        let base = config.input_base.offset(offset);
        // One bounds-checked burst instead of per-beat reads; the
        // accelerator still decodes beat by beat (see `consume_burst`).
        accel.consume_burst(mem.read_bytes(base, len), counters);
        self.send_in_flight = true;
        Ok(())
    }

    /// Blocks (in cost terms) until the send completes.
    pub fn wait_send_completion(&mut self, counters: &mut PerfCounters, cost: &CostModel) {
        counters.host_cycles += cost.dma_wait_host_cycles;
        counters.instructions += 1;
        counters.branch_instructions += 2; // poll loop
        self.send_in_flight = false;
    }

    /// Drains `len` bytes of accelerator output into the output staging
    /// region at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`DmaError::StreamUnderflow`] if the accelerator has produced
    /// fewer beats than requested (a driver-generation bug), plus the usual
    /// initialization/range errors.
    pub fn start_recv(
        &mut self,
        mem: &mut SimMemory,
        accel: &mut dyn StreamAccelerator,
        offset: u64,
        len: u64,
        counters: &mut PerfCounters,
        cost: &CostModel,
    ) -> Result<(), DmaError> {
        let config = Self::checked(self.config.as_ref(), Direction::Recv, offset, len)?;
        let words = len / 4;
        let available = accel.output_len() as u64;
        if available < words {
            return Err(DmaError::StreamUnderflow {
                requested_words: words,
                available_words: available,
            });
        }
        counters.host_cycles += cost.dma_start_host_cycles;
        counters.instructions += 1;
        counters.branch_instructions += 1;
        counters.dma_transactions += 1;
        counters.dma_bytes_from_accel += len;
        counters.device_cycles += cost.stream_device_cycles(len);
        let base = config.output_base.offset(offset);
        // One bounds-checked burst write instead of per-beat writes.
        accel.produce_burst(mem.bytes_mut(base, len));
        self.recv_in_flight = true;
        Ok(())
    }

    /// Blocks (in cost terms) until the recv completes.
    pub fn wait_recv_completion(&mut self, counters: &mut PerfCounters, cost: &CostModel) {
        counters.host_cycles += cost.dma_wait_host_cycles;
        counters.instructions += 1;
        counters.branch_instructions += 2;
        self.recv_in_flight = false;
    }

    /// `true` while a send has been started but not waited on.
    pub fn send_in_flight(&self) -> bool {
        self.send_in_flight
    }

    /// `true` while a recv has been started but not waited on.
    pub fn recv_in_flight(&self) -> bool {
        self.recv_in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axi::LoopbackAccelerator;

    fn setup() -> (SimMemory, DmaEngine, PerfCounters, CostModel, LoopbackAccelerator) {
        let mut mem = SimMemory::new();
        let input = mem.alloc(256, 64);
        let output = mem.alloc(256, 64);
        let mut dma = DmaEngine::new();
        let mut counters = PerfCounters::new();
        let cost = CostModel::pynq_z2();
        dma.init(
            DmaConfig {
                id: 0,
                input_base: input,
                input_size: 256,
                output_base: output,
                output_size: 256,
            },
            &mut counters,
            &cost,
        );
        (mem, dma, counters, cost, LoopbackAccelerator::new())
    }

    #[test]
    fn init_charges_one_time_cost() {
        let (_, dma, counters, cost, _) = setup();
        assert!(dma.is_initialized());
        assert_eq!(counters.host_cycles, cost.dma_init_host_cycles);
    }

    #[test]
    fn uninitialized_engine_rejects_transfers() {
        let mut mem = SimMemory::new();
        let mut dma = DmaEngine::new();
        let mut counters = PerfCounters::new();
        let cost = CostModel::pynq_z2();
        let mut accel = LoopbackAccelerator::new();
        let err = dma.start_send(&mut mem, &mut accel, 0, 4, &mut counters, &cost).unwrap_err();
        assert_eq!(err, DmaError::NotInitialized);
    }

    #[test]
    fn roundtrip_through_loopback() {
        let (mut mem, mut dma, mut counters, cost, mut accel) = setup();
        let input_base = dma.config().unwrap().input_base;
        let output_base = dma.config().unwrap().output_base;
        for i in 0..8u64 {
            mem.write_u32(input_base.offset(i * 4), (i * 11) as u32);
        }
        dma.start_send(&mut mem, &mut accel, 0, 32, &mut counters, &cost).unwrap();
        dma.wait_send_completion(&mut counters, &cost);
        dma.start_recv(&mut mem, &mut accel, 0, 32, &mut counters, &cost).unwrap();
        dma.wait_recv_completion(&mut counters, &cost);
        for i in 0..8u64 {
            assert_eq!(mem.read_u32(output_base.offset(i * 4)), (i * 11) as u32);
        }
        assert_eq!(counters.dma_bytes_to_accel, 32);
        assert_eq!(counters.dma_bytes_from_accel, 32);
        assert_eq!(counters.dma_transactions, 2);
    }

    #[test]
    fn out_of_range_send_is_rejected() {
        let (mut mem, mut dma, mut counters, cost, mut accel) = setup();
        let err = dma.start_send(&mut mem, &mut accel, 250, 16, &mut counters, &cost).unwrap_err();
        assert!(matches!(err, DmaError::OutOfRange { direction: Direction::Send, .. }));
        let msg = err.to_string();
        assert!(msg.contains("exceeds staging region"));
    }

    #[test]
    fn unaligned_length_is_rejected() {
        let (mut mem, mut dma, mut counters, cost, mut accel) = setup();
        let err = dma.start_send(&mut mem, &mut accel, 0, 6, &mut counters, &cost).unwrap_err();
        assert_eq!(err, DmaError::UnalignedLength { len: 6 });
    }

    #[test]
    fn recv_underflow_is_detected() {
        let (mut mem, mut dma, mut counters, cost, mut accel) = setup();
        let err = dma.start_recv(&mut mem, &mut accel, 0, 8, &mut counters, &cost).unwrap_err();
        assert_eq!(err, DmaError::StreamUnderflow { requested_words: 2, available_words: 0 });
    }

    #[test]
    fn device_cycles_scale_with_bytes() {
        let (mut mem, mut dma, mut counters, cost, mut accel) = setup();
        let before = counters.device_cycles;
        dma.start_send(&mut mem, &mut accel, 0, 64, &mut counters, &cost).unwrap();
        let d1 = counters.device_cycles - before;
        let before = counters.device_cycles;
        dma.start_send(&mut mem, &mut accel, 0, 128, &mut counters, &cost).unwrap();
        let d2 = counters.device_cycles - before;
        assert_eq!(d2 - d1, 16, "64 extra bytes = 16 extra beats");
    }

    #[test]
    fn in_flight_flags_track_waits() {
        let (mut mem, mut dma, mut counters, cost, mut accel) = setup();
        dma.start_send(&mut mem, &mut accel, 0, 4, &mut counters, &cost).unwrap();
        assert!(dma.send_in_flight());
        dma.wait_send_completion(&mut counters, &cost);
        assert!(!dma.send_in_flight());
    }
}
