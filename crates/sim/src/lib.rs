//! Simulated SoC substrate for AXI4MLIR.
//!
//! The paper evaluates on a PYNQ-Z2 board (Zynq-7000: ARM Cortex-A9 host at
//! 650 MHz, FPGA fabric at 200 MHz, AXI-Stream DMA between them). This crate
//! provides the software substitute for that hardware, per the substitution
//! table in `DESIGN.md` §2:
//!
//! - [`mem`]: a byte-addressable simulated main memory with a bump allocator,
//!   so every buffer has a concrete address the cache model can hash.
//! - [`cache`]: set-associative, LRU, write-allocate cache hierarchy (L1 +
//!   unified L2 by default) with deterministic hit/miss accounting.
//! - [`counters`]: the `perf`-analogue counter set (`task-clock`,
//!   `cache-references`, `branch-instructions`, …) with documented semantics.
//! - [`cost`]: the single calibration point — every cycle cost constant used
//!   anywhere in the workspace lives in [`cost::CostModel`].
//! - [`axi`]: AXI-Stream word FIFOs and the [`axi::StreamAccelerator`] trait
//!   implemented by the accelerator models.
//! - [`dma`]: the DMA engine with memory-mapped staging regions, modelling
//!   blocking `send`/`recv` transactions and their setup/poll costs.
//!
//! Everything is deterministic: running the same workload twice produces
//! bit-identical counters, which is what lets the test suite assert the
//! paper's *shapes* (who wins, where crossovers fall).

pub mod axi;
pub mod cache;
pub mod cost;
pub mod counters;
pub mod dma;
pub mod mem;

pub use axi::{AxiStreamFifo, StreamAccelerator};
pub use cache::{AccessKind, CacheConfig, CacheHierarchy};
pub use cost::CostModel;
pub use counters::PerfCounters;
pub use dma::{DmaConfig, DmaEngine, DmaError};
pub use mem::{ElemType, SimAddr, SimMemory};
