//! Set-associative cache hierarchy with LRU replacement.
//!
//! Models the data-side cache hierarchy of the paper's host CPU (ARM
//! Cortex-A9 on the PYNQ-Z2: 32 KiB L1D, 512 KiB shared L2 — exactly the
//! `"cache-levels": [32K, 512K]` entry of the Fig. 5 configuration file).
//!
//! Only *cached* CPU accesses flow through here; the DMA staging regions are
//! mapped uncached on the real board and bypass the hierarchy (see
//! [`crate::dma`]).

use std::fmt;

/// Whether an access reads or writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store. The model is write-allocate, so a write miss fills the line.
    Write,
}

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheConfig {
    /// Creates a config, validating the geometry.
    ///
    /// # Panics
    ///
    /// Panics if sizes are not powers of two or the geometry is inconsistent.
    pub fn new(size_bytes: u64, line_bytes: u64, ways: u32) -> Self {
        assert!(size_bytes.is_power_of_two(), "cache size must be a power of two");
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(ways > 0, "associativity must be positive");
        assert_eq!(
            size_bytes % (line_bytes * u64::from(ways)),
            0,
            "size must be divisible by line_bytes * ways"
        );
        Self { size_bytes, line_bytes, ways }
    }

    /// Cortex-A9 L1 data cache: 32 KiB, 32-byte lines, 4-way.
    pub fn cortex_a9_l1d() -> Self {
        Self::new(32 * 1024, 32, 4)
    }

    /// Zynq-7000 shared L2: 512 KiB, 32-byte lines, 8-way.
    pub fn zynq_l2() -> Self {
        Self::new(512 * 1024, 32, 8)
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * u64::from(self.ways))
    }
}

/// Per-level hit/miss statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheLevelStats {
    /// Lookups presented to this level.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl CacheLevelStats {
    /// Hit rate in `[0, 1]`; 0 if no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// One set-associative cache level with true-LRU replacement.
#[derive(Clone)]
struct CacheLevel {
    config: CacheConfig,
    /// `sets[set][way]` = tag, or `u64::MAX` when invalid.
    tags: Vec<u64>,
    /// LRU ordering: lower value = more recently used; per (set, way).
    stamps: Vec<u64>,
    tick: u64,
    stats: CacheLevelStats,
}

const INVALID_TAG: u64 = u64::MAX;

impl CacheLevel {
    fn new(config: CacheConfig) -> Self {
        let entries = (config.num_sets() * u64::from(config.ways)) as usize;
        Self {
            config,
            tags: vec![INVALID_TAG; entries],
            stamps: vec![0; entries],
            tick: 0,
            stats: CacheLevelStats::default(),
        }
    }

    /// Looks up a line address; on miss, fills it (evicting LRU). Returns hit.
    fn access_line(&mut self, line_addr: u64) -> bool {
        self.tick += 1;
        let sets = self.config.num_sets();
        let set = (line_addr % sets) as usize;
        let tag = line_addr / sets;
        let ways = self.config.ways as usize;
        let base = set * ways;
        self.stats.accesses += 1;
        for w in 0..ways {
            if self.tags[base + w] == tag {
                self.stamps[base + w] = self.tick;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        // Fill: choose invalid way or LRU way.
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..ways {
            if self.tags[base + w] == INVALID_TAG {
                victim = w;
                break;
            }
            if self.stamps[base + w] < oldest {
                oldest = self.stamps[base + w];
                victim = w;
            }
        }
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.tick;
        false
    }

    fn flush(&mut self) {
        self.tags.fill(INVALID_TAG);
        self.stamps.fill(0);
    }
}

impl fmt::Debug for CacheLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CacheLevel")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

/// Result of presenting one access to the hierarchy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cache lookups performed at L1 (one per line touched).
    pub l1_lookups: u64,
    /// How many of those missed L1 (and were presented to L2).
    pub l1_misses: u64,
    /// How many missed L2 too (and went to DRAM).
    pub l2_misses: u64,
}

/// A two-level (L1D + unified L2) cache hierarchy.
///
/// # Examples
///
/// ```
/// use axi4mlir_sim::cache::{AccessKind, CacheConfig, CacheHierarchy};
///
/// let mut h = CacheHierarchy::cortex_a9();
/// let first = h.access(0x1_0000, 4, AccessKind::Read);
/// assert_eq!(first.l1_misses, 1); // cold miss
/// let second = h.access(0x1_0000, 4, AccessKind::Read);
/// assert_eq!(second.l1_misses, 0); // now resident
/// ```
#[derive(Clone, Debug)]
pub struct CacheHierarchy {
    l1: CacheLevel,
    l2: Option<CacheLevel>,
}

impl CacheHierarchy {
    /// Builds a hierarchy from level configs (L1 first). At least one level
    /// is required; levels beyond the second are folded into L2 capacity.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn new(levels: &[CacheConfig]) -> Self {
        assert!(!levels.is_empty(), "at least one cache level required");
        let l1 = CacheLevel::new(levels[0]);
        let l2 = levels.get(1).map(|c| CacheLevel::new(*c));
        Self { l1, l2 }
    }

    /// The paper's host: 32 KiB L1D + 512 KiB L2.
    pub fn cortex_a9() -> Self {
        Self::new(&[CacheConfig::cortex_a9_l1d(), CacheConfig::zynq_l2()])
    }

    /// Presents an access of `bytes` bytes at `addr`; spans are split into
    /// line-sized lookups. Returns per-level miss counts for cost accounting.
    pub fn access(&mut self, addr: u64, bytes: u64, _kind: AccessKind) -> AccessOutcome {
        let line = self.l1.config.line_bytes;
        let first = addr / line;
        let last = (addr + bytes.max(1) - 1) / line;
        let mut outcome = AccessOutcome::default();
        for line_addr in first..=last {
            outcome.l1_lookups += 1;
            if !self.l1.access_line(line_addr) {
                outcome.l1_misses += 1;
                if let Some(l2) = &mut self.l2 {
                    if !l2.access_line(line_addr) {
                        outcome.l2_misses += 1;
                    }
                } else {
                    outcome.l2_misses += 1;
                }
            }
        }
        outcome
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> CacheLevelStats {
        self.l1.stats
    }

    /// L2 statistics (zeroes if the hierarchy has one level).
    pub fn l2_stats(&self) -> CacheLevelStats {
        self.l2.as_ref().map(|l| l.stats).unwrap_or_default()
    }

    /// Invalidates all lines (keeps statistics).
    pub fn flush(&mut self) {
        self.l1.flush();
        if let Some(l2) = &mut self.l2 {
            l2.flush();
        }
    }

    /// L1 line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.l1.config.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_geometry() {
        let c = CacheConfig::cortex_a9_l1d();
        assert_eq!(c.num_sets(), 32 * 1024 / (32 * 4));
        let l2 = CacheConfig::zynq_l2();
        assert_eq!(l2.num_sets(), 512 * 1024 / (32 * 8));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_config_panics() {
        let _ = CacheConfig::new(3000, 32, 4);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut h = CacheHierarchy::cortex_a9();
        let o1 = h.access(0x2_0000, 4, AccessKind::Read);
        assert_eq!(o1, AccessOutcome { l1_lookups: 1, l1_misses: 1, l2_misses: 1 });
        let o2 = h.access(0x2_0000, 4, AccessKind::Write);
        assert_eq!(o2, AccessOutcome { l1_lookups: 1, l1_misses: 0, l2_misses: 0 });
        assert_eq!(h.l1_stats().hits, 1);
        assert_eq!(h.l1_stats().misses, 1);
    }

    #[test]
    fn same_line_shares_fill() {
        let mut h = CacheHierarchy::cortex_a9();
        h.access(0x2_0000, 4, AccessKind::Read);
        // Neighbouring element on the same 32-byte line hits.
        let o = h.access(0x2_0004, 4, AccessKind::Read);
        assert_eq!(o.l1_misses, 0);
    }

    #[test]
    fn spanning_access_touches_two_lines() {
        let mut h = CacheHierarchy::cortex_a9();
        let o = h.access(0x2_0000 + 30, 4, AccessKind::Read);
        assert_eq!(o.l1_lookups, 2);
        assert_eq!(o.l1_misses, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // Tiny 2-way cache with 1 set: 2 lines of 32B.
        let cfg = CacheConfig::new(64, 32, 2);
        let mut h = CacheHierarchy::new(&[cfg]);
        h.access(0, 4, AccessKind::Read); // line 0
        h.access(32, 4, AccessKind::Read); // line 1
        h.access(0, 4, AccessKind::Read); // touch line 0 (line 1 is LRU)
        h.access(64, 4, AccessKind::Read); // evicts line 1
        let o = h.access(0, 4, AccessKind::Read);
        assert_eq!(o.l1_misses, 0, "line 0 should still be resident");
        let o = h.access(32, 4, AccessKind::Read);
        assert_eq!(o.l1_misses, 1, "line 1 should have been evicted");
    }

    #[test]
    fn l2_catches_l1_misses() {
        // L1: 2 lines; L2: 64 lines. Stream 4 lines then re-read: L1 misses
        // but L2 hits.
        let l1 = CacheConfig::new(64, 32, 2);
        let l2 = CacheConfig::new(2048, 32, 8);
        let mut h = CacheHierarchy::new(&[l1, l2]);
        for i in 0..4 {
            h.access(i * 32, 4, AccessKind::Read);
        }
        let o = h.access(0, 4, AccessKind::Read);
        assert_eq!(o.l1_misses, 1);
        assert_eq!(o.l2_misses, 0, "L2 should retain the line");
    }

    #[test]
    fn working_set_larger_than_l1_thrashes() {
        let mut h = CacheHierarchy::cortex_a9();
        // 64 KiB working set streamed twice: second pass still misses L1
        // (32 KiB) but hits L2.
        let span = 64 * 1024;
        for pass in 0..2 {
            for off in (0..span).step_by(32) {
                let o = h.access(0x10_0000 + off, 4, AccessKind::Read);
                if pass == 1 {
                    assert_eq!(o.l1_misses, 1);
                    assert_eq!(o.l2_misses, 0);
                }
            }
        }
    }

    #[test]
    fn working_set_within_l1_stays_hot() {
        let mut h = CacheHierarchy::cortex_a9();
        let span = 8 * 1024;
        for off in (0..span).step_by(32) {
            h.access(0x10_0000 + off, 4, AccessKind::Read);
        }
        for off in (0..span).step_by(32) {
            let o = h.access(0x10_0000 + off, 4, AccessKind::Read);
            assert_eq!(o.l1_misses, 0);
        }
    }

    #[test]
    fn flush_invalidates() {
        let mut h = CacheHierarchy::cortex_a9();
        h.access(0x2_0000, 4, AccessKind::Read);
        h.flush();
        let o = h.access(0x2_0000, 4, AccessKind::Read);
        assert_eq!(o.l1_misses, 1);
    }

    #[test]
    fn hit_rate_reporting() {
        let mut h = CacheHierarchy::cortex_a9();
        h.access(0x2_0000, 4, AccessKind::Read);
        h.access(0x2_0000, 4, AccessKind::Read);
        let s = h.l1_stats();
        assert_eq!(s.accesses, 2);
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(CacheLevelStats::default().hit_rate(), 0.0);
    }
}
