//! The cycle cost model — the workspace's single calibration point.
//!
//! Every constant that converts a modelled event (a load, a DMA descriptor
//! write, an accelerator MAC) into cycles lives here. The defaults are
//! calibrated so that the *shapes* of the paper's figures reproduce:
//!
//! - Fig. 10: accelerator offload only beats the CPU for `dims >= 64` and
//!   `accel_size >= 8` — driven by `dma_setup_host_cycles` dominating small
//!   tiles and cache misses slowing the CPU at large dims.
//! - Fig. 12: the specialized `memcpy` copy (16-byte NEON chunks) reduces
//!   cache references and branches about 3x vs the element-wise recursive
//!   copy; the manual baseline's compiler-autovectorized copy sits between
//!   (8-byte chunks).
//! - Fig. 13: cache-aware tiling converts L2 misses into hits, giving the
//!   generated code its 1.1-1.7x advantage at large problem sizes.
//!
//! The shape assertions live in `crates/bench/tests/shape_tests.rs`; when
//! touching a constant, run those.

/// Cycle cost constants for the simulated Zynq-7000 SoC.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Host CPU frequency (PYNQ-Z2 Cortex-A9: 650 MHz).
    pub host_freq_hz: f64,
    /// Device (FPGA fabric) frequency (Vitis syntheses in the paper: 200 MHz).
    pub device_freq_hz: f64,

    /// Base cost of one arithmetic op on the host.
    pub arith_cycles: u64,
    /// Base cost of one load/store that hits L1.
    pub mem_cycles: u64,
    /// Extra cycles when an access misses L1 and hits L2.
    pub l1_miss_penalty: u64,
    /// Extra cycles when an access misses L2 (DRAM fill).
    pub l2_miss_penalty: u64,
    /// Cost of one branch instruction.
    pub branch_cycles: u64,
    /// Cost of address/index computation per element in the *element-wise*
    /// (rank-generic, stride-aware) memref copy.
    pub elementwise_index_cycles: u64,

    /// Cost of one uncached write to the DMA staging region (write-combined).
    pub uncached_write_cycles: u64,
    /// Cost of one uncached read from the DMA staging region.
    pub uncached_read_cycles: u64,

    /// Host cycles for one `dma_start_*` MMIO descriptor write.
    pub dma_start_host_cycles: u64,
    /// Host cycles for one `dma_wait_*` completion poll.
    pub dma_wait_host_cycles: u64,
    /// One-time host cycles for `dma_init` (mmap + engine reset).
    pub dma_init_host_cycles: u64,
    /// Device cycles consumed per 32-bit beat streamed over AXI-S.
    pub stream_beat_device_cycles: u64,
    /// Fixed device cycles of pipeline latency per DMA transaction.
    pub stream_setup_device_cycles: u64,

    /// Chunk size (bytes) of the specialized NEON `memcpy` copy path.
    pub memcpy_chunk_bytes: u64,
    /// Chunk size (bytes) the manual baseline's autovectorized copies reach.
    pub manual_chunk_bytes: u64,
}

impl CostModel {
    /// The calibrated PYNQ-Z2 model used by all experiments.
    pub fn pynq_z2() -> Self {
        Self {
            host_freq_hz: 650e6,
            device_freq_hz: 200e6,
            arith_cycles: 1,
            // Cortex-A9 load-use latency: 2 cycles on an L1 hit.
            mem_cycles: 2,
            l1_miss_penalty: 8,
            l2_miss_penalty: 45,
            branch_cycles: 1,
            elementwise_index_cycles: 3,
            uncached_write_cycles: 3,
            uncached_read_cycles: 8,
            dma_start_host_cycles: 200,
            dma_wait_host_cycles: 100,
            // One-time mmap + udmabuf + engine reset: ~380 us at 650 MHz,
            // in line with Linux driver setup costs on the Zynq.
            dma_init_host_cycles: 250_000,
            stream_beat_device_cycles: 1,
            stream_setup_device_cycles: 30,
            memcpy_chunk_bytes: 16,
            manual_chunk_bytes: 8,
        }
    }

    /// Cycles charged for a cached access given its miss outcome.
    pub fn cached_access_cycles(&self, l1_misses: u64, l2_misses: u64) -> u64 {
        self.mem_cycles + l1_misses * self.l1_miss_penalty + l2_misses * self.l2_miss_penalty
    }

    /// Device cycles to stream `bytes` over the AXI-S link (one transaction).
    pub fn stream_device_cycles(&self, bytes: u64) -> u64 {
        self.stream_setup_device_cycles + bytes.div_ceil(4) * self.stream_beat_device_cycles
    }

    /// Converts a `(host, device)` cycle pair to milliseconds.
    pub fn to_ms(&self, host_cycles: u64, device_cycles: u64) -> f64 {
        (host_cycles as f64 / self.host_freq_hz + device_cycles as f64 / self.device_freq_hz) * 1e3
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::pynq_z2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_pynq() {
        assert_eq!(CostModel::default(), CostModel::pynq_z2());
    }

    #[test]
    fn cached_access_cost_scales_with_misses() {
        let m = CostModel::pynq_z2();
        let hit = m.cached_access_cycles(0, 0);
        let l1m = m.cached_access_cycles(1, 0);
        let l2m = m.cached_access_cycles(1, 1);
        assert!(hit < l1m && l1m < l2m);
        assert_eq!(l2m - l1m, m.l2_miss_penalty);
    }

    #[test]
    fn stream_cycles_include_setup() {
        let m = CostModel::pynq_z2();
        assert_eq!(m.stream_device_cycles(0), m.stream_setup_device_cycles);
        assert_eq!(m.stream_device_cycles(4), m.stream_setup_device_cycles + 1);
        assert_eq!(m.stream_device_cycles(6), m.stream_setup_device_cycles + 2);
    }

    #[test]
    fn to_ms_matches_frequencies() {
        let m = CostModel::pynq_z2();
        let ms = m.to_ms(650_000, 0);
        assert!((ms - 1.0).abs() < 1e-9);
        let ms = m.to_ms(0, 200_000);
        assert!((ms - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memcpy_chunks_wider_than_manual() {
        let m = CostModel::pynq_z2();
        assert!(
            m.memcpy_chunk_bytes > m.manual_chunk_bytes,
            "NEON memcpy must beat autovectorized copies"
        );
    }
}
