//! Deterministic `perf`-analogue counters.
//!
//! The paper profiles with Linux `perf` (task-clock, cache-references,
//! branch-instructions). Our counters have documented, deterministic
//! semantics (DESIGN.md §5):
//!
//! - `cache_references` — L1D lookups: one per scalar load/store, one per
//!   vector chunk for specialized copies. DMA traffic bypasses caches and is
//!   *not* counted.
//! - `branch_instructions` — loop back-edges, conditional guards, calls and
//!   returns.
//! - `task-clock` — `host_cycles / host_freq + device_cycles / device_freq`;
//!   device work (DMA streaming + accelerator compute) is serialized with
//!   host work because the runtime's transfers block, exactly as in the
//!   paper's DMA library.

use std::fmt;
use std::ops::{Add, AddAssign};

/// The full counter set captured during one execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Cycles spent on the host CPU (650 MHz domain).
    pub host_cycles: u64,
    /// Cycles spent in the device domain (200 MHz): DMA streaming beats and
    /// accelerator compute, serialized with the host per the blocking model.
    pub device_cycles: u64,
    /// L1D lookups (the `perf` `cache-references` analogue).
    pub cache_references: u64,
    /// L1D misses.
    pub l1_misses: u64,
    /// L2 misses (DRAM fills).
    pub l2_misses: u64,
    /// Branches executed (back-edges, guards, calls, returns).
    pub branch_instructions: u64,
    /// Retired "instructions" (coarse: one per modelled operation).
    pub instructions: u64,
    /// Uncached accesses to the DMA staging regions (not cache references).
    pub uncached_accesses: u64,
    /// Bytes moved host→accelerator by the DMA engine.
    pub dma_bytes_to_accel: u64,
    /// Bytes moved accelerator→host by the DMA engine.
    pub dma_bytes_from_accel: u64,
    /// Number of DMA transactions started (send + recv).
    pub dma_transactions: u64,
    /// Accelerator compute cycles (subset of `device_cycles`).
    pub accel_compute_cycles: u64,
    /// Multiply-accumulate operations retired by the accelerator.
    pub accel_macs: u64,
}

impl PerfCounters {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Task-clock in milliseconds given the two clock domains.
    pub fn task_clock_ms(&self, host_freq_hz: f64, device_freq_hz: f64) -> f64 {
        (self.host_cycles as f64 / host_freq_hz + self.device_cycles as f64 / device_freq_hz) * 1e3
    }

    /// Total DMA traffic in bytes.
    pub fn dma_bytes_total(&self) -> u64 {
        self.dma_bytes_to_accel + self.dma_bytes_from_accel
    }

    /// Difference `self - baseline`, saturating at zero; used to isolate a
    /// region of interest between two snapshots.
    #[must_use]
    pub fn delta_since(&self, baseline: &PerfCounters) -> PerfCounters {
        PerfCounters {
            host_cycles: self.host_cycles.saturating_sub(baseline.host_cycles),
            device_cycles: self.device_cycles.saturating_sub(baseline.device_cycles),
            cache_references: self.cache_references.saturating_sub(baseline.cache_references),
            l1_misses: self.l1_misses.saturating_sub(baseline.l1_misses),
            l2_misses: self.l2_misses.saturating_sub(baseline.l2_misses),
            branch_instructions: self
                .branch_instructions
                .saturating_sub(baseline.branch_instructions),
            instructions: self.instructions.saturating_sub(baseline.instructions),
            uncached_accesses: self.uncached_accesses.saturating_sub(baseline.uncached_accesses),
            dma_bytes_to_accel: self.dma_bytes_to_accel.saturating_sub(baseline.dma_bytes_to_accel),
            dma_bytes_from_accel: self
                .dma_bytes_from_accel
                .saturating_sub(baseline.dma_bytes_from_accel),
            dma_transactions: self.dma_transactions.saturating_sub(baseline.dma_transactions),
            accel_compute_cycles: self
                .accel_compute_cycles
                .saturating_sub(baseline.accel_compute_cycles),
            accel_macs: self.accel_macs.saturating_sub(baseline.accel_macs),
        }
    }
}

impl Add for PerfCounters {
    type Output = PerfCounters;
    fn add(mut self, rhs: PerfCounters) -> PerfCounters {
        self += rhs;
        self
    }
}

impl AddAssign for PerfCounters {
    fn add_assign(&mut self, rhs: PerfCounters) {
        self.host_cycles += rhs.host_cycles;
        self.device_cycles += rhs.device_cycles;
        self.cache_references += rhs.cache_references;
        self.l1_misses += rhs.l1_misses;
        self.l2_misses += rhs.l2_misses;
        self.branch_instructions += rhs.branch_instructions;
        self.instructions += rhs.instructions;
        self.uncached_accesses += rhs.uncached_accesses;
        self.dma_bytes_to_accel += rhs.dma_bytes_to_accel;
        self.dma_bytes_from_accel += rhs.dma_bytes_from_accel;
        self.dma_transactions += rhs.dma_transactions;
        self.accel_compute_cycles += rhs.accel_compute_cycles;
        self.accel_macs += rhs.accel_macs;
    }
}

impl fmt::Display for PerfCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "host-cycles:          {}", self.host_cycles)?;
        writeln!(f, "device-cycles:        {}", self.device_cycles)?;
        writeln!(f, "cache-references:     {}", self.cache_references)?;
        writeln!(f, "l1-misses:            {}", self.l1_misses)?;
        writeln!(f, "l2-misses:            {}", self.l2_misses)?;
        writeln!(f, "branch-instructions:  {}", self.branch_instructions)?;
        writeln!(f, "instructions:         {}", self.instructions)?;
        writeln!(f, "uncached-accesses:    {}", self.uncached_accesses)?;
        writeln!(
            f,
            "dma-bytes (to/from):  {}/{}",
            self.dma_bytes_to_accel, self.dma_bytes_from_accel
        )?;
        writeln!(f, "dma-transactions:     {}", self.dma_transactions)?;
        writeln!(f, "accel-compute-cycles: {}", self.accel_compute_cycles)?;
        write!(f, "accel-macs:           {}", self.accel_macs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_clock_combines_domains() {
        let c = PerfCounters { host_cycles: 650_000, device_cycles: 200_000, ..Default::default() };
        // 1 ms on the host + 1 ms on the device.
        let ms = c.task_clock_ms(650e6, 200e6);
        assert!((ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn add_accumulates_all_fields() {
        let a = PerfCounters {
            host_cycles: 1,
            cache_references: 2,
            accel_macs: 3,
            ..Default::default()
        };
        let b = PerfCounters {
            host_cycles: 10,
            cache_references: 20,
            accel_macs: 30,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.host_cycles, 11);
        assert_eq!(c.cache_references, 22);
        assert_eq!(c.accel_macs, 33);
    }

    #[test]
    fn delta_since_isolates_region() {
        let before = PerfCounters { host_cycles: 100, dma_transactions: 2, ..Default::default() };
        let after = PerfCounters { host_cycles: 175, dma_transactions: 5, ..Default::default() };
        let d = after.delta_since(&before);
        assert_eq!(d.host_cycles, 75);
        assert_eq!(d.dma_transactions, 3);
    }

    #[test]
    fn display_mentions_every_headline_counter() {
        let c = PerfCounters::new();
        let s = c.to_string();
        for key in ["cache-references", "branch-instructions", "dma-transactions", "accel-macs"] {
            assert!(s.contains(key), "missing {key}");
        }
    }

    #[test]
    fn dma_totals() {
        let c =
            PerfCounters { dma_bytes_to_accel: 10, dma_bytes_from_accel: 5, ..Default::default() };
        assert_eq!(c.dma_bytes_total(), 15);
    }
}
