//! Property tests for [`axi4mlir_support::proto::FrameReader`]: however
//! a byte stream is cut up — arbitrary split points, timeouts landing
//! between (or inside) UTF-8 codepoints, keep-alive blank lines,
//! missing trailing newlines — reassembling frames from the pieces must
//! produce exactly the values a whole-buffer parse produces. The framing
//! layer sits under every hub/worker socket, so "chunking is invisible"
//! is the invariant the whole wire protocol leans on.

use std::collections::VecDeque;
use std::io::{self, BufReader, Read};

use axi4mlir_support::json::JsonValue;
use axi4mlir_support::proto::{write_frame, Frame, FrameReader};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::select;

/// Strings biased toward multi-byte UTF-8 and JSON-hostile characters,
/// so random split points regularly land inside a codepoint and escaped
/// newlines/quotes regularly cross chunk boundaries.
fn arb_string() -> BoxedStrategy<String> {
    let fragments: Vec<String> = [
        "plain ascii",
        "é",
        "日本語",
        "🚀",
        "Ω≈ç√∫",
        "line\nbreak",
        "tab\tand \"quotes\"",
        "back\\slash",
        "",
        " padded ",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    vec(select(fragments), 0..5).prop_map(|parts| parts.concat()).boxed()
}

/// Scalar JSON values. Floats are deliberately absent: this suite
/// asserts *value* equality after a print → chunk → parse trip, and the
/// framing layer makes no claims about float formatting round-trips.
fn arb_leaf() -> BoxedStrategy<JsonValue> {
    prop_oneof![
        Just(JsonValue::Null),
        (0u64..2).prop_map(|b| JsonValue::Bool(b == 1)),
        (-1_000_000_007i64..1_000_000_007).prop_map(|n| JsonValue::Int(i128::from(n))),
        arb_string().prop_map(JsonValue::Str),
    ]
    .boxed()
}

/// One level of nesting over the leaves: arrays and objects, matching
/// the shapes the hub/worker protocols actually send.
fn arb_value() -> BoxedStrategy<JsonValue> {
    prop_oneof![
        arb_leaf(),
        vec(arb_leaf(), 0..4).prop_map(JsonValue::Array),
        vec((arb_string(), arb_leaf()), 0..3).prop_map(JsonValue::object),
    ]
    .boxed()
}

/// A wire frame: a top-level object, like every real protocol message.
fn arb_frame() -> BoxedStrategy<JsonValue> {
    vec((arb_string(), arb_value()), 0..4).prop_map(JsonValue::object).boxed()
}

/// A stream that serves scripted chunks; `None` entries surface as
/// `WouldBlock` (a socket read timeout), and exhaustion is EOF.
struct ScriptedStream {
    chunks: VecDeque<Option<Vec<u8>>>,
}

impl Read for ScriptedStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.chunks.pop_front() {
            None => Ok(0),
            Some(None) => Err(io::Error::new(io::ErrorKind::WouldBlock, "scripted timeout")),
            Some(Some(mut bytes)) => {
                if bytes.len() > buf.len() {
                    let rest = bytes.split_off(buf.len());
                    self.chunks.push_front(Some(rest));
                }
                buf[..bytes.len()].copy_from_slice(&bytes);
                Ok(bytes.len())
            }
        }
    }
}

/// Serializes `frames` as the writer would, inserting keep-alive blank
/// lines before frames where `gaps` says to (0 = none, 1 = empty line,
/// 2 = whitespace line).
fn encode(frames: &[JsonValue], gaps: &[u8]) -> Vec<u8> {
    let mut wire = Vec::new();
    for (i, frame) in frames.iter().enumerate() {
        match gaps.get(i).copied().unwrap_or(0) {
            1 => wire.extend_from_slice(b"\n"),
            2 => wire.extend_from_slice(b"  \n"),
            _ => {}
        }
        write_frame(&mut wire, frame).expect("Vec writes cannot fail");
    }
    wire
}

/// Cuts `wire` into the scripted chunks `cuts` describes: each entry is
/// a chunk length (clamped to what remains) with an optional preceding
/// timeout; leftover bytes become one final chunk.
fn scripted(wire: &[u8], cuts: &[(usize, u8)]) -> ScriptedStream {
    let mut chunks = VecDeque::new();
    let mut at = 0;
    for &(len, timeout) in cuts {
        if timeout == 1 {
            chunks.push_back(None);
        }
        let take = len.min(wire.len() - at);
        if take > 0 {
            chunks.push_back(Some(wire[at..at + take].to_vec()));
            at += take;
        }
    }
    if at < wire.len() {
        chunks.push_back(Some(wire[at..].to_vec()));
    }
    ScriptedStream { chunks }
}

/// Drains a reader to EOF, collecting values and counting timeouts.
fn read_all(stream: ScriptedStream) -> Result<(Vec<JsonValue>, usize), String> {
    let mut reader = FrameReader::new(BufReader::new(stream));
    let mut values = Vec::new();
    let mut idles = 0usize;
    loop {
        match reader.next_frame() {
            Ok(Frame::Value(value)) => values.push(value),
            Ok(Frame::Idle) => idles += 1,
            Ok(Frame::Eof) => return Ok((values, idles)),
            Err(err) => return Err(err.message),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The founding invariant: for any frames, any chunking of their
    /// serialized bytes, any interleaved timeouts, any keep-alive blank
    /// lines, and with or without the final newline, reassembly yields
    /// exactly the frames a whole-buffer parse yields.
    #[test]
    fn reassembly_equals_whole_buffer_parsing(
        frames in vec(arb_frame(), 0..5),
        cuts in vec((1usize..48, 0u8..2), 0..64),
        gaps in vec(0u8..3, 0..5),
        trim_final_newline in 0u8..2,
    ) {
        let mut wire = encode(&frames, &gaps);
        if trim_final_newline == 1 && wire.last() == Some(&b'\n') {
            // EOF lands mid-line: the trailing frame must still parse.
            wire.pop();
        }

        let (whole, _) = read_all(scripted(&wire, &[(wire.len().max(1), 0)]))
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(&whole, &frames, "whole-buffer parse is the reference");

        let (chunked, _) = read_all(scripted(&wire, &cuts)).map_err(TestCaseError::fail)?;
        prop_assert_eq!(chunked, frames, "chunking must be invisible");
    }

    /// The pathological schedule — one byte per read, a timeout between
    /// every pair of bytes — loses nothing, even though nearly every
    /// timeout lands mid-frame and many land mid-codepoint.
    #[test]
    fn a_timeout_between_every_byte_loses_nothing(frames in vec(arb_frame(), 1..4)) {
        let wire = encode(&frames, &[]);
        let mut chunks = VecDeque::new();
        for &byte in &wire {
            chunks.push_back(None);
            chunks.push_back(Some(vec![byte]));
        }
        let (values, idles) = read_all(ScriptedStream { chunks })
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(values, frames);
        prop_assert!(idles >= wire.len(), "every scripted timeout surfaced as Idle");
    }

    /// A stream torn inside its final frame (what an injected
    /// `worker.reply:torn` fault produces) still yields every complete
    /// frame before it, and the torn tail is either rejected with a
    /// diagnostic or — when the tear removed only the newline — parsed
    /// to the original value. It is never a *different* value.
    #[test]
    fn a_torn_trailing_frame_never_corrupts_earlier_frames(
        frames in vec(arb_frame(), 1..5),
        tear in 1usize..4096,
        cuts in vec((1usize..48, 0u8..2), 0..32),
    ) {
        let wire = encode(&frames, &[]);
        let intact = encode(&frames[..frames.len() - 1], &[]);
        let last_len = wire.len() - intact.len();
        // Keep 1..last_len bytes of the final frame: always torn short
        // of its newline, never torn down to nothing.
        let torn = &wire[..intact.len() + 1 + (tear % (last_len - 1).max(1))];

        let mut reader = FrameReader::new(BufReader::new(scripted(torn, &cuts)));
        for expected in &frames[..frames.len() - 1] {
            loop {
                match reader.next_frame().map_err(|err| TestCaseError::fail(err.message))? {
                    Frame::Idle => continue,
                    Frame::Value(value) => {
                        prop_assert_eq!(&value, expected, "complete frames survive the tear");
                        break;
                    }
                    Frame::Eof => return Err(TestCaseError::fail("EOF before complete frames")),
                }
            }
        }
        loop {
            match reader.next_frame() {
                Ok(Frame::Idle) => continue,
                // The tear happened to leave a full serialization (only
                // the newline missing): liberal acceptance parses it.
                Ok(Frame::Value(value)) => {
                    prop_assert_eq!(&value, frames.last().unwrap());
                    break;
                }
                // Otherwise the partial line is malformed JSON or
                // invalid UTF-8 — a diagnostic, never a wrong value.
                Err(_) => break,
                Ok(Frame::Eof) => {
                    return Err(TestCaseError::fail("a non-empty torn tail cannot be EOF"))
                }
            }
        }
    }
}
