//! Typed entity identifiers and dense arenas.
//!
//! Compilers allocate many small objects (operations, blocks, values) that
//! reference each other. Using raw references in Rust leads to borrow-checker
//! contortions, so — like cranelift and rustc — we store entities in dense
//! arenas ([`PrimaryMap`]) and refer to them with small, copyable, *typed*
//! indices created by the [`entity_id!`](crate::entity_id) macro.

use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;

/// A typed index into a [`PrimaryMap`].
///
/// Implementors are tiny wrappers around `u32` produced by the
/// [`entity_id!`](crate::entity_id) macro. The trait is object-unsafe on
/// purpose; identifiers are always used as concrete types.
pub trait EntityId: Copy + Eq + Hash + fmt::Debug {
    /// Creates an identifier from a raw index.
    fn from_index(index: usize) -> Self;
    /// Returns the raw index.
    fn index(self) -> usize;
}

/// Declares a new entity identifier type.
///
/// The second argument is a short prefix used by the `Debug`/`Display`
/// impls, so `entity_id!(pub struct OpId, "op")` renders as `op12`.
///
/// # Examples
///
/// ```
/// use axi4mlir_support::entity_id;
/// use axi4mlir_support::entity::EntityId;
///
/// entity_id!(pub struct ThingId, "thing");
/// let id = ThingId::from_index(3);
/// assert_eq!(format!("{id}"), "thing3");
/// ```
#[macro_export]
macro_rules! entity_id {
    ($vis:vis struct $name:ident, $prefix:expr) => {
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        $vis struct $name(u32);

        impl $crate::entity::EntityId for $name {
            fn from_index(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize, "entity index overflow");
                Self(index as u32)
            }
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

/// A dense map that owns its values and mints identifiers on insertion.
///
/// Unlike a `HashMap`, a `PrimaryMap` never removes entries; compilers
/// instead mark entities dead and rebuild. This keeps identifiers stable and
/// lookups branch-free.
///
/// # Examples
///
/// ```
/// use axi4mlir_support::entity::PrimaryMap;
/// use axi4mlir_support::entity_id;
///
/// entity_id!(struct K, "k");
/// let mut m: PrimaryMap<K, i32> = PrimaryMap::new();
/// let k0 = m.push(10);
/// let k1 = m.push(20);
/// assert_eq!(m[k0] + m[k1], 30);
/// assert_eq!(m.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct PrimaryMap<K: EntityId, V> {
    values: Vec<V>,
    _marker: PhantomData<K>,
}

impl<K: EntityId, V> PrimaryMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self { values: Vec::new(), _marker: PhantomData }
    }

    /// Creates an empty map with space for `capacity` entities.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { values: Vec::with_capacity(capacity), _marker: PhantomData }
    }

    /// Inserts a value and returns its freshly minted identifier.
    pub fn push(&mut self, value: V) -> K {
        let key = K::from_index(self.values.len());
        self.values.push(value);
        key
    }

    /// Returns the identifier the *next* `push` will produce.
    pub fn next_key(&self) -> K {
        K::from_index(self.values.len())
    }

    /// Returns the number of entities.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no entities have been inserted.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Returns a reference to the value for `key`, if in range.
    pub fn get(&self, key: K) -> Option<&V> {
        self.values.get(key.index())
    }

    /// Returns a mutable reference to the value for `key`, if in range.
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        self.values.get_mut(key.index())
    }

    /// Returns `true` if `key` indexes a live entity.
    pub fn contains_key(&self, key: K) -> bool {
        key.index() < self.values.len()
    }

    /// Iterates over `(key, &value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.values.iter().enumerate().map(|(i, v)| (K::from_index(i), v))
    }

    /// Iterates over `(key, &mut value)` pairs in insertion order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (K, &mut V)> {
        self.values.iter_mut().enumerate().map(|(i, v)| (K::from_index(i), v))
    }

    /// Iterates over all identifiers.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        (0..self.values.len()).map(K::from_index)
    }

    /// Iterates over all values.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.values.iter()
    }
}

impl<K: EntityId, V> Default for PrimaryMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: EntityId, V> std::ops::Index<K> for PrimaryMap<K, V> {
    type Output = V;
    fn index(&self, key: K) -> &V {
        &self.values[key.index()]
    }
}

impl<K: EntityId, V> std::ops::IndexMut<K> for PrimaryMap<K, V> {
    fn index_mut(&mut self, key: K) -> &mut V {
        &mut self.values[key.index()]
    }
}

impl<K: EntityId, V: fmt::Debug> fmt::Debug for PrimaryMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter().map(|(k, v)| (format!("{k:?}"), v))).finish()
    }
}

impl<K: EntityId, V> FromIterator<V> for PrimaryMap<K, V> {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        Self { values: iter.into_iter().collect(), _marker: PhantomData }
    }
}

impl<K: EntityId, V> Extend<V> for PrimaryMap<K, V> {
    fn extend<I: IntoIterator<Item = V>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

/// A secondary map associating additional data with existing entities.
///
/// Values are default-initialized on first access, mirroring cranelift's
/// `SecondaryMap`.
///
/// # Examples
///
/// ```
/// use axi4mlir_support::entity::{PrimaryMap, SecondaryMap};
/// use axi4mlir_support::entity_id;
///
/// entity_id!(struct K, "k");
/// let mut prim: PrimaryMap<K, &str> = PrimaryMap::new();
/// let k = prim.push("x");
/// let mut extra: SecondaryMap<K, u32> = SecondaryMap::new();
/// extra[k] = 7;
/// assert_eq!(extra[k], 7);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SecondaryMap<K: EntityId, V: Clone + Default> {
    values: Vec<V>,
    _marker: PhantomData<K>,
}

impl<K: EntityId, V: Clone + Default> SecondaryMap<K, V> {
    /// Creates an empty secondary map.
    pub fn new() -> Self {
        Self { values: Vec::new(), _marker: PhantomData }
    }

    fn ensure(&mut self, index: usize) {
        if index >= self.values.len() {
            self.values.resize(index + 1, V::default());
        }
    }

    /// Returns the value for `key`, or the default if never written.
    pub fn get(&self, key: K) -> Option<&V> {
        self.values.get(key.index())
    }
}

impl<K: EntityId, V: Clone + Default> Default for SecondaryMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: EntityId, V: Clone + Default> std::ops::Index<K> for SecondaryMap<K, V> {
    type Output = V;
    fn index(&self, key: K) -> &V {
        &self.values[key.index()]
    }
}

impl<K: EntityId, V: Clone + Default> std::ops::IndexMut<K> for SecondaryMap<K, V> {
    fn index_mut(&mut self, key: K) -> &mut V {
        self.ensure(key.index());
        &mut self.values[key.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    entity_id!(struct TestId, "t");

    #[test]
    fn push_and_index() {
        let mut m: PrimaryMap<TestId, String> = PrimaryMap::new();
        let a = m.push("a".to_owned());
        let b = m.push("b".to_owned());
        assert_ne!(a, b);
        assert_eq!(m[a], "a");
        assert_eq!(m[b], "b");
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn next_key_predicts_push() {
        let mut m: PrimaryMap<TestId, u8> = PrimaryMap::new();
        let predicted = m.next_key();
        let actual = m.push(0);
        assert_eq!(predicted, actual);
    }

    #[test]
    fn get_out_of_range_is_none() {
        let m: PrimaryMap<TestId, u8> = PrimaryMap::new();
        assert!(m.get(TestId::from_index(0)).is_none());
        assert!(!m.contains_key(TestId::from_index(0)));
    }

    #[test]
    fn iter_in_insertion_order() {
        let mut m: PrimaryMap<TestId, u32> = PrimaryMap::new();
        for i in 0..10 {
            m.push(i * 2);
        }
        let collected: Vec<u32> = m.iter().map(|(_, v)| *v).collect();
        assert_eq!(collected, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        let keys: Vec<usize> = m.keys().map(|k| k.index()).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn display_uses_prefix() {
        let id = TestId::from_index(42);
        assert_eq!(format!("{id}"), "t42");
        assert_eq!(format!("{id:?}"), "t42");
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut m: PrimaryMap<TestId, i32> = (0..3).collect();
        assert_eq!(m.len(), 3);
        m.extend(3..5);
        assert_eq!(m.len(), 5);
        assert_eq!(m[TestId::from_index(4)], 4);
    }

    #[test]
    fn secondary_map_defaults() {
        let mut prim: PrimaryMap<TestId, ()> = PrimaryMap::new();
        let k0 = prim.push(());
        let k1 = prim.push(());
        let mut sec: SecondaryMap<TestId, u32> = SecondaryMap::new();
        sec[k1] = 9;
        assert_eq!(sec[k1], 9);
        // k0 was never written: reading through `get` gives the resized default.
        assert_eq!(sec.get(k0), Some(&0));
    }

    #[test]
    fn iter_mut_updates_values() {
        let mut m: PrimaryMap<TestId, u32> = (0..4).collect();
        for (_, v) in m.iter_mut() {
            *v += 1;
        }
        assert_eq!(m.values().copied().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }
}
