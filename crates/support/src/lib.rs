//! Shared infrastructure for the AXI4MLIR workspace.
//!
//! This crate provides the small, dependency-free building blocks used by
//! every other crate in the workspace:
//!
//! - [`entity`]: typed entity identifiers and dense [`entity::PrimaryMap`]
//!   arenas, in the style used by production compilers (cranelift's
//!   `entity`, rustc's `IndexVec`).
//! - [`diag`]: structured diagnostics ([`diag::Diagnostic`]) with source
//!   locations, severities, and a collecting [`diag::DiagnosticEngine`].
//! - [`fmtutil`]: plain-text table rendering used by the experiment harness
//!   to print paper-style rows.
//! - [`json`]: a small order-preserving JSON reader used for the Fig. 5
//!   configuration files (the build environment vendors no serde).
//! - [`proto`]: newline-delimited JSON framing shared by the hub daemon
//!   and its clients.
//! - [`fault`]: deterministic, seeded fault injection (scripted connection
//!   drops, torn frames, delays, crashes) used to drive release binaries
//!   through failure paths in chaos tests and CI.
//!
//! # Examples
//!
//! ```
//! use axi4mlir_support::entity::PrimaryMap;
//! use axi4mlir_support::entity_id;
//!
//! entity_id!(pub struct NodeId, "node");
//! let mut nodes: PrimaryMap<NodeId, &str> = PrimaryMap::new();
//! let a = nodes.push("a");
//! assert_eq!(nodes[a], "a");
//! ```

pub mod diag;
pub mod entity;
pub mod fault;
pub mod fmtutil;
pub mod json;
pub mod proto;

pub use diag::{Diagnostic, DiagnosticEngine, Severity};
pub use entity::{EntityId, PrimaryMap};
pub use json::JsonValue;
