//! Structured diagnostics.
//!
//! Passes and parsers report problems through a [`DiagnosticEngine`] rather
//! than panicking or returning bare strings, so callers can collect several
//! errors in one run and render them with source locations.

use std::fmt;

/// Severity of a [`Diagnostic`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note attached to another diagnostic or emitted alone.
    Note,
    /// Something suspicious that does not stop compilation.
    Warning,
    /// A hard error; the producing stage failed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A location in a textual source (configuration file or IR assembly).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct SourceLoc {
    /// 1-based line; 0 means "unknown".
    pub line: u32,
    /// 1-based column; 0 means "unknown".
    pub col: u32,
}

impl SourceLoc {
    /// Creates a location from 1-based line and column.
    pub fn new(line: u32, col: u32) -> Self {
        Self { line, col }
    }

    /// The unknown location.
    pub fn unknown() -> Self {
        Self::default()
    }

    /// Returns `true` if this is the unknown location.
    pub fn is_unknown(&self) -> bool {
        self.line == 0
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unknown() {
            write!(f, "<unknown>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

/// A single diagnostic message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable message, lowercase, no trailing punctuation.
    pub message: String,
    /// Where in the source it happened, if known.
    pub loc: SourceLoc,
    /// Optional notes elaborating on the primary message.
    pub notes: Vec<String>,
    /// Machine-readable code (lint/verifier rules), e.g. `lint::isa-opcode`.
    /// Rendered as `error[CODE]:`; absent for free-form diagnostics.
    pub code: Option<String>,
}

impl Diagnostic {
    /// Creates an error diagnostic with no location.
    pub fn error(message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Error,
            message: message.into(),
            loc: SourceLoc::unknown(),
            notes: Vec::new(),
            code: None,
        }
    }

    /// Creates a warning diagnostic with no location.
    pub fn warning(message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Warning,
            message: message.into(),
            loc: SourceLoc::unknown(),
            notes: Vec::new(),
            code: None,
        }
    }

    /// Creates a note diagnostic with no location.
    pub fn note(message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Note,
            message: message.into(),
            loc: SourceLoc::unknown(),
            notes: Vec::new(),
            code: None,
        }
    }

    /// Attaches a source location.
    pub fn at(mut self, loc: SourceLoc) -> Self {
        self.loc = loc;
        self
    }

    /// Appends an explanatory note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Attaches a machine-readable code (rendered as `error[CODE]:`).
    pub fn with_code(mut self, code: impl Into<String>) -> Self {
        self.code = Some(code.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.loc.is_unknown() {
            write!(f, "{}: ", self.loc)?;
        }
        match &self.code {
            Some(code) => write!(f, "{}[{code}]: {}", self.severity, self.message)?,
            None => write!(f, "{}: {}", self.severity, self.message)?,
        }
        for note in &self.notes {
            write!(f, "\n  note: {note}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostic {}

/// Collects diagnostics produced by a compilation stage.
///
/// # Examples
///
/// ```
/// use axi4mlir_support::diag::{Diagnostic, DiagnosticEngine};
///
/// let mut engine = DiagnosticEngine::new();
/// engine.emit(Diagnostic::warning("tile size rounded down"));
/// assert!(!engine.has_errors());
/// engine.emit(Diagnostic::error("unknown opcode `sX`"));
/// assert!(engine.has_errors());
/// assert_eq!(engine.diagnostics().len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DiagnosticEngine {
    diagnostics: Vec<Diagnostic>,
}

impl DiagnosticEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a diagnostic.
    pub fn emit(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Shorthand for emitting an [`Severity::Error`].
    pub fn error(&mut self, message: impl Into<String>) {
        self.emit(Diagnostic::error(message));
    }

    /// Shorthand for emitting a [`Severity::Warning`].
    pub fn warning(&mut self, message: impl Into<String>) {
        self.emit(Diagnostic::warning(message));
    }

    /// Returns `true` if any error-severity diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// All recorded diagnostics, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Consumes the engine, returning the diagnostics.
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diagnostics
    }

    /// Renders all diagnostics, one per line.
    pub fn render(&self) -> String {
        self.diagnostics.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    }

    /// Returns `Err` with rendered diagnostics if any errors were recorded.
    ///
    /// # Errors
    ///
    /// Returns the first error diagnostic (with all messages rendered into
    /// its notes) when [`DiagnosticEngine::has_errors`] is true.
    pub fn into_result(self) -> Result<(), Diagnostic> {
        self.result()
    }

    /// Non-consuming form of [`DiagnosticEngine::into_result`]: summarizes
    /// the recorded diagnostics into a `Result` while leaving them in the
    /// engine for the caller to inspect. Verifiers use this to collect into
    /// a caller-supplied engine *and* return a `Result` from the same
    /// engine, without cloning everything into a second one.
    ///
    /// # Errors
    ///
    /// Returns the first error diagnostic (with all other messages rendered
    /// into its notes) when [`DiagnosticEngine::has_errors`] is true.
    pub fn result(&self) -> Result<(), Diagnostic> {
        let Some(mut primary) =
            self.diagnostics.iter().find(|d| d.severity == Severity::Error).cloned()
        else {
            return Ok(());
        };
        let extra: Vec<String> =
            self.diagnostics.iter().filter(|d| **d != primary).map(|d| d.to_string()).collect();
        primary.notes.extend(extra);
        Err(primary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn display_with_location() {
        let d =
            Diagnostic::error("bad token").at(SourceLoc::new(3, 14)).with_note("expected `send`");
        let rendered = d.to_string();
        assert_eq!(rendered, "3:14: error: bad token\n  note: expected `send`");
    }

    #[test]
    fn display_without_location() {
        let d = Diagnostic::warning("tile not divisible");
        assert_eq!(d.to_string(), "warning: tile not divisible");
    }

    #[test]
    fn engine_collects_and_reports() {
        let mut e = DiagnosticEngine::new();
        assert!(!e.has_errors());
        e.warning("w");
        e.error("e");
        e.emit(Diagnostic::note("n"));
        assert!(e.has_errors());
        assert_eq!(e.diagnostics().len(), 3);
        let rendered = e.render();
        assert!(rendered.contains("warning: w"));
        assert!(rendered.contains("error: e"));
    }

    #[test]
    fn into_result_ok_without_errors() {
        let mut e = DiagnosticEngine::new();
        e.warning("only a warning");
        assert!(e.into_result().is_ok());
    }

    #[test]
    fn into_result_err_with_errors() {
        let mut e = DiagnosticEngine::new();
        e.warning("context");
        e.error("boom");
        let err = e.into_result().unwrap_err();
        assert_eq!(err.message, "boom");
        assert!(err.notes.iter().any(|n| n.contains("context")));
    }

    #[test]
    fn display_with_code() {
        let d = Diagnostic::error("burst writes past the memref").with_code("lint::dma-bounds");
        assert_eq!(d.to_string(), "error[lint::dma-bounds]: burst writes past the memref");
        let located = d.at(SourceLoc::new(2, 7));
        assert_eq!(
            located.to_string(),
            "2:7: error[lint::dma-bounds]: burst writes past the memref"
        );
    }

    #[test]
    fn result_leaves_the_engine_intact() {
        let mut e = DiagnosticEngine::new();
        e.warning("context");
        e.error("boom");
        let err = e.result().unwrap_err();
        assert_eq!(err.message, "boom");
        assert!(err.notes.iter().any(|n| n.contains("context")));
        // The engine still holds everything it collected.
        assert_eq!(e.diagnostics().len(), 2);
        assert!(e.result().is_err(), "result() is repeatable");
    }

    #[test]
    fn result_preserves_the_error_code() {
        let mut e = DiagnosticEngine::new();
        e.emit(Diagnostic::error("illegal flow").with_code("lint::flow-legal"));
        let err = e.result().unwrap_err();
        assert_eq!(err.code.as_deref(), Some("lint::flow-legal"));
    }

    #[test]
    fn unknown_location_renders_as_placeholder() {
        assert_eq!(SourceLoc::unknown().to_string(), "<unknown>");
        assert!(SourceLoc::unknown().is_unknown());
        assert!(!SourceLoc::new(1, 1).is_unknown());
    }
}
