//! Deterministic fault injection for the hub/worker stack.
//!
//! A [`FaultPlan`] is a seeded script of failures — connection drops,
//! torn NDJSON frames, response delays, process crashes, checkpoint
//! write failures — that fire at exact, repeatable points. Every
//! injection point in the workspace names a *site* (a short string like
//! `worker.reply` or `hub.checkpoint`); each time execution passes the
//! site it ticks a per-site counter, and an event scripted as
//! `site:kind@N` fires on the N-th tick. Because the counters and the
//! torn-frame split points derive only from the plan (and its seed),
//! the same plan against the same workload produces the same failures
//! every run — which is what lets the chaos suite assert the PR-8
//! invariant that faults degrade throughput, never results.
//!
//! Plans are installed process-globally, either programmatically
//! ([`install`]) or from the `AXI4MLIR_FAULTS` environment variable
//! ([`install_from_env`], called by the daemon binaries at startup, or
//! their `--faults SPEC` flag), so release binaries can be driven
//! through failures by integration tests and CI without a special
//! build. A process with no plan installed pays one atomic load per
//! site tick.
//!
//! # Spec grammar
//!
//! A spec is comma-separated entries. `seed=N` seeds the torn-frame
//! split points; every other entry is `site:kind@N` with an optional
//! `:arg`:
//!
//! | kind      | fires on the N-th tick of `site` as…                    |
//! |-----------|---------------------------------------------------------|
//! | `drop`    | an I/O error before any byte is written (peer sees a    |
//! |           | clean connection loss at a frame boundary)              |
//! | `torn`    | a partial frame: a seeded prefix of the bytes goes out, |
//! |           | then the write errors (peer sees a torn NDJSON line)    |
//! | `delay`   | a stall of `arg` milliseconds (default 100), then the   |
//! |           | frame goes out intact                                   |
//! | `crash`   | `std::process::exit(arg)` (default 86) — the scripted   |
//! |           | equivalent of `kill -9` at a deterministic instant      |
//! | `fail`    | a non-I/O failure the site maps to its own error path   |
//! |           | (e.g. a cache checkpoint that reports a write error)    |
//!
//! Example: `seed=7,worker.reply:torn@3,worker.measure:crash@5`.
//!
//! # Sites
//!
//! The workspace's injection points (the fault × layer matrix in
//! `docs/PROTOCOL.md` maps each to its expected recovery):
//!
//! - `worker.reply` — the worker daemon's result/reply frame writes;
//! - `worker.measure` — ticked per `measure` frame the worker accepts;
//! - `pool.send` — the scheduler-side `RemotePool` measure-request
//!   writes;
//! - `hub.event` — the hub's per-connection event frame writes;
//! - `hub.checkpoint` — the hub's rung-boundary cache checkpoints.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crate::diag::Diagnostic;

/// What a fired fault does at its site (see the module-level grammar
/// table).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the write before any byte goes out.
    Drop,
    /// Write a seeded prefix of the frame, then fail.
    Torn,
    /// Stall for the given duration, then proceed normally.
    Delay(Duration),
    /// Exit the process with the given code.
    Crash(i32),
    /// Fail through the site's own (non-I/O) error path.
    Fail,
}

/// One scripted event: `site:kind@N` — fire `action` on the `at`-th
/// tick of `site` (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// The injection point this event arms.
    pub site: String,
    /// What happens when it fires.
    pub action: FaultAction,
    /// The 1-based site tick it fires on.
    pub at: u64,
}

/// A seeded script of fault events with per-site tick counters.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
    counters: Mutex<HashMap<String, u64>>,
    fired: Mutex<Vec<String>>,
}

fn parse_err(what: impl std::fmt::Display) -> Diagnostic {
    Diagnostic::error(format!("malformed fault spec: {what}"))
}

impl FaultPlan {
    /// Parses a spec (see the module-level grammar).
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] naming the first malformed entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, Diagnostic> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            if let Some(seed) = entry.strip_prefix("seed=") {
                plan.seed = seed
                    .parse()
                    .map_err(|_| parse_err(format!("`{entry}`: seed must be an integer")))?;
                continue;
            }
            let (site, rest) = entry
                .split_once(':')
                .ok_or_else(|| parse_err(format!("`{entry}`: expected site:kind@N")))?;
            let (kind, rest) = rest
                .split_once('@')
                .ok_or_else(|| parse_err(format!("`{entry}`: expected site:kind@N")))?;
            let (at, arg) = match rest.split_once(':') {
                Some((at, arg)) => (at, Some(arg)),
                None => (rest, None),
            };
            let at: u64 = at
                .parse()
                .map_err(|_| parse_err(format!("`{entry}`: the @N tick must be an integer")))?;
            if at == 0 {
                return Err(parse_err(format!("`{entry}`: ticks are 1-based")));
            }
            let arg_num = |default: i64| -> Result<i64, Diagnostic> {
                match arg {
                    None => Ok(default),
                    Some(raw) => raw
                        .parse()
                        .map_err(|_| parse_err(format!("`{entry}`: the arg must be an integer"))),
                }
            };
            let action = match kind {
                "drop" => FaultAction::Drop,
                "torn" => FaultAction::Torn,
                "delay" => FaultAction::Delay(Duration::from_millis(arg_num(100)?.max(0) as u64)),
                "crash" => FaultAction::Crash(arg_num(86)? as i32),
                "fail" => FaultAction::Fail,
                other => return Err(parse_err(format!("`{entry}`: unknown fault kind `{other}`"))),
            };
            plan.events.push(FaultEvent { site: site.to_owned(), action, at });
        }
        Ok(plan)
    }

    /// Whether the plan scripts any event (a pure `seed=` spec does
    /// not).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Ticks `site` and returns the scripted action for this tick, if
    /// any. Fired events are recorded for [`FaultPlan::fired`].
    pub fn tick(&self, site: &str) -> Option<FaultAction> {
        let count = {
            let mut counters = self.counters.lock().expect("fault counters poisoned");
            let count = counters.entry(site.to_owned()).or_insert(0);
            *count += 1;
            *count
        };
        let event = self.events.iter().find(|e| e.site == site && e.at == count)?;
        self.fired
            .lock()
            .expect("fault log poisoned")
            .push(format!("{site}@{count}: {:?}", event.action));
        Some(event.action)
    }

    /// The split point for a torn frame of `len` bytes at the `site`'s
    /// current tick: a deterministic function of the plan seed, in
    /// `1..len` (so at least one byte goes out and at least one is
    /// withheld; full frames of length ≤ 1 split at 0).
    pub fn split_point(&self, site: &str, len: usize) -> usize {
        if len < 2 {
            return 0;
        }
        // splitmix64 of (seed ⊕ site hash ⊕ tick) — stable across runs.
        let site_hash = site.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
        });
        let tick =
            self.counters.lock().expect("fault counters poisoned").get(site).copied().unwrap_or(0);
        let mut z = self.seed ^ site_hash ^ tick.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        1 + ((z ^ (z >> 31)) % (len as u64 - 1)) as usize
    }

    /// The events that have fired so far, in firing order — the
    /// observability hook chaos tests and the daemons' shutdown logs
    /// use.
    pub fn fired(&self) -> Vec<String> {
        self.fired.lock().expect("fault log poisoned").clone()
    }
}

/// The environment variable [`install_from_env`] reads.
pub const FAULTS_ENV: &str = "AXI4MLIR_FAULTS";

static PLAN: OnceLock<FaultPlan> = OnceLock::new();
static ARMED: AtomicBool = AtomicBool::new(false);

/// Installs `plan` process-globally. The first install wins (the plan
/// drives the whole process's lifetime); later calls return the
/// already-installed plan.
pub fn install(plan: FaultPlan) -> &'static FaultPlan {
    let installed = PLAN.get_or_init(|| plan);
    ARMED.store(true, Ordering::Release);
    installed
}

/// Installs the plan spelled in [`FAULTS_ENV`], if the variable is set
/// and non-empty.
///
/// # Errors
///
/// Returns a [`Diagnostic`] for a malformed spec (the daemons refuse to
/// start rather than run with half a plan).
pub fn install_from_env() -> Result<Option<&'static FaultPlan>, Diagnostic> {
    match std::env::var(FAULTS_ENV) {
        Ok(spec) if !spec.trim().is_empty() => Ok(Some(install(FaultPlan::parse(&spec)?))),
        _ => Ok(None),
    }
}

/// The installed plan, if any. The fast path for uninstrumented
/// processes is one relaxed atomic load.
pub fn active() -> Option<&'static FaultPlan> {
    if !ARMED.load(Ordering::Acquire) {
        return None;
    }
    PLAN.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_into_scripted_events() {
        let plan =
            FaultPlan::parse("seed=7, worker.reply:torn@3, hub.event:drop@2, sim:delay@4:250")
                .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.events.len(), 3);
        assert_eq!(
            plan.events[0],
            FaultEvent { site: "worker.reply".into(), action: FaultAction::Torn, at: 3 }
        );
        assert_eq!(plan.events[1].action, FaultAction::Drop);
        assert_eq!(plan.events[2].action, FaultAction::Delay(Duration::from_millis(250)));
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("seed=1").unwrap().is_empty());
    }

    #[test]
    fn malformed_specs_are_diagnostics() {
        for bad in ["nocolon", "site:drop", "site:drop@x", "site:drop@0", "site:warp@1", "seed=x"] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.message.contains("fault spec"), "{bad}: {}", err.message);
        }
    }

    #[test]
    fn ticks_fire_events_exactly_once_at_their_count() {
        let plan = FaultPlan::parse("w:drop@2,w:fail@4,other:drop@1").unwrap();
        assert_eq!(plan.tick("w"), None);
        assert_eq!(plan.tick("w"), Some(FaultAction::Drop));
        assert_eq!(plan.tick("w"), None);
        assert_eq!(plan.tick("w"), Some(FaultAction::Fail));
        assert_eq!(plan.tick("w"), None);
        assert_eq!(plan.tick("other"), Some(FaultAction::Drop));
        assert_eq!(plan.fired().len(), 3);
        assert!(plan.fired()[0].contains("w@2"));
    }

    #[test]
    fn split_points_are_deterministic_and_interior() {
        let plan = FaultPlan::parse("seed=42").unwrap();
        let again = FaultPlan::parse("seed=42").unwrap();
        for len in [2usize, 3, 17, 1024] {
            let split = plan.split_point("s", len);
            assert_eq!(split, again.split_point("s", len), "same seed, same split");
            assert!((1..len).contains(&split), "split {split} interior to {len}");
        }
        assert_eq!(plan.split_point("s", 1), 0);
        // Advancing the site counter moves the split point stream.
        plan.tick("s");
        plan.tick("s");
        let moved = (2..64).any(|len| plan.split_point("s", len) != again.split_point("s", len));
        assert!(moved, "splits depend on the tick");
    }
}
