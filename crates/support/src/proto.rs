//! Newline-delimited JSON framing for wire protocols.
//!
//! The hub daemon (and, per the ROADMAP, future remote measurement
//! workers) speak a line protocol: every message is one [`JsonValue`]
//! serialized *compactly* (no embedded newlines — the JSON writer escapes
//! them inside strings) followed by `\n`. This module owns the framing so
//! both sides agree on it:
//!
//! - [`write_frame`] serializes and flushes one message;
//! - [`FrameReader`] accumulates bytes from any [`BufRead`] into frames,
//!   tolerating *timeouts*: a socket with a read timeout surfaces
//!   [`Frame::Idle`] instead of an error, and a partially received line
//!   stays buffered until the rest arrives. That is what lets a server
//!   poll a shutdown flag between reads without dropping bytes.
//!
//! Blank lines are ignored (a `nc` user pressing return twice should not
//! kill the connection), and EOF with a non-empty trailing line still
//! parses it — be liberal in what you accept.

use std::io::{self, BufRead, Write};

use crate::diag::Diagnostic;
use crate::json::JsonValue;

/// Serializes `value` compactly onto `writer`, appends `\n`, and flushes.
///
/// # Errors
///
/// Propagates the underlying I/O error (a closed peer surfaces here as
/// `BrokenPipe`).
pub fn write_frame<W: Write>(writer: &mut W, value: &JsonValue) -> io::Result<()> {
    let mut line = value.to_json_string();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// One read attempt's outcome.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// A complete message arrived.
    Value(JsonValue),
    /// The peer closed the connection (any buffered partial line was
    /// empty or already returned).
    Eof,
    /// The read timed out before a full line arrived; received bytes stay
    /// buffered. Only surfaces on streams with a read timeout.
    Idle,
}

/// Accumulates newline-delimited JSON frames from a [`BufRead`] stream.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    partial: String,
}

impl<R: BufRead> FrameReader<R> {
    /// Wraps a buffered stream.
    pub fn new(inner: R) -> Self {
        Self { inner, partial: String::new() }
    }

    /// Reads until one frame, EOF, or a timeout.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] for malformed JSON lines and for I/O
    /// errors other than timeouts.
    pub fn next_frame(&mut self) -> Result<Frame, Diagnostic> {
        loop {
            match self.inner.read_line(&mut self.partial) {
                Ok(0) => {
                    // EOF: parse a non-empty trailing line, else done.
                    let line = std::mem::take(&mut self.partial);
                    let line = line.trim();
                    if line.is_empty() {
                        return Ok(Frame::Eof);
                    }
                    return JsonValue::parse(line).map(Frame::Value);
                }
                Ok(_) => {
                    if !self.partial.ends_with('\n') {
                        // A timeout can interrupt `read_line` after a
                        // partial read; keep accumulating.
                        continue;
                    }
                    let line = std::mem::take(&mut self.partial);
                    let line = line.trim();
                    if line.is_empty() {
                        continue; // blank keep-alive line
                    }
                    return JsonValue::parse(line).map(Frame::Value);
                }
                Err(err)
                    if matches!(
                        err.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(Frame::Idle);
                }
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(err) => {
                    return Err(Diagnostic::error(format!("connection read failed: {err}")))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let a = JsonValue::object([("type".to_owned(), "hello".into())]);
        let b = JsonValue::object([
            ("type".to_owned(), "submit".into()),
            ("note".to_owned(), "line\nbreak".into()),
        ]);
        let mut wire = Vec::new();
        write_frame(&mut wire, &a).unwrap();
        write_frame(&mut wire, &b).unwrap();
        // Embedded newlines are escaped, so the stream is exactly 2 lines.
        assert_eq!(wire.iter().filter(|&&c| c == b'\n').count(), 2);
        let mut reader = FrameReader::new(BufReader::new(wire.as_slice()));
        assert_eq!(reader.next_frame().unwrap(), Frame::Value(a));
        assert_eq!(reader.next_frame().unwrap(), Frame::Value(b));
        assert_eq!(reader.next_frame().unwrap(), Frame::Eof);
    }

    #[test]
    fn blank_lines_are_skipped_and_trailing_lines_parse() {
        let wire = b"\n  \n{\"n\": 1}\n{\"n\": 2}";
        let mut reader = FrameReader::new(BufReader::new(wire.as_slice()));
        assert_eq!(
            reader.next_frame().unwrap(),
            Frame::Value(JsonValue::object([("n".to_owned(), 1u64.into())]))
        );
        // The last frame has no trailing newline (EOF mid-line).
        assert_eq!(
            reader.next_frame().unwrap(),
            Frame::Value(JsonValue::object([("n".to_owned(), 2u64.into())]))
        );
        assert_eq!(reader.next_frame().unwrap(), Frame::Eof);
    }

    #[test]
    fn malformed_lines_are_diagnostics() {
        let mut reader = FrameReader::new(BufReader::new(b"not json\n".as_slice()));
        assert!(reader.next_frame().is_err());
    }

    /// A reader that yields a timeout between two halves of one line.
    struct ChunkedTimeout {
        chunks: Vec<Option<&'static [u8]>>, // None = timeout
        at: usize,
    }

    impl io::Read for ChunkedTimeout {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.chunks.get(self.at) {
                None => Ok(0),
                Some(None) => {
                    self.at += 1;
                    Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"))
                }
                Some(Some(bytes)) => {
                    self.at += 1;
                    buf[..bytes.len()].copy_from_slice(bytes);
                    Ok(bytes.len())
                }
            }
        }
    }

    #[test]
    fn partial_lines_survive_timeouts() {
        let inner =
            ChunkedTimeout { chunks: vec![Some(b"{\"ha"), None, Some(b"lf\": true}\n")], at: 0 };
        let mut reader = FrameReader::new(BufReader::new(inner));
        assert_eq!(reader.next_frame().unwrap(), Frame::Idle);
        assert_eq!(
            reader.next_frame().unwrap(),
            Frame::Value(JsonValue::object([("half".to_owned(), true.into())]))
        );
        assert_eq!(reader.next_frame().unwrap(), Frame::Eof);
    }
}
