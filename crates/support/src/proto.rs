//! Newline-delimited JSON framing for wire protocols.
//!
//! The hub daemon (and, per the ROADMAP, future remote measurement
//! workers) speak a line protocol: every message is one [`JsonValue`]
//! serialized *compactly* (no embedded newlines — the JSON writer escapes
//! them inside strings) followed by `\n`. This module owns the framing so
//! both sides agree on it:
//!
//! - [`write_frame`] serializes and flushes one message;
//! - [`FrameReader`] accumulates bytes from any [`BufRead`] into frames,
//!   tolerating *timeouts*: a socket with a read timeout surfaces
//!   [`Frame::Idle`] instead of an error, and a partially received line
//!   stays buffered until the rest arrives. That is what lets a server
//!   poll a shutdown flag between reads without dropping bytes.
//!
//! Blank lines are ignored (a `nc` user pressing return twice should not
//! kill the connection), and EOF with a non-empty trailing line still
//! parses it — be liberal in what you accept.
//!
//! Daemons write their frames through [`write_frame_at`], which names the
//! write's *fault site* so an installed [`crate::fault::FaultPlan`] can
//! script a drop, a torn frame, or a delay at that exact write. With no
//! plan installed it is [`write_frame`] plus one atomic load.

use std::io::{self, BufRead, Write};

use crate::diag::Diagnostic;
use crate::fault::{self, FaultAction};
use crate::json::JsonValue;

/// Serializes `value` compactly onto `writer`, appends `\n`, and flushes.
///
/// # Errors
///
/// Propagates the underlying I/O error (a closed peer surfaces here as
/// `BrokenPipe`).
pub fn write_frame<W: Write>(writer: &mut W, value: &JsonValue) -> io::Result<()> {
    let mut line = value.to_json_string();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// [`write_frame`] through the named fault site: an installed
/// [`fault::FaultPlan`] event scripted at `site` can drop the frame
/// (error before any byte is written), tear it (a seeded prefix goes out,
/// then an error — the peer sees a partial NDJSON line), delay it, crash
/// the process, or fail it. Unscripted ticks write normally.
///
/// # Errors
///
/// Propagates underlying I/O errors; injected drops/tears surface as
/// `BrokenPipe`/`ConnectionReset` just as real peer loss would.
pub fn write_frame_at<W: Write>(site: &str, writer: &mut W, value: &JsonValue) -> io::Result<()> {
    let Some(plan) = fault::active() else {
        return write_frame(writer, value);
    };
    match plan.tick(site) {
        None => write_frame(writer, value),
        Some(FaultAction::Drop) => {
            Err(io::Error::new(io::ErrorKind::BrokenPipe, format!("injected drop at {site}")))
        }
        Some(FaultAction::Torn) => {
            let mut line = value.to_json_string();
            line.push('\n');
            let split = plan.split_point(site, line.len());
            writer.write_all(&line.as_bytes()[..split])?;
            writer.flush()?;
            Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                format!("injected torn frame at {site} ({split}/{} bytes)", line.len()),
            ))
        }
        Some(FaultAction::Delay(pause)) => {
            std::thread::sleep(pause);
            write_frame(writer, value)
        }
        Some(FaultAction::Crash(code)) => {
            let _ = writer.flush();
            std::process::exit(code);
        }
        Some(FaultAction::Fail) => Err(io::Error::other(format!("injected failure at {site}"))),
    }
}

/// One read attempt's outcome.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// A complete message arrived.
    Value(JsonValue),
    /// The peer closed the connection (any buffered partial line was
    /// empty or already returned).
    Eof,
    /// The read timed out before a full line arrived; received bytes stay
    /// buffered. Only surfaces on streams with a read timeout.
    Idle,
}

/// Accumulates newline-delimited JSON frames from a [`BufRead`] stream.
///
/// The partial-line buffer is *bytes*, not a `String`: `read_line`'s
/// UTF-8 guard discards everything it appended when an error (such as a
/// read timeout) arrives while the accumulated bytes end mid-codepoint,
/// silently losing data. Frames here accumulate via `read_until` and are
/// validated as UTF-8 only at the frame boundary, so a timeout can land
/// on any byte — including inside a multi-byte codepoint — without loss.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    partial: Vec<u8>,
}

fn parse_line(bytes: &[u8]) -> Result<Option<JsonValue>, Diagnostic> {
    let line = std::str::from_utf8(bytes)
        .map_err(|err| Diagnostic::error(format!("frame is not valid UTF-8: {err}")))?
        .trim();
    if line.is_empty() {
        return Ok(None); // blank keep-alive line
    }
    JsonValue::parse(line).map(Some)
}

impl<R: BufRead> FrameReader<R> {
    /// Wraps a buffered stream.
    pub fn new(inner: R) -> Self {
        Self { inner, partial: Vec::new() }
    }

    /// Reads until one frame, EOF, or a timeout.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] for malformed JSON lines, invalid UTF-8,
    /// and I/O errors other than timeouts.
    pub fn next_frame(&mut self) -> Result<Frame, Diagnostic> {
        loop {
            match self.inner.read_until(b'\n', &mut self.partial) {
                Ok(0) => {
                    // EOF: parse a non-empty trailing line, else done.
                    let line = std::mem::take(&mut self.partial);
                    return match parse_line(&line)? {
                        Some(value) => Ok(Frame::Value(value)),
                        None => Ok(Frame::Eof),
                    };
                }
                Ok(_) => {
                    if self.partial.last() != Some(&b'\n') {
                        // A timeout can interrupt `read_until` after a
                        // partial read; keep accumulating.
                        continue;
                    }
                    let line = std::mem::take(&mut self.partial);
                    match parse_line(&line)? {
                        Some(value) => return Ok(Frame::Value(value)),
                        None => continue,
                    }
                }
                Err(err)
                    if matches!(
                        err.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(Frame::Idle);
                }
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(err) => {
                    return Err(Diagnostic::error(format!("connection read failed: {err}")))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let a = JsonValue::object([("type".to_owned(), "hello".into())]);
        let b = JsonValue::object([
            ("type".to_owned(), "submit".into()),
            ("note".to_owned(), "line\nbreak".into()),
        ]);
        let mut wire = Vec::new();
        write_frame(&mut wire, &a).unwrap();
        write_frame(&mut wire, &b).unwrap();
        // Embedded newlines are escaped, so the stream is exactly 2 lines.
        assert_eq!(wire.iter().filter(|&&c| c == b'\n').count(), 2);
        let mut reader = FrameReader::new(BufReader::new(wire.as_slice()));
        assert_eq!(reader.next_frame().unwrap(), Frame::Value(a));
        assert_eq!(reader.next_frame().unwrap(), Frame::Value(b));
        assert_eq!(reader.next_frame().unwrap(), Frame::Eof);
    }

    #[test]
    fn blank_lines_are_skipped_and_trailing_lines_parse() {
        let wire = b"\n  \n{\"n\": 1}\n{\"n\": 2}";
        let mut reader = FrameReader::new(BufReader::new(wire.as_slice()));
        assert_eq!(
            reader.next_frame().unwrap(),
            Frame::Value(JsonValue::object([("n".to_owned(), 1u64.into())]))
        );
        // The last frame has no trailing newline (EOF mid-line).
        assert_eq!(
            reader.next_frame().unwrap(),
            Frame::Value(JsonValue::object([("n".to_owned(), 2u64.into())]))
        );
        assert_eq!(reader.next_frame().unwrap(), Frame::Eof);
    }

    #[test]
    fn malformed_lines_are_diagnostics() {
        let mut reader = FrameReader::new(BufReader::new(b"not json\n".as_slice()));
        assert!(reader.next_frame().is_err());
    }

    /// A reader that yields a timeout between two halves of one line.
    struct ChunkedTimeout {
        chunks: Vec<Option<&'static [u8]>>, // None = timeout
        at: usize,
    }

    impl io::Read for ChunkedTimeout {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.chunks.get(self.at) {
                None => Ok(0),
                Some(None) => {
                    self.at += 1;
                    Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"))
                }
                Some(Some(bytes)) => {
                    self.at += 1;
                    buf[..bytes.len()].copy_from_slice(bytes);
                    Ok(bytes.len())
                }
            }
        }
    }

    #[test]
    fn partial_lines_survive_timeouts() {
        let inner =
            ChunkedTimeout { chunks: vec![Some(b"{\"ha"), None, Some(b"lf\": true}\n")], at: 0 };
        let mut reader = FrameReader::new(BufReader::new(inner));
        assert_eq!(reader.next_frame().unwrap(), Frame::Idle);
        assert_eq!(
            reader.next_frame().unwrap(),
            Frame::Value(JsonValue::object([("half".to_owned(), true.into())]))
        );
        assert_eq!(reader.next_frame().unwrap(), Frame::Eof);
    }

    /// Regression: a timeout landing *inside* a multi-byte UTF-8
    /// codepoint must not lose the buffered half. (`read_line`'s UTF-8
    /// guard truncated the appended bytes in exactly this case, so the
    /// reassembled frame was silently missing its prefix.)
    #[test]
    fn timeouts_inside_a_codepoint_lose_nothing() {
        // "é" is C3 A9; the timeout splits it.
        let inner = ChunkedTimeout {
            chunks: vec![Some(b"{\"k\": \"\xc3"), None, Some(b"\xa9\"}\n")],
            at: 0,
        };
        let mut reader = FrameReader::new(BufReader::new(inner));
        assert_eq!(reader.next_frame().unwrap(), Frame::Idle);
        assert_eq!(
            reader.next_frame().unwrap(),
            Frame::Value(JsonValue::object([("k".to_owned(), "é".into())]))
        );
        assert_eq!(reader.next_frame().unwrap(), Frame::Eof);
    }

    #[test]
    fn injected_faults_shape_the_wire() {
        let plan = crate::fault::FaultPlan::parse("seed=3,t.send:drop@1,t.send:torn@2").unwrap();
        let value = JsonValue::object([("payload".to_owned(), "0123456789".into())]);
        // Without a global install, exercise the action mapping directly
        // through a plan-scoped helper: tick 1 drops…
        let mut wire = Vec::new();
        assert_eq!(plan.tick("t.send"), Some(crate::fault::FaultAction::Drop));
        // …tick 2 tears: an interior prefix goes out.
        assert_eq!(plan.tick("t.send"), Some(crate::fault::FaultAction::Torn));
        let mut line = value.to_json_string();
        line.push('\n');
        let split = plan.split_point("t.send", line.len());
        wire.extend_from_slice(&line.as_bytes()[..split]);
        assert!(!wire.is_empty() && wire.len() < line.len());
        // A reader sees the torn prefix as an unterminated partial line.
        let mut reader = FrameReader::new(BufReader::new(wire.as_slice()));
        assert!(matches!(reader.next_frame(), Ok(Frame::Eof) | Err(_)));
    }
}
