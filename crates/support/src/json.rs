//! A small, dependency-free JSON reader and writer.
//!
//! The build environment vendors no serde, so configuration files are read
//! through this hand-rolled recursive-descent parser instead, and the
//! `BENCH_*.json` reports are produced by the serializer below. Three
//! properties matter to callers and are guaranteed here:
//!
//! - **object member order is preserved** (an object is a `Vec` of pairs,
//!   not a hash map) — the `"data"` object of a Fig. 5 configuration
//!   defines operand order by member position, and report files diff
//!   cleanly;
//! - errors carry `line:col` locations through [`Diagnostic`];
//! - serialization round-trips: `parse(v.to_json_pretty())` yields `v`
//!   again for every value this module can produce.

use crate::diag::{Diagnostic, SourceLoc};

/// One parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without a fractional part or exponent. Stored as `i128`
    /// so the full `u64` range (DMA addresses, buffer sizes) and the full
    /// `i64` range both survive parsing.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source member order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] with a `line:col` location on syntax
    /// errors or trailing garbage.
    pub fn parse(text: &str) -> Result<JsonValue, Diagnostic> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos < p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number in
    /// range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`: floats directly, integral numbers
    /// converted (may round for magnitudes beyond 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Float(v) => Some(*v),
            JsonValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members in source order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A short name for the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "boolean",
            JsonValue::Int(_) | JsonValue::Float(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }

    /// An object from `(key, value)` pairs, preserving order.
    pub fn object(members: impl IntoIterator<Item = (String, JsonValue)>) -> JsonValue {
        JsonValue::Object(members.into_iter().collect())
    }

    /// Compact (single-line) serialization.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization: two-space indent, one member per line.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(v) => out.push_str(&v.to_string()),
            JsonValue::Float(v) => out.push_str(&fmt_float(*v)),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                write_seq(out, indent, depth, b'[', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            JsonValue::Object(members) => {
                write_seq(out, indent, depth, b'{', members.len(), |out, i| {
                    let (key, value) = &members[i];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                });
            }
        }
    }
}

/// Serializes a finite float so it re-parses as [`JsonValue::Float`]
/// (integral values keep a `.0`); non-finite values have no JSON spelling
/// and become `null`.
fn fmt_float(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_owned();
    }
    if v.fract() == 0.0 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Shared layout for arrays (`open` = `[`) and objects (`open` = `{`):
/// compact when `indent` is `None`, one element per line otherwise.
fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: u8,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    let close = if open == b'[' { ']' } else { '}' };
    out.push(open as char);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v as i128)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Int(v as i128)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Int(v as i128)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Array(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn loc(&self) -> SourceLoc {
        let mut line = 1u32;
        let mut col = 1u32;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        SourceLoc::new(line, col)
    }

    fn error(&self, message: impl Into<String>) -> Diagnostic {
        let loc = self.loc();
        Diagnostic::error(format!("{} at {loc}", message.into()))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Diagnostic> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, Diagnostic> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.keyword("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, Diagnostic> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, Diagnostic> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string().map_err(|_| self.error("expected a string object key"))?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, Diagnostic> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Diagnostic> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by config files.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(self.error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, Diagnostic> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<i128>() {
                return Ok(JsonValue::Int(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::Int(42));
        assert_eq!(JsonValue::parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(JsonValue::parse("2.5").unwrap(), JsonValue::Float(2.5));
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(r#""a\nb""#).unwrap(), JsonValue::Str("a\nb".to_owned()));
    }

    #[test]
    fn object_member_order_is_preserved() {
        let v = JsonValue::parse(r#"{ "C": 1, "A": 2, "B": 3 }"#).unwrap();
        let keys: Vec<&str> = v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["C", "A", "B"]);
        assert_eq!(v.get("A"), Some(&JsonValue::Int(2)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn nested_documents_roundtrip_structure() {
        let v = JsonValue::parse(r#"{"xs": [1, [2, 3], {"y": "z"}], "n": -4}"#).unwrap();
        let xs = v.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[2].get("y").unwrap().as_str(), Some("z"));
        assert_eq!(v.get("n").unwrap().as_i64(), Some(-4));
    }

    #[test]
    fn errors_carry_locations() {
        let err = JsonValue::parse("{not json").unwrap_err();
        assert!(err.message.contains("1:2"), "{}", err.message);
        let err = JsonValue::parse("{\"a\": 1,\n  oops}").unwrap_err();
        assert!(err.message.contains("2:3"), "{}", err.message);
        assert!(JsonValue::parse("[1, 2").is_err());
        assert!(JsonValue::parse("1 2").is_err());
    }

    #[test]
    fn accessor_type_mismatches_are_none() {
        let v = JsonValue::parse(r#"{"s": "x", "n": 1}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_i64(), None);
        assert_eq!(v.get("n").unwrap().as_str(), None);
        assert_eq!(JsonValue::Int(-1).as_u64(), None);
        assert_eq!(JsonValue::Int(5).as_u64(), Some(5));
        assert_eq!(v.type_name(), "object");
    }

    #[test]
    fn serialization_round_trips() {
        let text = r#"{"xs": [1, [2, 3], {"y": "z"}], "n": -4, "f": 2.5, "t": true, "e": null}"#;
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(JsonValue::parse(&v.to_json_string()).unwrap(), v);
        assert_eq!(JsonValue::parse(&v.to_json_pretty()).unwrap(), v);
    }

    #[test]
    fn integral_floats_stay_floats() {
        // 2.0 must not serialize as `2` (which would re-parse as Int).
        let v = JsonValue::Float(2.0);
        assert_eq!(v.to_json_string(), "2.0");
        assert_eq!(JsonValue::parse("2.0").unwrap(), v);
        assert_eq!(JsonValue::Float(f64::NAN).to_json_string(), "null");
        // Large integral floats keep the decimal point too.
        let big = JsonValue::Float(1e15);
        assert_eq!(JsonValue::parse(&big.to_json_string()).unwrap(), big);
    }

    #[test]
    fn strings_escape_cleanly() {
        let v = JsonValue::Str("a\"b\\c\nd\u{0001}".to_owned());
        let text = v.to_json_string();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn pretty_output_indents_members() {
        let v = JsonValue::object([
            ("a".to_owned(), JsonValue::Int(1)),
            ("b".to_owned(), JsonValue::Array(vec![JsonValue::Bool(true)])),
            ("empty".to_owned(), JsonValue::Object(Vec::new())),
        ]);
        let text = v.to_json_pretty();
        assert_eq!(text, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ],\n  \"empty\": {}\n}");
    }

    #[test]
    fn from_conversions_build_values() {
        assert_eq!(JsonValue::from(3i64), JsonValue::Int(3));
        assert_eq!(JsonValue::from(3u64), JsonValue::Int(3));
        assert_eq!(JsonValue::from(3usize), JsonValue::Int(3));
        assert_eq!(JsonValue::from(true), JsonValue::Bool(true));
        assert_eq!(JsonValue::from("x"), JsonValue::Str("x".to_owned()));
        assert_eq!(JsonValue::from(1.5), JsonValue::Float(1.5));
    }

    #[test]
    fn full_u64_range_survives() {
        // u64::MAX does not fit in i64; it must still parse as an integer.
        let v = JsonValue::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v.as_i64(), None, "out of i64 range");
        let v = JsonValue::parse("9223372036854775808").unwrap();
        assert_eq!(v.as_u64(), Some(9_223_372_036_854_775_808));
    }
}
