//! Plain-text table rendering for the experiment harness.
//!
//! The paper reports results as bar charts and tables; our regenerators print
//! the underlying series as aligned text tables so `paper shape` vs
//! `measured` comparisons are easy to eyeball and to diff.

use std::fmt::Write as _;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use axi4mlir_support::fmtutil::TextTable;
///
/// let mut t = TextTable::new(vec!["config", "task-clock [ms]"]);
/// t.row(vec!["(64, 8, v1)".into(), "12.5".into()]);
/// t.row(vec!["(64, 16, v1)".into(), "4.2".into()]);
/// let rendered = t.render();
/// assert!(rendered.contains("config"));
/// assert!(rendered.lines().count() >= 4);
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Self { headers: headers.into_iter().map(str::to_owned).collect(), rows: Vec::new() }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width must match header width");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header separator line.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim trailing padding on the last column.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with engineering-friendly precision: 3 significant-ish
/// decimals for small values, fewer for large ones.
///
/// # Examples
///
/// ```
/// use axi4mlir_support::fmtutil::fmt_ms;
/// assert_eq!(fmt_ms(1234.5678), "1234.6");
/// assert_eq!(fmt_ms(12.345), "12.35");
/// assert_eq!(fmt_ms(0.01234), "0.012");
/// ```
pub fn fmt_ms(value: f64) -> String {
    if value >= 100.0 {
        format!("{value:.1}")
    } else if value >= 1.0 {
        format!("{value:.2}")
    } else {
        format!("{value:.3}")
    }
}

/// Formats a ratio as `1.23x`.
///
/// # Examples
///
/// ```
/// use axi4mlir_support::fmtutil::fmt_speedup;
/// assert_eq!(fmt_speedup(1.654), "1.65x");
/// ```
pub fn fmt_speedup(ratio: f64) -> String {
    format!("{ratio:.2}x")
}

/// Formats a fraction as a percentage: `0.56` becomes `56.0%`.
///
/// # Examples
///
/// ```
/// use axi4mlir_support::fmtutil::fmt_percent;
/// assert_eq!(fmt_percent(0.561), "56.1%");
/// ```
pub fn fmt_percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header columns aligned to widest cell.
        assert!(lines[0].starts_with("a    "));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(lines[2], "xxxxx  1");
        assert_eq!(lines[3], "y      22");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = TextTable::new(vec!["a"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn float_formatting_bands() {
        assert_eq!(fmt_ms(250.0), "250.0");
        assert_eq!(fmt_ms(2.5), "2.50");
        assert_eq!(fmt_ms(0.25), "0.250");
        assert_eq!(fmt_speedup(2.0), "2.00x");
        assert_eq!(fmt_percent(0.1), "10.0%");
    }
}
