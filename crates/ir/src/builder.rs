//! Insertion-point style IR construction.
//!
//! [`OpBuilder`] wraps an [`IrCtx`] with a current insertion point (a block
//! and position). Dialect crates layer typed constructors on top.

use std::collections::BTreeMap;

use crate::attrs::Attribute;
use crate::ops::{BlockId, IrCtx, OpId, ValueId};
use crate::types::Type;

/// A builder that inserts operations at a movable insertion point.
///
/// # Examples
///
/// ```
/// use axi4mlir_ir::builder::OpBuilder;
/// use axi4mlir_ir::ops::Module;
/// use axi4mlir_ir::types::Type;
/// use axi4mlir_ir::attrs::Attribute;
///
/// let mut module = Module::new();
/// let body = module.body();
/// let mut b = OpBuilder::at_end(&mut module.ctx, body);
/// let op = b.insert_op("arith.constant", vec![], vec![Type::index()], [("value", Attribute::Int(4))]);
/// let _result = b.ctx().result(op, 0);
/// assert_eq!(module.ctx.block(body).ops.len(), 1);
/// ```
pub struct OpBuilder<'a> {
    ctx: &'a mut IrCtx,
    block: BlockId,
    index: usize,
}

impl<'a> OpBuilder<'a> {
    /// Positions the builder at the end of `block`.
    pub fn at_end(ctx: &'a mut IrCtx, block: BlockId) -> Self {
        let index = ctx.block(block).ops.len();
        Self { ctx, block, index }
    }

    /// Positions the builder at `index` within `block`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is past the end of the block.
    pub fn at(ctx: &'a mut IrCtx, block: BlockId, index: usize) -> Self {
        assert!(index <= ctx.block(block).ops.len(), "insertion index out of range");
        Self { ctx, block, index }
    }

    /// The underlying arena.
    pub fn ctx(&mut self) -> &mut IrCtx {
        self.ctx
    }

    /// Read-only access to the arena.
    pub fn ctx_ref(&self) -> &IrCtx {
        self.ctx
    }

    /// The current insertion block.
    pub fn block(&self) -> BlockId {
        self.block
    }

    /// Moves the insertion point to the end of another block.
    pub fn set_insertion_end(&mut self, block: BlockId) {
        self.block = block;
        self.index = self.ctx.block(block).ops.len();
    }

    /// Creates an op and inserts it at the insertion point, advancing the
    /// point past it. Returns the new op.
    pub fn insert_op<A>(
        &mut self,
        name: &str,
        operands: Vec<ValueId>,
        result_types: Vec<Type>,
        attrs: A,
    ) -> OpId
    where
        A: IntoIterator<Item = (&'static str, Attribute)>,
    {
        let attrs: BTreeMap<String, Attribute> =
            attrs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect();
        let op = self.ctx.create_op(name, operands, result_types, attrs);
        self.ctx.insert_op(self.block, self.index, op);
        self.index += 1;
        op
    }

    /// Creates an op with a single region + single block (the shape of all
    /// structured control flow), inserts it, and returns `(op, body_block)`.
    /// The insertion point stays in the *outer* block, after the op.
    pub fn insert_region_op<A>(
        &mut self,
        name: &str,
        operands: Vec<ValueId>,
        result_types: Vec<Type>,
        attrs: A,
        block_arg_types: Vec<Type>,
    ) -> (OpId, BlockId)
    where
        A: IntoIterator<Item = (&'static str, Attribute)>,
    {
        let op = self.insert_op(name, operands, result_types, attrs);
        let region = self.ctx.add_region(op);
        let block = self.ctx.add_block(region, block_arg_types);
        (op, block)
    }

    /// Result 0 of an op — the common case.
    pub fn result(&self, op: OpId) -> ValueId {
        self.ctx.result(op, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Module;

    #[test]
    fn builder_inserts_in_order() {
        let mut m = Module::new();
        let body = m.body();
        let mut b = OpBuilder::at_end(&mut m.ctx, body);
        b.insert_op("a.x", vec![], vec![], []);
        b.insert_op("a.y", vec![], vec![], []);
        let names: Vec<String> =
            m.ctx.block(body).ops.iter().map(|o| m.ctx.op(*o).name.clone()).collect();
        assert_eq!(names, vec!["a.x", "a.y"]);
    }

    #[test]
    fn builder_at_position_prepends() {
        let mut m = Module::new();
        let body = m.body();
        {
            let mut b = OpBuilder::at_end(&mut m.ctx, body);
            b.insert_op("a.second", vec![], vec![], []);
        }
        {
            let mut b = OpBuilder::at(&mut m.ctx, body, 0);
            b.insert_op("a.first", vec![], vec![], []);
        }
        let names: Vec<String> =
            m.ctx.block(body).ops.iter().map(|o| m.ctx.op(*o).name.clone()).collect();
        assert_eq!(names, vec!["a.first", "a.second"]);
    }

    #[test]
    fn region_op_creates_nested_block() {
        let mut m = Module::new();
        let body = m.body();
        let mut b = OpBuilder::at_end(&mut m.ctx, body);
        let (op, block) = b.insert_region_op("scf.for", vec![], vec![], [], vec![Type::index()]);
        assert_eq!(m.ctx.op(op).regions.len(), 1);
        assert_eq!(m.ctx.block(block).args.len(), 1);
        assert_eq!(m.ctx.sole_block(op, 0), block);
    }

    #[test]
    fn insertion_point_can_dive_into_blocks() {
        let mut m = Module::new();
        let body = m.body();
        let mut b = OpBuilder::at_end(&mut m.ctx, body);
        let (_, inner) = b.insert_region_op("scf.for", vec![], vec![], [], vec![Type::index()]);
        b.set_insertion_end(inner);
        b.insert_op("a.inside", vec![], vec![], []);
        assert_eq!(m.ctx.block(inner).ops.len(), 1);
        assert_eq!(m.ctx.block(body).ops.len(), 1);
    }
}
