//! The pass manager.
//!
//! Mirrors MLIR's pass infrastructure at the scale this project needs:
//! passes transform a [`Module`], the manager optionally verifies after
//! each pass and can capture IR snapshots (the `--print-ir-after-all`
//! debugging workflow, used by the quickstart example to show each
//! AXI4MLIR stage).

use axi4mlir_support::diag::{Diagnostic, DiagnosticEngine};

use crate::ops::Module;
use crate::printer::print_op;
use crate::verifier;

/// A module-level transformation.
pub trait Pass {
    /// Unique, command-line-style name (`"axi4mlir-generate-flow"`).
    fn name(&self) -> &str;

    /// Applies the transformation.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] if the pass cannot apply; the module may be
    /// left partially transformed only if the error says so.
    fn run(&mut self, module: &mut Module, diags: &mut DiagnosticEngine) -> Result<(), Diagnostic>;
}

/// A snapshot of the IR after one pass.
#[derive(Clone, Debug)]
pub struct IrSnapshot {
    /// Name of the pass that just ran.
    pub pass: String,
    /// Printed module.
    pub ir: String,
}

/// Wall-clock cost of one pass execution (the `-mlir-timing` workflow).
#[derive(Clone, Debug)]
pub struct PassTiming {
    /// Name of the pass.
    pub pass: String,
    /// Wall-clock time the pass (including its verification) took.
    pub millis: f64,
}

/// Renders a timing report in the style of MLIR's `-mlir-timing`.
pub fn render_timings(timings: &[PassTiming]) -> String {
    let total: f64 = timings.iter().map(|t| t.millis).sum();
    let mut out = String::from("===-- Pass execution timing report --===\n");
    for t in timings {
        let share = if total > 0.0 { 100.0 * t.millis / total } else { 0.0 };
        out.push_str(&format!("  {:>10.4} ms ({share:>5.1}%)  {}\n", t.millis, t.pass));
    }
    out.push_str(&format!("  {total:>10.4} ms (100.0%)  total\n"));
    out
}

/// An extra per-pass check run alongside the structural verifier when
/// `verify_each` is on. This is how dialect-level verification (which lives
/// in a crate above this one) plugs into the blame-the-pass loop.
pub type ExtraVerifier = Box<dyn Fn(&Module) -> Result<(), Diagnostic>>;

/// Runs a pipeline of passes with optional verification and IR capture.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    verify_each: bool,
    extra_verifiers: Vec<ExtraVerifier>,
    capture_ir: bool,
    timings: Vec<PassTiming>,
}

impl PassManager {
    /// Creates an empty manager with per-pass verification enabled.
    pub fn new() -> Self {
        Self {
            passes: Vec::new(),
            verify_each: true,
            extra_verifiers: Vec::new(),
            capture_ir: false,
            timings: Vec::new(),
        }
    }

    /// Adds a pass to the end of the pipeline.
    pub fn add(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Enables or disables verification after each pass.
    pub fn verify_each(&mut self, on: bool) -> &mut Self {
        self.verify_each = on;
        self
    }

    /// Registers an extra verifier run after every pass (when `verify_each`
    /// is on), in registration order, after the structural verifier. A
    /// failure is blamed on the pass that just ran.
    pub fn add_verifier(&mut self, verifier: ExtraVerifier) -> &mut Self {
        self.extra_verifiers.push(verifier);
        self
    }

    /// Enables IR snapshot capture after each pass.
    pub fn capture_ir(&mut self, on: bool) -> &mut Self {
        self.capture_ir = on;
        self
    }

    /// Number of scheduled passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// `true` when no passes are scheduled.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Per-pass wall-clock timings of the most recent [`PassManager::run`].
    pub fn timings(&self) -> &[PassTiming] {
        &self.timings
    }

    /// Runs the pipeline.
    ///
    /// # Errors
    ///
    /// Stops at the first failing pass or verification failure, naming it.
    pub fn run(&mut self, module: &mut Module) -> Result<Vec<IrSnapshot>, Diagnostic> {
        let mut snapshots = Vec::new();
        self.timings.clear();
        for pass in &mut self.passes {
            let started = std::time::Instant::now();
            let mut diags = DiagnosticEngine::new();
            pass.run(module, &mut diags).map_err(|d| {
                Diagnostic::error(format!("pass `{}` failed: {}", pass.name(), d.message))
                    .with_note(diags.render())
            })?;
            if diags.has_errors() {
                return Err(Diagnostic::error(format!(
                    "pass `{}` reported errors: {}",
                    pass.name(),
                    diags.render()
                )));
            }
            if self.verify_each {
                verifier::verify_ok(&module.ctx, module.top()).map_err(|d| {
                    Diagnostic::error(format!(
                        "verification failed after pass `{}`: {}",
                        pass.name(),
                        d.message
                    ))
                })?;
                for extra in &self.extra_verifiers {
                    extra(module).map_err(|d| {
                        Diagnostic::error(format!(
                            "verification failed after pass `{}`: {}",
                            pass.name(),
                            d.message
                        ))
                    })?;
                }
            }
            self.timings.push(PassTiming {
                pass: pass.name().to_owned(),
                millis: started.elapsed().as_secs_f64() * 1e3,
            });
            if self.capture_ir {
                snapshots.push(IrSnapshot {
                    pass: pass.name().to_owned(),
                    ir: print_op(&module.ctx, module.top()),
                });
            }
        }
        Ok(snapshots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Attribute;
    use crate::builder::OpBuilder;
    use crate::types::Type;

    struct AddConstant(i64);

    impl Pass for AddConstant {
        fn name(&self) -> &str {
            "test-add-constant"
        }
        fn run(
            &mut self,
            module: &mut Module,
            _diags: &mut DiagnosticEngine,
        ) -> Result<(), Diagnostic> {
            let body = module.body();
            let mut b = OpBuilder::at_end(&mut module.ctx, body);
            b.insert_op(
                "arith.constant",
                vec![],
                vec![Type::index()],
                [("value", Attribute::Int(self.0))],
            );
            Ok(())
        }
    }

    struct Failing;

    impl Pass for Failing {
        fn name(&self) -> &str {
            "test-failing"
        }
        fn run(&mut self, _m: &mut Module, _d: &mut DiagnosticEngine) -> Result<(), Diagnostic> {
            Err(Diagnostic::error("intentional failure"))
        }
    }

    struct Corrupting;

    impl Pass for Corrupting {
        fn name(&self) -> &str {
            "test-corrupting"
        }
        fn run(
            &mut self,
            module: &mut Module,
            _d: &mut DiagnosticEngine,
        ) -> Result<(), Diagnostic> {
            // Create a use of a value that is never defined in scope.
            let body = module.body();
            let c = module.ctx.create_op(
                "arith.constant",
                vec![],
                vec![Type::index()],
                Default::default(),
            );
            let v = module.ctx.result(c, 0);
            let u = module.ctx.create_op("test.use", vec![v], vec![], Default::default());
            module.ctx.append_op(body, u);
            Ok(())
        }
    }

    #[test]
    fn passes_run_in_order_with_snapshots() {
        let mut module = Module::new();
        let mut pm = PassManager::new();
        pm.capture_ir(true);
        pm.add(Box::new(AddConstant(1))).add(Box::new(AddConstant(2)));
        assert_eq!(pm.len(), 2);
        let snaps = pm.run(&mut module).unwrap();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].pass, "test-add-constant");
        assert!(snaps[1].ir.matches("arith.constant").count() == 2);
    }

    #[test]
    fn failing_pass_stops_pipeline() {
        let mut module = Module::new();
        let mut pm = PassManager::new();
        pm.add(Box::new(Failing)).add(Box::new(AddConstant(3)));
        let err = pm.run(&mut module).unwrap_err();
        assert!(err.message.contains("test-failing"));
        assert!(
            module.ctx.find_ops(module.top(), "arith.constant").is_empty(),
            "later pass must not run"
        );
    }

    #[test]
    fn verification_catches_corrupting_pass() {
        let mut module = Module::new();
        let mut pm = PassManager::new();
        pm.add(Box::new(Corrupting));
        let err = pm.run(&mut module).unwrap_err();
        assert!(err.message.contains("verification failed after pass `test-corrupting`"));
    }

    #[test]
    fn verification_can_be_disabled() {
        let mut module = Module::new();
        let mut pm = PassManager::new();
        pm.verify_each(false);
        pm.add(Box::new(Corrupting));
        assert!(pm.run(&mut module).is_ok());
    }

    #[test]
    fn extra_verifier_blames_the_breaking_pass() {
        let mut module = Module::new();
        let mut pm = PassManager::new();
        pm.add_verifier(Box::new(|m: &Module| {
            if m.ctx.find_ops(m.top(), "test.use").is_empty() {
                Ok(())
            } else {
                Err(Diagnostic::error("test.use is forbidden here"))
            }
        }));
        // AddConstant passes both verifiers; the second pass introduces the
        // forbidden op and is blamed by name.
        struct AddUse;
        impl Pass for AddUse {
            fn name(&self) -> &str {
                "test-add-use"
            }
            fn run(&mut self, m: &mut Module, _d: &mut DiagnosticEngine) -> Result<(), Diagnostic> {
                let body = m.body();
                let u = m.ctx.create_op("test.use", vec![], vec![], Default::default());
                m.ctx.append_op(body, u);
                Ok(())
            }
        }
        pm.add(Box::new(AddConstant(1))).add(Box::new(AddUse));
        let err = pm.run(&mut module).unwrap_err();
        assert!(err.message.contains("after pass `test-add-use`"), "{}", err.message);
        assert!(err.message.contains("test.use is forbidden"), "{}", err.message);
        assert_eq!(pm.timings().len(), 1, "the blamed pass is not timed");
    }

    #[test]
    fn empty_manager_is_a_no_op() {
        let mut module = Module::new();
        let mut pm = PassManager::new();
        assert!(pm.is_empty());
        assert!(pm.run(&mut module).unwrap().is_empty());
        assert!(pm.timings().is_empty());
    }

    #[test]
    fn timings_cover_every_executed_pass() {
        let mut module = Module::new();
        let mut pm = PassManager::new();
        pm.add(Box::new(AddConstant(1))).add(Box::new(AddConstant(2)));
        pm.run(&mut module).unwrap();
        assert_eq!(pm.timings().len(), 2);
        assert!(pm.timings().iter().all(|t| t.pass == "test-add-constant"));
        assert!(pm.timings().iter().all(|t| t.millis >= 0.0));
        let report = render_timings(pm.timings());
        assert!(report.contains("Pass execution timing report"));
        assert!(report.contains("total"));
        // A rerun replaces, not appends.
        pm.run(&mut module).unwrap();
        assert_eq!(pm.timings().len(), 2);
    }

    #[test]
    fn failing_run_keeps_timings_of_completed_passes() {
        let mut module = Module::new();
        let mut pm = PassManager::new();
        pm.add(Box::new(AddConstant(1))).add(Box::new(Failing));
        pm.run(&mut module).unwrap_err();
        assert_eq!(pm.timings().len(), 1, "only the pass that completed is timed");
    }
}
