//! Arena-based SSA IR: operations, regions, blocks, and values.
//!
//! Entities live in dense arenas inside [`IrCtx`] and reference each other
//! by typed identifiers, which makes the transformation the paper leans on —
//! *hoisting `accel` operations to an outer loop level* (§III-C) — a simple
//! matter of splicing identifier lists rather than fighting ownership.
//!
//! The structure mirrors MLIR:
//!
//! ```text
//! Operation ── has ──> Regions ── have ──> Blocks ── have ──> Operations
//!     │                                       │
//!     └── results: Values                     └── arguments: Values
//! ```

use std::collections::BTreeMap;

use axi4mlir_support::entity::PrimaryMap;
use axi4mlir_support::entity_id;

use crate::attrs::Attribute;
use crate::types::Type;

entity_id!(pub struct OpId, "op");
entity_id!(pub struct BlockId, "bb");
entity_id!(pub struct RegionId, "region");
entity_id!(pub struct ValueId, "v");

/// Where a value comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValueDef {
    /// The `index`-th result of an operation.
    OpResult {
        /// Producing operation.
        op: OpId,
        /// Result position.
        index: usize,
    },
    /// The `index`-th argument of a block (e.g. a loop induction variable).
    BlockArg {
        /// Owning block.
        block: BlockId,
        /// Argument position.
        index: usize,
    },
}

/// A value: its type and definition site.
#[derive(Clone, Debug, PartialEq)]
pub struct ValueData {
    /// Static type.
    pub ty: Type,
    /// Definition site.
    pub def: ValueDef,
}

/// An operation: name, operands, results, attributes, nested regions.
#[derive(Clone, Debug, PartialEq)]
pub struct OpData {
    /// Fully qualified name, e.g. `"scf.for"` or `"accel.send"`.
    pub name: String,
    /// SSA operands.
    pub operands: Vec<ValueId>,
    /// SSA results.
    pub results: Vec<ValueId>,
    /// Attribute dictionary.
    pub attrs: BTreeMap<String, Attribute>,
    /// Nested regions.
    pub regions: Vec<RegionId>,
    /// Owning block, if attached.
    pub parent: Option<BlockId>,
    /// `true` once erased; dead ops stay in the arena but are unreachable.
    pub dead: bool,
}

/// A block: arguments and an ordered list of operations.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockData {
    /// Block arguments.
    pub args: Vec<ValueId>,
    /// Operations in execution order.
    pub ops: Vec<OpId>,
    /// Owning region.
    pub parent: Option<RegionId>,
}

/// A region: an ordered list of blocks owned by an operation.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionData {
    /// Blocks (our structured dialects only ever use one).
    pub blocks: Vec<BlockId>,
    /// Owning operation.
    pub parent: Option<OpId>,
}

/// The IR arena.
#[derive(Clone, Debug, Default)]
pub struct IrCtx {
    ops: PrimaryMap<OpId, OpData>,
    blocks: PrimaryMap<BlockId, BlockData>,
    regions: PrimaryMap<RegionId, RegionData>,
    values: PrimaryMap<ValueId, ValueData>,
}

impl IrCtx {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------------------------
    // Creation
    // ------------------------------------------------------------------

    /// Creates a detached operation with fresh result values.
    pub fn create_op(
        &mut self,
        name: &str,
        operands: Vec<ValueId>,
        result_types: Vec<Type>,
        attrs: BTreeMap<String, Attribute>,
    ) -> OpId {
        let op = self.ops.push(OpData {
            name: name.to_owned(),
            operands,
            results: Vec::new(),
            attrs,
            regions: Vec::new(),
            parent: None,
            dead: false,
        });
        let results: Vec<ValueId> = result_types
            .into_iter()
            .enumerate()
            .map(|(index, ty)| {
                self.values.push(ValueData { ty, def: ValueDef::OpResult { op, index } })
            })
            .collect();
        self.ops[op].results = results;
        op
    }

    /// Adds an empty region to `op`.
    pub fn add_region(&mut self, op: OpId) -> RegionId {
        let region = self.regions.push(RegionData { blocks: Vec::new(), parent: Some(op) });
        self.ops[op].regions.push(region);
        region
    }

    /// Adds a block with the given argument types to `region`.
    pub fn add_block(&mut self, region: RegionId, arg_types: Vec<Type>) -> BlockId {
        let block =
            self.blocks.push(BlockData { args: Vec::new(), ops: Vec::new(), parent: Some(region) });
        let args: Vec<ValueId> = arg_types
            .into_iter()
            .enumerate()
            .map(|(index, ty)| {
                self.values.push(ValueData { ty, def: ValueDef::BlockArg { block, index } })
            })
            .collect();
        self.blocks[block].args = args;
        self.regions[region].blocks.push(block);
        block
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The data of `op`.
    pub fn op(&self, op: OpId) -> &OpData {
        &self.ops[op]
    }

    /// Mutable data of `op`.
    pub fn op_mut(&mut self, op: OpId) -> &mut OpData {
        &mut self.ops[op]
    }

    /// The data of `block`.
    pub fn block(&self, block: BlockId) -> &BlockData {
        &self.blocks[block]
    }

    /// The data of `region`.
    pub fn region(&self, region: RegionId) -> &RegionData {
        &self.regions[region]
    }

    /// The data of `value`.
    pub fn value(&self, value: ValueId) -> &ValueData {
        &self.values[value]
    }

    /// Type of `value`.
    pub fn value_type(&self, value: ValueId) -> &Type {
        &self.values[value].ty
    }

    /// The `index`-th result of `op`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn result(&self, op: OpId, index: usize) -> ValueId {
        self.ops[op].results[index]
    }

    /// The `index`-th argument of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn block_arg(&self, block: BlockId, index: usize) -> ValueId {
        self.blocks[block].args[index]
    }

    /// An attribute of `op` by name.
    pub fn attr<'a>(&'a self, op: OpId, name: &str) -> Option<&'a Attribute> {
        self.ops[op].attrs.get(name)
    }

    /// Sets (or replaces) an attribute.
    pub fn set_attr(&mut self, op: OpId, name: &str, value: Attribute) {
        self.ops[op].attrs.insert(name.to_owned(), value);
    }

    /// The operation owning `block` (via its region).
    pub fn block_owner(&self, block: BlockId) -> Option<OpId> {
        self.blocks[block].parent.and_then(|r| self.regions[r].parent)
    }

    /// The sole block of `op`'s `index`-th region.
    ///
    /// # Panics
    ///
    /// Panics if the region does not have exactly one block.
    pub fn sole_block(&self, op: OpId, index: usize) -> BlockId {
        let region = self.ops[op].regions[index];
        let blocks = &self.regions[region].blocks;
        assert_eq!(
            blocks.len(),
            1,
            "expected exactly one block in region {index} of {}",
            self.ops[op].name
        );
        blocks[0]
    }

    // ------------------------------------------------------------------
    // Structural mutation
    // ------------------------------------------------------------------

    /// Appends a detached op to the end of `block`.
    ///
    /// # Panics
    ///
    /// Panics if the op is already attached.
    pub fn append_op(&mut self, block: BlockId, op: OpId) {
        let len = self.blocks[block].ops.len();
        self.insert_op(block, len, op);
    }

    /// Inserts a detached op into `block` at `index`.
    ///
    /// # Panics
    ///
    /// Panics if the op is already attached or `index` is out of range.
    pub fn insert_op(&mut self, block: BlockId, index: usize, op: OpId) {
        assert!(self.ops[op].parent.is_none(), "op {op} is already attached");
        assert!(!self.ops[op].dead, "op {op} is erased");
        self.blocks[block].ops.insert(index, op);
        self.ops[op].parent = Some(block);
    }

    /// Detaches `op` from its block (keeping it alive for re-insertion —
    /// the primitive behind accel-op hoisting).
    ///
    /// # Panics
    ///
    /// Panics if the op is not attached.
    pub fn detach_op(&mut self, op: OpId) {
        let block = self.ops[op].parent.expect("op is not attached");
        let ops = &mut self.blocks[block].ops;
        let pos = ops.iter().position(|o| *o == op).expect("op missing from parent block");
        ops.remove(pos);
        self.ops[op].parent = None;
    }

    /// Moves `op` (attached or not) to position `index` of `block`.
    pub fn move_op(&mut self, op: OpId, block: BlockId, index: usize) {
        if self.ops[op].parent.is_some() {
            self.detach_op(op);
        }
        self.insert_op(block, index, op);
    }

    /// Position of `op` within its parent block.
    pub fn position_in_block(&self, op: OpId) -> Option<usize> {
        let block = self.ops[op].parent?;
        self.blocks[block].ops.iter().position(|o| *o == op)
    }

    /// Erases `op` and everything nested inside it.
    pub fn erase_op(&mut self, op: OpId) {
        if self.ops[op].parent.is_some() {
            self.detach_op(op);
        }
        let mut stack = vec![op];
        while let Some(current) = stack.pop() {
            self.ops[current].dead = true;
            for region in self.ops[current].regions.clone() {
                for block in self.regions[region].blocks.clone() {
                    stack.extend(self.blocks[block].ops.iter().copied());
                }
            }
        }
    }

    /// Replaces every use of `from` with `to` inside `root` (inclusive).
    pub fn replace_uses_in(&mut self, root: OpId, from: ValueId, to: ValueId) {
        for op in self.walk(root) {
            for operand in &mut self.ops[op].operands {
                if *operand == from {
                    *operand = to;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Traversal
    // ------------------------------------------------------------------

    /// Pre-order walk of `root` and all nested operations.
    pub fn walk(&self, root: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(op) = stack.pop() {
            if self.ops[op].dead {
                continue;
            }
            out.push(op);
            // Push nested ops in reverse so the walk stays pre-order.
            let mut nested = Vec::new();
            for region in &self.ops[op].regions {
                for block in &self.regions[*region].blocks {
                    nested.extend(self.blocks[*block].ops.iter().copied());
                }
            }
            for op in nested.into_iter().rev() {
                stack.push(op);
            }
        }
        out
    }

    /// All live ops under `root` with the given name.
    pub fn find_ops(&self, root: OpId, name: &str) -> Vec<OpId> {
        self.walk(root).into_iter().filter(|op| self.ops[*op].name == name).collect()
    }

    /// Number of live operations in the arena (for tests/metrics).
    pub fn live_op_count(&self) -> usize {
        self.ops.values().filter(|o| !o.dead).count()
    }

    /// Total number of operation slots ever minted (live or dead) — the
    /// bound for dense `OpId`-indexed side tables.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Total number of value slots ever minted — the bound for dense
    /// `ValueId`-indexed side tables (e.g. interpreter value frames).
    pub fn value_count(&self) -> usize {
        self.values.len()
    }
}

/// A module: an [`IrCtx`] plus the distinguished top-level op.
#[derive(Clone, Debug)]
pub struct Module {
    /// The arena.
    pub ctx: IrCtx,
    top: OpId,
}

impl Module {
    /// Creates an empty `builtin.module` with one region and one block.
    pub fn new() -> Self {
        let mut ctx = IrCtx::new();
        let top = ctx.create_op("builtin.module", vec![], vec![], BTreeMap::new());
        let region = ctx.add_region(top);
        ctx.add_block(region, vec![]);
        Self { ctx, top }
    }

    /// Assembles a module from a pre-built arena and its top-level op (used
    /// by the parser).
    ///
    /// # Panics
    ///
    /// Panics unless `top` is a `builtin.module` op in `ctx`.
    pub fn from_parts(ctx: IrCtx, top: OpId) -> Self {
        assert_eq!(ctx.op(top).name, "builtin.module", "top op must be builtin.module");
        Self { ctx, top }
    }

    /// The top-level operation.
    pub fn top(&self) -> OpId {
        self.top
    }

    /// The module body block.
    pub fn body(&self) -> BlockId {
        self.ctx.sole_block(self.top, 0)
    }

    /// All `func.func` ops in the module.
    pub fn funcs(&self) -> Vec<OpId> {
        self.ctx.find_ops(self.top, "func.func")
    }

    /// Finds a function by its `sym_name` attribute.
    pub fn func_named(&self, name: &str) -> Option<OpId> {
        self.funcs()
            .into_iter()
            .find(|f| self.ctx.attr(*f, "sym_name").and_then(|a| a.as_str()) == Some(name))
    }
}

impl Default for Module {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn const_op(ctx: &mut IrCtx, value: i64) -> OpId {
        let mut attrs = BTreeMap::new();
        attrs.insert("value".to_owned(), Attribute::Int(value));
        ctx.create_op("arith.constant", vec![], vec![Type::index()], attrs)
    }

    #[test]
    fn create_and_query_op() {
        let mut ctx = IrCtx::new();
        let c = const_op(&mut ctx, 4);
        assert_eq!(ctx.op(c).name, "arith.constant");
        assert_eq!(ctx.op(c).results.len(), 1);
        let r = ctx.result(c, 0);
        assert_eq!(*ctx.value_type(r), Type::index());
        assert_eq!(ctx.value(r).def, ValueDef::OpResult { op: c, index: 0 });
        assert_eq!(ctx.attr(c, "value").and_then(|a| a.as_int()), Some(4));
    }

    #[test]
    fn module_structure() {
        let m = Module::new();
        assert_eq!(m.ctx.op(m.top()).name, "builtin.module");
        assert_eq!(m.ctx.block(m.body()).ops.len(), 0);
        assert!(m.funcs().is_empty());
    }

    #[test]
    fn append_insert_and_order() {
        let mut m = Module::new();
        let body = m.body();
        let a = const_op(&mut m.ctx, 1);
        let b = const_op(&mut m.ctx, 2);
        let c = const_op(&mut m.ctx, 3);
        m.ctx.append_op(body, a);
        m.ctx.append_op(body, c);
        m.ctx.insert_op(body, 1, b);
        let order: Vec<i64> = m
            .ctx
            .block(body)
            .ops
            .iter()
            .map(|o| m.ctx.attr(*o, "value").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(m.ctx.position_in_block(b), Some(1));
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn double_attach_panics() {
        let mut m = Module::new();
        let body = m.body();
        let a = const_op(&mut m.ctx, 1);
        m.ctx.append_op(body, a);
        m.ctx.append_op(body, a);
    }

    #[test]
    fn detach_and_move_models_hoisting() {
        // Build: module { outer { inner { op } } } then hoist `op` from the
        // inner block to the outer block.
        let mut m = Module::new();
        let body = m.body();
        let outer = m.ctx.create_op("scf.for", vec![], vec![], BTreeMap::new());
        let outer_region = m.ctx.add_region(outer);
        let outer_block = m.ctx.add_block(outer_region, vec![Type::index()]);
        m.ctx.append_op(body, outer);
        let inner = m.ctx.create_op("scf.for", vec![], vec![], BTreeMap::new());
        let inner_region = m.ctx.add_region(inner);
        let inner_block = m.ctx.add_block(inner_region, vec![Type::index()]);
        m.ctx.append_op(outer_block, inner);
        let send = m.ctx.create_op("accel.send", vec![], vec![], BTreeMap::new());
        m.ctx.append_op(inner_block, send);

        assert_eq!(m.ctx.op(send).parent, Some(inner_block));
        m.ctx.move_op(send, outer_block, 0);
        assert_eq!(m.ctx.op(send).parent, Some(outer_block));
        assert_eq!(m.ctx.block(outer_block).ops, vec![send, inner]);
        assert!(m.ctx.block(inner_block).ops.is_empty());
    }

    #[test]
    fn erase_is_recursive() {
        let mut m = Module::new();
        let body = m.body();
        let outer = m.ctx.create_op("scf.for", vec![], vec![], BTreeMap::new());
        let region = m.ctx.add_region(outer);
        let block = m.ctx.add_block(region, vec![]);
        m.ctx.append_op(body, outer);
        let nested = const_op(&mut m.ctx, 9);
        m.ctx.append_op(block, nested);
        assert_eq!(m.ctx.live_op_count(), 3);
        m.ctx.erase_op(outer);
        assert_eq!(m.ctx.live_op_count(), 1, "module only");
        assert!(m.ctx.op(nested).dead);
        assert!(m.ctx.block(body).ops.is_empty());
    }

    #[test]
    fn walk_is_preorder() {
        let mut m = Module::new();
        let body = m.body();
        let a = const_op(&mut m.ctx, 1);
        m.ctx.append_op(body, a);
        let f = m.ctx.create_op("scf.for", vec![], vec![], BTreeMap::new());
        let region = m.ctx.add_region(f);
        let block = m.ctx.add_block(region, vec![]);
        m.ctx.append_op(body, f);
        let b = const_op(&mut m.ctx, 2);
        m.ctx.append_op(block, b);
        let names: Vec<&str> =
            m.ctx.walk(m.top()).iter().map(|o| m.ctx.op(*o).name.as_str()).collect();
        assert_eq!(names, vec!["builtin.module", "arith.constant", "scf.for", "arith.constant"]);
    }

    #[test]
    fn find_ops_by_name() {
        let mut m = Module::new();
        let body = m.body();
        for v in 0..3 {
            let op = const_op(&mut m.ctx, v);
            m.ctx.append_op(body, op);
        }
        assert_eq!(m.ctx.find_ops(m.top(), "arith.constant").len(), 3);
        assert!(m.ctx.find_ops(m.top(), "scf.for").is_empty());
    }

    #[test]
    fn replace_uses_rewrites_operands() {
        let mut m = Module::new();
        let body = m.body();
        let a = const_op(&mut m.ctx, 1);
        let b = const_op(&mut m.ctx, 2);
        m.ctx.append_op(body, a);
        m.ctx.append_op(body, b);
        let va = m.ctx.result(a, 0);
        let vb = m.ctx.result(b, 0);
        let add = m.ctx.create_op("arith.addi", vec![va, va], vec![Type::index()], BTreeMap::new());
        m.ctx.append_op(body, add);
        m.ctx.replace_uses_in(m.top(), va, vb);
        assert_eq!(m.ctx.op(add).operands, vec![vb, vb]);
    }

    #[test]
    fn func_named_lookup() {
        let mut m = Module::new();
        let body = m.body();
        let mut attrs = BTreeMap::new();
        attrs.insert("sym_name".to_owned(), Attribute::Str("matmul_call".to_owned()));
        let f = m.ctx.create_op("func.func", vec![], vec![], attrs);
        m.ctx.append_op(body, f);
        assert_eq!(m.func_named("matmul_call"), Some(f));
        assert_eq!(m.func_named("missing"), None);
    }

    #[test]
    fn block_args_define_values() {
        let mut ctx = IrCtx::new();
        let op = ctx.create_op("scf.for", vec![], vec![], BTreeMap::new());
        let region = ctx.add_region(op);
        let block = ctx.add_block(region, vec![Type::index(), Type::i32()]);
        let iv = ctx.block_arg(block, 0);
        assert_eq!(*ctx.value_type(iv), Type::index());
        assert_eq!(ctx.value(iv).def, ValueDef::BlockArg { block, index: 0 });
        assert_eq!(ctx.block_owner(block), Some(op));
    }
}
