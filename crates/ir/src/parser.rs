//! Parser for the generic textual form produced by [`crate::printer`].
//!
//! Parsing happens in two phases: a lightweight AST (`POp`/`PBlock`) is
//! built first, then converted into [`IrCtx`] entities with a scoped
//! `%name -> ValueId` environment, which keeps SSA bookkeeping out of the
//! grammar code.

use std::collections::{BTreeMap, HashMap};

use axi4mlir_support::diag::{Diagnostic, SourceLoc};

use crate::affine::AffineMap;
use crate::attrs::{Attribute, OpcodeFlow, OpcodeMap};
use crate::ops::{BlockId, IrCtx, Module, OpId};
use crate::types::{MemRefType, Type, DYNAMIC};

/// Parses a module from its generic textual form.
///
/// # Errors
///
/// Returns a [`Diagnostic`] with a line/column location on syntax errors or
/// references to undefined values.
pub fn parse_module(text: &str) -> Result<Module, Diagnostic> {
    let mut p = P::new(text);
    let op = p.parse_op()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after top-level operation"));
    }
    if op.name != "builtin.module" {
        return Err(Diagnostic::error(format!(
            "expected builtin.module at top level, found {}",
            op.name
        )));
    }
    let mut ctx = IrCtx::new();
    let mut env: HashMap<String, crate::ops::ValueId> = HashMap::new();
    let top = build_op(&mut ctx, &op, &mut env)?;
    // Re-wrap into a Module without re-creating: Module::new builds its own
    // top op, so we reconstruct by stealing the built ctx.
    Ok(Module::from_parts(ctx, top))
}

// ---------------------------------------------------------------------
// Phase 1: AST
// ---------------------------------------------------------------------

#[derive(Debug)]
struct POp {
    results: Vec<String>,
    name: String,
    operands: Vec<String>,
    regions: Vec<PRegion>,
    attrs: BTreeMap<String, Attribute>,
    result_types: Vec<Type>,
}

#[derive(Debug)]
struct PRegion {
    blocks: Vec<PBlock>,
}

#[derive(Debug)]
struct PBlock {
    args: Vec<(String, Type)>,
    ops: Vec<POp>,
}

struct P<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn new(text: &'a str) -> Self {
        Self { text, pos: 0 }
    }

    fn loc(&self) -> SourceLoc {
        let mut line = 1u32;
        let mut col = 1u32;
        for c in self.text[..self.pos].chars() {
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        SourceLoc::new(line, col)
    }

    fn err(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::error(msg).at(self.loc())
    }

    fn rest(&self) -> &str {
        &self.text[self.pos..]
    }

    fn skip_ws(&mut self) {
        loop {
            let rest = self.rest();
            if let Some(c) = rest.chars().next().filter(|c| c.is_whitespace()) {
                self.pos += c.len_utf8();
            } else if rest.starts_with("//") {
                let skip = rest.find('\n').map(|i| i + 1).unwrap_or(rest.len());
                self.pos += skip;
            } else {
                break;
            }
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.text.len()
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest().chars().next()
    }

    fn try_eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), Diagnostic> {
        if self.try_eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{c}`")))
        }
    }

    fn try_eat_str(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn string_literal(&mut self) -> Result<String, Diagnostic> {
        self.skip_ws();
        if !self.rest().starts_with('"') {
            return Err(self.err("expected string literal"));
        }
        let rest = &self.rest()[1..];
        let end = rest.find('"').ok_or_else(|| self.err("unterminated string literal"))?;
        let s = rest[..end].to_owned();
        self.pos += end + 2;
        Ok(s)
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let rest = self.rest();
        let first_ok = rest.chars().next().map(|c| c.is_alphabetic() || c == '_').unwrap_or(false);
        if !first_ok {
            return None;
        }
        let s: String =
            rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '.').collect();
        self.pos += s.len();
        Some(s)
    }

    fn integer(&mut self) -> Option<i64> {
        self.skip_ws();
        let rest = self.rest();
        if let Some(hex) = rest.strip_prefix("0x") {
            let digits: String = hex.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
            if digits.is_empty() {
                return None;
            }
            self.pos += 2 + digits.len();
            return i64::from_str_radix(&digits, 16).ok();
        }
        let neg = rest.starts_with('-');
        let digits: String =
            rest.chars().skip(usize::from(neg)).take_while(|c| c.is_ascii_digit()).collect();
        if digits.is_empty() {
            return None;
        }
        self.pos += digits.len() + usize::from(neg);
        let v: i64 = digits.parse().ok()?;
        Some(if neg { -v } else { v })
    }

    /// `%name` — returns the name without the sigil.
    fn value_use(&mut self) -> Result<String, Diagnostic> {
        self.skip_ws();
        if !self.rest().starts_with('%') {
            return Err(self.err("expected `%` value"));
        }
        self.pos += 1;
        let name: String =
            self.rest().chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        if name.is_empty() {
            return Err(self.err("expected value name after `%`"));
        }
        self.pos += name.len();
        Ok(name)
    }

    // -----------------------------------------------------------------
    // Grammar
    // -----------------------------------------------------------------

    fn parse_op(&mut self) -> Result<POp, Diagnostic> {
        // Optional results.
        let mut results = Vec::new();
        let save = self.pos;
        if self.peek() == Some('%') {
            loop {
                results.push(self.value_use()?);
                if !self.try_eat(',') {
                    break;
                }
            }
            if !self.try_eat('=') {
                // Not a result list after all (can't happen in well-formed
                // generic form, but keep the error clear).
                self.pos = save;
                return Err(self.err("expected `=` after result list"));
            }
        }
        let name = self.string_literal()?;
        self.expect('(')?;
        let mut operands = Vec::new();
        if self.peek() != Some(')') {
            loop {
                operands.push(self.value_use()?);
                if !self.try_eat(',') {
                    break;
                }
            }
        }
        self.expect(')')?;
        // Optional region list: `({ ... }, { ... })`.
        let mut regions = Vec::new();
        let save = self.pos;
        if self.try_eat('(') {
            if self.peek() == Some('{') {
                loop {
                    regions.push(self.parse_region()?);
                    if !self.try_eat(',') {
                        break;
                    }
                }
                self.expect(')')?;
            } else {
                self.pos = save;
            }
        }
        // Optional attribute dict.
        let mut attrs = BTreeMap::new();
        if self.try_eat('{') {
            if self.peek() != Some('}') {
                loop {
                    let key = self.ident().ok_or_else(|| self.err("expected attribute name"))?;
                    self.expect('=')?;
                    let value = self.parse_attr()?;
                    attrs.insert(key, value);
                    if !self.try_eat(',') {
                        break;
                    }
                }
            }
            self.expect('}')?;
        }
        // Trailing type: `: (tys) -> (tys)`.
        self.expect(':')?;
        self.expect('(')?;
        let mut operand_types = Vec::new();
        if self.peek() != Some(')') {
            loop {
                operand_types.push(self.parse_type()?);
                if !self.try_eat(',') {
                    break;
                }
            }
        }
        self.expect(')')?;
        if !self.try_eat_str("->") {
            return Err(self.err("expected `->` in op type"));
        }
        self.expect('(')?;
        let mut result_types = Vec::new();
        if self.peek() != Some(')') {
            loop {
                result_types.push(self.parse_type()?);
                if !self.try_eat(',') {
                    break;
                }
            }
        }
        self.expect(')')?;
        if operand_types.len() != operands.len() {
            return Err(self.err(format!(
                "op {name}: {} operands but {} operand types",
                operands.len(),
                operand_types.len()
            )));
        }
        if result_types.len() != results.len() {
            return Err(self.err(format!(
                "op {name}: {} results but {} result types",
                results.len(),
                result_types.len()
            )));
        }
        Ok(POp { results, name, operands, regions, attrs, result_types })
    }

    fn parse_region(&mut self) -> Result<PRegion, Diagnostic> {
        self.expect('{')?;
        let mut blocks = Vec::new();
        while self.peek() == Some('^') {
            blocks.push(self.parse_block()?);
        }
        self.expect('}')?;
        Ok(PRegion { blocks })
    }

    fn parse_block(&mut self) -> Result<PBlock, Diagnostic> {
        self.expect('^')?;
        let _label = self.ident().ok_or_else(|| self.err("expected block label"))?;
        self.expect('(')?;
        let mut args = Vec::new();
        if self.peek() != Some(')') {
            loop {
                let name = self.value_use()?;
                self.expect(':')?;
                let ty = self.parse_type()?;
                args.push((name, ty));
                if !self.try_eat(',') {
                    break;
                }
            }
        }
        self.expect(')')?;
        self.expect(':')?;
        let mut ops = Vec::new();
        loop {
            self.skip_ws();
            let c = self.rest().chars().next();
            match c {
                Some('%') | Some('"') => ops.push(self.parse_op()?),
                _ => break,
            }
        }
        Ok(PBlock { args, ops })
    }

    fn parse_type(&mut self) -> Result<Type, Diagnostic> {
        self.skip_ws();
        if self.try_eat_str("index") {
            return Ok(Type::Index);
        }
        if self.try_eat_str("()") {
            return Ok(Type::Unit);
        }
        if self.try_eat_str("memref<") {
            return self.parse_memref_body();
        }
        let rest = self.rest();
        if let Some(width) = rest.strip_prefix('i').and_then(leading_number) {
            self.pos += 1 + width.1;
            return Ok(Type::Int(width.0 as u32));
        }
        if let Some(width) = rest.strip_prefix('f').and_then(leading_number) {
            self.pos += 1 + width.1;
            return Ok(Type::Float(width.0 as u32));
        }
        Err(self.err(format!("expected type at `{}`", rest.chars().take(16).collect::<String>())))
    }

    fn parse_memref_body(&mut self) -> Result<Type, Diagnostic> {
        // shape: (`?`|int) `x` ... then element type, optional strided<..>.
        let mut shape = Vec::new();
        loop {
            self.skip_ws();
            if self.try_eat('?') {
                shape.push(DYNAMIC);
            } else if let Some(n) = self.integer() {
                shape.push(n);
            } else {
                return Err(self.err("expected memref dimension"));
            }
            self.skip_ws();
            if !self.try_eat('x') {
                return Err(self.err("expected `x` in memref shape"));
            }
            // After `x` either another dim or the element type; element
            // types start with a letter that is not a digit/?`.
            self.skip_ws();
            let c = self.rest().chars().next();
            if !matches!(c, Some('0'..='9') | Some('?')) {
                break;
            }
        }
        let elem = self.parse_type()?;
        let mut strides = None;
        if self.try_eat(',') {
            if !self.try_eat_str("strided<[") {
                return Err(self.err("expected `strided<[` in memref layout"));
            }
            let mut s = Vec::new();
            if self.peek() != Some(']') {
                loop {
                    let v = self.integer().ok_or_else(|| self.err("expected stride"))?;
                    s.push(v);
                    if !self.try_eat(',') {
                        break;
                    }
                }
            }
            self.expect(']')?;
            self.expect('>')?;
            strides = Some(s);
        }
        self.expect('>')?;
        Ok(Type::MemRef(MemRefType { shape, elem: Box::new(elem), strides }))
    }

    fn parse_attr(&mut self) -> Result<Attribute, Diagnostic> {
        self.skip_ws();
        let rest = self.rest();
        if rest.starts_with("affine_map<") {
            let full = self.balanced_angle("affine_map")?;
            let inner = full
                .strip_prefix("affine_map<")
                .and_then(|s| s.strip_suffix('>'))
                .expect("balanced_angle returns wrapped text");
            let map = AffineMap::parse(inner).map_err(|d| self.err(d.message))?;
            return Ok(Attribute::Map(map));
        }
        if rest.starts_with("opcode_map<") {
            let inner = self.balanced_angle("opcode_map")?;
            let m = OpcodeMap::parse(&inner).map_err(|d| self.err(d.message))?;
            return Ok(Attribute::Opcodes(m));
        }
        if rest.starts_with("opcode_flow<") {
            let inner = self.balanced_angle("opcode_flow")?;
            let flow = OpcodeFlow::parse(&inner).map_err(|d| self.err(d.message))?;
            return Ok(Attribute::Flow(flow));
        }
        if rest.starts_with("true") {
            self.pos += 4;
            return Ok(Attribute::Bool(true));
        }
        if rest.starts_with("false") {
            self.pos += 5;
            return Ok(Attribute::Bool(false));
        }
        if rest.starts_with('"') {
            return Ok(Attribute::Str(self.string_literal()?));
        }
        if rest.starts_with('[') {
            self.expect('[')?;
            let mut items = Vec::new();
            if self.peek() != Some(']') {
                loop {
                    items.push(self.parse_attr()?);
                    if !self.try_eat(',') {
                        break;
                    }
                }
            }
            self.expect(']')?;
            return Ok(Attribute::Array(items));
        }
        if rest.starts_with('{') {
            self.expect('{')?;
            let mut map = BTreeMap::new();
            if self.peek() != Some('}') {
                loop {
                    let key = self.ident().ok_or_else(|| self.err("expected dict key"))?;
                    self.expect('=')?;
                    let v = self.parse_attr()?;
                    map.insert(key, v);
                    if !self.try_eat(',') {
                        break;
                    }
                }
            }
            self.expect('}')?;
            return Ok(Attribute::Dict(map));
        }
        // Float: digits containing a dot.
        if let Some(f) = self.try_float() {
            return Ok(Attribute::Float(f));
        }
        if let Some(n) = self.integer() {
            return Ok(Attribute::Int(n));
        }
        // Types-as-attributes (i32, memref<...>, index).
        if let Ok(ty) = self.parse_type() {
            return Ok(Attribute::Type(ty));
        }
        Err(self.err("expected attribute value"))
    }

    fn try_float(&mut self) -> Option<f64> {
        self.skip_ws();
        let rest = self.rest();
        let neg = rest.starts_with('-');
        let body = &rest[usize::from(neg)..];
        let int_len = body.chars().take_while(|c| c.is_ascii_digit()).count();
        if int_len == 0 || !body[int_len..].starts_with('.') {
            return None;
        }
        let frac_len = body[int_len + 1..].chars().take_while(|c| c.is_ascii_digit()).count();
        let total = usize::from(neg) + int_len + 1 + frac_len;
        let text = &rest[..total];
        let v: f64 = text.parse().ok()?;
        self.pos += total;
        Some(v)
    }

    /// Consumes `keyword<...>` with `->`-aware angle matching, returning the
    /// full `keyword<...>` text.
    fn balanced_angle(&mut self, keyword: &str) -> Result<String, Diagnostic> {
        self.skip_ws();
        let start = self.pos;
        debug_assert!(self.rest().starts_with(keyword));
        self.pos += keyword.len();
        if !self.rest().starts_with('<') {
            return Err(self.err(format!("expected `<` after {keyword}")));
        }
        self.pos += 1;
        let mut prev = ' ';
        while let Some(c) = self.rest().chars().next() {
            if c == '>' && prev != '-' {
                self.pos += 1;
                return Ok(self.text[start..self.pos].to_owned());
            }
            prev = c;
            self.pos += c.len_utf8();
        }
        Err(self.err(format!("unterminated `{keyword}<`")))
    }
}

fn leading_number(s: &str) -> Option<(i64, usize)> {
    let digits: String = s.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return None;
    }
    // Reject identifier continuation (e.g. `i32x` is not a type here).
    let n: i64 = digits.parse().ok()?;
    Some((n, digits.len()))
}

// ---------------------------------------------------------------------
// Phase 2: AST -> IrCtx
// ---------------------------------------------------------------------

fn build_op(
    ctx: &mut IrCtx,
    op: &POp,
    env: &mut HashMap<String, crate::ops::ValueId>,
) -> Result<OpId, Diagnostic> {
    let operands: Result<Vec<_>, Diagnostic> = op
        .operands
        .iter()
        .map(|name| {
            env.get(name)
                .copied()
                .ok_or_else(|| Diagnostic::error(format!("use of undefined value %{name}")))
        })
        .collect();
    let id = ctx.create_op(&op.name, operands?, op.result_types.clone(), op.attrs.clone());
    for (name, value) in op.results.iter().zip(ctx.op(id).results.clone()) {
        env.insert(name.clone(), value);
    }
    for region in &op.regions {
        let rid = ctx.add_region(id);
        for block in &region.blocks {
            let bid = build_block(ctx, rid, block, env)?;
            let _ = bid;
        }
    }
    Ok(id)
}

fn build_block(
    ctx: &mut IrCtx,
    region: crate::ops::RegionId,
    block: &PBlock,
    env: &mut HashMap<String, crate::ops::ValueId>,
) -> Result<BlockId, Diagnostic> {
    let arg_types: Vec<Type> = block.args.iter().map(|(_, t)| t.clone()).collect();
    let bid = ctx.add_block(region, arg_types);
    for ((name, _), value) in block.args.iter().zip(ctx.block(bid).args.clone()) {
        env.insert(name.clone(), value);
    }
    for op in &block.ops {
        let oid = build_op(ctx, op, env)?;
        ctx.append_op(bid, oid);
    }
    Ok(bid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OpBuilder;
    use crate::printer::print_op;

    fn roundtrip(text: &str) -> String {
        let module = parse_module(text).expect("parse");
        print_op(&module.ctx, module.top())
    }

    #[test]
    fn parse_minimal_module() {
        let text = "\"builtin.module\"() ({\n^bb():\n}) : () -> ()\n";
        let m = parse_module(text).unwrap();
        assert_eq!(m.ctx.op(m.top()).name, "builtin.module");
    }

    #[test]
    fn roundtrip_constants_and_arith() {
        let text = "\"builtin.module\"() ({\n^bb():\n  %0 = \"arith.constant\"() {value = 4} : () -> (index)\n  %1 = \"arith.addi\"(%0, %0) : (index, index) -> (index)\n}) : () -> ()\n";
        // First print canonicalizes indentation; a second parse+print must be
        // a fixpoint.
        let canonical = roundtrip(text);
        assert_eq!(roundtrip(&canonical), canonical);
        assert!(canonical.contains("\"arith.addi\"(%0, %0) : (index, index) -> (index)"));
    }

    #[test]
    fn roundtrip_region_with_block_args() {
        let text = "\"builtin.module\"() ({\n^bb():\n  \"scf.for\"() ({\n    ^bb(%0: index):\n      \"scf.yield\"() : () -> ()\n  }) : () -> ()\n}) : () -> ()\n";
        let m = parse_module(text).unwrap();
        let fors = m.ctx.find_ops(m.top(), "scf.for");
        assert_eq!(fors.len(), 1);
        let block = m.ctx.sole_block(fors[0], 0);
        assert_eq!(m.ctx.block(block).args.len(), 1);
        // Print and re-parse for stability.
        let printed = print_op(&m.ctx, m.top());
        let m2 = parse_module(&printed).unwrap();
        assert_eq!(print_op(&m2.ctx, m2.top()), printed);
    }

    #[test]
    fn parse_attributes_of_every_kind() {
        let text = "\"builtin.module\"() ({\n^bb():\n  \"test.op\"() {a = 1, b = \"s\", c = true, d = [1, 2], e = {x = 3}, f = affine_map<(m, n, k) -> (m, k)>, g = opcode_map<sA = [send_literal(34), send(0)]>, h = opcode_flow<(sA (sB))>, i = 2.5, j = i32} : () -> ()\n}) : () -> ()\n";
        let m = parse_module(text).unwrap();
        let op = m.ctx.find_ops(m.top(), "test.op")[0];
        assert_eq!(m.ctx.attr(op, "a").unwrap().as_int(), Some(1));
        assert_eq!(m.ctx.attr(op, "b").unwrap().as_str(), Some("s"));
        assert_eq!(m.ctx.attr(op, "c").unwrap().as_bool(), Some(true));
        assert_eq!(m.ctx.attr(op, "d").unwrap().as_array().unwrap().len(), 2);
        assert!(matches!(m.ctx.attr(op, "e").unwrap(), Attribute::Dict(_)));
        let map = m.ctx.attr(op, "f").unwrap().as_map().unwrap();
        assert_eq!(map.num_dims(), 3);
        let opcodes = m.ctx.attr(op, "g").unwrap().as_opcodes().unwrap();
        assert_eq!(opcodes.len(), 1);
        let flow = m.ctx.attr(op, "h").unwrap().as_flow().unwrap();
        assert_eq!(flow.depth(), 2);
        assert!(matches!(m.ctx.attr(op, "i").unwrap(), Attribute::Float(v) if *v == 2.5));
        assert!(matches!(m.ctx.attr(op, "j").unwrap(), Attribute::Type(Type::Int(32))));
        // Full roundtrip.
        let printed = print_op(&m.ctx, m.top());
        let m2 = parse_module(&printed).unwrap();
        assert_eq!(print_op(&m2.ctx, m2.top()), printed);
    }

    #[test]
    fn parse_memref_types_with_strides() {
        let text = "\"builtin.module\"() ({\n^bb():\n  %0 = \"memref.alloc\"() : () -> (memref<4x?xi32, strided<[80, 1]>>)\n}) : () -> ()\n";
        let m = parse_module(text).unwrap();
        let op = m.ctx.find_ops(m.top(), "memref.alloc")[0];
        let ty = m.ctx.value_type(m.ctx.result(op, 0));
        let mr = ty.as_memref().unwrap();
        assert_eq!(mr.shape, vec![4, DYNAMIC]);
        assert_eq!(mr.strides, Some(vec![80, 1]));
    }

    #[test]
    fn undefined_value_is_an_error() {
        let text =
            "\"builtin.module\"() ({\n^bb():\n  \"test.use\"(%9) : (i32) -> ()\n}) : () -> ()\n";
        let err = parse_module(text).unwrap_err();
        assert!(err.message.contains("undefined value"));
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let text =
            "\"builtin.module\"() ({\n^bb():\n  %0 = \"c\"() : () -> (i32, i32)\n}) : () -> ()\n";
        let err = parse_module(text).unwrap_err();
        assert!(err.message.contains("results"), "{}", err.message);
    }

    #[test]
    fn comments_are_skipped() {
        let text = "// header comment\n\"builtin.module\"() ({\n^bb():\n  // inner comment\n  %0 = \"arith.constant\"() {value = 1} : () -> (i32)\n}) : () -> ()\n";
        let m = parse_module(text).unwrap();
        assert_eq!(m.ctx.find_ops(m.top(), "arith.constant").len(), 1);
    }

    #[test]
    fn builder_output_roundtrips() {
        let mut m = Module::new();
        let body = m.body();
        let mut b = OpBuilder::at_end(&mut m.ctx, body);
        let c = b.insert_op(
            "arith.constant",
            vec![],
            vec![Type::index()],
            [("value", Attribute::Int(42))],
        );
        let v = b.result(c);
        let (_, inner) =
            b.insert_region_op("scf.for", vec![v, v, v], vec![], [], vec![Type::index()]);
        b.set_insertion_end(inner);
        b.insert_op("scf.yield", vec![], vec![], []);
        let printed = print_op(&m.ctx, m.top());
        let m2 = parse_module(&printed).unwrap();
        assert_eq!(print_op(&m2.ctx, m2.top()), printed);
    }
}
