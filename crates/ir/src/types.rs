//! The type system: integers, floats, `index`, and strided `memref`s.

use std::fmt;

/// Marker for a dynamic dimension in a `memref` shape (`?` in MLIR).
pub const DYNAMIC: i64 = -1;

/// A ranked, optionally strided memory-reference type, e.g.
/// `memref<60x80xi32>` or `memref<4x4xi32, strided<[80, 1], offset: ?>>`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MemRefType {
    /// Extents; [`DYNAMIC`] for `?`.
    pub shape: Vec<i64>,
    /// Element type (must be a scalar type).
    pub elem: Box<Type>,
    /// Explicit strides (elements); `None` means the default row-major
    /// layout.
    pub strides: Option<Vec<i64>>,
}

impl MemRefType {
    /// A row-major `memref` of the given shape.
    pub fn contiguous(shape: Vec<i64>, elem: Type) -> Self {
        Self { shape, elem: Box::new(elem), strides: None }
    }

    /// A strided `memref` (the type of a `memref.subview` result).
    pub fn strided(shape: Vec<i64>, elem: Type, strides: Vec<i64>) -> Self {
        Self { shape, elem: Box::new(elem), strides: Some(strides) }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total element count, if all dimensions are static.
    pub fn num_elements(&self) -> Option<i64> {
        if self.shape.contains(&DYNAMIC) {
            None
        } else {
            Some(self.shape.iter().product())
        }
    }
}

/// An IR type.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// Signless integer of the given bit width (`i1`, `i32`, `i64`, ...).
    Int(u32),
    /// IEEE float of the given bit width (`f32`, `f64`).
    Float(u32),
    /// Target-width integer used for loop bounds and subscripts.
    Index,
    /// Ranked memory reference.
    MemRef(MemRefType),
    /// The empty type of ops with no results (printed `()`).
    Unit,
}

impl Type {
    /// Shorthand for `i32`.
    pub fn i32() -> Type {
        Type::Int(32)
    }

    /// Shorthand for `i64`.
    pub fn i64() -> Type {
        Type::Int(64)
    }

    /// Shorthand for `f32`.
    pub fn f32() -> Type {
        Type::Float(32)
    }

    /// Shorthand for `index`.
    pub fn index() -> Type {
        Type::Index
    }

    /// `true` for integer, float, and index types.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int(_) | Type::Float(_) | Type::Index)
    }

    /// The memref payload if this is a memref type.
    pub fn as_memref(&self) -> Option<&MemRefType> {
        match self {
            Type::MemRef(m) => Some(m),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int(w) => write!(f, "i{w}"),
            Type::Float(w) => write!(f, "f{w}"),
            Type::Index => write!(f, "index"),
            Type::Unit => write!(f, "()"),
            Type::MemRef(m) => {
                write!(f, "memref<")?;
                for d in &m.shape {
                    if *d == DYNAMIC {
                        write!(f, "?x")?;
                    } else {
                        write!(f, "{d}x")?;
                    }
                }
                write!(f, "{}", m.elem)?;
                if let Some(strides) = &m.strides {
                    write!(f, ", strided<[")?;
                    for (i, s) in strides.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{s}")?;
                    }
                    write!(f, "]>")?;
                }
                write!(f, ">")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_display() {
        assert_eq!(Type::i32().to_string(), "i32");
        assert_eq!(Type::i64().to_string(), "i64");
        assert_eq!(Type::f32().to_string(), "f32");
        assert_eq!(Type::index().to_string(), "index");
        assert_eq!(Type::Unit.to_string(), "()");
    }

    #[test]
    fn memref_display_contiguous() {
        let t = Type::MemRef(MemRefType::contiguous(vec![60, 80], Type::i32()));
        assert_eq!(t.to_string(), "memref<60x80xi32>");
    }

    #[test]
    fn memref_display_strided_and_dynamic() {
        let t = Type::MemRef(MemRefType::strided(vec![4, DYNAMIC], Type::f32(), vec![80, 1]));
        assert_eq!(t.to_string(), "memref<4x?xf32, strided<[80, 1]>>");
    }

    #[test]
    fn memref_helpers() {
        let m = MemRefType::contiguous(vec![4, 4], Type::i32());
        assert_eq!(m.rank(), 2);
        assert_eq!(m.num_elements(), Some(16));
        let d = MemRefType::contiguous(vec![4, DYNAMIC], Type::i32());
        assert_eq!(d.num_elements(), None);
    }

    #[test]
    fn scalar_predicate() {
        assert!(Type::i32().is_scalar());
        assert!(Type::index().is_scalar());
        assert!(!Type::MemRef(MemRefType::contiguous(vec![1], Type::i32())).is_scalar());
        assert!(Type::MemRef(MemRefType::contiguous(vec![1], Type::i32())).as_memref().is_some());
        assert!(Type::i32().as_memref().is_none());
    }
}
