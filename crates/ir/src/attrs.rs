//! Attributes, including the paper's two new attribute kinds.
//!
//! AXI4MLIR's §III-C contributes `opcode_map` (Fig. 7) and `opcode_flow`
//! (Fig. 8) as first-class MLIR attributes. Their grammars:
//!
//! ```text
//! opcode_dict  ::= `opcode_map` `<` opcode_entry (`,` opcode_entry)* `>`
//! opcode_entry ::= (bare_id | string_literal) `=` `[` opcode_expr (`,` opcode_expr)* `]`
//! opcode_expr  ::= `send` `(` bare_id `)`
//!                | `send_literal` `(` integer_literal `)`
//!                | `send_dim` `(` bare_id `,` bare_id `)`
//!                | `send_idx` `(` bare_id `)`
//!                | `recv` `(` bare_id `)`
//!
//! opcode_flow  ::= `opcode_flow` `<` flow_expr `>`
//! flow_expr    ::= `(` flow_expr* `)` | bare_id
//! ```
//!
//! Note on `send_dim`: Fig. 7's grammar lists one argument, but every use in
//! the paper (Fig. 15a: `send_dim(1,3)`, `send_dim(0,1)`) passes
//! `(argument, dimension)`; we implement the two-argument form.

use std::collections::BTreeMap;
use std::fmt;

use axi4mlir_support::diag::Diagnostic;

use crate::affine::AffineMap;
use crate::types::Type;

/// One action inside an opcode's action list (Fig. 7 `opcode_expr`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum OpcodeAction {
    /// Stream the current tile of linalg argument `arg` (0 = A, 1 = B, ...).
    Send {
        /// Index of the `linalg.generic` operand.
        arg: u32,
    },
    /// Stream an immediate instruction word.
    SendLiteral {
        /// The literal value.
        value: u32,
    },
    /// Stream the size of dimension `dim` of argument `arg` (Fig. 15a).
    SendDim {
        /// Index of the `linalg.generic` operand.
        arg: u32,
        /// Dimension of that operand.
        dim: u32,
    },
    /// Stream the current tile index of the named loop dimension.
    SendIdx {
        /// Loop dimension name (must appear in the op's iteration space).
        dim: String,
    },
    /// Receive the current tile of argument `arg` from the accelerator.
    Recv {
        /// Index of the `linalg.generic` operand.
        arg: u32,
    },
}

impl fmt::Display for OpcodeAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpcodeAction::Send { arg } => write!(f, "send({arg})"),
            OpcodeAction::SendLiteral { value } => write!(f, "send_literal({value})"),
            OpcodeAction::SendDim { arg, dim } => write!(f, "send_dim({arg}, {dim})"),
            OpcodeAction::SendIdx { dim } => write!(f, "send_idx({dim})"),
            OpcodeAction::Recv { arg } => write!(f, "recv({arg})"),
        }
    }
}

/// The `opcode_map` attribute: named opcodes and their action lists.
///
/// Entry order is preserved (it is part of the attribute's identity for
/// printing round-trips).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpcodeMap {
    entries: Vec<(String, Vec<OpcodeAction>)>,
}

impl OpcodeMap {
    /// Builds a map from `(name, actions)` pairs.
    ///
    /// # Errors
    ///
    /// Rejects duplicate opcode names and empty action lists.
    pub fn new(entries: Vec<(String, Vec<OpcodeAction>)>) -> Result<Self, Diagnostic> {
        let mut seen = std::collections::BTreeSet::new();
        for (name, actions) in &entries {
            if !seen.insert(name.clone()) {
                return Err(Diagnostic::error(format!("duplicate opcode `{name}` in opcode_map")));
            }
            if actions.is_empty() {
                return Err(Diagnostic::error(format!("opcode `{name}` has an empty action list")));
            }
        }
        Ok(Self { entries })
    }

    /// Looks up an opcode's actions.
    pub fn get(&self, name: &str) -> Option<&[OpcodeAction]> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, a)| a.as_slice())
    }

    /// Iterates `(name, actions)` in definition order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[OpcodeAction])> {
        self.entries.iter().map(|(n, a)| (n.as_str(), a.as_slice()))
    }

    /// Number of opcodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no opcodes are defined.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses the Fig. 7 syntax, with or without the `opcode_map<...>`
    /// wrapper.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] on syntax errors, duplicate names, or empty
    /// action lists.
    pub fn parse(text: &str) -> Result<Self, Diagnostic> {
        let inner = strip_wrapper(text, "opcode_map")?;
        let mut p = Lex::new(inner);
        let mut entries = Vec::new();
        loop {
            p.skip_ws();
            if p.at_end() {
                break;
            }
            let name = p
                .ident_or_string()
                .ok_or_else(|| Diagnostic::error("expected opcode name in opcode_map"))?;
            p.expect('=')?;
            p.expect('[')?;
            let mut actions = Vec::new();
            loop {
                actions.push(parse_action(&mut p)?);
                if p.try_eat(',') {
                    continue;
                }
                break;
            }
            p.expect(']')?;
            entries.push((name, actions));
            if !p.try_eat(',') {
                break;
            }
        }
        p.skip_ws();
        if !p.at_end() {
            return Err(Diagnostic::error(format!("trailing input in opcode_map: `{}`", p.rest())));
        }
        Self::new(entries)
    }
}

impl fmt::Display for OpcodeMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "opcode_map<")?;
        for (i, (name, actions)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name} = [")?;
            for (j, a) in actions.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, "]")?;
        }
        write!(f, ">")
    }
}

fn parse_action(p: &mut Lex) -> Result<OpcodeAction, Diagnostic> {
    let kw = p.ident().ok_or_else(|| Diagnostic::error("expected opcode action"))?;
    p.expect('(')?;
    let action = match kw.as_str() {
        "send" => OpcodeAction::Send { arg: p.integer()? as u32 },
        "send_literal" => OpcodeAction::SendLiteral { value: p.integer()? as u32 },
        "send_dim" => {
            let arg = p.integer()? as u32;
            p.expect(',')?;
            let dim = p.integer()? as u32;
            OpcodeAction::SendDim { arg, dim }
        }
        "send_idx" => {
            let dim =
                p.ident().ok_or_else(|| Diagnostic::error("send_idx expects a dimension name"))?;
            OpcodeAction::SendIdx { dim }
        }
        "recv" => OpcodeAction::Recv { arg: p.integer()? as u32 },
        other => {
            return Err(Diagnostic::error(format!(
            "unknown opcode action `{other}` (expected send/send_literal/send_dim/send_idx/recv)"
        )))
        }
    };
    p.expect(')')?;
    Ok(action)
}

/// One element of an `opcode_flow`: either an opcode reference or a nested
/// scope (a deeper loop level).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlowElem {
    /// A reference to an `opcode_map` entry.
    Opcode(String),
    /// A parenthesized sub-flow, mapped one loop level deeper.
    Scope(Vec<FlowElem>),
}

/// The `opcode_flow` attribute: the nesting structure of opcode emissions
/// (Fig. 8). `(sA (sB cC rC))` means `sA` sits one loop level above the
/// `sB cC rC` group.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpcodeFlow {
    /// Top-level scope elements.
    pub root: Vec<FlowElem>,
}

impl OpcodeFlow {
    /// Builds a flow from root elements.
    pub fn new(root: Vec<FlowElem>) -> Self {
        Self { root }
    }

    /// All opcode names referenced anywhere in the flow, in order.
    pub fn opcode_names(&self) -> Vec<&str> {
        fn walk<'a>(elems: &'a [FlowElem], out: &mut Vec<&'a str>) {
            for e in elems {
                match e {
                    FlowElem::Opcode(n) => out.push(n),
                    FlowElem::Scope(inner) => walk(inner, out),
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }

    /// Maximum scope nesting depth (a bare `(sA sB)` flow has depth 1).
    pub fn depth(&self) -> usize {
        fn d(elems: &[FlowElem]) -> usize {
            elems
                .iter()
                .map(|e| match e {
                    FlowElem::Opcode(_) => 0,
                    FlowElem::Scope(inner) => 1 + d(inner),
                })
                .max()
                .unwrap_or(0)
        }
        1 + d(&self.root)
    }

    /// Parses the Fig. 8 syntax, with or without the `opcode_flow<...>`
    /// wrapper. The outermost parentheses are the root scope.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] on unbalanced parentheses or empty flows.
    pub fn parse(text: &str) -> Result<Self, Diagnostic> {
        let inner = strip_wrapper(text, "opcode_flow")?;
        let mut p = Lex::new(inner);
        p.skip_ws();
        let root = parse_scope(&mut p)?;
        p.skip_ws();
        if !p.at_end() {
            return Err(Diagnostic::error(format!(
                "trailing input in opcode_flow: `{}`",
                p.rest()
            )));
        }
        if root.is_empty() {
            return Err(Diagnostic::error("opcode_flow must reference at least one opcode"));
        }
        Ok(Self { root })
    }
}

fn parse_scope(p: &mut Lex) -> Result<Vec<FlowElem>, Diagnostic> {
    p.expect('(')?;
    let mut elems = Vec::new();
    loop {
        p.skip_ws();
        match p.peek() {
            Some(')') => {
                p.try_eat(')');
                return Ok(elems);
            }
            Some('(') => elems.push(FlowElem::Scope(parse_scope(p)?)),
            Some(_) => {
                let id =
                    p.ident().ok_or_else(|| Diagnostic::error("expected opcode name in flow"))?;
                elems.push(FlowElem::Opcode(id));
            }
            None => return Err(Diagnostic::error("unbalanced `(` in opcode_flow")),
        }
    }
}

impl fmt::Display for OpcodeFlow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn walk(elems: &[FlowElem], f: &mut fmt::Formatter<'_>) -> fmt::Result {
            for (i, e) in elems.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                match e {
                    FlowElem::Opcode(n) => write!(f, "{n}")?,
                    FlowElem::Scope(inner) => {
                        write!(f, "(")?;
                        walk(inner, f)?;
                        write!(f, ")")?;
                    }
                }
            }
            Ok(())
        }
        write!(f, "opcode_flow<(")?;
        walk(&self.root, f)?;
        write!(f, ")>")
    }
}

fn strip_wrapper<'a>(text: &'a str, keyword: &str) -> Result<&'a str, Diagnostic> {
    let t = text.trim();
    if let Some(rest) = t.strip_prefix(keyword) {
        let rest = rest.trim_start();
        let rest = rest
            .strip_prefix('<')
            .ok_or_else(|| Diagnostic::error(format!("expected `<` after `{keyword}`")))?;
        let rest = rest
            .strip_suffix('>')
            .ok_or_else(|| Diagnostic::error(format!("expected closing `>` in `{keyword}`")))?;
        Ok(rest)
    } else {
        Ok(t)
    }
}

/// A tiny shared lexer for the attribute grammars.
struct Lex<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Lex<'a> {
    fn new(text: &'a str) -> Self {
        Self { text, pos: 0 }
    }

    fn rest(&self) -> &str {
        &self.text[self.pos..]
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.rest().chars().next().filter(|c| c.is_whitespace()) {
            self.pos += c.len_utf8();
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.text.len()
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest().chars().next()
    }

    fn try_eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), Diagnostic> {
        if self.try_eat(c) {
            Ok(())
        } else {
            Err(Diagnostic::error(format!("expected `{c}` at `{}`", truncate(self.rest()))))
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let rest = self.rest();
        let first_ok = rest.chars().next().map(|c| c.is_alphabetic() || c == '_').unwrap_or(false);
        if !first_ok {
            return None;
        }
        let s: String = rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        self.pos += s.len();
        Some(s)
    }

    fn ident_or_string(&mut self) -> Option<String> {
        self.skip_ws();
        if self.rest().starts_with('"') {
            let rest = &self.rest()[1..];
            let end = rest.find('"')?;
            let s = rest[..end].to_owned();
            self.pos += end + 2;
            Some(s)
        } else {
            self.ident()
        }
    }

    /// Parses a decimal or `0x` hexadecimal integer.
    fn integer(&mut self) -> Result<i64, Diagnostic> {
        self.skip_ws();
        let rest = self.rest();
        if let Some(hex) = rest.strip_prefix("0x").or_else(|| rest.strip_prefix("0X")) {
            let digits: String = hex.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
            if digits.is_empty() {
                return Err(Diagnostic::error("expected hex digits after `0x`"));
            }
            self.pos += 2 + digits.len();
            return i64::from_str_radix(&digits, 16)
                .map_err(|_| Diagnostic::error(format!("hex literal `{digits}` out of range")));
        }
        let neg = rest.starts_with('-');
        let digits: String =
            rest.chars().skip(usize::from(neg)).take_while(|c| c.is_ascii_digit()).collect();
        if digits.is_empty() {
            return Err(Diagnostic::error(format!("expected integer at `{}`", truncate(rest))));
        }
        self.pos += digits.len() + usize::from(neg);
        let v: i64 = digits
            .parse()
            .map_err(|_| Diagnostic::error(format!("integer `{digits}` out of range")))?;
        Ok(if neg { -v } else { v })
    }
}

fn truncate(s: &str) -> String {
    s.chars().take(24).collect()
}

/// An attribute value attached to an operation.
#[derive(Clone, Debug, PartialEq)]
pub enum Attribute {
    /// Integer attribute (`4 : i64`).
    Int(i64),
    /// Boolean attribute.
    Bool(bool),
    /// Float attribute.
    Float(f64),
    /// String attribute (`"accumulate"`).
    Str(String),
    /// A type used as an attribute (function signatures).
    Type(Type),
    /// Homogeneous or heterogeneous array.
    Array(Vec<Attribute>),
    /// Nested dictionary.
    Dict(BTreeMap<String, Attribute>),
    /// An affine map (`affine_map<(m, n, k) -> (m, k)>`).
    Map(AffineMap),
    /// The paper's `opcode_map` attribute.
    Opcodes(OpcodeMap),
    /// The paper's `opcode_flow` attribute.
    Flow(OpcodeFlow),
}

impl Attribute {
    /// Integer payload, if this is an [`Attribute::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Attribute::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Attribute::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Attribute::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Affine-map payload.
    pub fn as_map(&self) -> Option<&AffineMap> {
        match self {
            Attribute::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_array(&self) -> Option<&[Attribute]> {
        match self {
            Attribute::Array(a) => Some(a),
            _ => None,
        }
    }

    /// `opcode_map` payload.
    pub fn as_opcodes(&self) -> Option<&OpcodeMap> {
        match self {
            Attribute::Opcodes(m) => Some(m),
            _ => None,
        }
    }

    /// `opcode_flow` payload.
    pub fn as_flow(&self) -> Option<&OpcodeFlow> {
        match self {
            Attribute::Flow(flow) => Some(flow),
            _ => None,
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attribute::Int(v) => write!(f, "{v}"),
            Attribute::Bool(b) => write!(f, "{b}"),
            Attribute::Float(v) => write!(f, "{v:?}"),
            Attribute::Str(s) => write!(f, "{s:?}"),
            Attribute::Type(t) => write!(f, "{t}"),
            Attribute::Array(items) => {
                write!(f, "[")?;
                for (i, a) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "]")
            }
            Attribute::Dict(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} = {v}")?;
                }
                write!(f, "}}")
            }
            Attribute::Map(m) => write!(f, "affine_map<{m}>"),
            Attribute::Opcodes(m) => write!(f, "{m}"),
            Attribute::Flow(flow) => write!(f, "{flow}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_fig6a_opcode_map() {
        // The Fig. 6a map, verbatim modulo whitespace.
        let text = "opcode_map< \
            sA = [send_literal(0x22), send(0)], \
            sB = [send_literal(0x23), send(1)], \
            cC = [send_literal(0xF0)], \
            rC = [send_literal(0x24), recv(2)], \
            sBcCrC = [send_literal(0x25), send(1), recv(2)], \
            reset = [send_literal(0xFF)] >";
        let m = OpcodeMap::parse(text).unwrap();
        assert_eq!(m.len(), 6);
        assert_eq!(
            m.get("sA").unwrap(),
            &[OpcodeAction::SendLiteral { value: 0x22 }, OpcodeAction::Send { arg: 0 }]
        );
        assert_eq!(m.get("cC").unwrap(), &[OpcodeAction::SendLiteral { value: 0xF0 }]);
        assert_eq!(
            m.get("sBcCrC").unwrap(),
            &[
                OpcodeAction::SendLiteral { value: 0x25 },
                OpcodeAction::Send { arg: 1 },
                OpcodeAction::Recv { arg: 2 }
            ]
        );
    }

    #[test]
    fn parse_fig15a_conv_map_with_send_dim() {
        let text = "opcode_map<\
            sIcO = [send_literal(70), send(0)],\
            sF = [send_literal(1), send(1)],\
            rO = [send_literal(8), recv(2)],\
            rst = [send_literal(32), send_dim(1, 3), send_literal(16), send_dim(0, 1)]>";
        let m = OpcodeMap::parse(text).unwrap();
        assert_eq!(
            m.get("rst").unwrap(),
            &[
                OpcodeAction::SendLiteral { value: 32 },
                OpcodeAction::SendDim { arg: 1, dim: 3 },
                OpcodeAction::SendLiteral { value: 16 },
                OpcodeAction::SendDim { arg: 0, dim: 1 },
            ]
        );
    }

    #[test]
    fn opcode_map_roundtrip() {
        let text = "opcode_map<sA = [send_literal(34), send(0)], rC = [recv(2)]>";
        let m = OpcodeMap::parse(text).unwrap();
        let printed = m.to_string();
        let reparsed = OpcodeMap::parse(&printed).unwrap();
        assert_eq!(m, reparsed);
    }

    #[test]
    fn opcode_map_rejects_duplicates_and_unknown_actions() {
        assert!(OpcodeMap::parse("opcode_map<a = [send(0)], a = [send(1)]>").is_err());
        let err = OpcodeMap::parse("opcode_map<a = [sendx(0)]>").unwrap_err();
        assert!(err.message.contains("unknown opcode action"));
        assert!(OpcodeMap::parse("opcode_map<a = [send(0)] trailing>").is_err());
    }

    #[test]
    fn opcode_map_string_keys_and_send_idx() {
        let m = OpcodeMap::parse("opcode_map<\"my op\" = [send_idx(m), send(0)]>").unwrap();
        assert_eq!(m.get("my op").unwrap()[0], OpcodeAction::SendIdx { dim: "m".to_owned() });
    }

    #[test]
    fn parse_flows_of_the_paper() {
        // Fig. 6a L23-25: As, Cs, Ns flows.
        let a_stationary = OpcodeFlow::parse("opcode_flow<(sA (sBcCrC))>").unwrap();
        assert_eq!(a_stationary.depth(), 2);
        assert_eq!(a_stationary.opcode_names(), vec!["sA", "sBcCrC"]);

        let c_stationary = OpcodeFlow::parse("((sA sB cC) rC)").unwrap();
        assert_eq!(c_stationary.depth(), 2);
        assert_eq!(c_stationary.opcode_names(), vec!["sA", "sB", "cC", "rC"]);
        assert_eq!(
            c_stationary.root,
            vec![
                FlowElem::Scope(vec![
                    FlowElem::Opcode("sA".into()),
                    FlowElem::Opcode("sB".into()),
                    FlowElem::Opcode("cC".into())
                ]),
                FlowElem::Opcode("rC".into())
            ]
        );

        let nothing = OpcodeFlow::parse("(sB sA cC rC)").unwrap();
        assert_eq!(nothing.depth(), 1);
    }

    #[test]
    fn parse_conv_flow() {
        // Fig. 15a: (sF (sIcO) rO)
        let flow = OpcodeFlow::parse("(sF (sIcO) rO)").unwrap();
        assert_eq!(flow.depth(), 2);
        assert_eq!(flow.opcode_names(), vec!["sF", "sIcO", "rO"]);
    }

    #[test]
    fn flow_roundtrip() {
        for text in ["(sA (sB cC rC))", "(a b c)", "((x y) z)", "(sF (sIcO) rO)"] {
            let flow = OpcodeFlow::parse(text).unwrap();
            let printed = flow.to_string();
            let reparsed = OpcodeFlow::parse(&printed).unwrap();
            assert_eq!(flow, reparsed, "{text} -> {printed}");
        }
    }

    #[test]
    fn flow_rejects_bad_syntax() {
        assert!(OpcodeFlow::parse("(sA (sB)").is_err(), "unbalanced");
        assert!(OpcodeFlow::parse("()").is_err(), "empty");
        assert!(OpcodeFlow::parse("(a) b)").is_err(), "trailing");
    }

    #[test]
    fn attribute_accessors() {
        assert_eq!(Attribute::Int(7).as_int(), Some(7));
        assert_eq!(Attribute::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Attribute::Bool(true).as_bool(), Some(true));
        assert!(Attribute::Int(1).as_str().is_none());
        let arr = Attribute::Array(vec![Attribute::Int(1), Attribute::Int(2)]);
        assert_eq!(arr.as_array().unwrap().len(), 2);
    }

    #[test]
    fn attribute_display() {
        let mut d = BTreeMap::new();
        d.insert("id".to_owned(), Attribute::Int(0));
        let a = Attribute::Dict(d);
        assert_eq!(a.to_string(), "{id = 0}");
        assert_eq!(Attribute::Str("accumulate".into()).to_string(), "\"accumulate\"");
        let m = AffineMap::parse("(m, n, k) -> (m, k)").unwrap();
        assert_eq!(Attribute::Map(m).to_string(), "affine_map<(m, n, k) -> (m, k)>");
    }

    #[test]
    fn hex_and_decimal_literals_agree() {
        let m = OpcodeMap::parse("opcode_map<a = [send_literal(0xFF)], b = [send_literal(255)]>")
            .unwrap();
        assert_eq!(m.get("a"), m.get("b"));
    }
}
