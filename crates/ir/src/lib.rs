//! A miniature MLIR: just enough compiler infrastructure for AXI4MLIR.
//!
//! The paper extends the (C++) MLIR framework. Rust bindings to MLIR
//! (`melior`) do not yet support defining dialect attributes and
//! transformations of the kind AXI4MLIR needs, so this crate re-implements
//! the required slice of MLIR from scratch:
//!
//! - [`types`]: `i32`/`f32`/`index`/`memref<...>` types.
//! - [`affine`]: affine expressions and maps (`affine_map<(m,n,k) -> (m,k)>`),
//!   used for `linalg` indexing maps and AXI4MLIR's `permutation_map`.
//! - [`attrs`]: attributes, including the two *new attribute kinds the paper
//!   contributes*: `opcode_map` (Fig. 7) and `opcode_flow` (Fig. 8), with
//!   parsers for their textual grammars.
//! - [`ops`]: arena-based SSA IR — operations, regions, blocks, values —
//!   with insertion, erasure, and op-motion primitives (the `accel`-op
//!   hoisting transformation relies on these).
//! - [`builder`]: insertion-point style IR construction.
//! - [`printer`] / [`parser`]: round-trippable generic textual form
//!   (`%0 = "arith.addi"(%a, %b) : (i32, i32) -> i32`).
//! - [`verifier`]: structural invariants (SSA dominance in structured
//!   control flow, parent links, type sanity).
//! - [`pass`]: a pass manager with per-pass verification.
//! - [`analysis`]: a forward/backward dataflow framework (definedness,
//!   liveness, integer ranges) the lint layer builds on.
//!
//! Dialect-specific operation builders and semantics live in the
//! `axi4mlir-dialects` crate; this crate is dialect-agnostic.

pub mod affine;
pub mod analysis;
pub mod attrs;
pub mod builder;
pub mod ops;
pub mod parser;
pub mod pass;
pub mod printer;
pub mod types;
pub mod verifier;

pub use affine::{AffineExpr, AffineMap};
pub use analysis::{IntRange, Lattice, Liveness, ValueTable};
pub use attrs::{Attribute, FlowElem, OpcodeAction, OpcodeFlow, OpcodeMap};
pub use builder::OpBuilder;
pub use ops::{BlockId, IrCtx, OpId, RegionId, ValueId};
pub use types::{MemRefType, Type};
