//! Structural IR verification.
//!
//! Checks the invariants every pass must preserve:
//!
//! - parent links (op ↔ block ↔ region) are mutually consistent;
//! - SSA visibility: every operand is a block argument or op result defined
//!   *before* its use, in the same block or an enclosing one (structured
//!   control flow dominance);
//! - no dead (erased) op is reachable.
//!
//! Dialect-specific rules (e.g. "`scf.for` takes three `index` operands")
//! live in `axi4mlir-dialects`; the pass manager runs both.

use std::collections::HashSet;

use axi4mlir_support::diag::{Diagnostic, DiagnosticEngine};

use crate::ops::{BlockId, IrCtx, OpId, ValueId};

/// Verifies the subtree rooted at `root`.
///
/// # Errors
///
/// Returns the first violation (all violations are recorded in `diags`).
pub fn verify(ctx: &IrCtx, root: OpId, diags: &mut DiagnosticEngine) -> Result<(), Diagnostic> {
    let mut visible: HashSet<ValueId> = HashSet::new();
    verify_op(ctx, root, &mut visible, diags);
    diags.result()
}

/// Convenience wrapper returning only the result.
///
/// # Errors
///
/// Returns the first violation.
pub fn verify_ok(ctx: &IrCtx, root: OpId) -> Result<(), Diagnostic> {
    let mut diags = DiagnosticEngine::new();
    verify(ctx, root, &mut diags)
}

fn verify_op(ctx: &IrCtx, op: OpId, visible: &mut HashSet<ValueId>, diags: &mut DiagnosticEngine) {
    let data = ctx.op(op);
    if data.dead {
        diags.error(format!("reachable op {op} ({}) is marked dead", data.name));
        return;
    }
    for (i, operand) in data.operands.iter().enumerate() {
        if !visible.contains(operand) {
            diags.error(format!(
                "op {op} ({}) operand #{i} ({operand}) is not visible at its use (use-before-def or cross-region leak)",
                data.name
            ));
        }
    }
    // Results become visible to subsequent ops *and* to nested regions
    // (which may capture values from enclosing scopes).
    for r in &data.results {
        visible.insert(*r);
    }
    for region in &data.regions {
        let rdata = ctx.region(*region);
        if rdata.parent != Some(op) {
            diags.error(format!("region {region} parent link does not point to op {op}"));
        }
        for block in &rdata.blocks {
            verify_block(ctx, *block, *region, visible, diags);
        }
    }
}

fn verify_block(
    ctx: &IrCtx,
    block: BlockId,
    region: crate::ops::RegionId,
    visible: &mut HashSet<ValueId>,
    diags: &mut DiagnosticEngine,
) {
    let bdata = ctx.block(block);
    if bdata.parent != Some(region) {
        diags.error(format!("block {block} parent link does not point to region {region}"));
    }
    // Block args are visible inside the block (and its nested regions) only:
    // track what we add so we can remove it on exit.
    let mut added: Vec<ValueId> = Vec::new();
    for arg in &bdata.args {
        if visible.insert(*arg) {
            added.push(*arg);
        }
    }
    for op in &bdata.ops {
        let odata = ctx.op(*op);
        if odata.parent != Some(block) {
            diags.error(format!(
                "op {op} ({}) parent link does not point to block {block}",
                odata.name
            ));
        }
        let before: Vec<ValueId> = odata.results.clone();
        verify_op(ctx, *op, visible, diags);
        for r in before {
            visible.insert(r);
            added.push(r);
        }
    }
    // Values defined in this block stop being visible outside it.
    for v in added {
        visible.remove(&v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Attribute;
    use crate::builder::OpBuilder;
    use crate::ops::Module;
    use crate::types::Type;

    fn well_formed_module() -> Module {
        let mut m = Module::new();
        let body = m.body();
        let mut b = OpBuilder::at_end(&mut m.ctx, body);
        let c = b.insert_op(
            "arith.constant",
            vec![],
            vec![Type::index()],
            [("value", Attribute::Int(1))],
        );
        let v = b.result(c);
        let (_, inner) =
            b.insert_region_op("scf.for", vec![v, v, v], vec![], [], vec![Type::index()]);
        b.set_insertion_end(inner);
        // Captures `v` from the enclosing scope: legal.
        b.insert_op("test.use", vec![v], vec![], []);
        m
    }

    #[test]
    fn well_formed_ir_verifies() {
        let m = well_formed_module();
        assert!(verify_ok(&m.ctx, m.top()).is_ok());
    }

    #[test]
    fn use_before_def_is_caught() {
        let mut m = Module::new();
        let body = m.body();
        // Create the constant but insert the use *before* it.
        let c = m.ctx.create_op(
            "arith.constant",
            vec![],
            vec![Type::index()],
            std::collections::BTreeMap::new(),
        );
        let v = m.ctx.result(c, 0);
        let use_op =
            m.ctx.create_op("test.use", vec![v], vec![], std::collections::BTreeMap::new());
        m.ctx.append_op(body, use_op);
        m.ctx.append_op(body, c);
        let err = verify_ok(&m.ctx, m.top()).unwrap_err();
        assert!(err.message.contains("not visible"));
    }

    #[test]
    fn cross_region_leak_is_caught() {
        // A value defined inside one loop body used in a sibling loop body.
        let mut m = Module::new();
        let body = m.body();
        let mut b = OpBuilder::at_end(&mut m.ctx, body);
        let (_, block1) = b.insert_region_op("scf.for", vec![], vec![], [], vec![Type::index()]);
        let (_, block2) = b.insert_region_op("scf.for", vec![], vec![], [], vec![Type::index()]);
        b.set_insertion_end(block1);
        let c = b.insert_op(
            "arith.constant",
            vec![],
            vec![Type::i32()],
            [("value", Attribute::Int(0))],
        );
        let leaked = b.result(c);
        b.set_insertion_end(block2);
        b.insert_op("test.use", vec![leaked], vec![], []);
        let err = verify_ok(&m.ctx, m.top()).unwrap_err();
        assert!(err.message.contains("not visible"));
    }

    #[test]
    fn induction_variable_not_visible_outside_loop() {
        let mut m = Module::new();
        let body = m.body();
        let mut b = OpBuilder::at_end(&mut m.ctx, body);
        let (_, inner) = b.insert_region_op("scf.for", vec![], vec![], [], vec![Type::index()]);
        let iv = m.ctx.block_arg(inner, 0);
        let mut b = OpBuilder::at_end(&mut m.ctx, body);
        b.insert_op("test.use", vec![iv], vec![], []);
        let err = verify_ok(&m.ctx, m.top()).unwrap_err();
        assert!(err.message.contains("not visible"));
    }

    #[test]
    fn broken_parent_link_is_caught() {
        let mut m = well_formed_module();
        let fors = m.ctx.find_ops(m.top(), "scf.for");
        m.ctx.op_mut(fors[0]).parent = None;
        let err = verify_ok(&m.ctx, m.top()).unwrap_err();
        assert!(err.message.contains("parent link"));
    }

    #[test]
    fn multiple_errors_collected() {
        let mut m = Module::new();
        let body = m.body();
        let c = m.ctx.create_op(
            "arith.constant",
            vec![],
            vec![Type::index()],
            std::collections::BTreeMap::new(),
        );
        let v = m.ctx.result(c, 0);
        // Two uses of an undefined-at-use value (constant is never attached).
        for _ in 0..2 {
            let u = m.ctx.create_op("test.use", vec![v], vec![], std::collections::BTreeMap::new());
            m.ctx.append_op(body, u);
        }
        let mut diags = DiagnosticEngine::new();
        let _ = verify(&m.ctx, m.top(), &mut diags);
        assert_eq!(diags.diagnostics().len(), 2);
    }
}
