//! Reusable dataflow analysis over the structured-control-flow IR.
//!
//! The IR has no unstructured CFG: control flow is region nesting
//! (`scf.for` bodies, function bodies), every block executes straight
//! through, and SSA visibility follows the region tree. That makes
//! dataflow simple but not trivial — loop induction variables couple a
//! block argument to the facts of the enclosing op's operands, so the
//! solvers here iterate the whole region tree to a fixpoint instead of
//! assuming one pass suffices.
//!
//! Three layers:
//!
//! - [`Lattice`] + [`ValueTable`]: a fact per SSA value, stored densely by
//!   value index, joined monotonically.
//! - [`ForwardAnalysis`] / [`BackwardAnalysis`] + [`solve_forward`] /
//!   [`solve_backward`]: the generic fixpoint engines. Forward transfer
//!   functions compute result facts from operand facts (with a hook for
//!   block arguments, where induction-variable facts are born); backward
//!   transfer functions push facts from uses to operands.
//! - Concrete analyses: [`Definedness`] (forward — which values are
//!   known-defined at their uses), [`Liveness`] (backward — which values
//!   and ops feed an observable effect), and [`IntRange`] integer-range
//!   analysis over index arithmetic (forward — constant/interval bounds
//!   for `arith` ops and `scf.for` induction variables).
//!
//! The lint suite in `axi4mlir-dialects` builds on these: dead-annotation
//! detection uses [`Liveness`], and the DMA bounds checks use
//! [`integer_ranges`] to bound subview offsets statically.

use std::collections::HashSet;

use axi4mlir_support::entity::EntityId;

use crate::attrs::Attribute;
use crate::ops::{BlockId, IrCtx, OpId, ValueId};

/// A join-semilattice of dataflow facts.
///
/// `bottom` is the "no information yet / unreached" element; joining must
/// be monotone (facts only ever move up) so the fixpoint terminates.
pub trait Lattice: Clone + PartialEq {
    /// The least element (unreached / undefined).
    fn bottom() -> Self;

    /// Joins `other` into `self`; returns `true` if `self` changed.
    fn join_with(&mut self, other: &Self) -> bool;
}

/// A dense table of one fact per SSA value.
#[derive(Clone, Debug)]
pub struct ValueTable<L> {
    facts: Vec<L>,
}

impl<L: Lattice> ValueTable<L> {
    /// A table of `len` bottom facts.
    pub fn new(len: usize) -> Self {
        Self { facts: vec![L::bottom(); len] }
    }

    /// The fact for `value`.
    pub fn get(&self, value: ValueId) -> &L {
        &self.facts[value.index()]
    }

    /// Joins `fact` into the entry for `value`; returns `true` on change.
    pub fn join(&mut self, value: ValueId, fact: &L) -> bool {
        self.facts[value.index()].join_with(fact)
    }
}

/// Safety valve: the region tree is acyclic (no loop-carried SSA values —
/// `scf.for` bodies take only the induction variable), so fixpoints
/// converge in a handful of passes; the cap only guards against a
/// non-monotone analysis looping forever.
const MAX_PASSES: usize = 64;

/// A forward dataflow analysis: facts flow from operands to results.
pub trait ForwardAnalysis {
    /// The fact domain.
    type Fact: Lattice;

    /// The fact for block argument `index` of `block`, whose region is
    /// owned by `owner`. This is where facts enter a region: an `scf.for`
    /// induction variable derives its fact from the loop-bound operands
    /// (available in `table`), a function argument gets a boundary fact.
    fn block_arg_fact(
        &self,
        ctx: &IrCtx,
        owner: OpId,
        block: BlockId,
        index: usize,
        table: &ValueTable<Self::Fact>,
    ) -> Self::Fact;

    /// Pushes one fact per result of `op`, given the operand facts in
    /// `table`.
    fn transfer(
        &self,
        ctx: &IrCtx,
        op: OpId,
        table: &ValueTable<Self::Fact>,
        results: &mut Vec<Self::Fact>,
    );
}

/// Runs `analysis` to a fixpoint over the subtree rooted at `root`.
pub fn solve_forward<A: ForwardAnalysis>(
    ctx: &IrCtx,
    root: OpId,
    analysis: &A,
) -> ValueTable<A::Fact> {
    let mut table = ValueTable::new(ctx.value_count());
    // Pre-order: an op precedes its nested regions, and block ops appear
    // in execution order — so operand facts are usually ready when a use
    // is visited, and the fixpoint loop mops up the rest.
    let order = ctx.walk(root);
    let mut results = Vec::new();
    for _ in 0..MAX_PASSES {
        let mut changed = false;
        for &op in &order {
            for &region in &ctx.op(op).regions {
                for &block in &ctx.region(region).blocks {
                    for index in 0..ctx.block(block).args.len() {
                        let fact = analysis.block_arg_fact(ctx, op, block, index, &table);
                        let arg = ctx.block(block).args[index];
                        changed |= table.join(arg, &fact);
                    }
                }
            }
            results.clear();
            analysis.transfer(ctx, op, &table, &mut results);
            for (index, fact) in results.iter().enumerate() {
                let value = ctx.op(op).results[index];
                changed |= table.join(value, fact);
            }
        }
        if !changed {
            break;
        }
    }
    table
}

/// A backward dataflow analysis: facts flow from uses to operands.
pub trait BackwardAnalysis {
    /// The fact domain.
    type Fact: Lattice;

    /// Pushes facts onto arbitrary values (typically `op`'s operands),
    /// given the facts currently in `table`.
    fn transfer(
        &self,
        ctx: &IrCtx,
        op: OpId,
        table: &ValueTable<Self::Fact>,
        out: &mut Vec<(ValueId, Self::Fact)>,
    );
}

/// Runs `analysis` to a fixpoint, visiting ops in reverse execution order.
pub fn solve_backward<A: BackwardAnalysis>(
    ctx: &IrCtx,
    root: OpId,
    analysis: &A,
) -> ValueTable<A::Fact> {
    let mut table = ValueTable::new(ctx.value_count());
    let mut order = ctx.walk(root);
    order.reverse();
    let mut out = Vec::new();
    for _ in 0..MAX_PASSES {
        let mut changed = false;
        for &op in &order {
            out.clear();
            analysis.transfer(ctx, op, &table, &mut out);
            for (value, fact) in &out {
                changed |= table.join(*value, fact);
            }
        }
        if !changed {
            break;
        }
    }
    table
}

// ---------------------------------------------------------------------
// Definedness (forward)
// ---------------------------------------------------------------------

/// Whether a value is known to be defined before use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Def {
    /// Bottom: never reached a definition (use-before-def if used).
    Undefined,
    /// The value is defined whenever its block executes.
    Defined,
}

impl Lattice for Def {
    fn bottom() -> Self {
        Def::Undefined
    }

    fn join_with(&mut self, other: &Self) -> bool {
        if *self == Def::Undefined && *other == Def::Defined {
            *self = Def::Defined;
            return true;
        }
        false
    }
}

/// The definedness analysis: block arguments are defined on entry, op
/// results are defined once the op executes. A value whose fact stays
/// [`Def::Undefined`] at a use site is a use-before-def.
#[derive(Debug, Default)]
pub struct Definedness;

impl ForwardAnalysis for Definedness {
    type Fact = Def;

    fn block_arg_fact(
        &self,
        _ctx: &IrCtx,
        _owner: OpId,
        _block: BlockId,
        _index: usize,
        _table: &ValueTable<Def>,
    ) -> Def {
        Def::Defined
    }

    fn transfer(&self, ctx: &IrCtx, op: OpId, _table: &ValueTable<Def>, results: &mut Vec<Def>) {
        results.extend(ctx.op(op).results.iter().map(|_| Def::Defined));
    }
}

/// All `(op, operand_index)` pairs whose operand is not defined at its
/// use — the dataflow formulation of the structural verifier's
/// use-before-def check.
pub fn undefined_uses(ctx: &IrCtx, root: OpId) -> Vec<(OpId, usize)> {
    let table = solve_forward(ctx, root, &Definedness);
    let mut out = Vec::new();
    for op in ctx.walk(root) {
        for (index, operand) in ctx.op(op).operands.iter().enumerate() {
            if *table.get(*operand) == Def::Undefined {
                out.push((op, index));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Liveness (backward)
// ---------------------------------------------------------------------

/// Liveness fact: `Live(true)` once some observable effect needs the value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Live(pub bool);

impl Lattice for Live {
    fn bottom() -> Self {
        Live(false)
    }

    fn join_with(&mut self, other: &Self) -> bool {
        if !self.0 && other.0 {
            self.0 = true;
            return true;
        }
        false
    }
}

/// `true` for ops whose execution is observable regardless of whether
/// their results are used (stores, `accel` traffic, calls, terminators,
/// and anything we don't recognize — unknown ops are conservatively
/// effectful).
fn has_side_effects(name: &str) -> bool {
    let pure = name.starts_with("arith.")
        || matches!(name, "memref.load" | "memref.subview" | "memref.alloc" | "memref.alloca");
    !pure
}

struct LivenessAnalysis<'a> {
    /// Ops that are live by themselves: side-effecting, or (for
    /// region-owning ops) transitively containing a side-effecting op.
    rooted: &'a HashSet<OpId>,
}

impl BackwardAnalysis for LivenessAnalysis<'_> {
    type Fact = Live;

    fn transfer(
        &self,
        ctx: &IrCtx,
        op: OpId,
        table: &ValueTable<Live>,
        out: &mut Vec<(ValueId, Live)>,
    ) {
        let data = ctx.op(op);
        let live = self.rooted.contains(&op) || data.results.iter().any(|r| table.get(*r).0);
        if live {
            out.extend(data.operands.iter().map(|o| (*o, Live(true))));
        }
    }
}

/// The computed liveness of a subtree: per-value facts plus the op-level
/// root set.
#[derive(Debug)]
pub struct Liveness {
    values: ValueTable<Live>,
    rooted: HashSet<OpId>,
}

impl Liveness {
    /// Runs the backward liveness analysis over the subtree at `root`.
    pub fn compute(ctx: &IrCtx, root: OpId) -> Self {
        // Seed the root set: an op is rooted if it (or anything nested in
        // it) has side effects. Computed bottom-up over the region tree.
        let mut rooted = HashSet::new();
        let order = ctx.walk(root);
        for &op in order.iter().rev() {
            let data = ctx.op(op);
            let nested_rooted = data.regions.iter().any(|r| {
                ctx.region(*r)
                    .blocks
                    .iter()
                    .any(|b| ctx.block(*b).ops.iter().any(|o| rooted.contains(o)))
            });
            if nested_rooted || (data.regions.is_empty() && has_side_effects(&data.name)) {
                rooted.insert(op);
            }
        }
        let values = solve_backward(ctx, root, &LivenessAnalysis { rooted: &rooted });
        Self { values, rooted }
    }

    /// `true` if `value` feeds an observable effect.
    pub fn value_is_live(&self, value: ValueId) -> bool {
        self.values.get(value).0
    }

    /// `true` if `op` must execute: it is side-effecting (directly or via
    /// a nested op) or produces a live value.
    pub fn op_is_live(&self, ctx: &IrCtx, op: OpId) -> bool {
        self.rooted.contains(&op) || ctx.op(op).results.iter().any(|r| self.value_is_live(*r))
    }
}

// ---------------------------------------------------------------------
// Integer ranges (forward)
// ---------------------------------------------------------------------

/// An inclusive integer interval; `i64::MIN`/`i64::MAX` bounds act as
/// minus/plus infinity (saturating arithmetic preserves them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntRange {
    /// Bottom: no execution reaches this value yet.
    Unreached,
    /// The value always lies in `[lo, hi]`.
    Range {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
}

impl IntRange {
    /// The full (unknown) range.
    pub const FULL: IntRange = IntRange::Range { lo: i64::MIN, hi: i64::MAX };

    /// The singleton range `[v, v]`.
    pub fn exact(v: i64) -> Self {
        IntRange::Range { lo: v, hi: v }
    }

    /// The constant value, if the range is a singleton.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            IntRange::Range { lo, hi } if lo == hi => Some(*lo),
            _ => None,
        }
    }

    /// The bounds, if reached and not fully unknown on both sides.
    pub fn bounds(&self) -> Option<(i64, i64)> {
        match self {
            IntRange::Range { lo, hi } => Some((*lo, *hi)),
            IntRange::Unreached => None,
        }
    }

    fn add(self, other: Self) -> Self {
        match (self, other) {
            (IntRange::Range { lo: a, hi: b }, IntRange::Range { lo: c, hi: d }) => {
                IntRange::Range { lo: a.saturating_add(c), hi: b.saturating_add(d) }
            }
            _ => IntRange::Unreached,
        }
    }

    fn mul(self, other: Self) -> Self {
        match (self, other) {
            (IntRange::Range { lo: a, hi: b }, IntRange::Range { lo: c, hi: d }) => {
                let products = [
                    a.saturating_mul(c),
                    a.saturating_mul(d),
                    b.saturating_mul(c),
                    b.saturating_mul(d),
                ];
                IntRange::Range {
                    lo: *products.iter().min().expect("non-empty"),
                    hi: *products.iter().max().expect("non-empty"),
                }
            }
            _ => IntRange::Unreached,
        }
    }
}

impl Lattice for IntRange {
    fn bottom() -> Self {
        IntRange::Unreached
    }

    fn join_with(&mut self, other: &Self) -> bool {
        match (*self, *other) {
            (_, IntRange::Unreached) => false,
            (IntRange::Unreached, r) => {
                *self = r;
                true
            }
            (IntRange::Range { lo: a, hi: b }, IntRange::Range { lo: c, hi: d }) => {
                let joined = IntRange::Range { lo: a.min(c), hi: b.max(d) };
                let changed = joined != *self;
                *self = joined;
                changed
            }
        }
    }
}

/// Integer-range analysis over index arithmetic: `arith.constant` pins a
/// singleton, `arith.addi`/`arith.muli` propagate interval arithmetic,
/// and an `scf.for` induction variable is bounded by the loop's
/// lower/upper bound facts (`[lb.lo, ub.hi - 1]` — the canonical positive
/// step). Everything else is the full range.
#[derive(Debug, Default)]
pub struct IntRangeAnalysis;

impl ForwardAnalysis for IntRangeAnalysis {
    type Fact = IntRange;

    fn block_arg_fact(
        &self,
        ctx: &IrCtx,
        owner: OpId,
        _block: BlockId,
        index: usize,
        table: &ValueTable<IntRange>,
    ) -> IntRange {
        let data = ctx.op(owner);
        if data.name == "scf.for" && index == 0 && data.operands.len() == 3 {
            let lb = *table.get(data.operands[0]);
            let ub = *table.get(data.operands[1]);
            if let (IntRange::Range { lo, .. }, IntRange::Range { hi, .. }) = (lb, ub) {
                let hi = if hi == i64::MAX { hi } else { hi.saturating_sub(1) };
                return IntRange::Range { lo, hi: hi.max(lo) };
            }
            return IntRange::Unreached;
        }
        IntRange::FULL
    }

    fn transfer(
        &self,
        ctx: &IrCtx,
        op: OpId,
        table: &ValueTable<IntRange>,
        results: &mut Vec<IntRange>,
    ) {
        let data = ctx.op(op);
        if data.results.is_empty() {
            return;
        }
        let operand = |i: usize| *table.get(data.operands[i]);
        let fact = match data.name.as_str() {
            "arith.constant" => match ctx.attr(op, "value") {
                Some(Attribute::Int(v)) => IntRange::exact(*v),
                _ => IntRange::FULL,
            },
            "arith.addi" if data.operands.len() == 2 => operand(0).add(operand(1)),
            "arith.muli" if data.operands.len() == 2 => operand(0).mul(operand(1)),
            _ => IntRange::FULL,
        };
        results.extend(data.results.iter().map(|_| fact));
    }
}

/// Convenience wrapper: the integer-range table for a subtree.
pub fn integer_ranges(ctx: &IrCtx, root: OpId) -> ValueTable<IntRange> {
    solve_forward(ctx, root, &IntRangeAnalysis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OpBuilder;
    use crate::ops::Module;
    use crate::types::Type;

    fn const_index(b: &mut OpBuilder, v: i64) -> ValueId {
        let op = b.insert_op(
            "arith.constant",
            vec![],
            vec![Type::index()],
            [("value", Attribute::Int(v))],
        );
        b.result(op)
    }

    #[test]
    fn constants_and_arith_have_exact_ranges() {
        let mut m = Module::new();
        let body = m.body();
        let mut b = OpBuilder::at_end(&mut m.ctx, body);
        let x = const_index(&mut b, 6);
        let y = const_index(&mut b, 7);
        let sum_op = b.insert_op("arith.addi", vec![x, y], vec![Type::index()], []);
        let sum = b.result(sum_op);
        let prod_op = b.insert_op("arith.muli", vec![x, y], vec![Type::index()], []);
        let prod = b.result(prod_op);
        let ranges = integer_ranges(&m.ctx, m.top());
        assert_eq!(ranges.get(sum).as_const(), Some(13));
        assert_eq!(ranges.get(prod).as_const(), Some(42));
    }

    #[test]
    fn induction_variable_is_bounded_by_the_loop() {
        let mut m = Module::new();
        let body = m.body();
        let mut b = OpBuilder::at_end(&mut m.ctx, body);
        let lb = const_index(&mut b, 0);
        let ub = const_index(&mut b, 64);
        let step = const_index(&mut b, 8);
        let (_, inner) =
            b.insert_region_op("scf.for", vec![lb, ub, step], vec![], [], vec![Type::index()]);
        let iv = m.ctx.block_arg(inner, 0);
        // iv * 4 inside the body.
        let mut b = OpBuilder::at_end(&mut m.ctx, inner);
        let scale = const_index(&mut b, 4);
        let scaled_op = b.insert_op("arith.muli", vec![iv, scale], vec![Type::index()], []);
        let scaled = b.result(scaled_op);
        let ranges = integer_ranges(&m.ctx, m.top());
        assert_eq!(ranges.get(iv).bounds(), Some((0, 63)));
        assert_eq!(ranges.get(scaled).bounds(), Some((0, 252)));
    }

    #[test]
    fn unknown_ops_get_the_full_range() {
        let mut m = Module::new();
        let body = m.body();
        let mut b = OpBuilder::at_end(&mut m.ctx, body);
        let op = b.insert_op("test.opaque", vec![], vec![Type::index()], []);
        let v = b.result(op);
        let ranges = integer_ranges(&m.ctx, m.top());
        assert_eq!(*ranges.get(v), IntRange::FULL);
    }

    #[test]
    fn liveness_separates_dead_arith_from_stored_values() {
        let mut m = Module::new();
        let body = m.body();
        let mut b = OpBuilder::at_end(&mut m.ctx, body);
        // Dead chain: two constants feeding an unused add.
        let d0 = const_index(&mut b, 1);
        let d1 = const_index(&mut b, 2);
        let dead_add = b.insert_op("arith.addi", vec![d0, d1], vec![Type::index()], []);
        let dead = b.result(dead_add);
        // Live chain: a value stored to memory.
        let buf_op = b.insert_op(
            "memref.alloc",
            vec![],
            vec![Type::MemRef(crate::types::MemRefType::contiguous(vec![4], Type::index()))],
            [],
        );
        let buf = b.result(buf_op);
        let idx = const_index(&mut b, 0);
        let live = const_index(&mut b, 9);
        b.insert_op("memref.store", vec![live, buf, idx], vec![], []);
        let liveness = Liveness::compute(&m.ctx, m.top());
        assert!(!liveness.value_is_live(dead));
        assert!(!liveness.op_is_live(&m.ctx, dead_add));
        assert!(liveness.value_is_live(live));
        assert!(liveness.value_is_live(buf));
        assert!(liveness.op_is_live(&m.ctx, buf_op));
    }

    #[test]
    fn loop_containing_a_store_keeps_its_bounds_live() {
        let mut m = Module::new();
        let body = m.body();
        let mut b = OpBuilder::at_end(&mut m.ctx, body);
        let lb = const_index(&mut b, 0);
        let ub = const_index(&mut b, 8);
        let step = const_index(&mut b, 1);
        let (for_op, inner) =
            b.insert_region_op("scf.for", vec![lb, ub, step], vec![], [], vec![Type::index()]);
        let iv = m.ctx.block_arg(inner, 0);
        let mut b = OpBuilder::at_end(&mut m.ctx, inner);
        let buf_op = b.insert_op(
            "memref.alloc",
            vec![],
            vec![Type::MemRef(crate::types::MemRefType::contiguous(vec![8], Type::index()))],
            [],
        );
        let buf = b.result(buf_op);
        b.insert_op("memref.store", vec![iv, buf, iv], vec![], []);
        let liveness = Liveness::compute(&m.ctx, m.top());
        assert!(liveness.op_is_live(&m.ctx, for_op), "the loop body has effects");
        assert!(liveness.value_is_live(ub), "loop bounds feed a live loop");
        // An empty sibling loop is dead.
        let mut b = OpBuilder::at_end(&mut m.ctx, body);
        let (empty_for, _) =
            b.insert_region_op("scf.for", vec![lb, ub, step], vec![], [], vec![Type::index()]);
        let liveness = Liveness::compute(&m.ctx, m.top());
        assert!(!liveness.op_is_live(&m.ctx, empty_for), "a loop with no effects is dead");
    }

    #[test]
    fn definedness_flags_use_before_def() {
        let mut m = Module::new();
        let body = m.body();
        // Create a constant but never attach it; its result is undefined
        // at the use.
        let c = m.ctx.create_op(
            "arith.constant",
            vec![],
            vec![Type::index()],
            std::collections::BTreeMap::new(),
        );
        let v = m.ctx.result(c, 0);
        let u = m.ctx.create_op("test.use", vec![v], vec![], std::collections::BTreeMap::new());
        m.ctx.append_op(body, u);
        let undefined = undefined_uses(&m.ctx, m.top());
        assert_eq!(undefined, vec![(u, 0)]);
        // Attach the constant before the use: everything is defined.
        m.ctx.insert_op(body, 0, c);
        assert!(undefined_uses(&m.ctx, m.top()).is_empty());
    }
}
