//! Affine expressions and maps.
//!
//! `linalg.generic` indexing maps and AXI4MLIR's `accel_dim` /
//! `permutation_map` attributes are affine maps. Unlike upstream MLIR
//! (which prints `d0, d1, ...`), the paper writes maps with *named*
//! dimensions — `affine_map<(m, n, k) -> (m, k)>` — so our maps remember
//! their dimension names for faithful printing, while evaluation is
//! positional.

use std::fmt;

use axi4mlir_support::diag::{Diagnostic, SourceLoc};

/// An affine expression over dimensions and constants.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AffineExpr {
    /// The `i`-th map dimension.
    Dim(usize),
    /// An integer constant.
    Const(i64),
    /// Sum of two expressions.
    Add(Box<AffineExpr>, Box<AffineExpr>),
    /// Product (at least one side must be constant to stay affine; the
    /// parser enforces this, the enum does not).
    Mul(Box<AffineExpr>, Box<AffineExpr>),
    /// Euclidean remainder.
    Mod(Box<AffineExpr>, Box<AffineExpr>),
    /// Floor division.
    FloorDiv(Box<AffineExpr>, Box<AffineExpr>),
}

impl AffineExpr {
    /// Evaluates with the given dimension values.
    ///
    /// # Panics
    ///
    /// Panics if a dimension index is out of range or on division by zero.
    pub fn eval(&self, dims: &[i64]) -> i64 {
        match self {
            AffineExpr::Dim(i) => dims[*i],
            AffineExpr::Const(c) => *c,
            AffineExpr::Add(a, b) => a.eval(dims) + b.eval(dims),
            AffineExpr::Mul(a, b) => a.eval(dims) * b.eval(dims),
            AffineExpr::Mod(a, b) => a.eval(dims).rem_euclid(b.eval(dims)),
            AffineExpr::FloorDiv(a, b) => a.eval(dims).div_euclid(b.eval(dims)),
        }
    }

    /// Collects the dimensions this expression reads.
    pub fn collect_dims(&self, out: &mut Vec<usize>) {
        match self {
            AffineExpr::Dim(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            AffineExpr::Const(_) => {}
            AffineExpr::Add(a, b)
            | AffineExpr::Mul(a, b)
            | AffineExpr::Mod(a, b)
            | AffineExpr::FloorDiv(a, b) => {
                a.collect_dims(out);
                b.collect_dims(out);
            }
        }
    }

    fn fmt_with(&self, f: &mut fmt::Formatter<'_>, names: &[String]) -> fmt::Result {
        match self {
            AffineExpr::Dim(i) => {
                if let Some(n) = names.get(*i) {
                    write!(f, "{n}")
                } else {
                    write!(f, "d{i}")
                }
            }
            AffineExpr::Const(c) => write!(f, "{c}"),
            AffineExpr::Add(a, b) => {
                a.fmt_with(f, names)?;
                write!(f, " + ")?;
                b.fmt_with(f, names)
            }
            AffineExpr::Mul(a, b) => {
                a.fmt_with(f, names)?;
                write!(f, " * ")?;
                b.fmt_with(f, names)
            }
            AffineExpr::Mod(a, b) => {
                a.fmt_with(f, names)?;
                write!(f, " mod ")?;
                b.fmt_with(f, names)
            }
            AffineExpr::FloorDiv(a, b) => {
                a.fmt_with(f, names)?;
                write!(f, " floordiv ")?;
                b.fmt_with(f, names)
            }
        }
    }
}

/// An affine map `(<dims>) -> (<exprs>)` with remembered dimension names.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AffineMap {
    /// Names of the input dimensions (`m`, `n`, `k`, ... or `d0`, `d1`).
    pub dim_names: Vec<String>,
    /// Result expressions.
    pub results: Vec<AffineExpr>,
}

impl AffineMap {
    /// Builds a map from dimension names and results.
    pub fn new(dim_names: Vec<String>, results: Vec<AffineExpr>) -> Self {
        Self { dim_names, results }
    }

    /// The identity map over `n` dimensions named `d0..dn`.
    pub fn identity(n: usize) -> Self {
        Self {
            dim_names: (0..n).map(|i| format!("d{i}")).collect(),
            results: (0..n).map(AffineExpr::Dim).collect(),
        }
    }

    /// A projection map selecting `dims` (by index) from `n` named inputs.
    pub fn projection(dim_names: Vec<String>, dims: &[usize]) -> Self {
        Self { results: dims.iter().map(|d| AffineExpr::Dim(*d)).collect(), dim_names }
    }

    /// Number of input dimensions.
    pub fn num_dims(&self) -> usize {
        self.dim_names.len()
    }

    /// Number of results.
    pub fn num_results(&self) -> usize {
        self.results.len()
    }

    /// Evaluates all results for the given dimension values.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() != num_dims()`.
    pub fn eval(&self, dims: &[i64]) -> Vec<i64> {
        assert_eq!(dims.len(), self.num_dims(), "dimension count mismatch");
        self.results.iter().map(|e| e.eval(dims)).collect()
    }

    /// If every result is a distinct bare dimension and the result count
    /// equals the dim count, returns the permutation `perm` such that
    /// `result[i] = dims[perm[i]]`.
    pub fn as_permutation(&self) -> Option<Vec<usize>> {
        if self.num_results() != self.num_dims() {
            return None;
        }
        let mut seen = vec![false; self.num_dims()];
        let mut perm = Vec::with_capacity(self.num_dims());
        for r in &self.results {
            match r {
                AffineExpr::Dim(i) if !seen[*i] => {
                    seen[*i] = true;
                    perm.push(*i);
                }
                _ => return None,
            }
        }
        Some(perm)
    }

    /// If every result is a bare dimension, returns those dimension indices
    /// (the common case for `linalg` indexing maps like `(m,n,k) -> (m,k)`).
    pub fn projected_dims(&self) -> Option<Vec<usize>> {
        self.results
            .iter()
            .map(|r| match r {
                AffineExpr::Dim(i) => Some(*i),
                _ => None,
            })
            .collect()
    }

    /// Parses the paper's named-dimension syntax:
    /// `(m, n, k) -> (m, k)` (without the `affine_map<...>` wrapper).
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] describing the first syntax error.
    pub fn parse(text: &str) -> Result<Self, Diagnostic> {
        Parser::new(text).parse_map()
    }
}

impl fmt::Display for AffineMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, n) in self.dim_names.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, ") -> (")?;
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            r.fmt_with(f, &self.dim_names)?;
        }
        write!(f, ")")
    }
}

/// Minimal recursive-descent parser for the named-dim affine syntax.
struct Parser<'a> {
    text: &'a str,
    pos: usize,
    dim_names: Vec<String>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self { text, pos: 0, dim_names: Vec::new() }
    }

    fn error(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::error(msg).at(SourceLoc::new(1, self.pos as u32 + 1))
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.text[self.pos..].chars().next().filter(|c| c.is_whitespace()) {
            self.pos += c.len_utf8();
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.text[self.pos..].chars().next()
    }

    fn eat(&mut self, c: char) -> Result<(), Diagnostic> {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(self.error(format!("expected `{c}`")))
        }
    }

    fn eat_str(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.text[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let rest = &self.text[self.pos..];
        let len = rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').count();
        let first_ok = rest.chars().next().map(|c| c.is_alphabetic() || c == '_').unwrap_or(false);
        if len == 0 || !first_ok {
            return None;
        }
        let s: String = rest.chars().take(len).collect();
        self.pos += s.len();
        Some(s)
    }

    fn number(&mut self) -> Option<i64> {
        self.skip_ws();
        let rest = &self.text[self.pos..];
        let neg = rest.starts_with('-');
        let digits: String =
            rest.chars().skip(usize::from(neg)).take_while(|c| c.is_ascii_digit()).collect();
        if digits.is_empty() {
            return None;
        }
        self.pos += digits.len() + usize::from(neg);
        let v: i64 = digits.parse().ok()?;
        Some(if neg { -v } else { v })
    }

    fn parse_map(&mut self) -> Result<AffineMap, Diagnostic> {
        self.eat('(')?;
        if self.peek() != Some(')') {
            loop {
                let name = self.ident().ok_or_else(|| self.error("expected dimension name"))?;
                if self.dim_names.contains(&name) {
                    return Err(self.error(format!("duplicate dimension `{name}`")));
                }
                self.dim_names.push(name);
                if self.peek() == Some(',') {
                    self.eat(',')?;
                } else {
                    break;
                }
            }
        }
        self.eat(')')?;
        if !self.eat_str("->") {
            return Err(self.error("expected `->`"));
        }
        self.eat('(')?;
        let mut results = Vec::new();
        if self.peek() != Some(')') {
            loop {
                results.push(self.expr()?);
                if self.peek() == Some(',') {
                    self.eat(',')?;
                } else {
                    break;
                }
            }
        }
        self.eat(')')?;
        self.skip_ws();
        if self.pos != self.text.len() {
            return Err(self.error("trailing characters after affine map"));
        }
        Ok(AffineMap { dim_names: std::mem::take(&mut self.dim_names), results })
    }

    /// expr := term ((`+`) term)*
    fn expr(&mut self) -> Result<AffineExpr, Diagnostic> {
        let mut lhs = self.term()?;
        while self.peek() == Some('+') {
            self.eat('+')?;
            let rhs = self.term()?;
            lhs = AffineExpr::Add(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// term := atom ((`*` | `mod` | `floordiv`) atom)*
    fn term(&mut self) -> Result<AffineExpr, Diagnostic> {
        let mut lhs = self.atom()?;
        loop {
            if self.peek() == Some('*') {
                self.eat('*')?;
                let rhs = self.atom()?;
                lhs = AffineExpr::Mul(Box::new(lhs), Box::new(rhs));
            } else if self.eat_str("mod") {
                let rhs = self.atom()?;
                lhs = AffineExpr::Mod(Box::new(lhs), Box::new(rhs));
            } else if self.eat_str("floordiv") {
                let rhs = self.atom()?;
                lhs = AffineExpr::FloorDiv(Box::new(lhs), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn atom(&mut self) -> Result<AffineExpr, Diagnostic> {
        if self.peek() == Some('(') {
            self.eat('(')?;
            let e = self.expr()?;
            self.eat(')')?;
            return Ok(e);
        }
        if let Some(n) = self.number() {
            return Ok(AffineExpr::Const(n));
        }
        if let Some(id) = self.ident() {
            // `d<N>` style names are accepted even if not declared (MLIR
            // compat), but named dims must be declared.
            if let Some(i) = self.dim_names.iter().position(|d| *d == id) {
                return Ok(AffineExpr::Dim(i));
            }
            return Err(self.error(format!("unknown dimension `{id}`")));
        }
        Err(self.error("expected expression"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_matmul_indexing_map() {
        let m = AffineMap::parse("(m, n, k) -> (m, k)").unwrap();
        assert_eq!(m.num_dims(), 3);
        assert_eq!(m.num_results(), 2);
        assert_eq!(m.eval(&[10, 20, 30]), vec![10, 30]);
        assert_eq!(m.projected_dims(), Some(vec![0, 2]));
    }

    #[test]
    fn parse_permutation() {
        let m = AffineMap::parse("(m, n, k) -> (m, k, n)").unwrap();
        assert_eq!(m.as_permutation(), Some(vec![0, 2, 1]));
        assert_eq!(m.to_string(), "(m, n, k) -> (m, k, n)");
    }

    #[test]
    fn parse_constants_and_arithmetic() {
        let m = AffineMap::parse("(B,H,W) -> (0, H + 1, W * 2)").unwrap();
        assert_eq!(m.eval(&[9, 10, 11]), vec![0, 11, 22]);
        assert!(m.as_permutation().is_none());
        assert!(m.projected_dims().is_none());
    }

    #[test]
    fn parse_accel_dim_style_constants() {
        // Fig. 15a: (B,H,W,iC,oC,fH,fW) -> (0,0,0,256,1,3,3)
        let m = AffineMap::parse("(B,H,W,iC,oC,fH,fW) -> (0,0,0,256,1,3,3)").unwrap();
        assert_eq!(m.eval(&[1, 2, 3, 4, 5, 6, 7]), vec![0, 0, 0, 256, 1, 3, 3]);
    }

    #[test]
    fn parse_mod_and_floordiv() {
        let m = AffineMap::parse("(i) -> (i mod 4, i floordiv 4)").unwrap();
        assert_eq!(m.eval(&[10]), vec![2, 2]);
        assert_eq!(m.eval(&[-1]), vec![3, -1], "Euclidean semantics");
    }

    #[test]
    fn parse_errors() {
        assert!(AffineMap::parse("(m, m) -> (m)").is_err(), "duplicate dim");
        assert!(AffineMap::parse("(m) -> (q)").is_err(), "unknown dim");
        assert!(AffineMap::parse("(m) (m)").is_err(), "missing arrow");
        assert!(AffineMap::parse("(m) -> (m) extra").is_err(), "trailing");
        let err = AffineMap::parse("(m) -> (q)").unwrap_err();
        assert!(err.message.contains("unknown dimension"));
    }

    #[test]
    fn roundtrip_display_parse() {
        for text in [
            "(m, n, k) -> (m, k)",
            "(m, n, k) -> (k, n)",
            "(m, n, k) -> (m, n)",
            "(a, b) -> (a + 1, b * 2)",
            "(x) -> (x mod 8)",
        ] {
            let m = AffineMap::parse(text).unwrap();
            let printed = m.to_string();
            let reparsed = AffineMap::parse(&printed).unwrap();
            assert_eq!(m, reparsed, "{text} -> {printed}");
        }
    }

    #[test]
    fn identity_and_projection_constructors() {
        let id = AffineMap::identity(3);
        assert_eq!(id.as_permutation(), Some(vec![0, 1, 2]));
        let pr = AffineMap::projection(vec!["m".into(), "n".into(), "k".into()], &[2, 1]);
        assert_eq!(pr.eval(&[1, 2, 3]), vec![3, 2]);
    }

    #[test]
    fn collect_dims_dedups() {
        let m = AffineMap::parse("(a, b) -> (a + a + b)").unwrap();
        let mut dims = Vec::new();
        m.results[0].collect_dims(&mut dims);
        assert_eq!(dims, vec![0, 1]);
    }
}
