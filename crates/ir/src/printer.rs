//! Textual IR output in MLIR's *generic* operation form.
//!
//! Every op prints as
//!
//! ```text
//! %0, %1 = "dialect.op"(%a, %b) ({ ... regions ... }) {attr = value} : (i32, i32) -> (i32, i32)
//! ```
//!
//! which [`crate::parser`] can read back. Round-tripping is tested for
//! every construct the compiler emits.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::ops::{BlockId, IrCtx, OpId, ValueId};

/// Prints `root` (and everything nested) to a string.
pub fn print_op(ctx: &IrCtx, root: OpId) -> String {
    let mut p = Printer { ctx, names: HashMap::new(), next: 0, out: String::new() };
    p.op(root, 0);
    p.out
}

struct Printer<'a> {
    ctx: &'a IrCtx,
    names: HashMap<ValueId, usize>,
    next: usize,
    out: String,
}

impl<'a> Printer<'a> {
    fn name_of(&mut self, value: ValueId) -> usize {
        if let Some(n) = self.names.get(&value) {
            return *n;
        }
        let n = self.next;
        self.next += 1;
        self.names.insert(value, n);
        n
    }

    fn indent(&mut self, depth: usize) {
        for _ in 0..depth {
            self.out.push_str("  ");
        }
    }

    fn op(&mut self, op: OpId, depth: usize) {
        let data = self.ctx.op(op);
        self.indent(depth);
        // Results.
        if !data.results.is_empty() {
            for (i, r) in data.results.clone().iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                let n = self.name_of(*r);
                let _ = write!(self.out, "%{n}");
            }
            self.out.push_str(" = ");
        }
        let _ = write!(self.out, "{:?}(", data.name);
        for (i, operand) in data.operands.clone().iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let n = self.name_of(*operand);
            let _ = write!(self.out, "%{n}");
        }
        self.out.push(')');
        // Regions.
        let regions = data.regions.clone();
        if !regions.is_empty() {
            self.out.push_str(" (");
            for (i, region) in regions.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                self.out.push_str("{\n");
                for block in self.ctx.region(*region).blocks.clone() {
                    self.block(block, depth + 1);
                }
                self.indent(depth);
                self.out.push('}');
            }
            self.out.push(')');
        }
        // Attributes (BTreeMap: deterministic order).
        let data = self.ctx.op(op);
        if !data.attrs.is_empty() {
            self.out.push_str(" {");
            for (i, (k, v)) in data.attrs.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                let _ = write!(self.out, "{k} = {v}");
            }
            self.out.push('}');
        }
        // Trailing function type.
        let operand_types: Vec<String> =
            data.operands.iter().map(|v| self.ctx.value_type(*v).to_string()).collect();
        let result_types: Vec<String> =
            data.results.iter().map(|v| self.ctx.value_type(*v).to_string()).collect();
        let _ =
            write!(self.out, " : ({}) -> ({})", operand_types.join(", "), result_types.join(", "));
        self.out.push('\n');
    }

    fn block(&mut self, block: BlockId, depth: usize) {
        let data = self.ctx.block(block);
        self.indent(depth);
        let _ = write!(self.out, "^bb(");
        for (i, arg) in data.args.clone().iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let n = self.name_of(*arg);
            let ty = self.ctx.value_type(*arg).to_string();
            let _ = write!(self.out, "%{n}: {ty}");
        }
        self.out.push_str("):\n");
        for op in self.ctx.block(block).ops.clone() {
            self.op(op, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Attribute;
    use crate::builder::OpBuilder;
    use crate::ops::Module;
    use crate::types::{MemRefType, Type};

    #[test]
    fn prints_constant() {
        let mut m = Module::new();
        let body = m.body();
        let mut b = OpBuilder::at_end(&mut m.ctx, body);
        b.insert_op("arith.constant", vec![], vec![Type::index()], [("value", Attribute::Int(4))]);
        let text = print_op(&m.ctx, m.top());
        assert!(text.contains("%0 = \"arith.constant\"() {value = 4} : () -> (index)"), "{text}");
    }

    #[test]
    fn prints_operands_and_multiple_results() {
        let mut m = Module::new();
        let body = m.body();
        let mut b = OpBuilder::at_end(&mut m.ctx, body);
        let c = b.insert_op(
            "arith.constant",
            vec![],
            vec![Type::i32()],
            [("value", Attribute::Int(1))],
        );
        let v = b.result(c);
        b.insert_op("test.pair", vec![v, v], vec![Type::i32(), Type::i32()], []);
        let text = print_op(&m.ctx, m.top());
        assert!(text.contains("%1, %2 = \"test.pair\"(%0, %0)"), "{text}");
        assert!(text.contains(": (i32, i32) -> (i32, i32)"), "{text}");
    }

    #[test]
    fn prints_nested_regions_with_block_args() {
        let mut m = Module::new();
        let body = m.body();
        let mut b = OpBuilder::at_end(&mut m.ctx, body);
        let (_, inner) = b.insert_region_op("scf.for", vec![], vec![], [], vec![Type::index()]);
        b.set_insertion_end(inner);
        b.insert_op("scf.yield", vec![], vec![], []);
        let text = print_op(&m.ctx, m.top());
        assert!(text.contains("\"scf.for\"() ({"), "{text}");
        assert!(text.contains("^bb(%0: index):"), "{text}");
        assert!(text.contains("\"scf.yield\"()"), "{text}");
    }

    #[test]
    fn prints_memref_types() {
        let mut m = Module::new();
        let body = m.body();
        let mut b = OpBuilder::at_end(&mut m.ctx, body);
        let ty = Type::MemRef(MemRefType::contiguous(vec![60, 80], Type::f32()));
        b.insert_op("memref.alloc", vec![], vec![ty], []);
        let text = print_op(&m.ctx, m.top());
        assert!(text.contains("() -> (memref<60x80xf32>)"), "{text}");
    }

    #[test]
    fn dead_ops_do_not_print() {
        let mut m = Module::new();
        let body = m.body();
        let mut b = OpBuilder::at_end(&mut m.ctx, body);
        let op = b.insert_op("test.dead", vec![], vec![], []);
        m.ctx.erase_op(op);
        let text = print_op(&m.ctx, m.top());
        assert!(!text.contains("test.dead"));
    }
}
